(* Benchmark harness: regenerates every figure / quantitative claim of
   the paper's evaluation (see DESIGN.md section 4 for the experiment
   index).  Run:

     dune exec bench/main.exe                 # all experiments, scaled
     dune exec bench/main.exe -- e1 e5        # a subset
     dune exec bench/main.exe -- timing       # Bechamel micro-benchmarks

   Absolute numbers differ from the paper (their testbed: 2 x 12 cores
   for 12 days; here: minutes on one core, a scaled partition and
   re-trained networks) — the *shapes* are the reproduction target: who
   wins, by what rough factor, and where the hard regions lie. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Rng = Nncs_linalg.Rng
module D = Nncs_acasxu.Defs
module Dyn = Nncs_acasxu.Dynamics
module S = Nncs_acasxu.Scenario
module T = Nncs_acasxu.Training
module Net = Nncs_nn.Network
module Tr = Nncs_nnabs.Transformer
open Nncs

let section name = Printf.printf "\n===== %s =====\n%!" name
let now () = Unix.gettimeofday ()

(* --tiny: deliberately under-trained models (CI smoke mode — seconds
   instead of hours; verdicts are meaningless, shapes are not) *)
let tiny = ref false

(* networks are shared by most experiments *)
let networks =
  lazy
    (if !tiny then
       let dir =
         Filename.concat (Filename.get_temp_dir_name ()) "nncs-bench-tiny-nets"
       in
       snd
         (T.load_or_train ~spec:T.tiny_spec
            ~policy_config:T.tiny_policy_config ~dir ())
     else snd (T.load_or_train ~dir:"data" ()))

let system () = S.system ~networks:(Lazy.force networks) ()

(* ------------------------------------------------------------------ *)
(* E1 (Fig 7): enclosure tightness vs number of integration steps M    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1 / Fig 7 - validated simulation: M integration steps vs tightness";
  (* one control period of the ACAS Xu plant from a partition-sized box,
     strong-left command *)
  let state =
    B.of_bounds
      [| (-100.0, 0.0); (7900.0, 8000.0); (3.0, 3.05); (700.0, 700.0); (600.0, 600.0) |]
  in
  let u = Command.value_box D.commands (D.index D.Strong_left) in
  Printf.printf "%4s  %14s  %14s  %10s\n" "M" "piece width" "endpoint width" "time (ms)";
  List.iter
    (fun m ->
      let t0 = now () in
      let r =
        Nncs_ode.Simulate.simulate Dyn.plant ~t0:0.0 ~period:D.period_s
          ~steps:m ~order:6 ~state ~inputs:u
      in
      let dt = 1000.0 *. (now () -. t0) in
      (* Fig 7 compares how snugly the collection of boxes hugs the
         swept tube: the per-piece position width is the measure (the
         hull of all pieces is dominated by the 1300 ft of travel and
         barely depends on M) *)
      let pos_width b = Float.max (I.width (B.get b D.ix)) (I.width (B.get b D.iy)) in
      let pieces = r.Nncs_ode.Simulate.pieces in
      let mean =
        Array.fold_left (fun a p -> a +. pos_width p) 0.0 pieces
        /. float_of_int (Array.length pieces)
      in
      Printf.printf "%4d  %14.2f  %14.2f  %10.2f\n" m mean
        (pos_width r.Nncs_ode.Simulate.endpoint) dt)
    [ 1; 2; 4; 10; 20 ];
  Printf.printf "(expected shape: per-piece width shrinks sharply with M —\n\
                \ fewer unreachable states inside the enclosure, cf. Fig 7)\n"

(* ------------------------------------------------------------------ *)
(* E1b: direct interval Taylor vs Loehner mean-value QR scheme          *)
(* ------------------------------------------------------------------ *)

let e1b () =
  section "E1b / Section 6.2 - direct vs Loehner validated simulation";
  let module Eo = Nncs_ode.Expr in
  (* a rotation-heavy case (harmonic oscillator over several turns) and
     the ACAS Xu plant over one control period *)
  let oscillator =
    Nncs_ode.Ode.make ~dim:2 ~input_dim:1 [| Eo.state 1; Eo.neg (Eo.state 0) |]
  in
  let cases =
    [
      ( "oscillator, 2 turns",
        oscillator,
        B.of_bounds [| (0.9, 1.1); (-0.1, 0.1) |],
        B.of_point [| 0.0 |],
        4.0 *. Float.pi,
        100 );
      ( "ACAS Xu, 1 period SL",
        Dyn.plant,
        B.of_bounds
          [| (-100.0, 0.0); (7900.0, 8000.0); (3.0, 3.05); (700.0, 700.0); (600.0, 600.0) |],
        Command.value_box D.commands (D.index D.Strong_left),
        D.period_s,
        10 );
    ]
  in
  Printf.printf "%-22s %14s %14s %10s %10s\n" "case" "direct width"
    "lohner width" "direct ms" "lohner ms";
  List.iter
    (fun (name, sys, state, u, period, steps) ->
      let run scheme =
        let t0 = now () in
        let r =
          Nncs_ode.Simulate.simulate ~scheme sys ~t0:0.0 ~period ~steps
            ~order:8 ~state ~inputs:u
        in
        (B.max_width r.Nncs_ode.Simulate.endpoint, 1000.0 *. (now () -. t0))
      in
      let wd, td = run Nncs_ode.Simulate.Direct in
      let wl, tl = run Nncs_ode.Simulate.Lohner in
      Printf.printf "%-22s %14.4f %14.4f %10.2f %10.2f\n" name wd wl td tl)
    cases;
  Printf.printf "(expected: Loehner pays ~2-5x time and wins dramatically on\n\
                \ rotation-heavy flows; near parity on short mild steps)\n"

(* ------------------------------------------------------------------ *)
(* E2-E4 (Fig 9a, Fig 9b, overall coverage): the main experiment       *)
(* ------------------------------------------------------------------ *)

let main_experiment_cache :
    (int * (int * Verify.cell_report) list * float) option ref =
  ref None

let arcs_e2 = 18
let headings_e2 = 6

let run_main_experiment () =
  match !main_experiment_cache with
  | Some r -> r
  | None ->
      let sys = system () in
      let cells = S.initial_cells ~arcs:arcs_e2 ~headings:headings_e2 () in
      let config =
        {
          Verify.default_config with
          reach = { Reach.default_config with keep_sets = false };
          strategy = Verify.All_dims [ D.ix; D.iy; D.ipsi ];
          max_depth = 1;
        }
      in
      Printf.printf "verifying %d cells (%d arcs x %d headings, depth 1)...\n%!"
        (List.length cells) arcs_e2 headings_e2;
      let t0 = now () in
      let report = Verify.verify_partition ~config sys (List.map snd cells) in
      let dt = now () -. t0 in
      let tagged =
        List.map
          (fun (c : Verify.cell_report) -> (fst (List.nth cells c.Verify.index), c))
          report.Verify.cells
      in
      let r = (arcs_e2, tagged, dt) in
      main_experiment_cache := Some r;
      r

let e2 () =
  section "E2 / Fig 9a - safety map over the initial states (ribbon partition)";
  let arcs, tagged, _ = run_main_experiment () in
  Printf.printf
    "each row = one arc of the sensor circle (bearing of first detection)\n";
  Printf.printf "%4s %12s  %s\n" "arc" "bearing(deg)" "heading cells (entry cone)";
  List.iter
    (fun arc ->
      let mine = List.filter (fun (a, _) -> a = arc) tagged in
      let row =
        String.concat ""
          (List.map
             (fun (_, (c : Verify.cell_report)) ->
               if c.Verify.proved_fraction >= 1.0 -. 1e-9 then "o"
               else if c.Verify.proved_fraction > 0.0 then "+"
               else "x")
             mine)
      in
      Printf.printf "%4d %12.0f  %s\n" arc
        (S.arc_center_angle ~arcs arc *. 180.0 /. Float.pi)
        row)
    (List.init arcs Fun.id);
  Printf.printf "(o fully proved, + partially proved after refinement, x not proved)\n"

let e3 () =
  section "E3 / Fig 9b - coverage and time per arc (bearing of the intruder)";
  let arcs, tagged, _ = run_main_experiment () in
  Printf.printf "%4s %12s %12s %10s\n" "arc" "bearing(deg)" "coverage(%)" "time(s)";
  List.iter
    (fun arc ->
      let mine = List.filter_map (fun (a, c) -> if a = arc then Some c else None) tagged in
      let cov = Verify.coverage_of_cells mine in
      let time =
        List.fold_left (fun a (c : Verify.cell_report) -> a +. c.Verify.elapsed) 0.0 mine
      in
      Printf.printf "%4d %12.0f %12.1f %10.2f\n" arc
        (S.arc_center_angle ~arcs arc *. 180.0 /. Float.pi)
        cov time)
    (List.init arcs Fun.id);
  Printf.printf
    "(expected shape: dips in coverage / spikes in time around the hard\n\
    \ bearings; roughly symmetric about the ownship axis, cf. Fig 9b)\n"

let e4 () =
  section "E4 / Section 7.2 - overall coverage";
  let _, tagged, dt = run_main_experiment () in
  let cells = List.map snd tagged in
  let coverage = Verify.coverage_of_cells cells in
  let proved =
    List.length
      (List.filter
         (fun (c : Verify.cell_report) -> c.Verify.proved_fraction >= 1.0 -. 1e-9)
         cells)
  in
  Printf.printf "partition: %d arcs x %d headings = %d cells, split depth 1\n"
    arcs_e2 headings_e2 (List.length cells);
  Printf.printf "coverage c = %.1f%%  (paper: 90.3%% at their scale)\n" coverage;
  Printf.printf "fully proved cells: %d/%d, total time %.1f s\n" proved
    (List.length cells) dt

(* ------------------------------------------------------------------ *)
(* E5: Gamma (Algorithm 2) accuracy / time trade-off                    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5 / Section 6.4 - Gamma trade-off (join threshold)";
  let sys = system () in
  (* a crossing cell that stresses the command branching *)
  let cells = S.initial_cells ~arcs:18 ~headings:6 ~arc_indices:[ 3 ] () in
  let cell = snd (List.nth cells 2) in
  Printf.printf "%6s %8s %12s %12s %10s\n" "Gamma" "proved" "max states" "joins" "time(s)";
  List.iter
    (fun gamma ->
      let t0 = now () in
      let r =
        Reach.analyze
          ~config:{ Reach.default_config with gamma; keep_sets = false }
          sys
          (Symset.of_list [ cell ])
      in
      Printf.printf "%6d %8b %12d %12d %10.2f\n" gamma (Reach.is_proved_safe r)
        r.Reach.max_states r.Reach.total_joins
        (now () -. t0))
    [ 5; 10; 20; 40 ];
  Printf.printf
    "(larger Gamma: fewer joins, tighter sets, more time — Remark 3\n\
    \ requires Gamma >= P = 5)\n"

(* ------------------------------------------------------------------ *)
(* E6: NN abstract domains tightness / cost                             *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6 / Section 6.6 - F# abstract domains on the trained networks";
  let nets = Lazy.force networks in
  let rng = Rng.create 2718 in
  let widths = [ 0.01; 0.03; 0.1 ] in
  Printf.printf "%12s %12s %12s %12s %14s\n" "input width" "interval" "symbolic"
    "affine" "sym+split(2)";
  List.iter
    (fun w ->
      let boxes =
        List.init 50 (fun _ ->
            let center =
              [|
                Rng.uniform rng 0.1 1.0;
                Rng.uniform rng (-0.9) 0.9;
                Rng.uniform rng (-0.9) 0.9;
                0.7;
                0.6;
              |]
            in
            ( Rng.int rng 5,
              B.of_intervals (Array.map (fun c -> I.make (c -. w) (c +. w)) center) ))
      in
      let mean_width domain splits =
        let acc =
          List.fold_left
            (fun acc (k, box) ->
              let out =
                if splits = 0 then Tr.propagate domain nets.(k) box
                else Tr.propagate_split domain ~splits nets.(k) box
              in
              acc +. B.max_width out)
            0.0 boxes
        in
        acc /. float_of_int (List.length boxes)
      in
      Printf.printf "%12.3f %12.4f %12.4f %12.4f %14.4f\n" w
        (mean_width Tr.Interval 0) (mean_width Tr.Symbolic 0)
        (mean_width Tr.Affine 0) (mean_width Tr.Symbolic 2))
    widths;
  Printf.printf
    "(expected: symbolic < interval, gap growing with the input width;\n\
    \ input splitting tightens further)\n"

(* ------------------------------------------------------------------ *)
(* E7: sound flow enclosure vs discrete-instant baseline                *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7 / Section 2 - vs the discrete-instant baseline [7]";
  (* the crafted oscillator whose excursion into E happens strictly
     between sampling instants (see test_baseline.ml) *)
  let module Eo = Nncs_ode.Expr in
  let omega = 2.0 *. Float.pi in
  let plant =
    Nncs_ode.Ode.make ~dim:2 ~input_dim:1
      [| Eo.state 1; Eo.(scale (-.(omega *. omega)) (state 0)) |]
  in
  let commands = Command.make [| [| 0.0 |] |] in
  let constant_net =
    Net.make ~input_dim:1
      [|
        {
          Net.weights = Nncs_linalg.Mat.create 1 1 0.0;
          biases = [| 0.0 |];
          activation = Nncs_nn.Activation.Linear;
        };
      |]
  in
  let controller =
    Controller.make ~period:1.0 ~commands ~networks:[| constant_net |]
      ~select:(fun _ -> 0)
      ~pre:(fun s -> [| s.(0) |])
      ~pre_abs:(fun b -> B.of_intervals [| B.get b 0 |])
      ~post:(fun _ -> 0)
      ~post_abs:(fun _ -> [ 0 ])
      ()
  in
  let sys =
    System.make ~plant ~controller
      ~erroneous:(Spec.coord_gt ~name:"peak" ~dim:0 ~bound:0.9)
      ~target:(Spec.coord_lt ~name:"never" ~dim:0 ~bound:(-100.0))
      ~horizon_steps:3
  in
  let cell = Symstate.make (B.of_bounds [| (0.0, 0.0); (5.9, 6.0) |]) 0 in
  let discrete = Nncs_baseline.Discrete.analyze sys cell in
  let reach = Reach.analyze sys (Symset.of_list [ cell ]) in
  let ground_truth =
    Concrete.simulate ~substeps:100 sys ~init_state:[| 0.0; 5.95 |] ~init_cmd:0
  in
  Printf.printf "system: harmonic oscillator peaking above E between samples\n";
  Printf.printf "%-34s %s\n" "discrete-instant baseline [7]:"
    (match discrete with
    | Nncs_baseline.Discrete.No_collision_observed -> "NO VIOLATION SEEN (unsound!)"
    | Nncs_baseline.Discrete.Collision_at_sample _ -> "violation at a sample");
  Printf.printf "%-34s %s\n" "our flow enclosure (Algorithm 3):"
    (match reach.Reach.outcome with
    | Reach.Reached_error { step } -> Printf.sprintf "contact with E at step %d" step
    | Reach.Proved_safe | Reach.Horizon_exhausted -> "missed (unexpected)");
  Printf.printf "%-34s %s\n" "ground truth (dense simulation):"
    (match ground_truth.Concrete.termination with
    | Concrete.Hit_error t -> Printf.sprintf "E entered at t = %.2f s (between samples)" t
    | Concrete.Terminated _ | Concrete.Horizon_end -> "no excursion (unexpected)")

(* ------------------------------------------------------------------ *)
(* E8: falsification as the complement of the proof                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8 / Section 2 - falsification on hard vs easy cells";
  let sys = system () in
  let module F = Nncs_baseline.Falsify in
  let cell_of arc_deg k =
    let arcs = 72 in
    let arc = int_of_float (float_of_int arcs *. arc_deg /. 360.0) in
    snd (List.nth (S.initial_cells ~arcs ~headings:24 ~arc_indices:[ arc ] ()) k)
  in
  let run name cell shots =
    let t0 = now () in
    let r =
      F.falsify ~config:{ F.default_config with shots } sys ~cell
        ~metric:F.acasxu_metric
    in
    Printf.printf "%-24s %5d sims  best objective %8.1f ft  %-13s  %.1f s\n" name
      r.F.simulations r.F.best_metric
      (if r.F.witness <> None then "WITNESS FOUND" else "none found")
      (now () -. t0)
  in
  run "head-on (hard)" (cell_of 90.0 11) 60;
  run "oblique (easy)" (cell_of 20.0 4) 25;
  Printf.printf
    "(expected: a concrete collision witness in the head-on sliver,\n\
    \ nothing on the oblique cell — where reachability supplies the proof)\n"

(* ------------------------------------------------------------------ *)
(* E9: split refinement depth vs coverage                               *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9 / Section 7.1 - split refinement: coverage vs max depth";
  let sys = system () in
  (* a coarse slice of the ribbon around a crossing bearing *)
  let cells =
    List.map snd (S.initial_cells ~arcs:12 ~headings:4 ~arc_indices:[ 2; 3 ] ())
  in
  Printf.printf "%6s %12s %12s %10s\n" "depth" "coverage(%)" "proved cells" "time(s)";
  List.iter
    (fun depth ->
      let config =
        {
          Verify.default_config with
          reach = { Reach.default_config with keep_sets = false };
          strategy = Verify.All_dims [ D.ix; D.iy; D.ipsi ];
          max_depth = depth;
        }
      in
      let report = Verify.verify_partition ~config sys cells in
      Printf.printf "%6d %12.1f %9d/%-2d %10.1f\n" depth report.Verify.coverage
        report.Verify.proved_cells report.Verify.total_cells
        report.Verify.elapsed)
    [ 0; 1; 2 ];
  Printf.printf "(expected: coverage rises with depth at increasing cost)\n"

(* ------------------------------------------------------------------ *)
(* E10: influence-guided splitting (paper future work, direction 2)     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 / Section 8 - split refinement strategies";
  let sys = system () in
  let cells =
    List.map snd (S.initial_cells ~arcs:24 ~headings:4 ~arc_indices:[ 2 ] ())
  in
  let strategies =
    [
      ("all dims (paper, 2^3)", Verify.All_dims [ D.ix; D.iy; D.ipsi ]);
      ( "influence, take 1 (2^1)",
        Verify.Most_influential { candidates = [ D.ix; D.iy; D.ipsi ]; take = 1 } );
      ( "influence, take 2 (2^2)",
        Verify.Most_influential { candidates = [ D.ix; D.iy; D.ipsi ]; take = 2 } );
    ]
  in
  Printf.printf "%-26s %12s %12s %10s\n" "strategy" "coverage(%)" "leaves" "time(s)";
  List.iter
    (fun (name, strategy) ->
      let config =
        { Verify.default_config with strategy; max_depth = 1 }
      in
      let report = Verify.verify_partition ~config sys cells in
      let leaves =
        List.fold_left
          (fun a (c : Verify.cell_report) -> a + List.length c.Verify.leaves)
          0 report.Verify.cells
      in
      Printf.printf "%-26s %12.1f %12d %10.1f\n" name report.Verify.coverage
        leaves report.Verify.elapsed)
    strategies;
  Printf.printf "(expected: influence-guided splitting reaches similar coverage\n\
                \ with far fewer reachability calls)\n"

(* ------------------------------------------------------------------ *)
(* E11: triage = verification + falsification (future work, dir. 3)    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11 / Section 8 - triage of not-proved cells";
  let sys = system () in
  let module Tri = Nncs_baseline.Triage in
  (* a front-sector band where all three buckets appear *)
  let cells =
    List.map snd (S.initial_cells ~arcs:36 ~headings:6 ~arc_indices:[ 8 ] ())
  in
  let config =
    {
      Tri.verify = { Verify.default_config with max_depth = 0 };
      falsify = { Nncs_baseline.Falsify.default_config with shots = 20 };
      metric = Nncs_baseline.Falsify.acasxu_metric;
    }
  in
  let report = Tri.triage config sys cells in
  Printf.printf "cells: %d   proved %d   falsified %d   unknown %d   (%.1f s)\n"
    (List.length cells) report.Tri.proved report.Tri.falsified
    report.Tri.unknown report.Tri.elapsed;
  List.iter
    (fun (r : Tri.cell_result) ->
      match r.Tri.verdict with
      | Tri.Falsified init ->
          Printf.printf "  counterexample at (%.0f, %.0f, psi=%.3f)\n" init.(0)
            init.(1) init.(2)
      | Tri.Proved | Tri.Unknown -> ())
    report.Tri.results;
  Printf.printf "(the paper's Fig 9a marks cells safe/not-proved; triage further\n\
                \ separates not-proved into really-unsafe vs analysis-too-coarse)\n"

(* ------------------------------------------------------------------ *)
(* E12: controller-abstraction cache - hit rate and speedup             *)
(* ------------------------------------------------------------------ *)

let cache_out = ref "BENCH_abs_cache.json"

(* Verdict signature shared by E12/E13/E14: caching, scheduling and
   serving must be invisible in the results — only the wall clock may
   move.  Quantized cache lookups may widen score boxes, but only
   towards supersets of the command choices; on the benched partitions
   the verdicts must agree leaf for leaf. *)
let bench_leaf_sig (l : Verify.leaf) =
  let r =
    match l.Verify.result with
    | Verify.Completed Reach.Proved_safe -> "safe"
    | Verify.Completed (Reach.Reached_error { step }) ->
        Printf.sprintf "unsafe@%d" step
    | Verify.Completed Reach.Horizon_exhausted -> "horizon"
    | Verify.Failed _ -> "failed"
  in
  Printf.sprintf "%d:%b:%s" l.Verify.depth l.Verify.proved r

let report_signature (report : Verify.report) =
  List.sort compare
    (List.map
       (fun (c : Verify.cell_report) ->
         (c.Verify.index, List.map bench_leaf_sig c.Verify.leaves))
       report.Verify.cells)

let e12 () =
  section "E12 / abs cache - F# memoization: hit rate and speedup";
  (* input splitting (cf. E6's sym+split column) multiplies the per-query
     F# cost by 2^splits while leaving the ODE cost unchanged — the
     regime the memo table targets *)
  let sys = S.system ~networks:(Lazy.force networks) ~nn_splits:2 () in
  let cells =
    (* the tiny slice must survive a few control steps — head-on cells of a
       4-arc partition touch E during the very first flow pipe, before the
       controller is ever consulted, and would leave the cache cold *)
    if !tiny then
      List.map snd (S.initial_cells ~arcs:12 ~headings:4 ~arc_indices:[ 6 ] ())
    else
      List.map snd (S.initial_cells ~arcs:12 ~headings:4 ~arc_indices:[ 2; 3 ] ())
  in
  (* quantum 0 = exact keys: the cached runs are bitwise-identical to the
     uncached one, so the verdict-equality gate below is strict (quantized
     widening is exercised by the soundness tests instead) *)
  let cache_config =
    { Nncs_nnabs.Cache.capacity = 65536; quantum = 0.0; shards = 8 }
  in
  let config abs_cache =
    {
      Verify.default_config with
      reach = { Reach.default_config with keep_sets = false; abs_cache };
      strategy = Verify.All_dims [ D.ix; D.iy; D.ipsi ];
      max_depth = (if !tiny then 0 else 1);
      (* one worker = the calling domain, so the domain-local cache
         survives from the cold run into the warm one *)
      workers = 1;
    }
  in
  let signature = report_signature in
  let m_hits = Nncs_obs.Metrics.counter "nnabs.cache_hits" in
  let m_misses = Nncs_obs.Metrics.counter "nnabs.cache_misses" in
  let m_evictions = Nncs_obs.Metrics.counter "nnabs.cache_evictions" in
  let run label abs_cache =
    let h0 = Nncs_obs.Metrics.value m_hits
    and m0 = Nncs_obs.Metrics.value m_misses
    and e0 = Nncs_obs.Metrics.value m_evictions in
    let t0 = now () in
    let report = Verify.verify_partition ~config:(config abs_cache) sys cells in
    let dt = now () -. t0 in
    let hits = Nncs_obs.Metrics.value m_hits - h0
    and misses = Nncs_obs.Metrics.value m_misses - m0
    and evictions = Nncs_obs.Metrics.value m_evictions - e0 in
    Printf.printf "%-10s %8.2f s   coverage %5.1f%%   hits %7d   misses %7d\n%!"
      label dt report.Verify.coverage hits misses;
    (signature report, dt, hits, misses, evictions)
  in
  let sig_plain, t_plain, _, _, _ = run "uncached" None in
  let sig_cold, t_cold, h_cold, m_cold, e_cold = run "cold" (Some cache_config) in
  let sig_warm, t_warm, h_warm, m_warm, e_warm = run "warm" (Some cache_config) in
  let verdicts_match = sig_plain = sig_cold && sig_plain = sig_warm in
  let rate h m =
    if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
  in
  let speedup_warm = if t_warm > 0.0 then t_plain /. t_warm else 0.0 in
  let speedup_cold = if t_cold > 0.0 then t_plain /. t_cold else 0.0 in
  Printf.printf
    "verdicts identical: %b   cold hit rate %.1f%%   warm hit rate %.1f%%\n"
    verdicts_match
    (100.0 *. rate h_cold m_cold)
    (100.0 *. rate h_warm m_warm);
  Printf.printf "speedup: %.2fx cold, %.2fx warm (uncached / cached time)\n"
    speedup_cold speedup_warm;
  let module J = Nncs_obs.Json in
  let json =
    J.Obj
      [
        ("tiny", J.Bool !tiny);
        ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
        ("cells", J.Num (float_of_int (List.length cells)));
        ("capacity", J.Num (float_of_int cache_config.Nncs_nnabs.Cache.capacity));
        ("quantum", J.Num cache_config.Nncs_nnabs.Cache.quantum);
        ("shards", J.Num (float_of_int cache_config.Nncs_nnabs.Cache.shards));
        ("t_uncached_s", J.Num t_plain);
        ("t_cold_s", J.Num t_cold);
        ("t_warm_s", J.Num t_warm);
        ("hits_cold", J.Num (float_of_int h_cold));
        ("misses_cold", J.Num (float_of_int m_cold));
        ("evictions_cold", J.Num (float_of_int e_cold));
        ("hit_rate_cold", J.Num (rate h_cold m_cold));
        ("hits_warm", J.Num (float_of_int h_warm));
        ("misses_warm", J.Num (float_of_int m_warm));
        ("evictions_warm", J.Num (float_of_int e_warm));
        ("hit_rate_warm", J.Num (rate h_warm m_warm));
        ("speedup_cold", J.Num speedup_cold);
        ("speedup_warm", J.Num speedup_warm);
        ("verdicts_match", J.Bool verdicts_match);
      ]
  in
  let oc = open_out !cache_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "cache report written to %s\n" !cache_out

(* ------------------------------------------------------------------ *)
(* E13: leaf scheduler - work-stealing frontier vs per-cell queue       *)
(* ------------------------------------------------------------------ *)

let leaf_out = ref "BENCH_leaf_sched.json"

let e13 () =
  section "E13 / leaf scheduler - work-stealing frontier vs per-cell queue";
  (* a deliberately skewed partition: a handful of cells next to the
     collision cylinder refine to max_depth while their neighbours prove
     at depth 0.  Under the per-cell queue the hard cells serialize on
     whichever worker picked them up; the leaf frontier fans their
     subtrees out across all workers *)
  let sys = S.system ~networks:(Lazy.force networks) () in
  let cells =
    if !tiny then
      List.map snd (S.initial_cells ~arcs:12 ~headings:4 ~arc_indices:[ 6 ] ())
    else
      List.map snd
        (S.initial_cells ~arcs:12 ~headings:6 ~arc_indices:[ 2; 3 ] ())
  in
  let max_depth = if !tiny then 1 else 2 in
  let config ~scheduler ~workers =
    {
      Verify.default_config with
      reach = { Reach.default_config with keep_sets = false };
      strategy = Verify.All_dims [ D.ix; D.iy; D.ipsi ];
      max_depth;
      workers;
      scheduler;
    }
  in
  let signature = report_signature in
  let m_steals = Nncs_obs.Metrics.counter "verify.steals" in
  let run label scheduler workers =
    let s0 = Nncs_obs.Metrics.value m_steals in
    let t0 = now () in
    let report =
      Verify.verify_partition ~config:(config ~scheduler ~workers) sys cells
    in
    let dt = now () -. t0 in
    let steals = Nncs_obs.Metrics.value m_steals - s0 in
    Printf.printf
      "%-12s %8.2f s   coverage %5.1f%%   steals %5d\n%!" label dt
      report.Verify.coverage steals;
    (signature report, report.Verify.coverage, dt, steals)
  in
  let sig_seq, coverage, t_seq, _ = run "sequential" Verify.Cells 1 in
  let variant workers =
    let sig_c, _, t_c, _ = run (Printf.sprintf "cells/%d" workers) Verify.Cells workers in
    let sig_l, _, t_l, steals =
      run (Printf.sprintf "leaves/%d" workers) Verify.Leaves workers
    in
    let ok = sig_c = sig_seq && sig_l = sig_seq in
    (workers, t_c, t_l, steals, ok)
  in
  let variants = List.map variant [ 4; 8 ] in
  let verdicts_match = List.for_all (fun (_, _, _, _, ok) -> ok) variants in
  List.iter
    (fun (w, t_c, t_l, _, _) ->
      Printf.printf "workers=%d: leaves %.2fx vs cells (%.2f s -> %.2f s)\n" w
        (if t_l > 0.0 then t_c /. t_l else 0.0)
        t_c t_l)
    variants;
  Printf.printf "verdicts identical across schedulers: %b\n" verdicts_match;
  let module J = Nncs_obs.Json in
  (* wall-clock comparisons only mean something relative to the host's
     core count: on a single-core CI runner every multi-domain config
     loses to sequential (stop-the-world GC synchronizes all domains),
     and the frontier's whole point — keeping every domain busy — makes
     it the worst off.  Record the cores so readers can tell *)
  Printf.printf "host cores (recommended domains): %d\n"
    (Domain.recommended_domain_count ());
  let json =
    J.Obj
      ([
         ("tiny", J.Bool !tiny);
         ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
         ("cells", J.Num (float_of_int (List.length cells)));
         ("max_depth", J.Num (float_of_int max_depth));
         ("coverage_pct", J.Num coverage);
         ("t_sequential_s", J.Num t_seq);
         ("verdicts_match", J.Bool verdicts_match);
       ]
      @ List.concat_map
          (fun (w, t_c, t_l, steals, _) ->
            [
              (Printf.sprintf "t_cells_%d_s" w, J.Num t_c);
              (Printf.sprintf "t_leaves_%d_s" w, J.Num t_l);
              ( Printf.sprintf "speedup_leaves_%d" w,
                J.Num (if t_l > 0.0 then t_c /. t_l else 0.0) );
              (Printf.sprintf "steals_%d" w, J.Num (float_of_int steals));
            ])
          variants)
  in
  let oc = open_out !leaf_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "leaf-scheduler report written to %s\n" !leaf_out

(* ------------------------------------------------------------------ *)
(* E14: verification service - memo and cache tiers vs full runs        *)
(* ------------------------------------------------------------------ *)

let serve_out = ref "BENCH_serve.json"

let e14 () =
  section "E14 / serve - resident verification service: cold vs warm vs memo";
  let module Server = Nncs_serve.Server in
  let module P = Nncs_serve.Protocol in
  let module J = Nncs_obs.Json in
  let nets = Lazy.force networks in
  let make_system ~domain ~nn_splits =
    S.system ~networks:nets ~domain ~nn_splits ()
  in
  let make_cells ~arcs ~headings ~arc_indices =
    let arc_indices = match arc_indices with [] -> None | l -> Some l in
    List.map snd (S.initial_cells ~arcs ~headings ?arc_indices ())
  in
  let cache =
    { Nncs_nnabs.Cache.capacity = 65536; quantum = 0.0; shards = 8 }
  in
  (* a fresh abstraction cache for this experiment, even when E12 ran in
     the same process and installed the shared slot already *)
  Nncs_nnabs.Cache.clear (Nncs_nnabs.Cache.shared cache);
  let server =
    Server.create
      {
        Server.default_config with
        Server.dispatchers = 1;
        cache = Some cache;
        memo_path = None;
      }
      ~make_system ~make_cells
  in
  (* one job per arc slice; input splitting multiplies the F# share of
     the work (cf. E12), the regime where the warm cache pays — the tiny
     networks need more splits before F# dominates the ODE cost enough
     for the warm/cold gap to be robust *)
  let arc_sets = if !tiny then [ [ 6 ] ] else [ [ 2 ]; [ 3 ]; [ 4 ] ] in
  let nn_splits = if !tiny then 6 else 2 in
  let jobs = List.length arc_sets in
  (* jobs are built as JSON and parsed through the wire codec, so the
     bench exercises exactly the request path a remote client hits *)
  let job id memo sel =
    let json =
      J.Obj
        ([
           ("t", J.Str "job");
           ("id", J.Str id);
           ( "partition",
             J.Obj
               [
                 ("arcs", J.Num 12.0);
                 ("headings", J.Num 4.0);
                 ( "arc_indices",
                   J.List (List.map (fun i -> J.Num (float_of_int i)) sel) );
               ] );
           ("nn_splits", J.Num (float_of_int nn_splits));
           ("memo", J.Bool memo);
         ]
        (* in tiny mode also cut the validated-integration share (M=4):
           the warm/cold gap measures the F# cache, not the ODE kernel *)
        @ if !tiny then [ ("m", J.Num 4.0) ] else [])
    in
    match P.request_of_json json with
    | Ok (P.Job job) -> job
    | Ok _ -> Stdlib.failwith "bench request is not a job"
    | Error reason -> Stdlib.failwith ("bench job failed to parse: " ^ reason)
  in
  let run_pass label memo =
    (* (fingerprint, served from memo?) per verdict, submission order *)
    let verdicts = ref [] in
    let emit = function
      | P.Verdict { fingerprint; source; _ } ->
          (* sequential submits never coalesce, but a shared-run verdict
             would equally be a cache hit *)
          let hit =
            match source with
            | P.Memo | P.Coalesced -> true
            | P.Run -> false
          in
          verdicts := (fingerprint, hit) :: !verdicts
      | P.Job_error { id; reason } ->
          Stdlib.failwith (Printf.sprintf "job %s failed: %s" id reason)
      | _ -> ()
    in
    let t0 = now () in
    List.iteri
      (fun i sel ->
        Server.submit server ~emit (job (Printf.sprintf "%s%d" label i) memo sel))
      arc_sets;
    let dt = now () -. t0 in
    Printf.printf "%-6s %8.3f s   (%d jobs, %.1f ms/query)\n%!" label dt jobs
      (1000.0 *. dt /. float_of_int jobs);
    (dt, List.rev !verdicts)
  in
  let t_cold, cold_vs = run_pass "cold" false in
  let t_warm, _ = run_pass "warm" false in
  let t_memo, memo_vs = run_pass "memo" true in
  let memo_all_hits =
    List.length memo_vs = jobs && List.for_all snd memo_vs
  in
  (* the served verdicts must equal a one-shot acasxu_verify-style run:
     same config, no cache, no server *)
  let verdicts_match =
    List.for_all2
      (fun sel (fp, _) ->
        let j = job "direct" false sel in
        let sys =
          make_system ~domain:j.P.domain ~nn_splits:j.P.nn_splits
        in
        let cells =
          match j.P.cells with
          | P.Explicit cells -> cells
          | P.Partition { arcs; headings; arc_indices } ->
              make_cells ~arcs ~headings ~arc_indices
        in
        let config =
          {
            j.P.config with
            Verify.reach =
              { j.P.config.Verify.reach with Reach.abs_cache = None };
          }
        in
        let direct = Verify.verify_partition ~config sys cells in
        match Server.lookup server fp with
        | Some served -> report_signature served = report_signature direct
        | None -> false)
      arc_sets cold_vs
  in
  let warm_lt_cold = t_warm < t_cold in
  let speedup dt = if dt > 0.0 then t_cold /. dt else 0.0 in
  let queries_per_s =
    if t_memo > 0.0 then float_of_int jobs /. t_memo else 0.0
  in
  Printf.printf
    "warm < cold: %b (%.2fx)   memo: %.2fx, %.0f queries/s, all hits %b\n"
    warm_lt_cold (speedup t_warm) (speedup t_memo) queries_per_s memo_all_hits;
  Printf.printf "verdicts identical to one-shot runs: %b\n" verdicts_match;
  let json =
    J.Obj
      [
        ("tiny", J.Bool !tiny);
        ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
        ("jobs", J.Num (float_of_int jobs));
        ("nn_splits", J.Num (float_of_int nn_splits));
        ("cache_capacity", J.Num (float_of_int cache.Nncs_nnabs.Cache.capacity));
        ("cache_quantum", J.Num cache.Nncs_nnabs.Cache.quantum);
        ("cache_shards", J.Num (float_of_int cache.Nncs_nnabs.Cache.shards));
        ("t_cold_s", J.Num t_cold);
        ("t_warm_s", J.Num t_warm);
        ("t_memo_s", J.Num t_memo);
        ("speedup_warm", J.Num (speedup t_warm));
        ("speedup_memo", J.Num (speedup t_memo));
        ("memo_queries_per_s", J.Num queries_per_s);
        ("warm_lt_cold", J.Bool warm_lt_cold);
        ("memo_all_hits", J.Bool memo_all_hits);
        ("verdicts_match", J.Bool verdicts_match);
      ]
  in
  let oc = open_out !serve_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "serve report written to %s\n" !serve_out

(* ------------------------------------------------------------------ *)
(* E15: serve robustness - cancellation latency, coalescing, shedding   *)
(* ------------------------------------------------------------------ *)

let robust_out = ref "BENCH_serve_robust.json"

let e15 () =
  section "E15 / serve robustness - cancellation, coalescing, overload";
  let module Server = Nncs_serve.Server in
  let module P = Nncs_serve.Protocol in
  let module J = Nncs_obs.Json in
  let nets = Lazy.force networks in
  let make_system ~domain ~nn_splits =
    S.system ~networks:nets ~domain ~nn_splits ()
  in
  let make_cells ~arcs ~headings ~arc_indices =
    let arc_indices = match arc_indices with [] -> None | l -> Some l in
    List.map snd (S.initial_cells ~arcs ~headings ?arc_indices ())
  in
  let sel = if !tiny then [ 6 ] else [ 2; 3 ] in
  let nn_splits = if !tiny then 6 else 2 in
  (* jobs through the wire codec, as in E14 (and with E14's tiny-mode
     integration cut), so the numbers describe the served path *)
  let job id memo =
    let json =
      J.Obj
        ([
           ("t", J.Str "job");
           ("id", J.Str id);
           ( "partition",
             J.Obj
               [
                 ("arcs", J.Num 12.0);
                 ("headings", J.Num 4.0);
                 ( "arc_indices",
                   J.List (List.map (fun i -> J.Num (float_of_int i)) sel) );
               ] );
           ("nn_splits", J.Num (float_of_int nn_splits));
           ("memo", J.Bool memo);
         ]
        @ if !tiny then [ ("m", J.Num 4.0) ] else [])
    in
    match P.request_of_json json with
    | Ok (P.Job job) -> job
    | Ok _ -> Stdlib.failwith "bench request is not a job"
    | Error reason -> Stdlib.failwith ("bench job failed to parse: " ^ reason)
  in
  (* uncached servers: warm-cache carry-over between passes would
     otherwise make raced duplicates look cheaper than they are *)
  let fresh_server ?max_queue ?(dispatchers = 1) () =
    Server.create
      {
        Server.default_config with
        Server.dispatchers;
        cache = None;
        max_queue;
      }
      ~make_system ~make_cells
  in
  (* -- cancellation latency: cancel at the first progress event and
     time how long the run takes to unwind, against the full run -- *)
  let full_run () =
    let server = fresh_server () in
    let t0 = now () in
    Server.submit server ~emit:(fun _ -> ()) (job "full" false);
    let dt = now () -. t0 in
    Server.close server;
    dt
  in
  let cancelled_run () =
    let server = fresh_server () in
    let ticket = ref None in
    let cancel_at = ref 0.0 in
    Server.submit server
      ~emit:(fun e ->
        match e with
        | P.Progress _ when !cancel_at = 0.0 -> (
            match !ticket with
            | Some tk ->
                cancel_at := now ();
                ignore (Server.cancel_ticket server tk ~reason:"bench")
            | None -> ())
        | _ -> ())
      ~on_start:(fun tk -> ticket := Some tk)
      (job "cancelled" false);
    let dt = if !cancel_at > 0.0 then now () -. !cancel_at else Float.nan in
    Server.close server;
    dt
  in
  let best f n = List.fold_left Float.min Float.infinity (List.init n (fun _ -> f ())) in
  let rounds = 3 in
  let t_full = best full_run rounds in
  let t_cancel = best cancelled_run rounds in
  Printf.printf
    "full run %.3f s, cancel unwinds in %.4f s (%.0fx faster)\n%!" t_full
    t_cancel
    (if t_cancel > 0.0 then t_full /. t_cancel else 0.0);
  (* -- coalesced vs raced duplicates: the same job submitted from
     [k] domains at once, with coalescing (memo on) and without -- *)
  let k = 4 in
  let concurrent label memo =
    let server = fresh_server () in
    let gate = Atomic.make false in
    let lock = Mutex.create () in
    let sources = ref [] in
    let emit = function
      | P.Verdict { source; _ } ->
          Mutex.lock lock;
          sources := source :: !sources;
          Mutex.unlock lock
      | P.Job_error { id; reason } ->
          Stdlib.failwith (Printf.sprintf "job %s failed: %s" id reason)
      | _ -> ()
    in
    let domains =
      List.init k (fun i ->
          Domain.spawn (fun () ->
              while not (Atomic.get gate) do
                Domain.cpu_relax ()
              done;
              Server.submit server ~emit
                (job (Printf.sprintf "%s%d" label i) memo)))
    in
    let t0 = now () in
    Atomic.set gate true;
    List.iter Domain.join domains;
    let dt = now () -. t0 in
    let coalesced =
      List.length (List.filter (fun s -> s = P.Coalesced) !sources)
    in
    Server.close server;
    (dt, coalesced)
  in
  let t_coal, n_coal = concurrent "c" true in
  let t_race, _ = concurrent "r" false in
  Printf.printf
    "%d duplicates: coalesced %.3f s (%d followed), raced %.3f s (%.2fx)\n%!" k
    t_coal n_coal t_race
    (if t_coal > 0.0 then t_race /. t_coal else 0.0);
  (* -- overload shedding: a one-dispatcher session with a queue of two
     offered a burst through the real session loop -- *)
  let offered = 16 in
  let shed_session () =
    let server = fresh_server ~max_queue:2 () in
    let in_path = Filename.temp_file "bench_serve_in" ".jsonl" in
    let out_path = Filename.temp_file "bench_serve_out" ".jsonl" in
    Fun.protect
      ~finally:(fun () ->
        Server.close server;
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ in_path; out_path ])
      (fun () ->
        let oc = open_out in_path in
        for i = 1 to offered do
          output_string oc
            (J.to_string
               (P.request_to_json (P.Job (job (Printf.sprintf "o%d" i) false))));
          output_char oc '\n'
        done;
        output_string oc "{\"t\":\"shutdown\"}\n";
        close_out oc;
        let ic = open_in in_path and oc = open_out out_path in
        let t0 = now () in
        ignore (Server.run server ic oc);
        let dt = now () -. t0 in
        close_in ic;
        close_out oc;
        let shed = ref 0 and served = ref 0 in
        let ic = In_channel.open_text out_path in
        (try
           while true do
             match P.event_of_json (J.of_string (input_line ic)) with
             | Ok (P.Verdict _) -> incr served
             | Ok (P.Job_error _) -> incr shed
             | _ -> ()
           done
         with End_of_file -> ());
        In_channel.close ic;
        (dt, !shed, !served))
  in
  let t_drain, shed, served = shed_session () in
  let shed_rate = float_of_int shed /. float_of_int offered in
  Printf.printf
    "overload: %d offered, %d shed (%.0f%%), %d served, drained in %.3f s\n%!"
    offered shed (100.0 *. shed_rate) served t_drain;
  let json =
    J.Obj
      [
        ("tiny", J.Bool !tiny);
        ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
        ("nn_splits", J.Num (float_of_int nn_splits));
        ("t_full_run_s", J.Num t_full);
        ("cancel_latency_s", J.Num t_cancel);
        ( "cancel_speedup",
          J.Num (if t_cancel > 0.0 then t_full /. t_cancel else 0.0) );
        ("duplicates", J.Num (float_of_int k));
        ("t_coalesced_s", J.Num t_coal);
        ("t_raced_s", J.Num t_race);
        ("coalesced_followers", J.Num (float_of_int n_coal));
        ( "coalesced_speedup",
          J.Num (if t_coal > 0.0 then t_race /. t_coal else 0.0) );
        ("overload_offered", J.Num (float_of_int offered));
        ("overload_shed", J.Num (float_of_int shed));
        ("overload_served", J.Num (float_of_int served));
        ("overload_shed_rate", J.Num shed_rate);
        ("t_overload_drain_s", J.Num t_drain);
      ]
  in
  let oc = open_out !robust_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "serve robustness report written to %s\n" !robust_out

(* ------------------------------------------------------------------ *)
(* E16: batched multi-leaf F# - lockstep leaf batching vs scalar        *)
(* ------------------------------------------------------------------ *)

let batched_out = ref "BENCH_batched.json"

let e16 () =
  section "E16 / batched F# - lockstep leaf batching (--batch-leaves)";
  (* the regime leaf batching targets: nn_splits >= 2 multiplies the
     kernel work per F# query (each call pushes 2^splits bisection
     leaves), so amortizing weight streaming across co-scheduled
     frontier leaves pays; the e13 skewed partition supplies the deep
     refinement frontiers to drain from *)
  let nn_splits = 2 in
  let sys = S.system ~networks:(Lazy.force networks) ~nn_splits () in
  let cells =
    if !tiny then
      List.map snd (S.initial_cells ~arcs:12 ~headings:4 ~arc_indices:[ 6 ] ())
    else
      List.map snd
        (S.initial_cells ~arcs:12 ~headings:6 ~arc_indices:[ 2; 3 ] ())
  in
  let max_depth = if !tiny then 1 else 2 in
  let config ~batch_leaves =
    {
      Verify.default_config with
      reach = { Reach.default_config with keep_sets = false };
      strategy = Verify.All_dims [ D.ix; D.iy; D.ipsi ];
      max_depth;
      workers = 1;
      scheduler = Verify.Leaves;
      batch_leaves;
    }
  in
  let m_batches = Nncs_obs.Metrics.counter "verify.fsharp_batches" in
  let m_batched = Nncs_obs.Metrics.counter "verify.fsharp_batched_queries" in
  let run label batch_leaves =
    let b0 = Nncs_obs.Metrics.value m_batches
    and q0 = Nncs_obs.Metrics.value m_batched in
    let t0 = now () in
    let report =
      Verify.verify_partition ~config:(config ~batch_leaves) sys cells
    in
    let dt = now () -. t0 in
    let batches = Nncs_obs.Metrics.value m_batches - b0
    and queries = Nncs_obs.Metrics.value m_batched - q0 in
    let leaves =
      List.fold_left
        (fun n (c : Verify.cell_report) -> n + List.length c.Verify.leaves)
        0 report.Verify.cells
    in
    let per_leaf = if leaves > 0 then dt /. float_of_int leaves else 0.0 in
    Printf.printf
      "%-12s %8.2f s   %8.1f ms/leaf   coverage %5.1f%%   batches %5d   \
       batched queries %5d\n\
       %!"
      label dt (per_leaf *. 1000.0) report.Verify.coverage batches queries;
    (report_signature report, report.Verify.coverage, dt, per_leaf, batches, queries)
  in
  let sig_1, coverage, t_1, pl_1, _, _ = run "scalar (K=1)" 1 in
  let variants =
    List.map
      (fun k ->
        let sig_k, _, t_k, pl_k, batches, queries = run (Printf.sprintf "K=%d" k) k in
        let mean_width =
          if batches > 0 then float_of_int queries /. float_of_int batches else 0.0
        in
        (k, t_k, pl_k, batches, queries, mean_width, sig_k = sig_1))
      [ 4; 16 ]
  in
  let verdicts_match = List.for_all (fun (_, _, _, _, _, _, ok) -> ok) variants in
  List.iter
    (fun (k, t_k, _, _, _, mean_width, _) ->
      Printf.printf
        "K=%d: %.2fx vs scalar (%.2f s -> %.2f s), mean batch width %.1f\n" k
        (if t_k > 0.0 then t_1 /. t_k else 0.0)
        t_1 t_k mean_width)
    variants;
  Printf.printf "verdicts identical across batch widths: %b\n" verdicts_match;
  (* batching amortizes weight streaming inside one domain: unlike e13
     its win does not require multiple cores, but the wall clocks are
     still only comparable on the host that produced them *)
  Printf.printf "host cores (recommended domains): %d\n"
    (Domain.recommended_domain_count ());
  let module J = Nncs_obs.Json in
  let json =
    J.Obj
      ([
         ("tiny", J.Bool !tiny);
         ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
         ("nn_splits", J.Num (float_of_int nn_splits));
         ("cells", J.Num (float_of_int (List.length cells)));
         ("max_depth", J.Num (float_of_int max_depth));
         ("coverage_pct", J.Num coverage);
         ("t_scalar_s", J.Num t_1);
         ("per_leaf_scalar_s", J.Num pl_1);
         ("verdicts_match", J.Bool verdicts_match);
       ]
      @ List.concat_map
          (fun (k, t_k, pl_k, batches, queries, mean_width, _) ->
            [
              (Printf.sprintf "t_batched_%d_s" k, J.Num t_k);
              (Printf.sprintf "per_leaf_batched_%d_s" k, J.Num pl_k);
              ( Printf.sprintf "speedup_batched_%d" k,
                J.Num (if t_k > 0.0 then t_1 /. t_k else 0.0) );
              (Printf.sprintf "batches_%d" k, J.Num (float_of_int batches));
              (Printf.sprintf "batched_queries_%d" k, J.Num (float_of_int queries));
              (Printf.sprintf "mean_batch_width_%d" k, J.Num mean_width);
            ])
          variants)
  in
  let oc = open_out !batched_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "batched-F# report written to %s\n" !batched_out

(* ------------------------------------------------------------------ *)
(* E17: backreachability oracle - table build cost vs lookup latency    *)
(* ------------------------------------------------------------------ *)

let backreach_out = ref "BENCH_backreach.json"

let e17 () =
  section "E17 / backreach - quantized backward fixed point as an oracle";
  let module Backreach = Nncs_backreach.Backreach in
  let sys = S.system ~networks:(Lazy.force networks) () in
  let r = D.sensor_range_ft in
  let pi = Float.pi in
  (* same domain acasxu_verify --backreach uses: the sensor circle on
     x/y, every partition heading cell on psi, point speeds *)
  let domain =
    B.of_bounds
      [|
        (-.r, r);
        (-.r, r);
        (-.pi, 4.0 *. pi);
        (D.v_own_fps, D.v_own_fps);
        (D.v_int_fps, D.v_int_fps);
      |]
  in
  let grid = if !tiny then [| 6; 6; 4; 1; 1 |] else [| 16; 16; 8; 1; 1 |] in
  let bcfg =
    {
      (Backreach.default_config ~domain ~grid) with
      Backreach.reach = { Reach.default_config with keep_sets = false };
      workers = min 4 (Domain.recommended_domain_count ());
    }
  in
  let t0 = now () in
  let table = Backreach.build bcfg sys in
  let build_s = now () -. t0 in
  Printf.printf
    "table: %d/%d states unsafe, %d sweep(s), %d failed, %d escaped, %.2f s \
     build\n\
     %!"
    (Backreach.num_unsafe table)
    (Backreach.num_states table)
    (Backreach.sweeps table) (Backreach.failed_states table)
    (Backreach.escaped_states table)
    build_s;
  (* lookup throughput: cell-sized probes sweeping the whole quantized
     domain, every command in turn — deterministic, so reruns measure
     the same query stream *)
  let lookups = if !tiny then 20_000 else 100_000 in
  let ncmds = 5 in
  let cw d =
    let iv = B.get domain d in
    (iv.Nncs_interval.Interval.hi -. iv.Nncs_interval.Interval.lo)
    /. float_of_int grid.(d)
  in
  let probe i =
    let cx = i mod grid.(0)
    and cy = i / grid.(0) mod grid.(1)
    and cp = i / (grid.(0) * grid.(1)) mod grid.(2) in
    let lo d c = (B.get domain d).Nncs_interval.Interval.lo +. (float_of_int c *. cw d) in
    B.of_bounds
      [|
        (lo 0 cx, lo 0 cx +. cw 0);
        (lo 1 cy, lo 1 cy +. cw 1);
        (lo 2 cp, lo 2 cp +. cw 2);
        (D.v_own_fps, D.v_own_fps);
        (D.v_int_fps, D.v_int_fps);
      |]
  in
  let unsafe_hits = ref 0 in
  let t0 = now () in
  for i = 0 to lookups - 1 do
    match Backreach.query table ~box:(probe i) ~cmd:(i mod ncmds) with
    | Backreach.Unsafe _ -> incr unsafe_hits
    | Backreach.Safe | Backreach.Out_of_domain -> ()
  done;
  let lookup_s = now () -. t0 in
  let lookups_per_s =
    if lookup_s > 0.0 then float_of_int lookups /. lookup_s else 0.0
  in
  (* the run a lookup substitutes for: one forward verification of a
     single partition cell, the cheapest answer the run path can give *)
  let cells =
    List.map snd (S.initial_cells ~arcs:12 ~headings:4 ~arc_indices:[ 6 ] ())
  in
  let config =
    {
      Verify.default_config with
      reach = { Reach.default_config with keep_sets = false };
      strategy = Verify.All_dims [ D.ix; D.iy; D.ipsi ];
      max_depth = 0;
    }
  in
  let t0 = now () in
  let report = Verify.verify_partition ~config sys cells in
  let full_run_s = now () -. t0 in
  let per_cell_s = full_run_s /. float_of_int report.Verify.total_cells in
  let speedup = if lookups_per_s > 0.0 then per_cell_s *. lookups_per_s else 0.0 in
  Printf.printf
    "%d lookups in %.3f s (%.0f/s, %d unsafe); forward run %.2f s for %d \
     cells (%.3f s/cell) -> one lookup is %.0fx cheaper than one cell\n"
    lookups lookup_s lookups_per_s !unsafe_hits full_run_s
    report.Verify.total_cells per_cell_s speedup;
  Printf.printf "host cores (recommended domains): %d\n"
    (Domain.recommended_domain_count ());
  let module J = Nncs_obs.Json in
  let json =
    J.Obj
      [
        ("tiny", J.Bool !tiny);
        ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
        ("grid", J.List (Array.to_list (Array.map (fun g -> J.Num (float_of_int g)) grid)));
        ("states", J.Num (float_of_int (Backreach.num_states table)));
        ("unsafe", J.Num (float_of_int (Backreach.num_unsafe table)));
        ("sweeps", J.Num (float_of_int (Backreach.sweeps table)));
        ("failed_states", J.Num (float_of_int (Backreach.failed_states table)));
        ("escaped_states", J.Num (float_of_int (Backreach.escaped_states table)));
        ("build_s", J.Num build_s);
        ("lookups", J.Num (float_of_int lookups));
        ("lookup_s", J.Num lookup_s);
        ("lookups_per_s", J.Num lookups_per_s);
        ("unsafe_hits", J.Num (float_of_int !unsafe_hits));
        ("full_run_s", J.Num full_run_s);
        ("full_run_cells", J.Num (float_of_int report.Verify.total_cells));
        ("per_cell_s", J.Num per_cell_s);
        ("speedup_vs_cell", J.Num speedup);
      ]
  in
  let oc = open_out !backreach_out in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "backreach report written to %s\n" !backreach_out

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels behind the experiments      *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "timing - Bechamel micro-benchmarks";
  let open Bechamel in
  let nets = Lazy.force networks in
  let state =
    B.of_bounds
      [| (-100.0, 0.0); (7900.0, 8000.0); (3.0, 3.05); (700.0, 700.0); (600.0, 600.0) |]
  in
  let u = Command.value_box D.commands 0 in
  let input_box =
    B.of_bounds [| (0.4, 0.45); (0.1, 0.15); (0.2, 0.25); (0.7, 0.7); (0.6, 0.6) |]
  in
  let sys = system () in
  let cell =
    (* [open Bechamel] shadows the S alias: qualify fully *)
    snd
      (List.nth
         (Nncs_acasxu.Scenario.initial_cells ~arcs:18 ~headings:6
            ~arc_indices:[ 14 ] ())
         2)
  in
  let tests =
    [
      Test.Elt.unsafe_make ~name:"e1:validated-sim M=10"
        (Staged.stage (fun () ->
             ignore
               (Nncs_ode.Simulate.simulate Dyn.plant ~t0:0.0 ~period:1.0
                  ~steps:10 ~order:6 ~state ~inputs:u)));
      Test.Elt.unsafe_make ~name:"e6:F# interval"
        (Staged.stage (fun () -> ignore (Tr.propagate Tr.Interval nets.(0) input_box)));
      Test.Elt.unsafe_make ~name:"e6:F# symbolic"
        (Staged.stage (fun () -> ignore (Tr.propagate Tr.Symbolic nets.(0) input_box)));
      Test.Elt.unsafe_make ~name:"e6:F# affine"
        (Staged.stage (fun () -> ignore (Tr.propagate Tr.Affine nets.(0) input_box)));
      Test.Elt.unsafe_make ~name:"e2:reach one cell"
        (Staged.stage (fun () ->
             ignore
               (Reach.analyze
                  ~config:{ Reach.default_config with keep_sets = false }
                  sys
                  (Symset.of_list [ cell ]))));
      Test.Elt.unsafe_make ~name:"e8:concrete simulation"
        (Staged.stage (fun () ->
             ignore
               (Concrete.simulate sys
                  ~init_state:
                    (Nncs_acasxu.Scenario.initial_state ~bearing:1.0
                       ~heading:2.4)
                  ~init_cmd:0)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:None () in
  Printf.printf "%-28s %16s\n" "kernel" "time per run";
  List.iter
    (fun elt ->
      let b = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
      let ols =
        Analyze.one
          (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock b
      in
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
          let s =
            if est > 1e9 then Printf.sprintf "%10.3f  s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%10.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%10.3f us" (est /. 1e3)
            else Printf.sprintf "%10.1f ns" est
          in
          Printf.printf "%-28s %16s\n%!" (Test.Elt.name elt) s
      | Some [] | None ->
          Printf.printf "%-28s %16s\n%!" (Test.Elt.name elt) "(no estimate)")
    tests

(* --summary=FILE: machine-readable per-experiment wall times plus the
   Nncs_obs metrics accumulated over the whole run — the baseline
   artifact future perf PRs diff against.  Every bench artifact records
   [host_cores]: wall-clock numbers from multi-domain experiments are
   meaningless without the core count they ran on. *)
let write_summary path timings =
  let module J = Nncs_obs.Json in
  let json =
    J.Obj
      [
        ("host_cores", J.Num (float_of_int (Domain.recommended_domain_count ())));
        ( "experiments",
          J.Obj (List.map (fun (name, dt) -> (name, J.Num dt)) timings) );
        ("metrics", Nncs_obs.Metrics.snapshot_json ());
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "summary written to %s\n" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let prefixed prefix a =
    if String.length a > String.length prefix
       && String.sub a 0 (String.length prefix) = prefix
    then Some (String.sub a (String.length prefix) (String.length a - String.length prefix))
    else None
  in
  let summary = List.find_map (prefixed "--summary=") args in
  Option.iter (fun p -> cache_out := p) (List.find_map (prefixed "--cache-out=") args);
  Option.iter (fun p -> leaf_out := p) (List.find_map (prefixed "--leaf-out=") args);
  Option.iter (fun p -> serve_out := p) (List.find_map (prefixed "--serve-out=") args);
  Option.iter (fun p -> robust_out := p) (List.find_map (prefixed "--robust-out=") args);
  Option.iter (fun p -> batched_out := p) (List.find_map (prefixed "--batched-out=") args);
  Option.iter (fun p -> backreach_out := p) (List.find_map (prefixed "--backreach-out=") args);
  if List.mem "--tiny" args then tiny := true;
  let args = List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args in
  let all =
    [ ("e1", e1); ("e1b", e1b); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
      ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
      ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
      ("e17", e17) ]
  in
  let want name = args = [] || List.mem name args in
  if List.mem "timing" args then bechamel_suite ()
  else begin
    let timings =
      List.filter_map
        (fun (name, f) ->
          if want name then begin
            let t0 = now () in
            f ();
            Some (name, now () -. t0)
          end
          else None)
        all
    in
    Option.iter (fun path -> write_summary path timings) summary;
    Printf.printf "\nbench: done\n"
  end
