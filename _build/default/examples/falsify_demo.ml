(* Falsification demo: when reachability cannot prove a cell safe, is the
   cell really unsafe, or is the over-approximation just too coarse?

   Head-on encounters are genuinely hard for the ACAS Xu geometry: the
   closing speed is v_own + v_int = 1300 ft/s, so the ownship must start
   turning immediately on detection, and the one-period command delay
   leaves a thin sliver of initial states where no advisory sequence can
   miss by 500 ft.  This demo runs the falsifier on a head-on cell to
   extract a concrete colliding trajectory, and on an oblique cell where
   it (correctly) finds nothing — there the reachability analysis
   provides the safety proof that falsification never can.

   Run with: dune exec examples/falsify_demo.exe *)

module B = Nncs_interval.Box
module I = Nncs_interval.Interval
module D = Nncs_acasxu.Defs
module S = Nncs_acasxu.Scenario
module T = Nncs_acasxu.Training
module F = Nncs_baseline.Falsify
open Nncs

let describe_result name result =
  Format.printf "@.%s: %d simulations, best objective %.1f ft@." name
    result.F.simulations result.F.best_metric;
  match result.F.witness with
  | Some (init, trace) ->
      Format.printf "  counterexample found from (%.0f, %.0f, psi=%.3f):@."
        init.(0) init.(1) init.(2);
      let collision_time =
        match trace.Concrete.termination with
        | Concrete.Hit_error t -> t
        | Concrete.Terminated _ | Concrete.Horizon_end -> Float.nan
      in
      Format.printf "  intruder enters the 500 ft circle at t = %.1f s@."
        collision_time;
      (* print the closing geometry every 2 s *)
      List.iter
        (fun (t, s, cmd) ->
          if Float.rem t 2.0 < 0.01 then
            Format.printf "    t=%4.1f  pos=(%6.0f, %6.0f)  rho=%5.0f  advisory=%s@."
              t s.(0) s.(1)
              (sqrt ((s.(0) *. s.(0)) +. (s.(1) *. s.(1))))
              (Command.name D.commands cmd))
        trace.Concrete.points
  | None -> Format.printf "  no counterexample (objective stayed positive)@."

let cell_of ~bearing_deg ~headings ~k =
  let arcs = 72 in
  let arc = int_of_float (float_of_int arcs *. bearing_deg /. 360.0) in
  let cells = S.initial_cells ~arcs ~headings ~arc_indices:[ arc ] () in
  snd (List.nth cells k)

let () =
  let _policy, networks = T.load_or_train ~dir:"data" () in
  let sys = S.system ~networks () in
  (* 1. a head-on cell: bearing 90 deg (dead ahead), heading cell aimed
     straight back at the ownship (center of the entry cone) *)
  let headon = cell_of ~bearing_deg:90.0 ~headings:24 ~k:11 in
  Format.printf "head-on cell: psi in %a@." I.pp (B.get headon.Symstate.box D.ipsi);
  let r1 =
    F.falsify
      ~config:{ F.default_config with shots = 120; descent_steps = 60 }
      sys ~cell:headon ~metric:F.acasxu_metric
  in
  describe_result "head-on encounter" r1;
  (* 2. an oblique approach at a crossing angle: the networks resolve
     this easily *)
  let oblique = cell_of ~bearing_deg:20.0 ~headings:24 ~k:4 in
  Format.printf "@.oblique cell: psi in %a@." I.pp (B.get oblique.Symstate.box D.ipsi);
  let r2 =
    F.falsify
      ~config:{ F.default_config with shots = 40; descent_steps = 30 }
      sys ~cell:oblique ~metric:F.acasxu_metric
  in
  describe_result "oblique encounter" r2;
  (* 3. complement falsification with the proof on the oblique cell *)
  let t0 = Unix.gettimeofday () in
  let reach =
    Reach.analyze
      ~config:{ Reach.default_config with keep_sets = false }
      sys
      (Symset.of_list [ oblique ])
  in
  Format.printf "@.reachability on the oblique cell (%.1f s): %s@."
    (Unix.gettimeofday () -. t0)
    (if Reach.is_proved_safe reach then
       "PROVED SAFE — falsification could never establish this"
     else "not proved at this cell size (split refinement would bisect it)")
