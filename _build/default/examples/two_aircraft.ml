(* Two-aircraft ACAS Xu: both the ownship and the intruder run the
   collision-avoidance networks (the paper's future-work direction 4).

   The two controllers are combined into a single *product* controller
   (25 command pairs, block-diagonal product networks), so the standard
   reachability procedure applies unchanged.  The demo compares miss
   distances with one-sided avoidance on exact collision courses, then
   runs the reachability analysis on one initial cell of the two-agent
   loop.

   Note Remark 3's consequence at this scale: the product command set has
   P = 25 elements, so Gamma must be at least 25 — two-agent verification
   is intrinsically more expensive, which is why the paper left it as
   future work.

   Run with: dune exec examples/two_aircraft.exe *)

module S = Nncs_acasxu.Scenario
module M = Nncs_acasxu.Multi_agent
module T = Nncs_acasxu.Training
module D = Nncs_acasxu.Defs
open Nncs

let metric s = sqrt ((s.(0) *. s.(0)) +. (s.(1) *. s.(1)))

(* exact collision-course heading for equal speeds *)
let collision_heading bearing =
  let v = M.speed_fps in
  let disc = (v *. v *. Float.sin bearing *. Float.sin bearing) -. 0.0 in
  let lam = (v *. Float.sin bearing) +. sqrt disc in
  Float.atan2 (lam *. Float.cos bearing /. v) ((v -. (lam *. Float.sin bearing)) /. v)

let () =
  let _, networks = T.load_or_train ~dir:"data" () in
  let single = S.system ~networks () in
  let dual = M.system ~networks () in
  Format.printf "product controller: %d commands, %d networks@."
    (Command.size dual.System.controller.Controller.commands)
    (Array.length dual.System.controller.Controller.networks);
  Format.printf "@.miss distances on exact collision courses:@.";
  Format.printf "%12s %18s %18s@." "bearing" "one-sided (ft)" "cooperative (ft)";
  List.iter
    (fun bearing ->
      let heading = collision_heading bearing in
      let s0 = M.initial_state ~bearing ~heading in
      let tr1 = Concrete.simulate single ~init_state:s0 ~init_cmd:0 in
      let tr2 =
        Concrete.simulate dual ~init_state:s0 ~init_cmd:M.initial_command
      in
      Format.printf "%12.2f %18.0f %18.0f@." bearing
        (Concrete.min_erroneous_distance ~metric tr1)
        (Concrete.min_erroneous_distance ~metric tr2))
    [ 0.9; 1.2; 1.57; 1.9; 2.2 ];
  (* one cell of the two-agent loop through the reachability analysis *)
  let cells = S.initial_cells ~arcs:144 ~headings:36 ~arc_indices:[ 10 ] () in
  let _, c = List.nth cells 20 in
  let cell = Symstate.make c.Symstate.box M.initial_command in
  Format.printf "@.verifying one two-agent cell (Gamma = 25)...@.";
  let t0 = Unix.gettimeofday () in
  let r =
    Reach.analyze
      ~config:{ Reach.default_config with gamma = 25; keep_sets = false }
      dual
      (Symset.of_list [ cell ])
  in
  Format.printf "outcome: %s (%.1f s)@."
    (match r.Reach.outcome with
    | Reach.Proved_safe -> "PROVED SAFE"
    | Reach.Reached_error { step } ->
        Printf.sprintf "not proved (E contact at step %d)" step
    | Reach.Horizon_exhausted -> "not proved (termination not established)")
    (Unix.gettimeofday () -. t0)
