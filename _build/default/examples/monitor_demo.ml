(* Run-time safety monitoring (suggested by the paper in Section 7.2):
   use the verification report to build a monitor that accepts exactly
   the initial states proved safe; at run time, an encounter starting
   outside the proved region triggers a fallback policy (here: an
   immediate strong turn away from the intruder) instead of trusting the
   networks.

   Run with: dune exec examples/monitor_demo.exe *)

module B = Nncs_interval.Box
module S = Nncs_acasxu.Scenario
module T = Nncs_acasxu.Training
module D = Nncs_acasxu.Defs
module Dyn = Nncs_acasxu.Dynamics
open Nncs

let metric s = sqrt ((s.(0) *. s.(0)) +. (s.(1) *. s.(1)))

(* conservative fallback: strong turn putting the intruder behind *)
let fallback_policy s =
  let _, theta = Dyn.rho_theta ~x:s.(D.ix) ~y:s.(D.iy) in
  if theta >= 0.0 then D.index D.Strong_right else D.index D.Strong_left

let simulate_with_fallback sys s0 =
  (* concrete closed loop where the command is forced by the fallback *)
  let plant = sys.System.plant in
  let s = ref (Array.copy s0) and cmd = ref (D.index D.Coc) in
  let min_rho = ref (metric s0) in
  for j = 0 to D.horizon_steps - 1 do
    let next = fallback_policy !s in
    let u = Command.value D.commands !cmd in
    for i = 0 to 9 do
      s :=
        Nncs_ode.Ode.rk4_step plant
          ~time:(float_of_int j +. (0.1 *. float_of_int i))
          ~state:!s ~inputs:u ~h:0.1;
      min_rho := Float.min !min_rho (metric !s)
    done;
    cmd := next
  done;
  !min_rho

let () =
  let _, networks = T.load_or_train ~dir:"data" () in
  let sys = S.system ~networks () in
  (* a small verification campaign over a front-sector band *)
  let cells =
    List.map snd (S.initial_cells ~arcs:36 ~headings:8 ~arc_indices:[ 8; 9 ] ())
  in
  Format.printf "verifying %d cells to build the monitor...@." (List.length cells);
  let config = { Verify.default_config with max_depth = 1 } in
  let report = Verify.verify_partition ~config sys cells in
  let monitor = Monitor.of_report report cells in
  Format.printf "monitor: %d proved cells (coverage %.1f%%)@."
    (Monitor.proved_cell_count monitor)
    report.Verify.coverage;
  (* persistence round trip, as a deployed monitor would be shipped *)
  let path = Filename.temp_file "nncs_monitor" ".txt" in
  Monitor.save monitor path;
  let monitor = Monitor.load path in
  Sys.remove path;
  (* run encounters through the gate *)
  Format.printf "@.%10s %10s %12s %14s@." "bearing" "heading" "controller"
    "miss (ft)";
  let bearing = S.arc_center_angle ~arcs:36 8 in
  List.iteri
    (fun k () ->
      let lo, hi = S.heading_cone ~bearing in
      let heading = lo +. ((hi -. lo) *. (float_of_int k +. 0.5) /. 6.0) in
      let s0 = S.initial_state ~bearing ~heading in
      let trusted = Monitor.accepts monitor ~state:s0 ~cmd:(D.index D.Coc) in
      let miss =
        if trusted then
          Concrete.min_erroneous_distance ~metric
            (Concrete.simulate sys ~init_state:s0 ~init_cmd:(D.index D.Coc))
        else simulate_with_fallback sys s0
      in
      Format.printf "%10.2f %10.2f %12s %14.0f@." bearing heading
        (if trusted then "networks" else "FALLBACK")
        miss)
    (List.init 6 (fun _ -> ()))
