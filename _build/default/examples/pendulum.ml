(* Inverted pendulum stabilised by a learned neural-network controller.

   Plant (2-d, nonlinear): theta' = omega, omega' = sin(theta) - d*omega + u
   (unit mass/length, gravity normalised to 1, small damping d).  The
   commands are five torque levels.  The controller network is trained
   here, by behavioural cloning of a linear state-feedback law
   u* = -k1*theta - k2*omega: the network maps (theta, omega) to one
   score per torque level, the squared distance to u*, so its argmin
   picks the closest available torque — the same score-and-argmin shape
   as the ACAS Xu controller.

   We then *prove* with the reachability analysis a practical-stability
   property: from any initial angle in [0.20, 0.30] rad (omega in
   [-0.05, 0.05]) the closed loop never leaves |theta| < 0.7 rad and
   enters the target ball (|theta| < 0.15, |omega| < 0.35) within the
   horizon.  The target is deliberately the "settled" ball rather than a
   tight equilibrium box: near the equilibrium the argmin controller
   chatters between torque levels, which makes the symbolic set straddle
   several commands and the box over-approximation grow — the same
   precision limit the paper works around with Gamma joins and split
   refinement.

   Run with: dune exec examples/pendulum.exe *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Rng = Nncs_linalg.Rng
module Dataset = Nncs_nn.Dataset
module Train = Nncs_nn.Train
open Nncs

let damping = 0.4
let torques = [| -2.0; -1.0; 0.0; 1.0; 2.0 |]
let k1 = 3.0
let k2 = 2.5
let period = 0.1
let horizon = 25

let plant =
  Nncs_ode.Ode.make ~dim:2 ~input_dim:1
    E.[| state 1; sin (state 0) - scale damping (state 1) + input 0 |]

let commands =
  Command.make
    ~names:(Array.map (Printf.sprintf "%+.1f") torques)
    (Array.map (fun t -> [| t |]) torques)

(* the expert: distance of each available torque to the LQR command *)
let expert_scores s =
  let u_star = (-.k1 *. s.(0)) -. (k2 *. s.(1)) in
  Array.map
    (fun t ->
      let d = t -. u_star in
      0.1 *. d *. d)
    torques

let train_controller_network () =
  let rng = Rng.create 42 in
  let data =
    Dataset.of_function ~rng ~n:6000 ~lo:[| -0.9; -1.5 |] ~hi:[| 0.9; 1.5 |]
      expert_scores
  in
  let train, validation = Dataset.split ~rng ~fraction:0.9 data in
  let net = Net.create_mlp ~rng ~layer_sizes:[ 2; 24; 24; 5 ] in
  let trained, report =
    Train.fit
      ~config:{ Train.default_config with epochs = 60; learning_rate = 2e-3 }
      ~rng ~net ~train ~validation ()
  in
  Format.printf "trained controller: val mse %.5f, argmin agreement %.1f%%@."
    report.Train.final_val_mse
    (100.0 *. Dataset.classification_accuracy trained validation);
  trained

(* target region: a small box around the upright equilibrium *)
let target =
  Spec.make ~name:"settled"
    ~contains_box:(fun st ->
      let th = B.get st.Symstate.box 0 and om = B.get st.Symstate.box 1 in
      I.hi (I.abs th) < 0.15 && I.hi (I.abs om) < 0.35)
    ~intersects_box:(fun st ->
      let th = B.get st.Symstate.box 0 and om = B.get st.Symstate.box 1 in
      I.mig th < 0.15 && I.mig om < 0.35)
    ~contains_point:(fun s _ -> Float.abs s.(0) < 0.15 && Float.abs s.(1) < 0.35)

let system net =
  System.make ~plant
    ~controller:
      (Controller.make ~period ~commands ~networks:[| net |]
         ~select:(fun _ -> 0)
         ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
         ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ())
    ~erroneous:(Spec.outside_interval ~name:"fell" ~dim:0 ~lo:(-0.7) ~hi:0.7)
    ~target ~horizon_steps:horizon

let () =
  let net = train_controller_network () in
  let sys = system net in
  (* concrete sanity run *)
  let trace = Concrete.simulate sys ~init_state:[| 0.25; 0.0 |] ~init_cmd:2 in
  Format.printf "concrete run from theta0 = 0.25: %s@."
    (match trace.Concrete.termination with
    | Concrete.Terminated t -> Printf.sprintf "settled at t = %.1f s" t
    | Concrete.Hit_error t -> Printf.sprintf "FELL at t = %.1f s" t
    | Concrete.Horizon_end -> "not settled within the horizon");
  (* verification over the whole initial box, split into cells *)
  let cells =
    Partition.with_command 2
      (Partition.grid
         (B.of_bounds [| (0.20, 0.30); (-0.05, 0.05) |])
         ~cells:[| 4; 2 |])
  in
  Format.printf "@.verifying %d initial cells...@." (List.length cells);
  let config =
    {
      Verify.default_config with
      Verify.reach = { Reach.default_config with keep_sets = false; gamma = 40 };
      strategy = Verify.All_dims [ 0; 1 ];
      max_depth = 2;
    }
  in
  let report = Verify.verify_partition ~config sys cells in
  List.iter
    (fun (c : Verify.cell_report) ->
      let leaf = List.hd c.Verify.leaves in
      ignore leaf;
      Format.printf "  cell %d: %s (%.2f s)@." c.Verify.index
        (if c.Verify.proved_fraction >= 1.0 then "proved safe"
         else Printf.sprintf "%.0f%% proved" (100.0 *. c.Verify.proved_fraction))
        c.Verify.elapsed)
    report.Verify.cells;
  Format.printf "coverage: %.1f%% of the initial set proved safe@."
    report.Verify.coverage
