(* Adaptive cruise control: a following car chooses among three
   acceleration levels from (gap, relative speed) through a trained ReLU
   network; the lead car drives at constant speed.  The command set is
   deliberately coarse ({-2, 0, +2} m/s^2): with finely-spaced commands
   the argmin ties between neighbouring levels make the abstract
   controller branch at every step, and the command uncertainty
   integrates without bound in this double-integrator plant — a nice
   illustration of how command granularity interacts with the paper's
   symbolic-state abstraction.

   Plant state: (gap d in m, relative speed dv = v_lead - v_ego in m/s),
   dynamics d' = dv, dv' = -u (u = ego acceleration command).  The expert
   being cloned is a classic spacing law: accelerate when the gap exceeds
   the desired headway, brake when below.  We prove that from gaps of
   40-60 m at matched speeds (|dv| <= 2 m/s) the follower never closes
   within 5 m of the leader (E) and provably reaches the settled band
   around the 30 m desired gap (T).

   This is the third domain-specific example (aside ACAS Xu and the
   pendulum), matching the self-driving motivation of the paper's
   introduction.

   Run with: dune exec examples/cruise_control.exe *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Rng = Nncs_linalg.Rng
module Dataset = Nncs_nn.Dataset
module Train = Nncs_nn.Train
open Nncs

let desired_gap = 30.0
let accelerations = [| -2.0; 0.0; 2.0 |]
(* command u is the EGO acceleration; dv' = -u *)

let period = 0.5
let horizon = 40

let plant =
  Nncs_ode.Ode.make ~dim:2 ~input_dim:1 E.[| state 1; neg (input 0) |]

let commands =
  Command.make
    ~names:(Array.map (Printf.sprintf "%+.0f m/s2") accelerations)
    (Array.map (fun a -> [| a |]) accelerations)

(* expert spacing law: u* = 0.5 (d - desired) + 1.6 dv, clamped *)
let expert_scores s =
  let u_star =
    Float.max (-2.0)
      (Float.min 2.0 ((0.5 *. (s.(0) -. desired_gap)) +. (1.6 *. s.(1))))
  in
  Array.map
    (fun a ->
      let e = a -. u_star in
      0.05 *. e *. e)
    accelerations

(* normalise the two inputs to comparable ranges for the network *)
let pre s = [| s.(0) /. 90.0; s.(1) /. 8.0 |]

let pre_abs box =
  B.of_intervals
    [|
      I.mul_float (1.0 /. 90.0) (B.get box 0);
      I.mul_float (1.0 /. 8.0) (B.get box 1);
    |]

(* the expert reads raw coordinates; the network is trained on the
   normalised scale, so compose with the inverse of [pre] *)
let expert_scores_normalised x = expert_scores [| x.(0) *. 90.0; x.(1) *. 8.0 |]

let train_network () =
  let rng = Rng.create 314 in
  let data =
    Dataset.of_function ~rng ~n:6000 ~lo:[| 0.0; -1.0 |] ~hi:[| 1.0; 1.0 |]
      expert_scores_normalised
  in
  let train, validation = Dataset.split ~rng ~fraction:0.9 data in
  let net = Net.create_mlp ~rng ~layer_sizes:[ 2; 24; 24; 3 ] in
  let trained, report =
    Train.fit
      ~config:{ Train.default_config with epochs = 60; learning_rate = 2e-3 }
      ~rng ~net ~train ~validation ()
  in
  Format.printf "trained ACC network: val mse %.5f, argmin agreement %.1f%%@."
    report.Train.final_val_mse
    (100.0 *. Dataset.classification_accuracy trained validation);
  trained

let target =
  Spec.make ~name:"settled-gap"
    ~contains_box:(fun st ->
      let d = B.get st.Symstate.box 0 and dv = B.get st.Symstate.box 1 in
      I.lo d > 22.0 && I.hi d < 38.0 && I.hi (I.abs dv) < 3.5)
    ~intersects_box:(fun st ->
      let d = B.get st.Symstate.box 0 and dv = B.get st.Symstate.box 1 in
      I.hi d > 22.0 && I.lo d < 38.0 && I.mig dv < 3.5)
    ~contains_point:(fun s _ ->
      s.(0) > 22.0 && s.(0) < 38.0 && Float.abs s.(1) < 3.5)

let system net =
  System.make ~plant
    ~controller:
      (Controller.make ~period ~commands ~networks:[| net |]
         ~select:(fun _ -> 0)
         ~pre ~pre_abs ~post:Controller.argmin_post
         ~post_abs:Controller.argmin_post_abs ())
    ~erroneous:(Spec.coord_lt ~name:"too-close" ~dim:0 ~bound:5.0)
    ~target ~horizon_steps:horizon

let () =
  let net = train_network () in
  let sys = system net in
  let trace = Concrete.simulate sys ~init_state:[| 55.0; 0.0 |] ~init_cmd:1 in
  Format.printf "concrete run from gap 55 m: %s@."
    (match trace.Concrete.termination with
    | Concrete.Terminated t -> Printf.sprintf "settled at t = %.1f s" t
    | Concrete.Hit_error t -> Printf.sprintf "TOO CLOSE at t = %.1f s" t
    | Concrete.Horizon_end -> "not settled within the horizon");
  let cells =
    Partition.with_command 1
      (Partition.grid (B.of_bounds [| (40.0, 60.0); (-2.0, 2.0) |]) ~cells:[| 10; 4 |])
  in
  Format.printf "verifying %d initial cells...@." (List.length cells);
  let config =
    {
      Verify.default_config with
      reach = { Reach.default_config with keep_sets = false; gamma = 20 };
      strategy = Verify.All_dims [ 0; 1 ];
      max_depth = 1;
    }
  in
  let report = Verify.verify_partition ~config sys cells in
  Format.printf "proved %d/%d cells, coverage %.1f%% (%.1f s)@."
    report.Verify.proved_cells report.Verify.total_cells
    report.Verify.coverage report.Verify.elapsed
