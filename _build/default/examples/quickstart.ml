(* Quickstart: verify a tiny neural-network controlled system end to end.

   The system: a one-dimensional "docking" plant x' = u approaching the
   origin from x in [1, 2].  The controller runs every 0.5 s; a
   hand-written ReLU network scores the two available speeds (-1, -0.5)
   so that the argmin picks the fast speed far from the origin and the
   slow one close to it.  Safety: never overshoot into x > 4 (erroneous
   set E); mission complete when x < 0.2 (target set T).

   Run with: dune exec examples/quickstart.exe *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
open Nncs

(* 1. the plant: x' = u, described as one expression per dimension *)
let plant = Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |]

(* 2. the finite command set U *)
let commands = Command.make ~names:[| "fast"; "slow" |] [| [| -1.0 |]; [| -0.5 |] |]

(* 3. the network: one affine layer computing scores (1 - x, x - 1);
   argmin(1 - x, x - 1) = "fast" iff x > 1 *)
let network =
  let layer =
    {
      Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
      biases = [| 1.0; -1.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| layer |]

(* 4. the controller: identity pre-processing, argmin post-processing,
   a single network for every previous command *)
let controller =
  Controller.make ~period:0.5 ~commands ~networks:[| network |]
    ~select:(fun _prev -> 0)
    ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
    ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()

(* 5. the closed loop with its specification *)
let system =
  System.make ~plant ~controller
    ~erroneous:(Spec.coord_gt ~name:"overshoot" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"docked" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

let () =
  (* 6. reachability from the initial symbolic set {([1,2], fast)} *)
  let r0 = Symset.of_list [ Symstate.make (B.of_bounds [| (1.0, 2.0) |]) 0 ] in
  let result = Reach.analyze system r0 in
  Format.printf "verdict: %s@."
    (match result.Reach.outcome with
    | Reach.Proved_safe -> "PROVED SAFE (terminates, never reaches E)"
    | Reach.Reached_error { step } ->
        Printf.sprintf "NOT PROVED (over-approximation touches E at step %d)" step
    | Reach.Horizon_exhausted -> "NOT PROVED (termination not established)");
  (match result.Reach.terminated_at with
  | Some j -> Format.printf "termination detected at t = %.1f s@." (0.5 *. float_of_int j)
  | None -> ());
  (* 7. inspect the reachable tube step by step *)
  Format.printf "@.reachable states per control step:@.";
  List.iter
    (fun sr ->
      match Symset.hull_box sr.Reach.flow with
      | Some h ->
          Format.printf "  t in [%.1f, %.1f): x in %a  (%d symbolic states)@."
            (0.5 *. float_of_int sr.Reach.step)
            (0.5 *. float_of_int (sr.Reach.step + 1))
            I.pp (B.get h 0)
            (Symset.length sr.Reach.flow)
      | None -> ())
    result.Reach.steps;
  (* 8. cross-check with a concrete simulation *)
  let trace = Concrete.simulate system ~init_state:[| 1.7 |] ~init_cmd:0 in
  Format.printf "@.concrete run from x0 = 1.7: %s@."
    (match trace.Concrete.termination with
    | Concrete.Terminated t -> Printf.sprintf "docked at t = %.2f s" t
    | Concrete.Hit_error t -> Printf.sprintf "ERROR at t = %.2f s" t
    | Concrete.Horizon_end -> "still moving at the horizon")
