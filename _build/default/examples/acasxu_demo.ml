(* ACAS Xu end to end: load (or train) the 5 advisory networks, verify a
   crossing encounter by reachability, and cross-check with concrete
   simulations.

   The cell verified here: the intruder appears on the sensor circle
   ahead-left of the ownship, heading roughly across its path.  The
   analysis proves that, from *every* initial state in the cell, the
   closed loop of kinematics + networks keeps the intruder outside the
   500 ft collision circle until it leaves the 8000 ft sensor range.

   Run with: dune exec examples/acasxu_demo.exe
   (first run trains the networks, which takes a few minutes) *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module D = Nncs_acasxu.Defs
module S = Nncs_acasxu.Scenario
module T = Nncs_acasxu.Training
open Nncs

let () =
  Format.printf "loading the ACAS Xu policy tables and networks...@.";
  let _policy, networks = T.load_or_train ~dir:"data" () in
  let sys = S.system ~networks () in
  (* one ribbon cell: bearing ~ 125 deg (ahead-left), crossing heading *)
  let arcs = 36 and headings = 12 in
  let cells = S.initial_cells ~arcs ~headings ~arc_indices:[ 12 ] () in
  let _, cell = List.nth cells 4 in
  Format.printf "initial cell: x=%a y=%a psi=%a (advisory %s)@."
    I.pp (B.get cell.Symstate.box D.ix)
    I.pp (B.get cell.Symstate.box D.iy)
    I.pp (B.get cell.Symstate.box D.ipsi)
    (Command.name D.commands cell.Symstate.cmd);
  (* reachability with the paper's parameters: M = 10, Gamma = P = 5 *)
  let t0 = Unix.gettimeofday () in
  let result =
    Reach.analyze
      ~config:{ Reach.default_config with keep_sets = true }
      sys
      (Symset.of_list [ cell ])
  in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "@.reachability (%.2f s): %s@." dt
    (match result.Reach.outcome with
    | Reach.Proved_safe -> "PROVED SAFE until termination"
    | Reach.Reached_error { step } ->
        Printf.sprintf "NOT PROVED (contact with E at control step %d)" step
    | Reach.Horizon_exhausted -> "NOT PROVED (termination not established)");
  (* print the tube of separations *)
  Format.printf "@.separation enclosure per control step:@.";
  List.iter
    (fun sr ->
      match Symset.hull_box sr.Reach.flow with
      | None -> ()
      | Some h ->
          let x = B.get h D.ix and y = B.get h D.iy in
          let lo = sqrt ((I.mig x ** 2.0) +. (I.mig y ** 2.0)) in
          let hi = sqrt ((I.mag x ** 2.0) +. (I.mag y ** 2.0)) in
          Format.printf "  t in [%2d, %2d) s: rho in [%7.0f, %7.0f] ft  (%d states)@."
            sr.Reach.step (sr.Reach.step + 1) lo hi
            (Symset.length sr.Reach.flow))
    result.Reach.steps;
  (* concrete cross-check: simulate corners and center of the cell *)
  Format.printf "@.concrete cross-checks:@.";
  List.iter
    (fun s0 ->
      let trace = Concrete.simulate sys ~init_state:s0 ~init_cmd:0 in
      let min_rho =
        Concrete.min_erroneous_distance
          ~metric:(fun s -> sqrt ((s.(0) *. s.(0)) +. (s.(1) *. s.(1))))
          trace
      in
      Format.printf "  from (%.0f, %.0f, %.2f): min separation %.0f ft, %s@."
        s0.(0) s0.(1) s0.(2) min_rho
        (match trace.Concrete.termination with
        | Concrete.Terminated t -> Printf.sprintf "left sensor range at %.0f s" t
        | Concrete.Hit_error t -> Printf.sprintf "COLLISION at %.0f s" t
        | Concrete.Horizon_end -> "still in range at the horizon"))
    (B.center cell.Symstate.box :: B.corners cell.Symstate.box)
