examples/acasxu_demo.ml: Array Command Concrete Format List Nncs Nncs_acasxu Nncs_interval Printf Reach Symset Symstate Unix
