examples/quickstart.mli:
