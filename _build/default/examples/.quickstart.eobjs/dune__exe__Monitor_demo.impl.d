examples/monitor_demo.ml: Array Command Concrete Filename Float Format List Monitor Nncs Nncs_acasxu Nncs_interval Nncs_ode Sys System Verify
