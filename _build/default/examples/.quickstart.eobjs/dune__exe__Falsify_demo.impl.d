examples/falsify_demo.ml: Array Command Concrete Float Format List Nncs Nncs_acasxu Nncs_baseline Nncs_interval Reach Symset Symstate Unix
