examples/pendulum.mli:
