examples/monitor_demo.mli:
