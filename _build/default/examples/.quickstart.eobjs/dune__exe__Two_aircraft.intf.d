examples/two_aircraft.mli:
