examples/acasxu_demo.mli:
