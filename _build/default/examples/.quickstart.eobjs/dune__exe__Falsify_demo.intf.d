examples/falsify_demo.mli:
