examples/cruise_control.ml: Array Command Concrete Controller Float Format List Nncs Nncs_interval Nncs_linalg Nncs_nn Nncs_ode Partition Printf Reach Spec Symstate System Verify
