examples/quickstart.ml: Array Command Concrete Controller Format List Nncs Nncs_interval Nncs_linalg Nncs_nn Nncs_ode Printf Reach Spec Symset Symstate System
