examples/two_aircraft.ml: Array Command Concrete Controller Float Format List Nncs Nncs_acasxu Printf Reach Symset Symstate System Unix
