(* Validated integration: enclosures must contain the true flow (known
   analytically for decay/oscillator, sampled by high-accuracy RK4 for
   nonlinear systems), and tighten as the order/number of steps grows. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Ode = Nncs_ode.Ode
module Onestep = Nncs_ode.Onestep
module Simulate = Nncs_ode.Simulate
module Apriori = Nncs_ode.Apriori

let check = Alcotest.(check bool)
let no_inputs = B.of_point [| 0.0 |]

(* s' = -s, solution s0 * exp(-t) *)
let decay = Ode.make ~dim:1 ~input_dim:1 [| E.(neg (state 0)) |]

(* harmonic oscillator: x' = y, y' = -x; solution rotates on a circle *)
let oscillator =
  Ode.make ~dim:2 ~input_dim:1 [| E.(state 1); E.(neg (state 0)) |]

(* controlled integrator: x' = u *)
let integrator = Ode.make ~dim:1 ~input_dim:1 [| E.(input 0) |]

(* Van der Pol: nonlinear, classic validated-integration stress test *)
let vanderpol =
  Ode.make ~dim:2 ~input_dim:1
    [|
      E.(state 1);
      E.((const 1.0 - sqr (state 0)) * state 1 - state 0);
    |]

let test_expr_eval () =
  let e = E.(sin (state 0) + (const 2.0 * input 0) - time) in
  let v = E.eval e ~time:1.0 ~state:[| 0.5 |] ~inputs:[| 3.0 |] in
  Alcotest.(check (float 1e-12)) "concrete eval" (Float.sin 0.5 +. 6.0 -. 1.0) v;
  let iv =
    E.eval_interval e ~time:(I.of_float 1.0)
      ~state:(B.of_bounds [| (0.4, 0.6) |])
      ~inputs:(B.of_point [| 3.0 |])
  in
  check "interval eval contains concrete" true (I.contains iv v)

let test_expr_validation () =
  Alcotest.check_raises "bad state index"
    (Invalid_argument "Ode.make: state index out of range") (fun () ->
      ignore (Ode.make ~dim:1 ~input_dim:1 [| E.state 3 |]))

let test_rk4_decay () =
  let s = Ode.rk4_flow decay ~time:0.0 ~state:[| 1.0 |] ~inputs:[| 0.0 |] ~duration:1.0 ~steps:100 in
  check "rk4 close to exp(-1)" true (Float.abs (s.(0) -. Float.exp (-1.0)) < 1e-8)

let test_apriori_contains_flow () =
  let state = B.of_bounds [| (0.9, 1.1) |] in
  let b = Apriori.enclosure decay ~t1:0.0 ~h:0.2 ~state ~inputs:no_inputs in
  (* true flow from any s0 in [0.9,1.1] stays within [0.9*e^-0.2, 1.1] *)
  List.iter
    (fun s0 ->
      List.iter
        (fun t ->
          let v = s0 *. Float.exp (-.t) in
          check "apriori contains sample" true (I.contains (B.get b 0) v))
        [ 0.0; 0.05; 0.1; 0.15; 0.2 ])
    [ 0.9; 1.0; 1.1 ]

let test_onestep_decay () =
  let state = B.of_bounds [| (1.0, 1.0) |] in
  let r = Onestep.step decay ~order:6 ~t1:0.0 ~h:0.1 ~state ~inputs:no_inputs in
  let exact = Float.exp (-0.1) in
  check "endpoint contains exact" true (I.contains (B.get r.endpoint 0) exact);
  check "endpoint tight" true (I.width (B.get r.endpoint 0) < 1e-9);
  check "range contains initial" true (I.contains (B.get r.range 0) 1.0);
  check "range contains endpoint" true (I.contains (B.get r.range 0) exact)

let test_onestep_oscillator () =
  let state = B.of_point [| 1.0; 0.0 |] in
  let r =
    Onestep.step oscillator ~order:8 ~t1:0.0 ~h:0.1 ~state ~inputs:no_inputs
  in
  check "x endpoint" true (I.contains (B.get r.endpoint 0) (Float.cos 0.1));
  check "y endpoint" true (I.contains (B.get r.endpoint 1) (-.Float.sin 0.1));
  check "tight" true (I.width (B.get r.endpoint 0) < 1e-10)

let test_simulate_oscillator_full_turn () =
  (* quarter turn in 10 steps: endpoint near (0, -1) *)
  let state = B.of_bounds [| (0.99, 1.01); (-0.01, 0.01) |] in
  let r =
    Simulate.simulate oscillator ~t0:0.0 ~period:(Float.pi /. 2.0) ~steps:20
      ~order:8 ~state ~inputs:no_inputs
  in
  (* each true trajectory: (cos t * x0 + sin t * y0, -sin t * x0 + cos t * y0) *)
  List.iter
    (fun (x0, y0) ->
      let t = Float.pi /. 2.0 in
      let xf = (Float.cos t *. x0) +. (Float.sin t *. y0) in
      let yf = (-.Float.sin t *. x0) +. (Float.cos t *. y0) in
      check "endpoint contains flow" true
        (I.contains (B.get r.endpoint 0) xf && I.contains (B.get r.endpoint 1) yf))
    [ (0.99, -0.01); (1.01, 0.01); (1.0, 0.0) ];
  (* wrapping stays moderate: initial width 0.02 should not balloon *)
  check "width controlled" true (I.width (B.get r.endpoint 0) < 0.1)

let test_simulate_integrator_command () =
  (* x' = u with u = 2: from [0,0.1] reach [0.2, 0.3] after 0.1s *)
  let state = B.of_bounds [| (0.0, 0.1) |] in
  let r =
    Simulate.simulate integrator ~t0:0.0 ~period:0.1 ~steps:4 ~order:3 ~state
      ~inputs:(B.of_point [| 2.0 |])
  in
  check "endpoint lo" true (Float.abs (I.lo (B.get r.endpoint 0) -. 0.2) < 1e-9);
  check "endpoint hi" true (Float.abs (I.hi (B.get r.endpoint 0) -. 0.3) < 1e-9);
  check "range spans whole motion" true
    (I.contains (B.get r.range 0) 0.0 && I.contains (B.get r.range 0) 0.3)

let test_more_steps_tighter () =
  let state = B.of_bounds [| (0.9, 1.1); (-0.1, 0.1) |] in
  let width_with steps =
    let r =
      Simulate.simulate vanderpol ~t0:0.0 ~period:0.5 ~steps ~order:6 ~state
        ~inputs:no_inputs
    in
    B.max_width r.range
  in
  let w1 = width_with 1 and w10 = width_with 10 in
  check "M=10 tighter than M=1 (Fig 7)" true (w10 < w1)

let test_vanderpol_contains_rk4 () =
  let state = B.of_bounds [| (1.2, 1.3); (0.0, 0.1) |] in
  let r =
    Simulate.simulate vanderpol ~t0:0.0 ~period:0.5 ~steps:10 ~order:6 ~state
      ~inputs:no_inputs
  in
  (* sample 9 initial conditions, integrate accurately, check containment *)
  List.iter
    (fun x0 ->
      List.iter
        (fun y0 ->
          let s =
            Ode.rk4_flow vanderpol ~time:0.0 ~state:[| x0; y0 |]
              ~inputs:[| 0.0 |] ~duration:0.5 ~steps:2000
          in
          check "endpoint contains rk4 sample" true (B.contains r.endpoint s))
        [ 0.0; 0.05; 0.1 ])
    [ 1.2; 1.25; 1.3 ]

(* qcheck: random linear 2x2 systems — endpoint encloses matrix-exponential
   flow sampled by fine RK4 *)

let arb_linear_case =
  QCheck.make
    ~print:(fun (a, b, c, d, x0, y0) ->
      Printf.sprintf "A=[[%g;%g];[%g;%g]] x0=(%g,%g)" a b c d x0 y0)
    QCheck.Gen.(
      let* a = float_range (-2.0) 2.0 in
      let* b = float_range (-2.0) 2.0 in
      let* c = float_range (-2.0) 2.0 in
      let* d = float_range (-2.0) 2.0 in
      let* x0 = float_range (-1.0) 1.0 in
      let* y0 = float_range (-1.0) 1.0 in
      return (a, b, c, d, x0, y0))

let prop_linear_sound =
  QCheck.Test.make ~count:100 ~name:"linear system endpoint sound"
    arb_linear_case (fun (a, b, c, d, x0, y0) ->
      let sys =
        Ode.make ~dim:2 ~input_dim:1
          E.
            [|
              scale a (state 0) + scale b (state 1);
              scale c (state 0) + scale d (state 1);
            |]
      in
      let state = B.of_point [| x0; y0 |] in
      let r =
        Simulate.simulate sys ~t0:0.0 ~period:0.2 ~steps:4 ~order:6 ~state
          ~inputs:no_inputs
      in
      let s =
        Ode.rk4_flow sys ~time:0.0 ~state:[| x0; y0 |] ~inputs:[| 0.0 |]
          ~duration:0.2 ~steps:1000
      in
      (* rk4 is not exact: allow its own tiny error when checking *)
      let slack = 1e-7 in
      let within i v =
        I.lo (B.get r.endpoint i) -. slack <= v
        && v <= I.hi (B.get r.endpoint i) +. slack
      in
      within 0 s.(0) && within 1 s.(1))

let main_tests =
  [
      ( "expr",
        [
          Alcotest.test_case "evaluation" `Quick test_expr_eval;
          Alcotest.test_case "validation" `Quick test_expr_validation;
        ] );
      ( "concrete",
        [ Alcotest.test_case "rk4 decay" `Quick test_rk4_decay ] );
      ( "validated",
        [
          Alcotest.test_case "apriori contains flow" `Quick
            test_apriori_contains_flow;
          Alcotest.test_case "onestep decay" `Quick test_onestep_decay;
          Alcotest.test_case "onestep oscillator" `Quick
            test_onestep_oscillator;
          Alcotest.test_case "simulate quarter turn" `Quick
            test_simulate_oscillator_full_turn;
          Alcotest.test_case "simulate with command" `Quick
            test_simulate_integrator_command;
          Alcotest.test_case "more steps tighter (Fig 7)" `Quick
            test_more_steps_tighter;
          Alcotest.test_case "van der pol contains rk4" `Quick
            test_vanderpol_contains_rk4;
        ] );
      ( "ode-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_linear_sound ] );
    ]

(* ----- appended: symbolic differentiation, QR, interval matrices and
   the Loehner mean-value integrator ----- *)

module Mat = Nncs_linalg.Mat
module Qr = Nncs_linalg.Qr
module IM = Nncs_interval.Interval_matrix
module Lohner = Nncs_ode.Lohner
module Rng = Nncs_linalg.Rng

let arb_small_state =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%g, %g)" a b)
    QCheck.Gen.(
      let* a = float_range (-2.0) 2.0 in
      let* b = float_range (-2.0) 2.0 in
      return (a, b))

(* an expression exercising every constructor with a well-defined
   derivative on the sampled domain *)
let diff_test_expr =
  E.(
    sin (state 0)
    + (cos (state 1) * state 0)
    - exp (scale 0.3 (state 1))
    + sqrt (const 4.0 + sqr (state 0))
    + atan (state 1)
    + pow (state 0) 3
    + (state 0 / (const 3.0 + sqr (state 1))))

let prop_diff_matches_finite_difference =
  QCheck.Test.make ~count:300 ~name:"symbolic diff matches finite differences"
    arb_small_state (fun (a, b) ->
      let eval e s0 s1 =
        E.eval e ~time:0.0 ~state:[| s0; s1 |] ~inputs:[| 0.0 |]
      in
      let eps = 1e-6 in
      let ok dim =
        let d = E.diff diff_test_expr dim in
        let sym = eval d a b in
        let fd =
          if dim = 0 then (eval diff_test_expr (a +. eps) b -. eval diff_test_expr (a -. eps) b) /. (2.0 *. eps)
          else (eval diff_test_expr a (b +. eps) -. eval diff_test_expr a (b -. eps)) /. (2.0 *. eps)
        in
        Float.abs (sym -. fd) < 1e-4 *. (1.0 +. Float.abs sym)
      in
      ok 0 && ok 1)

let test_qr_orthogonal () =
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 4 in
    let a = Mat.init n n (fun _ _ -> Rng.gaussian rng) in
    let q, r = Qr.decompose a in
    (* q * r = a *)
    let qr = Mat.mul q r in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        check "qr reconstructs" true (Float.abs (Mat.get qr i j -. Mat.get a i j) < 1e-9);
        (* r upper triangular *)
        if i > j then check "r triangular" true (Float.abs (Mat.get r i j) < 1e-9)
      done
    done;
    (* q orthogonal *)
    let qtq = Mat.mul (Mat.transpose q) q in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let expected = if i = j then 1.0 else 0.0 in
        check "q orthogonal" true (Float.abs (Mat.get qtq i j -. expected) < 1e-9)
      done
    done
  done

let test_interval_matrix_ops () =
  let a = IM.of_floats [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = IM.of_floats [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let c = IM.mul a b in
  check "product entry" true (I.contains (IM.get c 0 0) 2.0);
  check "product entry'" true (I.contains (IM.get c 1 1) 3.0);
  let v = IM.mul_vec a [| I.make 0.0 1.0; I.of_float 1.0 |] in
  (* row 1: [1,2]*... = [0,1]*1 + 2 = [2,3] *)
  check "mat-vec" true (I.lo v.(0) <= 2.0 +. 1e-12 && I.hi v.(0) >= 3.0 -. 1e-12);
  check "contains member" true (IM.contains a [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |])

let test_lohner_beats_direct_on_rotation () =
  let state = B.of_bounds [| (0.9, 1.1); (-0.1, 0.1) |] in
  let run scheme =
    Simulate.simulate ~scheme oscillator ~t0:0.0 ~period:(4.0 *. Float.pi)
      ~steps:100 ~order:8 ~state ~inputs:no_inputs
  in
  let direct = run Simulate.Direct and lohner = run Simulate.Lohner in
  (* after two full turns the set returns to itself: width 0.2 exactly *)
  check "lohner near optimal" true (B.max_width lohner.Simulate.endpoint < 0.21);
  check "direct wraps badly" true
    (B.max_width direct.Simulate.endpoint > 10.0 *. B.max_width lohner.Simulate.endpoint);
  (* soundness of the lohner endpoint: rotated corners inside *)
  let t = 4.0 *. Float.pi in
  List.iter
    (fun (x0, y0) ->
      let xf = (Float.cos t *. x0) +. (Float.sin t *. y0) in
      let yf = (-.Float.sin t *. x0) +. (Float.cos t *. y0) in
      check "lohner endpoint sound" true (B.contains lohner.Simulate.endpoint [| xf; yf |]))
    [ (0.9, -0.1); (0.9, 0.1); (1.1, -0.1); (1.1, 0.1); (1.0, 0.0) ]

let test_lohner_sound_nonlinear () =
  (* van der pol again, but through the lohner scheme *)
  let state = B.of_bounds [| (1.2, 1.3); (0.0, 0.1) |] in
  let r =
    Simulate.simulate ~scheme:Simulate.Lohner vanderpol ~t0:0.0 ~period:0.5
      ~steps:10 ~order:6 ~state ~inputs:no_inputs
  in
  List.iter
    (fun x0 ->
      List.iter
        (fun y0 ->
          let s =
            Ode.rk4_flow vanderpol ~time:0.0 ~state:[| x0; y0 |]
              ~inputs:[| 0.0 |] ~duration:0.5 ~steps:2000
          in
          check "lohner endpoint contains rk4 sample" true (B.contains r.Simulate.endpoint s))
        [ 0.0; 0.05; 0.1 ])
    [ 1.2; 1.25; 1.3 ]

let test_jacobian_enclosure_linear () =
  (* for z' = A z the flow jacobian is exp(A h), independent of z *)
  let sys = Ode.make ~dim:2 ~input_dim:1 E.[| state 1; neg (state 0) |] in
  let j =
    Lohner.jacobian_enclosure sys ~order:8 ~t1:0.0 ~h:0.3
      ~inputs:no_inputs
      (B.of_bounds [| (-1.0, 1.0); (-1.0, 1.0) |])
  in
  (* exp of the rotation generator: [[cos h, sin h], [-sin h, cos h]] *)
  let h = 0.3 in
  check "J contains rotation matrix" true
    (IM.contains j
       [| [| Float.cos h; Float.sin h |]; [| -.Float.sin h; Float.cos h |] |]);
  check "J tight" true (IM.width j < 1e-6)

let additional_tests =
  [
    ( "lohner",
      [
        Alcotest.test_case "qr orthogonal" `Quick test_qr_orthogonal;
        Alcotest.test_case "interval matrices" `Quick test_interval_matrix_ops;
        Alcotest.test_case "beats direct on rotation" `Quick
          test_lohner_beats_direct_on_rotation;
        Alcotest.test_case "sound on van der pol" `Quick test_lohner_sound_nonlinear;
        Alcotest.test_case "jacobian enclosure" `Quick test_jacobian_enclosure_linear;
        QCheck_alcotest.to_alcotest prop_diff_matches_finite_difference;
      ] );
  ]

let () = Alcotest.run "ode" (main_tests @ additional_tests)
