(* Affine arithmetic: containment of concrete values, agreement with the
   interval concretisation, correlation cancellation (x - x = 0). *)

module A = Nncs_affine.Affine_form
module I = Nncs_interval.Interval

let check = Alcotest.(check bool)

let test_of_interval_roundtrip () =
  let iv = I.make 1.0 3.0 in
  let a = A.of_interval iv in
  check "concretisation contains source" true (I.subset iv (A.to_interval a));
  check "not much wider" true (I.width (A.to_interval a) < 2.0 +. 1e-9)

let test_correlation () =
  let iv = I.make (-1.0) 1.0 in
  let a = A.of_interval iv in
  let zero = A.sub a a in
  (* x - x with a shared noise symbol collapses to (nearly) zero, while
     interval arithmetic would give [-2, 2] *)
  check "x - x tiny" true (I.width (A.to_interval zero) < 1e-12);
  let b = A.of_interval iv in
  let indep = A.sub a b in
  check "x - y wide" true (I.width (A.to_interval indep) > 3.9)

let test_shared_symbol () =
  let sym = A.fresh_symbol () in
  let x = A.of_interval_with sym (I.make 0.0 2.0) in
  let y = A.of_interval_with sym (I.make 0.0 4.0) in
  (* y = 2x when built on the same symbol: y - 2x = 0 *)
  let d = A.sub y (A.scale 2.0 x) in
  check "2x correlation" true (I.width (A.to_interval d) < 1e-12)

let test_linear_combination () =
  let x = A.of_interval (I.make 0.0 1.0) in
  let y = A.of_interval (I.make 2.0 3.0) in
  let z = A.linear_combination [ (2.0, x); (-1.0, y) ] 0.5 in
  (* exact range: 2*[0,1] - [2,3] + 0.5 = [-2.5, 0.5] *)
  let iv = A.to_interval z in
  check "lower" true (I.lo iv <= -2.5 && I.lo iv > -2.6);
  check "upper" true (I.hi iv >= 0.5 && I.hi iv < 0.6)

(* qcheck: sampled concrete evaluations stay inside the concretisation *)

let affine_expr_gen =
  (* build a random expression over two interval inputs; returns the
     affine value and a concrete evaluator *)
  QCheck.Gen.(
    let* l1 = float_range (-10.0) 10.0 in
    let* w1 = float_range 0.0 5.0 in
    let* l2 = float_range (-10.0) 10.0 in
    let* w2 = float_range 0.0 5.0 in
    let* c1 = float_range (-3.0) 3.0 in
    let* c2 = float_range (-3.0) 3.0 in
    let* k = float_range (-3.0) 3.0 in
    let* t1 = float_range 0.0 1.0 in
    let* t2 = float_range 0.0 1.0 in
    return ((l1, w1, l2, w2, c1, c2, k), (t1, t2)))

let arb_affine_case =
  QCheck.make
    ~print:(fun ((l1, w1, l2, w2, c1, c2, k), (t1, t2)) ->
      Printf.sprintf "x=[%g,%g] y=[%g,%g] c1=%g c2=%g k=%g t=(%g,%g)" l1
        (l1 +. w1) l2 (l2 +. w2) c1 c2 k t1 t2)
    affine_expr_gen

let prop_affine_sound =
  QCheck.Test.make ~count:1000 ~name:"affine ops sound" arb_affine_case
    (fun ((l1, w1, l2, w2, c1, c2, k), (t1, t2)) ->
      let ix = I.make l1 (l1 +. w1) and iy = I.make l2 (l2 +. w2) in
      let x = A.of_interval ix and y = A.of_interval iy in
      (* value = c1*x + c2*y + k + x*y *)
      let v =
        A.add (A.linear_combination [ (c1, x); (c2, y) ] k) (A.mul x y)
      in
      let cx = l1 +. (t1 *. w1) and cy = l2 +. (t2 *. w2) in
      let concrete = (c1 *. cx) +. (c2 *. cy) +. k +. (cx *. cy) in
      I.contains (A.to_interval v) concrete)

let prop_mul_vs_interval =
  QCheck.Test.make ~count:500 ~name:"affine mul within 4x of interval mul"
    arb_affine_case
    (fun ((l1, w1, l2, w2, _, _, _), _) ->
      let ix = I.make l1 (l1 +. w1) and iy = I.make l2 (l2 +. w2) in
      let a = A.mul (A.of_interval ix) (A.of_interval iy) in
      let wi = I.width (I.mul ix iy) in
      I.width (A.to_interval a) <= (4.0 *. wi) +. 1e-9)

let () =
  Alcotest.run "affine"
    [
      ( "affine",
        [
          Alcotest.test_case "interval roundtrip" `Quick
            test_of_interval_roundtrip;
          Alcotest.test_case "correlation" `Quick test_correlation;
          Alcotest.test_case "shared symbols" `Quick test_shared_symbol;
          Alcotest.test_case "linear combination" `Quick
            test_linear_combination;
        ] );
      ( "affine-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_affine_sound; prop_mul_vs_interval ] );
    ]
