(* Vectors, matrices and the deterministic RNG. *)

module Vec = Nncs_linalg.Vec
module Mat = Nncs_linalg.Mat
module Rng = Nncs_linalg.Rng

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-12))

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  checkf "dot" 32.0 (Vec.dot a b);
  checkf "norm2" (sqrt 14.0) (Vec.norm2 a);
  checkf "norm_inf" 3.0 (Vec.norm_inf a);
  checkf "dist2" (sqrt 27.0) (Vec.dist2 a b);
  Alcotest.(check int) "argmax" 2 (Vec.argmax a);
  Alcotest.(check int) "argmin" 0 (Vec.argmin a);
  checkf "sum" 6.0 (Vec.sum a);
  checkf "mean" 2.0 (Vec.mean a);
  let c = Vec.add a b in
  checkf "add" 9.0 c.(2);
  let y = Vec.copy b in
  Vec.axpy 2.0 a y;
  checkf "axpy" 12.0 y.(2);
  check "dim mismatch rejected" true
    (try
       ignore (Vec.dot a [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let test_mat_ops () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let at = Mat.transpose a in
  Alcotest.(check int) "transpose rows" 3 (Mat.rows at);
  checkf "transpose entry" (Mat.get a 0 2) (Mat.get at 2 0);
  let i3 = Mat.identity 3 in
  let ai = Mat.mul a i3 in
  checkf "mul identity" (Mat.get a 1 2) (Mat.get ai 1 2);
  let v = Mat.mul_vec a [| 1.0; 1.0; 1.0 |] in
  checkf "mul_vec row sums" 3.0 v.(0);
  checkf "mul_vec row sums'" 12.0 v.(1);
  let tv = Mat.tmul_vec a [| 1.0; 1.0 |] in
  checkf "tmul_vec equals transpose mul" (Mat.mul_vec at [| 1.0; 1.0 |]).(2) tv.(2);
  let o = Mat.outer [| 1.0; 2.0 |] [| 3.0; 4.0 |] in
  checkf "outer" 8.0 (Mat.get o 1 1);
  checkf "frobenius of identity" (sqrt 3.0) (Mat.frobenius i3)

let test_rng_determinism () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    checkf "same stream" (Rng.float a 1.0) (Rng.float b 1.0)
  done;
  let c = Rng.create 100 in
  check "different seed differs" true (Rng.float a 1.0 <> Rng.float c 1.0)

let test_rng_ranges () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng (-2.0) 3.0 in
    check "uniform in range" true (v >= -2.0 && v < 3.0);
    let i = Rng.int rng 7 in
    check "int in range" true (i >= 0 && i < 7)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 4 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle rng b;
  check "same multiset" true (List.sort compare (Array.to_list b) = Array.to_list a);
  check "actually shuffled" true (b <> a)

let test_rng_gaussian_moments () =
  let rng = Rng.create 12 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check "mean near 0" true (Float.abs mean < 0.03);
  check "variance near 1" true (Float.abs (var -. 1.0) < 0.05)

let test_rng_split_independent () =
  let rng = Rng.create 8 in
  let child = Rng.split rng in
  (* drawing from the child does not change the parent's stream *)
  let parent_next =
    let ghost = Rng.copy rng in
    Rng.float ghost 1.0
  in
  ignore (Rng.float child 1.0);
  checkf "parent unaffected" parent_next (Rng.float rng 1.0)

let () =
  Alcotest.run "linalg"
    [
      ("vec", [ Alcotest.test_case "operations" `Quick test_vec_ops ]);
      ("mat", [ Alcotest.test_case "operations" `Quick test_mat_ops ]);
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
    ]
