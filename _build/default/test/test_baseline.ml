(* Baselines: the discrete-instant grid method (and the between-samples
   collision it misses, which sound reachability catches), and the
   falsifier (finds witnesses on unsafe systems, none on safe ones). *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
open Nncs

let check = Alcotest.(check bool)

(* trivial one-command controller built on a constant network *)
let constant_controller ~period ~commands =
  let output =
    { Net.weights = Mat.create 1 1 0.0; biases = [| 0.0 |]; activation = Act.Linear }
  in
  Controller.make ~period ~commands
    ~networks:[| Net.make ~input_dim:1 [| output |] |]
    ~select:(fun _ -> 0)
    ~pre:(fun s -> [| s.(0) |])
    ~pre_abs:(fun b -> B.of_intervals [| B.get b 0 |])
    ~post:(fun _ -> 0)
    ~post_abs:(fun _ -> [ 0 ])
    ()

(* Oscillator that dips into E strictly between sampling instants:
   x' = v, v' = -omega^2 x, period T = 1, omega = 2pi, so one full swing
   happens per control period; E = {x > 0.9}; starting near (0, 2pi*0.95)
   the peak x = 0.95 occurs at t = 0.25, back at x ~ 0 at t = 1. *)
let oscillator_system () =
  let omega = 2.0 *. Float.pi in
  let plant =
    Nncs_ode.Ode.make ~dim:2 ~input_dim:1
      [| E.state 1; E.(scale (-.(omega *. omega)) (state 0)) |]
  in
  let commands = Command.make [| [| 0.0 |] |] in
  System.make ~plant
    ~controller:(constant_controller ~period:1.0 ~commands)
    ~erroneous:(Spec.coord_gt ~name:"peak" ~dim:0 ~bound:0.9)
    ~target:(Spec.coord_lt ~name:"never" ~dim:0 ~bound:(-100.0))
    ~horizon_steps:3

let peak_cell =
  Symstate.make (B.of_bounds [| (0.0, 0.0); (5.9, 6.0) |]) 0
(* amplitude = v0 / omega ~ 0.94..0.955: crosses 0.9 mid-period *)

let test_discrete_misses_between_samples () =
  let sys = oscillator_system () in
  (* the discrete method samples at t = 0, 1, 2, 3 where x ~ 0: blind *)
  let verdict = Nncs_baseline.Discrete.analyze sys peak_cell in
  check "discrete method sees nothing" true
    (verdict = Nncs_baseline.Discrete.No_collision_observed);
  (* sound reachability must flag the excursion *)
  let r = Reach.analyze sys (Symset.of_list [ peak_cell ]) in
  (match r.Reach.outcome with
  | Reach.Reached_error _ -> ()
  | _ -> Alcotest.fail "reachability should catch the mid-period excursion");
  (* and a concrete simulation confirms the excursion is real (the
     reachability verdict is not an over-approximation artefact) *)
  let trace =
    Concrete.simulate ~substeps:50 sys ~init_state:[| 0.0; 5.95 |] ~init_cmd:0
  in
  match trace.Concrete.termination with
  | Concrete.Hit_error t -> check "hit strictly between samples" true (Float.rem t 1.0 > 0.01)
  | _ -> Alcotest.fail "expected a real excursion"

let test_discrete_detects_at_samples () =
  (* runaway integrator reaches E and stays: visible at sampling instants *)
  let plant = Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |] in
  let commands = Command.make [| [| 1.0 |] |] in
  let sys =
    System.make ~plant
      ~controller:(constant_controller ~period:1.0 ~commands)
      ~erroneous:(Spec.coord_gt ~name:"high" ~dim:0 ~bound:2.0)
      ~target:(Spec.coord_lt ~name:"never" ~dim:0 ~bound:(-100.0))
      ~horizon_steps:5
  in
  let cell = Symstate.make (B.of_bounds [| (0.0, 0.5) |]) 0 in
  match Nncs_baseline.Discrete.analyze sys cell with
  | Nncs_baseline.Discrete.Collision_at_sample { step; _ } ->
      check "found within horizon" true (step <= 5)
  | Nncs_baseline.Discrete.No_collision_observed ->
      Alcotest.fail "discrete method should see a persistent violation"

let test_falsify_finds_witness () =
  let sys = oscillator_system () in
  let metric s = 0.9 -. s.(0) in
  let result =
    Nncs_baseline.Falsify.falsify
      ~config:{ Nncs_baseline.Falsify.default_config with substeps = 50 }
      sys ~cell:peak_cell ~metric
  in
  (match result.Nncs_baseline.Falsify.witness with
  | Some (init, trace) ->
      check "witness in cell" true (B.contains peak_cell.Symstate.box init);
      (match trace.Concrete.termination with
      | Concrete.Hit_error _ -> ()
      | _ -> Alcotest.fail "witness trace must hit E")
  | None -> Alcotest.fail "falsifier should find the excursion");
  check "metric negative" true (result.Nncs_baseline.Falsify.best_metric <= 0.0)

let test_falsify_clean_on_safe () =
  (* same oscillator but smaller amplitude: never crosses 0.9 *)
  let sys = oscillator_system () in
  let cell = Symstate.make (B.of_bounds [| (0.0, 0.0); (3.0, 3.5) |]) 0 in
  let metric s = 0.9 -. s.(0) in
  let result =
    Nncs_baseline.Falsify.falsify
      ~config:{ Nncs_baseline.Falsify.default_config with shots = 20; substeps = 50 }
      sys ~cell ~metric
  in
  check "no witness" true (result.Nncs_baseline.Falsify.witness = None);
  check "metric stays positive" true (result.Nncs_baseline.Falsify.best_metric > 0.0)

let test_falsify_counts_simulations () =
  let sys = oscillator_system () in
  let cell = Symstate.make (B.of_bounds [| (0.0, 0.0); (3.0, 3.5) |]) 0 in
  let config = { Nncs_baseline.Falsify.default_config with shots = 5; descent_steps = 3 } in
  let result =
    Nncs_baseline.Falsify.falsify ~config sys ~cell ~metric:(fun s -> 0.9 -. s.(0))
  in
  Alcotest.(check int) "simulation budget respected" 20
    result.Nncs_baseline.Falsify.simulations


(* ----- triage: proofs + counterexamples ----- *)

(* Damped oscillator: x' = v, v' = -omega^2 x - d v.  Trajectories decay
   into the "settled" target; large initial velocities overshoot x = 0.9
   on the first swing.  Verification uses the Loehner scheme (a box
   through a full rotation wraps hopelessly with the direct scheme). *)
let damped_system () =
  let omega = 2.0 *. Float.pi in
  let plant =
    Nncs_ode.Ode.make ~dim:2 ~input_dim:1
      [|
        E.state 1;
        E.(scale (-.(omega *. omega)) (state 0) - scale 0.8 (state 1));
      |]
  in
  let commands = Command.make [| [| 0.0 |] |] in
  let settled =
    Spec.make ~name:"settled"
      ~contains_box:(fun st ->
        I.hi (I.abs (B.get st.Symstate.box 0)) < 0.3
        && I.hi (I.abs (B.get st.Symstate.box 1)) < 2.5)
      ~intersects_box:(fun st ->
        I.mig (B.get st.Symstate.box 0) < 0.3
        && I.mig (B.get st.Symstate.box 1) < 2.5)
      ~contains_point:(fun s _ -> Float.abs s.(0) < 0.3 && Float.abs s.(1) < 2.5)
  in
  System.make ~plant
    ~controller:(constant_controller ~period:1.0 ~commands)
    ~erroneous:(Spec.coord_gt ~name:"peak" ~dim:0 ~bound:0.9)
    ~target:settled ~horizon_steps:8

let test_triage_buckets () =
  (* three kinds of cells:
     - small amplitude: provable safe (settles without nearing E),
     - large amplitude: really unsafe (falsifiable on the first swing),
     - straddling the boundary at a coarse cell: unknown at depth 0 *)
  let sys = damped_system () in
  let metric s = 0.9 -. s.(0) in
  let config =
    {
      Nncs_baseline.Triage.verify =
        {
          Nncs.Verify.default_config with
          reach =
            {
              Nncs.Reach.default_config with
              keep_sets = false;
              scheme = Nncs_ode.Simulate.Lohner;
            };
          strategy = Nncs.Verify.All_dims [ 1 ];
          max_depth = 0;
        };
      falsify =
        { Nncs_baseline.Falsify.default_config with shots = 30; substeps = 50 };
      metric;
    }
  in
  let cell lo hi = Symstate.make (B.of_bounds [| (0.0, 0.0); (lo, hi) |]) 0 in
  let report =
    Nncs_baseline.Triage.triage config sys
      [ cell 3.4 3.6; (* small swing: safe *)
        cell 7.4 7.6; (* overshoots 0.9: unsafe *)
        cell 4.2 5.8 (* wide: concretely safe, too coarse to prove *) ]
  in
  Alcotest.(check int) "one proved" 1 report.Nncs_baseline.Triage.proved;
  Alcotest.(check int) "one falsified" 1 report.Nncs_baseline.Triage.falsified;
  Alcotest.(check int) "one unknown" 1 report.Nncs_baseline.Triage.unknown;
  (* the falsified cell carries a witness inside itself *)
  List.iter
    (fun (r : Nncs_baseline.Triage.cell_result) ->
      match r.Nncs_baseline.Triage.verdict with
      | Nncs_baseline.Triage.Falsified init ->
          check "witness in cell" true
            (B.contains r.Nncs_baseline.Triage.cell.Symstate.box init)
      | Nncs_baseline.Triage.Proved | Nncs_baseline.Triage.Unknown -> ())
    report.Nncs_baseline.Triage.results


let test_falsify_cem_finds_witness () =
  (* the cross-entropy strategy must also locate the excursion, and in a
     narrower sliver than the one random descent gets *)
  let sys = oscillator_system () in
  let cell = Symstate.make (B.of_bounds [| (0.0, 0.0); (4.0, 6.0) |]) 0 in
  (* only v0 > ~5.65 crosses 0.9: a 17% sliver of the cell *)
  let result =
    Nncs_baseline.Falsify.falsify
      ~config:{ Nncs_baseline.Falsify.cem_config with substeps = 50 }
      sys ~cell ~metric:(fun s -> 0.9 -. s.(0))
  in
  (match result.Nncs_baseline.Falsify.witness with
  | Some (init, _) ->
      check "witness velocity in the unsafe sliver" true (init.(1) > 5.5)
  | None -> Alcotest.fail "CEM should find the sliver");
  check "cem metric negative" true (result.Nncs_baseline.Falsify.best_metric <= 0.0)

let () =
  Alcotest.run "baseline"
    [
      ( "discrete",
        [
          Alcotest.test_case "misses between samples" `Quick
            test_discrete_misses_between_samples;
          Alcotest.test_case "detects at samples" `Quick
            test_discrete_detects_at_samples;
        ] );
      ( "triage",
        [ Alcotest.test_case "three buckets" `Quick test_triage_buckets ] );
      ( "falsify",
        [
          Alcotest.test_case "finds witness" `Quick test_falsify_finds_witness;
          Alcotest.test_case "cem finds sliver" `Quick test_falsify_cem_finds_witness;
          Alcotest.test_case "clean on safe" `Quick test_falsify_clean_on_safe;
          Alcotest.test_case "budget" `Quick test_falsify_counts_simulations;
        ] );
    ]
