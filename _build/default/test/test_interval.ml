(* Tests for the interval / box foundation: unit cases plus qcheck
   soundness properties (every interval operation must contain the
   concrete operation applied to members). *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module R = Nncs_interval.Rounding

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-12))

(* ----- generators ----- *)

let interval_gen =
  QCheck.Gen.(
    let* a = float_range (-1000.0) 1000.0 in
    let* w = float_range 0.0 100.0 in
    return (I.make a (a +. w)))

let arb_interval = QCheck.make ~print:I.to_string interval_gen

let member_gen iv =
  QCheck.Gen.(
    let* t = float_range 0.0 1.0 in
    let v = I.lo iv +. (t *. (I.hi iv -. I.lo iv)) in
    return (Float.max (I.lo iv) (Float.min (I.hi iv) v)))

let arb_interval_member =
  QCheck.make
    ~print:(fun (iv, x) -> Printf.sprintf "%s ∋ %.17g" (I.to_string iv) x)
    QCheck.Gen.(
      let* iv = interval_gen in
      let* x = member_gen iv in
      return (iv, x))

let arb_two_members =
  QCheck.make
    ~print:(fun ((i1, x1), (i2, x2)) ->
      Printf.sprintf "%s ∋ %.17g / %s ∋ %.17g" (I.to_string i1) x1
        (I.to_string i2) x2)
    QCheck.Gen.(
      let* i1 = interval_gen in
      let* x1 = member_gen i1 in
      let* i2 = interval_gen in
      let* x2 = member_gen i2 in
      return ((i1, x1), (i2, x2)))

(* ----- rounding ----- *)

let test_next_up_down () =
  check "next_up strictly increases" true (R.next_up 1.0 > 1.0);
  check "next_down strictly decreases" true (R.next_down 1.0 < 1.0);
  check "next_up of 0" true (R.next_up 0.0 > 0.0);
  check "next_down of 0" true (R.next_down 0.0 < 0.0);
  check "next_up of negative" true (R.next_up (-1.0) > -1.0);
  checkf "roundtrip" 1.0 (R.next_down (R.next_up 1.0));
  check "inf fixed point" true (R.next_up Float.infinity = Float.infinity)

let test_directed_ops () =
  check "add bounds" true (R.add_down 0.1 0.2 <= 0.3 && 0.3 <= R.add_up 0.1 0.2);
  check "add_down < add_up" true (R.add_down 0.1 0.2 < R.add_up 0.1 0.2);
  check "mul bounds" true
    (R.mul_down 0.1 0.1 <= 0.01 && 0.01 <= R.mul_up 0.1 0.1);
  check "div bounds" true (R.div_down 1.0 3.0 < 1.0 /. 3.0 +. 1e-18)

(* ----- interval construction and set ops ----- *)

let test_make_invalid () =
  Alcotest.check_raises "inverted bounds"
    (Invalid_argument "Interval.make: invalid bounds [0x1p+0, 0x0p+0]")
    (fun () -> ignore (I.make 1.0 0.0))

let test_set_ops () =
  let a = I.make 0.0 2.0 and b = I.make 1.0 3.0 in
  check "intersects" true (I.intersects a b);
  check "hull" true (I.equal (I.hull a b) (I.make 0.0 3.0));
  (match I.meet a b with
  | Some m -> check "meet" true (I.equal m (I.make 1.0 2.0))
  | None -> Alcotest.fail "meet should not be empty");
  check "disjoint meet" true (I.meet (I.make 0.0 1.0) (I.make 2.0 3.0) = None);
  check "subset" true (I.subset (I.make 0.5 1.5) a);
  check "not subset" false (I.subset b a);
  let l, r = I.bisect a in
  check "bisect covers" true (I.equal (I.hull l r) a);
  checkf "bisect midpoint" 1.0 (I.hi l)

let test_metrics () =
  let a = I.make (-2.0) 6.0 in
  checkf "mid" 2.0 (I.mid a);
  check "width >= 8" true (I.width a >= 8.0);
  checkf "mag" 6.0 (I.mag a);
  checkf "mig (contains 0)" 0.0 (I.mig a);
  checkf "mig (positive)" 1.0 (I.mig (I.make 1.0 2.0));
  check "degenerate" true (I.is_degenerate (I.of_float 3.0))

let test_division_by_zero () =
  Alcotest.check_raises "div by zero-containing"
    I.Division_by_zero_interval (fun () ->
      ignore (I.div I.one (I.make (-1.0) 1.0)))

(* ----- transcendental sanity ----- *)

let test_trig_ranges () =
  let s = I.sin (I.make 0.0 10.0) in
  check "sin wide = [-1,1]" true (I.lo s = -1.0 && I.hi s = 1.0);
  let c = I.cos (I.make (-0.1) 0.1) in
  check "cos near 0 hits 1" true (I.hi c = 1.0);
  check "cos near 0 lower" true (I.lo c < 1.0 && I.lo c > 0.99);
  let s2 = I.sin (I.make 0.1 0.2) in
  check "sin monotone region" true (I.lo s2 > 0.0 && I.hi s2 < 0.21)

let test_atan2_quadrants () =
  let quarter = Float.pi /. 4.0 in
  let near x iv = I.lo iv < x +. 1e-9 && I.hi iv > x -. 1e-9 in
  check "q1" true
    (near quarter (I.atan2 (I.of_float 1.0) (I.of_float 1.0)));
  check "q2" true
    (near (3.0 *. quarter) (I.atan2 (I.of_float 1.0) (I.of_float (-1.0))));
  check "q4" true
    (near (-.quarter) (I.atan2 (I.of_float (-1.0)) (I.of_float 1.0)));
  (* crossing the branch cut must fall back to [-pi, pi] *)
  let wide = I.atan2 (I.make (-1.0) 1.0) (I.make (-2.0) (-1.0)) in
  check "branch cut" true (I.lo wide < -3.14 && I.hi wide > 3.14);
  (* box strictly in the upper half plane crossing x = 0 *)
  let up = I.atan2 (I.make 1.0 2.0) (I.make (-1.0) 1.0) in
  check "upper half plane" true
    (I.lo up > 0.0 && I.hi up < Float.pi)

(* ----- qcheck soundness properties ----- *)

let prop_unop name iop fop filter =
  QCheck.Test.make ~count:500 ~name arb_interval_member (fun (iv, x) ->
      QCheck.assume (filter iv x);
      I.contains (iop iv) (fop x))

let prop_binop name iop fop filter =
  QCheck.Test.make ~count:500 ~name arb_two_members
    (fun ((i1, x1), (i2, x2)) ->
      QCheck.assume (filter i2);
      I.contains (iop i1 i2) (fop x1 x2))

let qcheck_props =
  [
    prop_binop "add sound" I.add ( +. ) (fun _ -> true);
    prop_binop "sub sound" I.sub ( -. ) (fun _ -> true);
    prop_binop "mul sound" I.mul ( *. ) (fun _ -> true);
    prop_binop "div sound" I.div ( /. ) (fun i -> not (I.contains i 0.0));
    prop_unop "neg sound" I.neg (fun x -> -.x) (fun _ _ -> true);
    prop_unop "sqr sound" I.sqr (fun x -> x *. x) (fun _ _ -> true);
    prop_unop "abs sound" I.abs Float.abs (fun _ _ -> true);
    prop_unop "sqrt sound" I.sqrt Float.sqrt (fun iv _ -> I.lo iv >= 0.0);
    prop_unop "sin sound" I.sin Float.sin (fun _ _ -> true);
    prop_unop "cos sound" I.cos Float.cos (fun _ _ -> true);
    prop_unop "atan sound" I.atan Float.atan (fun _ _ -> true);
    prop_unop "exp sound" I.exp Float.exp (fun iv _ -> I.hi iv < 500.0);
    prop_unop "log sound" I.log Float.log (fun iv _ -> I.lo iv > 0.0);
    QCheck.Test.make ~count:500 ~name:"pow_int sound"
      (QCheck.pair arb_interval_member (QCheck.int_range 0 6))
      (fun ((iv, x), n) ->
        QCheck.assume (I.mag iv < 100.0);
        I.contains (I.pow_int iv n) (Float.pow x (float_of_int n)));
    QCheck.Test.make ~count:500 ~name:"atan2 sound"
      (QCheck.pair arb_interval_member arb_interval_member)
      (fun ((iy, y), (ix, x)) ->
        QCheck.assume (not (x = 0.0 && y = 0.0));
        I.contains (I.atan2 iy ix) (Float.atan2 y x));
    QCheck.Test.make ~count:500 ~name:"hull contains both"
      arb_two_members
      (fun ((i1, x1), (i2, x2)) ->
        let h = I.hull i1 i2 in
        I.contains h x1 && I.contains h x2);
    QCheck.Test.make ~count:500 ~name:"mul subset monotone"
      arb_two_members
      (fun ((i1, _), (i2, _)) ->
        let l, r = I.bisect i1 in
        I.subset (I.mul l i2) (I.mul i1 i2)
        && I.subset (I.mul r i2) (I.mul i1 i2));
    QCheck.Test.make ~count:500 ~name:"bisect halves cover" arb_interval
      (fun iv ->
        let l, r = I.bisect iv in
        I.equal (I.hull l r) iv && I.subset l iv && I.subset r iv);
  ]

(* ----- boxes ----- *)

let test_box_basics () =
  let b = B.of_bounds [| (0.0, 1.0); (2.0, 4.0) |] in
  Alcotest.(check int) "dim" 2 (B.dim b);
  check "contains center" true (B.contains b (B.center b));
  check "contains corner" true (B.contains b [| 0.0; 2.0 |]);
  check "not contains" false (B.contains b [| 0.5; 5.0 |]);
  Alcotest.(check int) "widest dim" 1 (B.widest_dim b);
  check "volume ~2" true (Float.abs (B.volume b -. 2.0) < 1e-9)

let test_box_bisect_split () =
  let b = B.of_bounds [| (0.0, 1.0); (0.0, 2.0) |] in
  let l, r = B.bisect b 1 in
  check "bisect covers" true (B.equal (B.hull l r) b);
  let parts = B.split_dims b [ 0; 1 ] in
  Alcotest.(check int) "split 2 dims -> 4" 4 (List.length parts);
  let hull = List.fold_left B.hull (List.hd parts) parts in
  check "split covers" true (B.equal hull b)

let test_box_corners () =
  let b = B.of_bounds [| (0.0, 1.0); (2.0, 2.0); (3.0, 4.0) |] in
  let cs = B.corners b in
  Alcotest.(check int) "corner count (one degenerate)" 4 (List.length cs);
  List.iter (fun c -> check "corner in box" true (B.contains b c)) cs

let test_box_meet_hull () =
  let a = B.of_bounds [| (0.0, 2.0); (0.0, 2.0) |] in
  let b = B.of_bounds [| (1.0, 3.0); (1.0, 3.0) |] in
  (match B.meet a b with
  | Some m ->
      check "meet" true (B.equal m (B.of_bounds [| (1.0, 2.0); (1.0, 2.0) |]))
  | None -> Alcotest.fail "meet should be non-empty");
  let c = B.of_bounds [| (5.0, 6.0); (0.0, 1.0) |] in
  check "disjoint meet" true (B.meet a c = None);
  check "hull superset" true (B.subset a (B.hull a b) && B.subset b (B.hull a b))

let test_box_distance () =
  let a = B.of_bounds [| (0.0, 2.0); (0.0, 0.0) |] in
  let b = B.of_bounds [| (3.0, 5.0); (4.0, 4.0) |] in
  (* centers (1,0) and (4,4): squared distance 25 (Definition 9) *)
  checkf "squared center distance" 25.0 (B.distance_centers a b)

let () =
  Alcotest.run "interval"
    [
      ( "rounding",
        [
          Alcotest.test_case "next_up/next_down" `Quick test_next_up_down;
          Alcotest.test_case "directed ops" `Quick test_directed_ops;
        ] );
      ( "interval",
        [
          Alcotest.test_case "make invalid" `Quick test_make_invalid;
          Alcotest.test_case "set operations" `Quick test_set_ops;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "trig ranges" `Quick test_trig_ranges;
          Alcotest.test_case "atan2 quadrants" `Quick test_atan2_quadrants;
        ] );
      ("interval-properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "box",
        [
          Alcotest.test_case "basics" `Quick test_box_basics;
          Alcotest.test_case "bisect and split" `Quick test_box_bisect_split;
          Alcotest.test_case "corners" `Quick test_box_corners;
          Alcotest.test_case "meet and hull" `Quick test_box_meet_hull;
          Alcotest.test_case "center distance" `Quick test_box_distance;
        ] );
    ]
