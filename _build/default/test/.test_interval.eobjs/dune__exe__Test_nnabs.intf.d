test/test_nnabs.mli:
