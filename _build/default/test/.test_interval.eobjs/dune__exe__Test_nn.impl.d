test/test_nn.ml: Alcotest Array Filename Float Fun List Nncs_linalg Nncs_nn Printf Sys
