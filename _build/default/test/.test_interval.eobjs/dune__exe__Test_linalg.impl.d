test/test_linalg.ml: Alcotest Array Float Fun List Nncs_linalg
