test/test_affine.ml: Alcotest List Nncs_affine Nncs_interval Printf QCheck QCheck_alcotest
