test/test_interval.ml: Alcotest Float List Nncs_interval Printf QCheck QCheck_alcotest
