test/test_acasxu.ml: Alcotest Array Float Fun Lazy List Nncs Nncs_acasxu Nncs_interval Nncs_linalg Nncs_nn Nncs_ode Option Printf QCheck QCheck_alcotest
