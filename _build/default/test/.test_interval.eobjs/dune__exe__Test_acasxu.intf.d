test/test_acasxu.mli:
