test/test_core.ml: Alcotest Array Filename Float Fun Gen List Nncs Nncs_interval Nncs_linalg Nncs_nn Nncs_nnabs Nncs_ode Printf QCheck QCheck_alcotest Sys
