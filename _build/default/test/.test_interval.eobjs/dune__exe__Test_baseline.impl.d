test/test_baseline.ml: Alcotest Array Command Concrete Controller Float List Nncs Nncs_baseline Nncs_interval Nncs_linalg Nncs_nn Nncs_ode Reach Spec Symset Symstate System
