test/test_nnabs.ml: Alcotest Array Float List Nncs_interval Nncs_linalg Nncs_nn Nncs_nnabs Printf QCheck QCheck_alcotest String
