test/test_ode.ml: Alcotest Array Float List Nncs_interval Nncs_linalg Nncs_ode Printf QCheck QCheck_alcotest
