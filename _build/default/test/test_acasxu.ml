(* ACAS Xu use case: conventions of the kinematic model, soundness of the
   pre-processing abstraction, the DP policy's qualitative behaviour, the
   ribbon partition, and a fast end-to-end training sanity check. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Rng = Nncs_linalg.Rng
module D = Nncs_acasxu.Defs
module Dyn = Nncs_acasxu.Dynamics
module P = Nncs_acasxu.Policy
module T = Nncs_acasxu.Training
module S = Nncs_acasxu.Scenario
module Symset = Nncs.Symset
module Symstate = Nncs.Symstate
module Reach = Nncs.Reach
module Concrete = Nncs.Concrete

let check = Alcotest.(check bool)

(* small, fast DP configuration for tests *)
let test_policy =
  lazy
    (P.compute
       ~config:
         {
           P.default_config with
           theta_cells = 25;
           psi_cells = 25;
           iterations = 50;
         }
       ())

let test_defs () =
  Alcotest.(check int) "5 advisories" 5 (Array.length D.advisories);
  Array.iteri
    (fun i a -> Alcotest.(check int) "index roundtrip" i (D.index a))
    D.advisories;
  check "COC is 0 rate" true (D.turn_rate_rad D.Coc = 0.0);
  check "left is ccw positive" true (D.turn_rate_rad D.Strong_left > 0.0);
  check "right is negative" true (D.turn_rate_rad D.Weak_right < 0.0);
  Alcotest.(check int) "command set size" 5 (Nncs.Command.size D.commands)

let test_wrap_angle () =
  let pi = Float.pi in
  Alcotest.(check (float 1e-12)) "wrap 0" 0.0 (Dyn.wrap_angle 0.0);
  Alcotest.(check (float 1e-9)) "wrap 2pi" 0.0 (Dyn.wrap_angle (2.0 *. pi));
  Alcotest.(check (float 1e-9)) "wrap -2pi" 0.0 (Dyn.wrap_angle (-2.0 *. pi));
  check "wrap into range" true
    (let v = Dyn.wrap_angle 17.0 in
     v > -.pi -. 1e-9 && v <= pi +. 1e-9);
  Alcotest.(check (float 1e-9)) "wrap pi+0.1" (-.pi +. 0.1) (Dyn.wrap_angle (pi +. 0.1))

let test_rho_theta_convention () =
  (* intruder directly ahead: theta = 0 *)
  let _, th = Dyn.rho_theta ~x:0.0 ~y:1000.0 in
  Alcotest.(check (float 1e-12)) "ahead" 0.0 th;
  (* intruder on the left (x < 0): positive bearing *)
  let _, thl = Dyn.rho_theta ~x:(-1000.0) ~y:0.0 in
  Alcotest.(check (float 1e-9)) "left" (Float.pi /. 2.0) thl;
  let rho, _ = Dyn.rho_theta ~x:300.0 ~y:400.0 in
  Alcotest.(check (float 1e-9)) "rho" 500.0 rho

let test_dynamics_headon_closure () =
  (* head-on: intruder ahead (y > 0) flying towards us (psi = pi), no
     turn: y must decrease at v_own + v_int, x stays 0 *)
  let s = [| 0.0; 8000.0; Float.pi; D.v_own_fps; D.v_int_fps |] in
  let d = Nncs_ode.Ode.eval_rhs Dyn.plant ~time:0.0 ~state:s ~inputs:[| 0.0 |] in
  Alcotest.(check (float 1e-9)) "x' = 0" 0.0 d.(0);
  Alcotest.(check (float 1e-6)) "y' = -(vo+vi)" (-1300.0) d.(1);
  Alcotest.(check (float 1e-12)) "psi' = 0" 0.0 d.(2)

let test_dynamics_turn_rotates () =
  (* left (ccw) ownship turn: relative heading psi decreases *)
  let s = [| 0.0; 8000.0; 0.5; D.v_own_fps; D.v_int_fps |] in
  let u = D.turn_rate_rad D.Strong_left in
  let d = Nncs_ode.Ode.eval_rhs Dyn.plant ~time:0.0 ~state:s ~inputs:[| u |] in
  check "psi' = -u" true (Float.abs (d.(2) +. u) < 1e-12)

let random_state rng =
  [|
    Rng.uniform rng (-9000.0) 9000.0;
    Rng.uniform rng (-9000.0) 9000.0;
    Rng.uniform rng (-3.0) 3.0;
    D.v_own_fps;
    D.v_int_fps;
  |]

let prop_pre_abs_sound =
  QCheck.Test.make ~count:300 ~name:"Pre# encloses Pre"
    (QCheck.make
       ~print:(fun seed -> string_of_int seed)
       QCheck.Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let s = random_state rng in
      QCheck.assume (Float.abs s.(0) +. Float.abs s.(1) > 1.0);
      (* box around the state *)
      let w = Rng.uniform rng 0.0 200.0 in
      let box =
        B.of_intervals
          (Array.mapi
             (fun i v ->
               if i <= 1 then I.make (v -. w) (v +. w)
               else if i = 2 then I.make (v -. 0.05) (v +. 0.05)
               else I.of_float v)
             s)
      in
      let out = Dyn.pre_abs box in
      (* sample members of the box, their pre must be inside *)
      let ok = ref true in
      for _ = 1 to 20 do
        let p =
          Array.mapi
            (fun i iv ->
              ignore i;
              Rng.uniform rng (I.lo iv) (I.hi iv))
            (B.to_array box)
        in
        if not (B.contains out (Dyn.pre p)) then ok := false
      done;
      !ok)

let test_policy_far_is_coc () =
  let p = Lazy.force test_policy in
  (* intruder far away moving away: no alert *)
  Alcotest.(check int) "far diverging -> COC" 0
    (P.best_action p ~prev:0 ~rho:7800.0 ~theta:3.0 ~psi:0.1)

let test_policy_scores_shape () =
  let p = Lazy.force test_policy in
  let s = P.scores p ~prev:1 ~rho:3000.0 ~theta:0.3 ~psi:(-2.0) in
  Alcotest.(check int) "5 scores" 5 (Array.length s);
  Array.iter (fun v -> check "finite" true (Float.is_finite v)) s;
  (* switching penalty: keeping WL must be cheaper than the same state's
     WR score by at least the reversal surcharge, when the table value
     is equal; here just check prev=WL lowers WL's relative score *)
  let s_coc = P.scores p ~prev:0 ~rho:3000.0 ~theta:0.3 ~psi:(-2.0) in
  check "prev=WL discounts WL" true (s.(1) -. s_coc.(1) < 0.0 +. 1e-9)

(* Exact collision-course heading: the intruder's velocity minus the
   ownship's must point from the intruder towards the origin.  Solving
   for the heading yields real solutions only in the front sector
   (sin(bearing) >= sqrt(13/49)), consistent with the ownship being
   faster than the intruder. *)
let collision_heading bearing =
  let vo = D.v_own_fps and vi = D.v_int_fps in
  let disc = (vo *. vo *. Float.sin bearing *. Float.sin bearing) -. ((vo *. vo) -. (vi *. vi)) in
  if disc < 0.0 then None
  else
    let lambda = (vo *. Float.sin bearing) +. Float.sqrt disc in
    let s = lambda *. Float.cos bearing /. vi in
    let c = (vo -. (lambda *. Float.sin bearing)) /. vi in
    Some (Float.atan2 s c)

let test_collision_heading_headon () =
  (* dead ahead: the collision course is exactly head-on (psi = pi) *)
  match collision_heading (Float.pi /. 2.0) with
  | Some h -> Alcotest.(check (float 1e-9)) "head-on" Float.pi (Float.abs h)
  | None -> Alcotest.fail "head-on collision course must exist"

let test_policy_reduces_collisions () =
  let p = Lazy.force test_policy in
  (* compare closed-loop (table) vs no-avoidance on exact collision
     courses; the table policy must strictly reduce collisions *)
  let bearings =
    List.filter_map
      (fun ib ->
        let bearing = 0.7 +. (1.8 *. float_of_int ib /. 9.0) in
        Option.map (fun h -> (bearing, h)) (collision_heading bearing))
      (List.init 10 Fun.id)
  in
  check "collision courses exist" true (List.length bearings >= 5);
  let count_collisions use_policy =
    let collisions = ref 0 in
    List.iter (fun (bearing, heading) ->
        let s = ref (S.initial_state ~bearing ~heading) in
        let cmd = ref 0 in
        let min_rho = ref infinity in
        for j = 0 to 19 do
          let rho, theta = Dyn.rho_theta ~x:!s.(0) ~y:!s.(1) in
          let next =
            if use_policy then P.best_action p ~prev:!cmd ~rho ~theta ~psi:!s.(2)
            else 0
          in
          let u = [| D.turn_rate_rad (D.of_index !cmd) |] in
          for i = 0 to 9 do
            s :=
              Nncs_ode.Ode.rk4_step Dyn.plant
                ~time:(float_of_int j +. (0.1 *. float_of_int i))
                ~state:!s ~inputs:u ~h:0.1;
            let rho, _ = Dyn.rho_theta ~x:!s.(0) ~y:!s.(1) in
            min_rho := Float.min !min_rho rho
          done;
          cmd := next
        done;
        if !min_rho < D.collision_radius_ft then incr collisions)
      bearings;
    !collisions
  in
  let without = count_collisions false and with_p = count_collisions true in
  check "policy strictly reduces collisions" true (with_p < without);
  check "baseline has collisions" true (without > 0)

let test_scenario_regions () =
  let inside =
    Nncs.Symstate.make
      (B.of_bounds [| (0.0, 100.0); (0.0, 100.0); (0.0, 0.0); (700.0, 700.0); (600.0, 600.0) |])
      0
  in
  check "collision region" true (S.erroneous.Nncs.Spec.contains_box inside);
  let far =
    Nncs.Symstate.make
      (B.of_bounds
         [| (8200.0, 8400.0); (100.0, 200.0); (0.0, 0.0); (700.0, 700.0); (600.0, 600.0) |])
      0
  in
  check "out of range region" true (S.target.Nncs.Spec.contains_box far)

let test_initial_state_on_circle () =
  let s = S.initial_state ~bearing:0.7 ~heading:2.0 in
  let rho, _ = Dyn.rho_theta ~x:s.(0) ~y:s.(1) in
  Alcotest.(check (float 1e-6)) "on sensor circle" D.sensor_range_ft rho;
  Alcotest.(check (float 0.0)) "velocities" D.v_own_fps s.(3)

let test_heading_cone_enters () =
  (* a heading inside the cone must make rho decrease initially *)
  List.iter
    (fun bearing ->
      let lo, hi = S.heading_cone ~bearing in
      let heading = 0.5 *. (lo +. hi) in
      let s = S.initial_state ~bearing ~heading in
      let d = Nncs_ode.Ode.eval_rhs Dyn.plant ~time:0.0 ~state:s ~inputs:[| 0.0 |] in
      let rho_dot = ((s.(0) *. d.(0)) +. (s.(1) *. d.(1))) /. D.sensor_range_ft in
      check
        (Printf.sprintf "bearing %.2f: inward" bearing)
        true (rho_dot < 0.0))
    [ 0.3; 1.5; 2.8; 4.0; 5.5 ]

let test_initial_cells_structure () =
  let cells = S.initial_cells ~arcs:12 ~headings:6 () in
  Alcotest.(check int) "12*6 cells" 72 (List.length cells);
  List.iter
    (fun (arc, st) ->
      check "valid arc" true (arc >= 0 && arc < 12);
      Alcotest.(check int) "starts at COC" 0 st.Nncs.Symstate.cmd;
      let psi = B.get st.Nncs.Symstate.box D.ipsi in
      check "heading within training range" true
        (I.lo psi > -.T.psi_training_halfwidth
        && I.hi psi < T.psi_training_halfwidth))
    cells;
  (* selected arcs only *)
  let some = S.initial_cells ~arcs:12 ~headings:6 ~arc_indices:[ 0; 5 ] () in
  Alcotest.(check int) "2 arcs" 12 (List.length some)

let test_training_quick () =
  (* tiny spec: verify the cloning pipeline actually fits the tables —
     regression error must drop well below the variance of the target *)
  let p = Lazy.force test_policy in
  let rng = Rng.create 1234 in
  let spec =
    { T.default_spec with hidden = [ 24; 24 ]; samples = 4000; epochs = 12 }
  in
  let net, agreement = T.train_network ~spec p ~prev:0 in
  let fresh = T.build_dataset ~rng p ~prev:0 ~n:2000 in
  let mse = Nncs_nn.Dataset.mse net fresh in
  (* targets are clipped advantages in [0, 0.5] *)
  check "regression fits advantages" true (mse < 0.03);
  check "argmin beats uniform chance" true (agreement > 0.3)


(* end-to-end enclosure: the symbolic reachability of the full ACAS Xu
   closed loop (with quickly-trained networks) must contain sampled
   concrete trajectories at every sampling instant *)
let test_reach_encloses_concrete () =
  let p = Lazy.force test_policy in
  let spec =
    { T.default_spec with hidden = [ 24; 24 ]; samples = 4000; epochs = 12 }
  in
  (* one small net reused for all five advisories keeps this test fast;
     the controller structure (select/pre/post) is the real one *)
  let net, _ = T.train_network ~spec p ~prev:0 in
  let networks = Array.make 5 net in
  let sys = S.system ~networks () in
  let cells = S.initial_cells ~arcs:72 ~headings:18 ~arc_indices:[ 54 ] () in
  let _, cell = List.nth cells 9 in
  let r =
    Reach.analyze
      ~config:{ Reach.default_config with early_abort = false }
      sys
      (Symset.of_list [ cell ])
  in
  let rng = Rng.create 2025 in
  let steps = Array.of_list r.Reach.steps in
  for _ = 1 to 10 do
    let s0 =
      Array.mapi
        (fun i iv ->
          ignore i;
          Rng.uniform rng (I.lo iv) (I.hi iv))
        (B.to_array cell.Symstate.box)
    in
    let trace = Concrete.simulate ~substeps:10 sys ~init_state:s0 ~init_cmd:0 in
    List.iter
      (fun (t, st, cmd) ->
        let j = int_of_float (t +. 1e-9) in
        if Float.abs (t -. Float.round t) < 1e-9 && j < Array.length steps
        then
          check
            (Printf.sprintf "trace (t=%g) enclosed" t)
            true
            (Symset.member steps.(j).Reach.flow st cmd))
      trace.Concrete.points
  done

let () =
  Alcotest.run "acasxu"
    [
      ( "defs",
        [
          Alcotest.test_case "advisories" `Quick test_defs;
          Alcotest.test_case "wrap angle" `Quick test_wrap_angle;
        ] );
      ( "dynamics",
        [
          Alcotest.test_case "rho/theta convention" `Quick test_rho_theta_convention;
          Alcotest.test_case "head-on closure" `Quick test_dynamics_headon_closure;
          Alcotest.test_case "turn rotates heading" `Quick test_dynamics_turn_rotates;
          QCheck_alcotest.to_alcotest prop_pre_abs_sound;
        ] );
      ( "policy",
        [
          Alcotest.test_case "far is COC" `Quick test_policy_far_is_coc;
          Alcotest.test_case "collision heading" `Quick test_collision_heading_headon;
          Alcotest.test_case "score shape" `Quick test_policy_scores_shape;
          Alcotest.test_case "reduces collisions" `Slow test_policy_reduces_collisions;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "regions" `Quick test_scenario_regions;
          Alcotest.test_case "initial state" `Quick test_initial_state_on_circle;
          Alcotest.test_case "heading cone" `Quick test_heading_cone_enters;
          Alcotest.test_case "initial cells" `Quick test_initial_cells_structure;
        ] );
      ( "training",
        [ Alcotest.test_case "quick training" `Slow test_training_quick ] );
      ( "integration",
        [
          Alcotest.test_case "reach encloses concrete" `Slow
            test_reach_encloses_concrete;
        ] );
    ]
