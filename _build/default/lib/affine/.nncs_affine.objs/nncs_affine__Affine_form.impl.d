lib/affine/affine_form.ml: Array Atomic Float Format List Nncs_interval
