lib/affine/affine_form.mli: Format Nncs_interval
