(** Affine arithmetic (Stolfi & Figueiredo).

    An affine form [x0 + sum_i xi * eps_i (+ err * eps_fresh)] represents
    the set of reals obtained when each noise symbol [eps_i] ranges over
    [-1, 1].  Unlike plain intervals, shared noise symbols track linear
    correlations between quantities, which cancels wrapping in long
    affine computations (e.g. the affine layers of a neural network).

    All operations are sound: rounding errors of the float computations
    are folded into the anonymous error term [err]. *)

type t

val fresh_symbol : unit -> int
(** Globally fresh noise symbol index. *)

val of_float : float -> t

val of_interval : Nncs_interval.Interval.t -> t
(** Fresh noise symbol for the interval's radius. *)

val of_interval_with : int -> Nncs_interval.Interval.t -> t
(** Same but with the given symbol, so that two quantities built from the
    same symbol are recognised as fully correlated. *)

val to_interval : t -> Nncs_interval.Interval.t
(** Concretisation (the range of the form). *)

val center : t -> float
val radius : t -> float
(** Upper bound on the total deviation (sum of |coeffs| + err). *)

val coeff : t -> int -> float
val error_term : t -> float
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val add_const : t -> float -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Quadratic remainder pushed into the error term. *)

val add_error : t -> float -> t
(** Grow the anonymous error term by [e >= 0]. *)

val linear_combination : (float * t) list -> float -> t
(** [linear_combination [(w1, x1); ...] b] is [sum wi * xi + b] with a
    single rounding-error accumulation — the affine layer primitive. *)

val pp : Format.formatter -> t -> unit
