(** Falsification by random shooting plus local descent (the related-work
    approach of S-TaLiRo-style tools, Section 2): search the initial set
    for a concrete trajectory entering E.

    Falsification can prove a system unsafe (by witness) but never safe —
    the complementary tool to the reachability analysis: run it on cells
    the analysis could not prove, to separate "really unsafe" from
    "over-approximation too coarse". *)

type strategy =
  | Random_descent  (** random restarts + gaussian local descent *)
  | Cross_entropy of { population : int; elite : int; generations : int }
      (** CEM: iteratively refit a gaussian sampler on the elite fraction
          of each population — stronger on narrow unsafe slivers *)

type config = {
  shots : int;  (** random restarts (Random_descent) *)
  descent_steps : int;  (** local perturbation rounds per shot *)
  seed : int;
  substeps : int;  (** RK4 sub-steps per period in simulation *)
  strategy : strategy;
}

val default_config : config
(** Random_descent with 60 shots. *)

val cem_config : config
(** Cross-entropy with a 30-sample population, 6 elites, 12 generations. *)

type result = {
  witness : (float array * Nncs.Concrete.trace) option;
      (** initial state and its trace, when a trajectory touching E was
          found *)
  best_metric : float;  (** smallest objective seen (<= 0 iff witness) *)
  simulations : int;
}

val falsify :
  ?config:config ->
  Nncs.System.t ->
  cell:Nncs.Symstate.t ->
  metric:(float array -> float) ->
  result
(** [metric s] must be a continuous function that is negative exactly on
    the erroneous plant states (e.g. distance to the collision circle
    minus its radius); initial states are drawn from [cell]. *)

val acasxu_metric : float array -> float
(** sqrt(x^2 + y^2) - 500 ft: the canonical objective for the use case. *)
