lib/baseline/falsify.mli: Nncs
