lib/baseline/triage.mli: Falsify Nncs
