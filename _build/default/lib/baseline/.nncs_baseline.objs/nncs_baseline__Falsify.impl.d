lib/baseline/falsify.ml: Array Float Nncs Nncs_interval Nncs_linalg
