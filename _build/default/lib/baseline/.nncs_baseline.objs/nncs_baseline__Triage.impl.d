lib/baseline/triage.ml: Falsify List Nncs Unix
