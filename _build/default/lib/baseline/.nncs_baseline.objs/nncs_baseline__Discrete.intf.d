lib/baseline/discrete.mli: Nncs
