lib/baseline/discrete.ml: Array List Nncs Nncs_interval Nncs_ode
