(** Combined verification + falsification (the paper's future-work
    direction 3): for every initial cell, first try to {e prove} safety
    by reachability (with split refinement); on the remainder, {e search}
    for a concrete counterexample.  Each cell ends up in one of three
    buckets:

    - [Proved]     — sound safety proof,
    - [Falsified]  — concrete colliding trajectory found (truly unsafe),
    - [Unknown]    — neither: the over-approximation is too coarse or the
                     budget too small.

    This separates "the system is unsafe here" from "the analysis is not
    precise enough here", which Fig. 9a alone cannot do. *)

type verdict =
  | Proved
  | Falsified of float array  (** a colliding initial state *)
  | Unknown

type config = {
  verify : Nncs.Verify.config;
  falsify : Falsify.config;
  metric : float array -> float;
      (** negative exactly on erroneous plant states *)
}

type cell_result = {
  cell : Nncs.Symstate.t;
  verdict : verdict;
  proved_fraction : float;  (** from the verification phase *)
  elapsed : float;
}

type report = {
  results : cell_result list;
  proved : int;
  falsified : int;
  unknown : int;
  elapsed : float;
}

val classify : config -> Nncs.System.t -> Nncs.Symstate.t -> cell_result
val triage : config -> Nncs.System.t -> Nncs.Symstate.t list -> report
