(** Discrete-instant analysis in the style of Julian & Kochenderfer
    (DASC 2019), the paper's foil in Section 2: explore the closed loop
    over a sampled grid of initial states and check the erroneous set
    {e only at the sampling instants jT}.

    This is cheaper than sound reachability but twice unsound: states
    between grid points are never simulated, and excursions into E
    strictly between two sampling instants go unnoticed (exactly the gap
    our Remark-2-respecting flow enclosure closes).  Bench E7
    demonstrates a collision this method misses. *)

type verdict =
  | No_collision_observed
      (** no sampled trajectory touched E at any sampling instant *)
  | Collision_at_sample of { step : int; init : float array }

type config = {
  samples_per_dim : int;  (** grid resolution per non-degenerate dim *)
}

val default_config : config

val analyze : ?config:config -> Nncs.System.t -> Nncs.Symstate.t -> verdict
(** Simulate a grid of initial states from the cell; E is tested at
    t = 0, T, 2T, ... only. *)
