module I = Nncs_interval.Interval
module B = Nncs_interval.Box

type verdict =
  | No_collision_observed
  | Collision_at_sample of { step : int; init : float array }

type config = { samples_per_dim : int }

let default_config = { samples_per_dim = 5 }

(* grid of sample points of a box (degenerate dimensions contribute a
   single value) *)
let grid_points ~per_dim box =
  let n = B.dim box in
  let axis i =
    let iv = B.get box i in
    if I.is_degenerate iv then [ I.lo iv ]
    else
      List.init per_dim (fun k ->
          I.lo iv
          +. (I.width iv *. float_of_int k /. float_of_int (per_dim - 1)))
  in
  let rec go i acc =
    if i = n then List.map (fun l -> Array.of_list (List.rev l)) acc
    else go (i + 1) (List.concat_map (fun p -> List.map (fun v -> v :: p) (axis i)) acc)
  in
  go 0 [ [] ]

let analyze ?(config = default_config) sys cell =
  if config.samples_per_dim < 2 then
    invalid_arg "Discrete.analyze: need at least 2 samples per dimension";
  let ctrl = sys.Nncs.System.controller in
  let plant = sys.Nncs.System.plant in
  let period = ctrl.Nncs.Controller.period in
  let q = sys.Nncs.System.horizon_steps in
  let exception Hit of verdict in
  try
    List.iter
      (fun init ->
        let state = ref (Array.copy init)
        and cmd = ref cell.Nncs.Symstate.cmd in
        (try
           for j = 0 to q do
             (* the discrete method looks at sampling instants only *)
             if sys.Nncs.System.erroneous.Nncs.Spec.contains_point !state !cmd
             then raise (Hit (Collision_at_sample { step = j; init }));
             if sys.Nncs.System.target.Nncs.Spec.contains_point !state !cmd
             then raise Exit;
             if j < q then begin
               let next_cmd =
                 Nncs.Controller.concrete_step ctrl ~state:!state ~prev_cmd:!cmd
               in
               let u = Nncs.Command.value ctrl.Nncs.Controller.commands !cmd in
               state :=
                 Nncs_ode.Ode.rk4_flow plant
                   ~time:(float_of_int j *. period)
                   ~state:!state ~inputs:u ~duration:period ~steps:8;
               cmd := next_cmd
             end
           done
         with Exit -> ()))
      (grid_points ~per_dim:config.samples_per_dim cell.Nncs.Symstate.box);
    No_collision_observed
  with Hit v -> v
