type verdict = Proved | Falsified of float array | Unknown

type config = {
  verify : Nncs.Verify.config;
  falsify : Falsify.config;
  metric : float array -> float;
}

type cell_result = {
  cell : Nncs.Symstate.t;
  verdict : verdict;
  proved_fraction : float;
  elapsed : float;
}

type report = {
  results : cell_result list;
  proved : int;
  falsified : int;
  unknown : int;
  elapsed : float;
}

let classify config sys cell =
  let t0 = Unix.gettimeofday () in
  let vr = Nncs.Verify.verify_cell ~config:config.verify sys cell in
  let proved_fraction = vr.Nncs.Verify.proved_fraction in
  let verdict =
    if proved_fraction >= 1.0 -. 1e-12 then Proved
    else begin
      (* hunt for a concrete counterexample in the unproved leaves only
         (searching proved sub-cells would be wasted budget) *)
      let unproved =
        List.filter_map
          (fun (l : Nncs.Verify.leaf) ->
            if l.Nncs.Verify.proved then None else Some l.Nncs.Verify.state)
          vr.Nncs.Verify.leaves
      in
      let rec hunt = function
        | [] -> Unknown
        | leaf_cell :: rest -> (
            let fr =
              Falsify.falsify ~config:config.falsify sys ~cell:leaf_cell
                ~metric:config.metric
            in
            match fr.Falsify.witness with
            | Some (init, _) -> Falsified init
            | None -> hunt rest)
      in
      hunt unproved
    end
  in
  { cell; verdict; proved_fraction; elapsed = Unix.gettimeofday () -. t0 }

let triage config sys cells =
  let t0 = Unix.gettimeofday () in
  let results = List.map (classify config sys) cells in
  let count p = List.length (List.filter p results) in
  {
    results;
    proved = count (fun r -> r.verdict = Proved);
    falsified =
      count (fun r -> match r.verdict with Falsified _ -> true | _ -> false);
    unknown = count (fun r -> r.verdict = Unknown);
    elapsed = Unix.gettimeofday () -. t0;
  }
