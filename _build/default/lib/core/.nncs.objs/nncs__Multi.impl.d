lib/core/multi.ml: Array Command Controller List Nncs_interval Nncs_nn
