lib/core/symset.ml: Array Float Format List Nncs_interval Symstate
