lib/core/partition.mli: Nncs_interval Symstate
