lib/core/symset.mli: Command Format Nncs_interval Symstate
