lib/core/system.mli: Controller Nncs_ode Spec
