lib/core/spec.ml: Array Nncs_interval Symstate
