lib/core/reach.mli: Nncs_ode Symset System
