lib/core/multi.mli: Controller
