lib/core/reach.ml: Array Command Controller List Nncs_interval Nncs_ode Resize Spec Symset Symstate System
