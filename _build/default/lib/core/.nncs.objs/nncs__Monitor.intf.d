lib/core/monitor.mli: Symstate Verify
