lib/core/spec.mli: Symstate
