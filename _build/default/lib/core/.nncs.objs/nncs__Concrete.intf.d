lib/core/concrete.mli: System
