lib/core/concrete.ml: Array Command Controller Float List Nncs_ode Spec System
