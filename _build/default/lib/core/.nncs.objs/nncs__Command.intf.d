lib/core/command.mli: Format Nncs_interval
