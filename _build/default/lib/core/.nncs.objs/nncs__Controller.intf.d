lib/core/controller.mli: Command Nncs_interval Nncs_nn Nncs_nnabs
