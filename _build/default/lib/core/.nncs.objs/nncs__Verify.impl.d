lib/core/verify.ml: Array Controller Domain Fun List Nncs_interval Reach Symset Symstate System Unix
