lib/core/system.ml: Command Controller Nncs_ode Spec
