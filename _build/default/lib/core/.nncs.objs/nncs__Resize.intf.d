lib/core/resize.mli: Symset
