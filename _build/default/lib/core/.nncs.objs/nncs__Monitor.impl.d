lib/core/monitor.ml: Array Fun List Nncs_interval Printf String Symstate Verify
