lib/core/symstate.ml: Command Format List Nncs_interval
