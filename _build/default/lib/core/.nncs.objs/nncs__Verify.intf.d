lib/core/verify.mli: Reach Symstate System
