lib/core/partition.ml: Array Float List Nncs_interval Symstate
