lib/core/resize.ml: Array List Printf Symset Symstate
