lib/core/controller.ml: Array Command List Nncs_interval Nncs_nn Nncs_nnabs Printf
