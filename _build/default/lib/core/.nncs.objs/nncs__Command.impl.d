lib/core/command.ml: Array Format Nncs_interval Printf
