lib/core/symstate.mli: Command Format Nncs_interval
