module I = Nncs_interval.Interval
module B = Nncs_interval.Box

type t = { cells : Symstate.t list }

let of_cells cells = { cells }

let of_report report _partition =
  let proved =
    List.concat_map
      (fun (c : Verify.cell_report) ->
        List.filter_map
          (fun (l : Verify.leaf) ->
            if l.Verify.proved then Some l.Verify.state else None)
          c.Verify.leaves)
      report.Verify.cells
  in
  { cells = proved }

let proved_cell_count m = List.length m.cells
let accepts m ~state ~cmd = List.exists (fun c -> Symstate.member c state cmd) m.cells

let save m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# nncs-monitor 1\n";
      List.iter
        (fun (c : Symstate.t) ->
          Printf.fprintf oc "%d" c.Symstate.cmd;
          Array.iter
            (fun iv -> Printf.fprintf oc " %h %h" (I.lo iv) (I.hi iv))
            (B.to_array c.Symstate.box);
          output_char oc '\n')
        m.cells)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = try input_line ic with End_of_file -> "" in
      if header <> "# nncs-monitor 1" then
        failwith (path ^ ": not a monitor file");
      let cells = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             let fields =
               String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
             in
             match fields with
             | cmd :: bounds when List.length bounds mod 2 = 0 && bounds <> [] ->
                 let cmd =
                   try int_of_string cmd
                   with Failure _ -> failwith (path ^ ": bad command index")
                 in
                 let vals =
                   List.map
                     (fun s ->
                       try float_of_string s
                       with Failure _ -> failwith (path ^ ": bad float"))
                     bounds
                 in
                 let n = List.length vals / 2 in
                 let arr = Array.of_list vals in
                 let box =
                   B.of_intervals
                     (Array.init n (fun i -> I.make arr.(2 * i) arr.((2 * i) + 1)))
                 in
                 cells := Symstate.make box cmd :: !cells
             | _ -> failwith (path ^ ": malformed cell line")
           end
         done
       with End_of_file -> ());
      { cells = List.rev !cells })
