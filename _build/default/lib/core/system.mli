(** The closed-loop system C = (P, N) of Section 4.1 together with its
    specification: initial set approximation, erroneous set E, target set
    T and time horizon tau = q * T. *)

type t = {
  plant : Nncs_ode.Ode.system;
  controller : Controller.t;
  erroneous : Spec.t;  (** E *)
  target : Spec.t;  (** T *)
  horizon_steps : int;  (** q, so tau = q * controller.period *)
}

val make :
  plant:Nncs_ode.Ode.system ->
  controller:Controller.t ->
  erroneous:Spec.t ->
  target:Spec.t ->
  horizon_steps:int ->
  t
(** Validates that the plant's input dimension matches the command
    dimension and that the horizon is positive. *)

val period : t -> float
val horizon : t -> float
(** tau in seconds. *)
