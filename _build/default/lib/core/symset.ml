module B = Nncs_interval.Box

type t = Symstate.t list

let empty = []
let of_list l = l
let length = List.length
let is_empty = function [] -> true | _ :: _ -> false
let union = List.rev_append
let add st set = st :: set
let member set s u = List.exists (fun st -> Symstate.member st s u) set
let for_all = List.for_all
let exists = List.exists
let filter = List.filter
let partition = List.partition

let group_by_command ~num_commands set =
  let groups = Array.make num_commands [] in
  List.iter
    (fun st ->
      let c = st.Symstate.cmd in
      if c >= num_commands then
        invalid_arg "Symset.group_by_command: command index out of range";
      groups.(c) <- st :: groups.(c))
    set;
  groups

let hull_box = function
  | [] -> None
  | st :: rest ->
      Some
        (List.fold_left
           (fun acc s -> B.hull acc s.Symstate.box)
           st.Symstate.box rest)

let max_width set =
  List.fold_left (fun m st -> Float.max m (B.max_width st.Symstate.box)) 0.0 set

let pp ~commands fmt set =
  Format.fprintf fmt "@[<v 2>{%d symbolic states:%a}@]" (length set)
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";")
       (fun f st -> Format.fprintf f "@ %a" (Symstate.pp ~commands) st))
    set
