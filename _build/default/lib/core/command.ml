module B = Nncs_interval.Box

type set = { values : float array array; names : string array }

let make ?names values =
  let p = Array.length values in
  if p = 0 then invalid_arg "Command.make: empty command set";
  let d = Array.length values.(0) in
  if d = 0 then invalid_arg "Command.make: zero-dimensional commands";
  Array.iter
    (fun v ->
      if Array.length v <> d then
        invalid_arg "Command.make: inconsistent command dimensions")
    values;
  let names =
    match names with
    | None -> Array.init p (Printf.sprintf "u%d")
    | Some ns ->
        if Array.length ns <> p then
          invalid_arg "Command.make: wrong number of names";
        Array.copy ns
  in
  { values = Array.map Array.copy values; names }

let size s = Array.length s.values
let dim s = Array.length s.values.(0)

let check_index s i name =
  if i < 0 || i >= size s then
    invalid_arg (Printf.sprintf "Command.%s: index %d out of range" name i)

let value s i =
  check_index s i "value";
  Array.copy s.values.(i)

let value_box s i =
  check_index s i "value_box";
  B.of_point s.values.(i)

let name s i =
  check_index s i "name";
  s.names.(i)

let index_of_name s n =
  let rec go i =
    if i >= size s then raise Not_found
    else if s.names.(i) = n then i
    else go (i + 1)
  in
  go 0

let scalar s i =
  check_index s i "scalar";
  if dim s <> 1 then invalid_arg "Command.scalar: command set is not scalar";
  s.values.(i).(0)

let pp_command s fmt i = Format.fprintf fmt "%s" (name s i)
