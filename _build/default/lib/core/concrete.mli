(** Concrete (non-validated) closed-loop simulation — the ground truth
    that the reachability over-approximation must enclose.  Used by the
    test suite, the examples and the falsification baseline.

    Timing follows Section 4.1: the command active during
    [jT, (j+1)T) is u_j; the controller executed during that period
    samples s(jT) and produces u_(j+1).  Termination in T is detected at
    sampling instants (Remark 2); contact with E is checked at every RK4
    sub-step. *)

type termination =
  | Terminated of float  (** entered T, detected at this sampling instant *)
  | Hit_error of float  (** entered E at (approximately) this time *)
  | Horizon_end  (** ran all q control steps *)

type trace = {
  points : (float * float array * int) list;
      (** (time, plant state, command index) at every RK4 sub-step,
          chronological *)
  termination : termination;
}

val simulate :
  ?substeps:int ->
  System.t ->
  init_state:float array ->
  init_cmd:int ->
  trace
(** [substeps] RK4 steps per control period (default 20). *)

val min_erroneous_distance :
  metric:(float array -> float) -> trace -> float
(** Minimum of a scalar metric (e.g. distance to the collision circle)
    along the trace — the falsifier's objective. *)

val final_state : trace -> float array * int
