(** State-space regions used in specifications: the erroneous set E and
    the target (termination) set T of Section 4.1.

    A region must answer three questions soundly:
    - does it {e certainly} contain a whole symbolic state (used to stop
      propagating states inside T),
    - does it {e possibly} intersect a symbolic state (used to detect
      that the reachable over-approximation touches E),
    - does it contain a concrete state (used by concrete simulation).

    "Certainly" may err towards [false] and "possibly" towards [true]
    without breaking soundness of the verification verdict. *)

type t = {
  name : string;
  contains_box : Symstate.t -> bool;
  intersects_box : Symstate.t -> bool;
  contains_point : float array -> int -> bool;
}

val make :
  name:string ->
  contains_box:(Symstate.t -> bool) ->
  intersects_box:(Symstate.t -> bool) ->
  contains_point:(float array -> int -> bool) ->
  t

val nothing : t
(** The empty region (never contained, never intersected). *)

val norm2_lt : name:string -> dims:int * int -> radius:float -> t
(** [{ (s, u) | sqrt (s_i^2 + s_j^2) < radius }] — e.g. the ACAS Xu
    collision cylinder around the ownship. *)

val norm2_gt : name:string -> dims:int * int -> radius:float -> t
(** [{ (s, u) | sqrt (s_i^2 + s_j^2) > radius }] — e.g. the intruder
    leaving sensor range. *)

val coord_lt : name:string -> dim:int -> bound:float -> t
(** [{ (s, u) | s_dim < bound }]. *)

val coord_gt : name:string -> dim:int -> bound:float -> t
val outside_interval : name:string -> dim:int -> lo:float -> hi:float -> t
(** [{ (s, u) | s_dim < lo \/ s_dim > hi }] — "leaves the safe range". *)

val union : name:string -> t -> t -> t
