type termination = Terminated of float | Hit_error of float | Horizon_end

type trace = {
  points : (float * float array * int) list;
  termination : termination;
}

let simulate ?(substeps = 20) sys ~init_state ~init_cmd =
  if substeps <= 0 then invalid_arg "Concrete.simulate: non-positive substeps";
  let ctrl = sys.System.controller in
  let plant = sys.System.plant in
  let period = ctrl.Controller.period in
  let q = sys.System.horizon_steps in
  let h = period /. float_of_int substeps in
  let points = ref [] in
  let push t s c = points := (t, Array.copy s, c) :: !points in
  let exception Stop of termination in
  let state = ref (Array.copy init_state) and cmd = ref init_cmd in
  let result =
    try
      for j = 0 to q - 1 do
        let t_j = float_of_int j *. period in
        push t_j !state !cmd;
        if sys.System.erroneous.Spec.contains_point !state !cmd then
          raise (Stop (Hit_error t_j));
        if sys.System.target.Spec.contains_point !state !cmd then
          raise (Stop (Terminated t_j));
        (* controller samples s(jT) under the current command *)
        let next_cmd = Controller.concrete_step ctrl ~state:!state ~prev_cmd:!cmd in
        (* plant flows under the current command for one period *)
        let u = Command.value ctrl.Controller.commands !cmd in
        for i = 0 to substeps - 1 do
          let t = t_j +. (float_of_int i *. h) in
          state := Nncs_ode.Ode.rk4_step plant ~time:t ~state:!state ~inputs:u ~h;
          if i < substeps - 1 then begin
            push (t +. h) !state !cmd;
            if sys.System.erroneous.Spec.contains_point !state !cmd then
              raise (Stop (Hit_error (t +. h)))
          end
        done;
        cmd := next_cmd
      done;
      let t_end = float_of_int q *. period in
      push t_end !state !cmd;
      if sys.System.erroneous.Spec.contains_point !state !cmd then
        Hit_error t_end
      else if sys.System.target.Spec.contains_point !state !cmd then
        Terminated t_end
      else Horizon_end
    with Stop term -> term
  in
  { points = List.rev !points; termination = result }

let min_erroneous_distance ~metric trace =
  List.fold_left
    (fun acc (_, s, _) -> Float.min acc (metric s))
    Float.infinity trace.points

let final_state trace =
  match List.rev trace.points with
  | (_, s, c) :: _ -> (s, c)
  | [] -> invalid_arg "Concrete.final_state: empty trace"
