(** Symbolic states (Definition 7): a box of plant states paired with one
    command index.  Represents the set
    [{ (s, u) | s in box, u = command cmd }]. *)

type t = { box : Nncs_interval.Box.t; cmd : int }

val make : Nncs_interval.Box.t -> int -> t
val member : t -> float array -> int -> bool
(** Is the concrete state (s, u) represented? *)

val subset : t -> t -> bool
(** Same command and box inclusion. *)

val distance : t -> t -> float
(** Squared euclidean distance between box centers (Definition 9); only
    meaningful between states with the same command — raises
    [Invalid_argument] otherwise. *)

val join : t -> t -> t
(** Definition 10: hull of the boxes; requires equal commands (raises
    [Invalid_argument] otherwise). *)

val split : t -> int list -> t list
(** Bisect the box along the listed dimensions (for refinement). *)

val pp : commands:Command.set -> Format.formatter -> t -> unit
