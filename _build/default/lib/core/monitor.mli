(** Run-time safety monitor (suggested in Section 7.2 of the paper): a
    verification report identifies the initial states for which the
    neural controller was proved safe; at run time, an initial state
    outside every proved cell triggers a switch to a more conservative
    fallback.

    The monitor is a pure lookup structure — deciding takes a membership
    test over the proved cells. *)

type t

val of_cells : Symstate.t list -> t
(** Monitor accepting exactly the given proved symbolic states. *)

val of_report : Verify.report -> Symstate.t list -> t
(** Convenience: collect the proved leaves of a verification report run
    on the given partition (same order). *)

val proved_cell_count : t -> int

val accepts : t -> state:float array -> cmd:int -> bool
(** Is this concrete initial state covered by a proved cell? *)

val save : t -> string -> unit
(** Text serialisation (one cell per line: command index then bounds). *)

val load : string -> t
(** Raises [Failure] on malformed files. *)
