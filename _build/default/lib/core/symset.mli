(** Symbolic sets (Definition 8): finite collections of symbolic states,
    approximating a set of closed-loop states. *)

type t = Symstate.t list

val empty : t
val of_list : Symstate.t list -> t
val length : t -> int
val is_empty : t -> bool
val union : t -> t -> t
val add : Symstate.t -> t -> t
val member : t -> float array -> int -> bool
(** Does some symbolic state represent the concrete state? *)

val for_all : (Symstate.t -> bool) -> t -> bool
val exists : (Symstate.t -> bool) -> t -> bool
val filter : (Symstate.t -> bool) -> t -> t
val partition : (Symstate.t -> bool) -> t -> t * t
val group_by_command : num_commands:int -> t -> Symstate.t list array
(** The groups G_i of Algorithm 2 (index = command index). *)

val hull_box : t -> Nncs_interval.Box.t option
(** Hull of all boxes, ignoring commands; [None] on the empty set. *)

val max_width : t -> float
(** Largest box width over the set (0 when empty). *)

val pp : commands:Command.set -> Format.formatter -> t -> unit
