(** The finite set U of actuation commands (Section 4.1).

    Commands are d-dimensional real vectors; a command is designated by
    its index in the set, which is what symbolic states store. *)

type set

val make : ?names:string array -> float array array -> set
(** [make values] with [values.(i)] the i-th command vector; all vectors
    must share the dimension and the set must be non-empty.  Optional
    names are used for printing (defaults to "u0", "u1", ...). *)

val size : set -> int
(** P, the number of possible commands. *)

val dim : set -> int
(** d, the dimension of a command vector. *)

val value : set -> int -> float array
(** Fresh copy of the i-th command vector. *)

val value_box : set -> int -> Nncs_interval.Box.t
(** The i-th command as a degenerate box (for interval plant flows). *)

val name : set -> int -> string
val index_of_name : set -> string -> int
(** Raises [Not_found]. *)

val scalar : set -> int -> float
(** Convenience for 1-dimensional command sets. *)

val pp_command : set -> Format.formatter -> int -> unit
