module B = Nncs_interval.Box

type t = { box : B.t; cmd : int }

let make box cmd =
  if cmd < 0 then invalid_arg "Symstate.make: negative command index";
  { box; cmd }

let member st s u = st.cmd = u && B.contains st.box s
let subset a b = a.cmd = b.cmd && B.subset a.box b.box

let distance a b =
  if a.cmd <> b.cmd then
    invalid_arg "Symstate.distance: commands differ";
  B.distance_centers a.box b.box

let join a b =
  if a.cmd <> b.cmd then invalid_arg "Symstate.join: commands differ";
  { box = B.hull a.box b.box; cmd = a.cmd }

let split st dims = List.map (fun b -> { st with box = b }) (B.split_dims st.box dims)

let pp ~commands fmt st =
  Format.fprintf fmt "@[<hov 2>(%a,@ %s)@]" B.pp st.box
    (Command.name commands st.cmd)
