(** Multi-agent closed loops (the paper's future-work direction 4):
    several neural controllers acting on one plant, all executed in the
    same control period.

    The product of two controllers is again a controller of the paper's
    model: the command set is the cartesian product, the networks are
    block-diagonal products (one per pair of selected networks), the
    pre-processings are concatenated and the post-processings applied to
    slices of the output — so Algorithm 3 runs unchanged on the
    composite system. *)

val product : Controller.t -> Controller.t -> Controller.t
(** Requires equal periods and equal abstract domains.  The product
    command with index [i1 * P2 + i2] pairs command [i1] of the first
    controller with command [i2] of the second; the plant must accept
    the concatenated command vector (input_dim = d1 + d2). *)

val encode : p2:int -> int -> int -> int
(** [encode ~p2 i1 i2 = i1 * p2 + i2]. *)

val decode : p2:int -> int -> int * int
