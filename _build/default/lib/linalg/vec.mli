(** Dense float vectors (thin helpers over [float array]). *)

type t = float array

val create : int -> float -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y <- a*x + y] in place. *)

val dot : t -> t -> float
val hadamard : t -> t -> t
val norm2 : t -> float
val norm_inf : t -> float
val dist2 : t -> t -> float
(** Euclidean distance. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val argmin : t -> int
val argmax : t -> int
val min_elt : t -> float
val max_elt : t -> float
val sum : t -> float
val mean : t -> float
val of_list : float list -> t
val pp : Format.formatter -> t -> unit
