(** QR decomposition by Householder reflections.

    Used by the Loehner integrator: the orthogonal factor of the
    propagated error frame gives a well-conditioned coordinate system in
    which wrapping is minimised, and its inverse is its transpose — the
    only matrix inverse that is cheap to bound rigorously. *)

val decompose : Mat.t -> Mat.t * Mat.t
(** [decompose a] returns [(q, r)] with [a = q * r], [q] orthogonal and
    [r] upper triangular.  Requires a square matrix. *)

val orthonormalize : Mat.t -> Mat.t
(** The Q factor only, with columns reordered by decreasing norm of the
    input columns first (the classical Loehner pivoting, which keeps the
    dominant error direction best represented). Falls back to identity
    columns when the input is rank deficient. *)
