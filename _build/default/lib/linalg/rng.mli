(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the repo (weight initialisation,
    dataset shuffling, falsification search) draws from an explicit
    generator state so runs are reproducible from a seed. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds give equal streams. *)

val copy : t -> t
val next_int64 : t -> int64
val float : t -> float -> float
(** [float t b] is uniform in [\[0, b)]. *)

val uniform : t -> float -> float -> float
(** Uniform in [\[lo, hi)]. *)

val int : t -> int -> int
(** Uniform in [\[0, n)], [n > 0]. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A statistically independent generator derived from [t]. *)
