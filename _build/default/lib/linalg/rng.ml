type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }
let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 53 high bits -> uniform in [0, 1) *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t b = unit_float t *. b
let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int n))

let gaussian t =
  let rec draw () =
    let u = unit_float t in
    if u <= 0.0 then draw () else u
  in
  let u1 = draw () and u2 = unit_float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next_int64 t }
