type t = float array

let create n v = Array.make n v
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch" name)

let add a b =
  check_dims a b "add";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims a b "sub";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_dims x y "axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dims a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let hadamard a b =
  check_dims a b "hadamard";
  Array.mapi (fun i x -> x *. b.(i)) a

let norm2 a = sqrt (dot a a)

let norm_inf a =
  Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 a

let dist2 a b =
  check_dims a b "dist2";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let map = Array.map

let map2 f a b =
  check_dims a b "map2";
  Array.mapi (fun i x -> f x b.(i)) a

let arg_by better a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmin a = arg_by ( < ) a
let argmax a = arg_by ( > ) a
let min_elt a = Array.fold_left Float.min a.(0) a
let max_elt a = Array.fold_left Float.max a.(0) a
let sum a = Array.fold_left ( +. ) 0.0 a
let mean a = sum a /. float_of_int (Array.length a)
let of_list = Array.of_list

let pp fmt a =
  Format.fprintf fmt "@[<hov 1>[%a]@]"
    (Format.pp_print_array
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       (fun f x -> Format.fprintf f "%.6g" x))
    a
