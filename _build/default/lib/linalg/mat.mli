(** Dense row-major float matrices. *)

type t

val create : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val copy : t -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Vec.t
(** Fresh copy of the row. *)

val identity : int -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec m v] is [transpose m * v] without materialising the
    transpose. *)

val outer : Vec.t -> Vec.t -> t
val map : (float -> float) -> t -> t
val map_inplace : (float -> float) -> t -> unit
val add_inplace : t -> t -> unit
(** [add_inplace a b] sets [a <- a + b]. *)

val axpy_inplace : float -> t -> t -> unit
(** [axpy_inplace s x y] sets [y <- s*x + y]. *)

val frobenius : t -> float
val pp : Format.formatter -> t -> unit
