lib/linalg/rng.mli:
