lib/linalg/rng.ml: Array Float Int64
