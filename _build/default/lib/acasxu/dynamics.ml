module E = Nncs_ode.Expr
module I = Nncs_interval.Interval
module B = Nncs_interval.Box

let plant =
  let open E in
  Nncs_ode.Ode.make ~dim:Defs.state_dim ~input_dim:1
    [|
      (* x' = -v_int sin(psi) + u y *)
      neg (state Defs.ivint * sin (state Defs.ipsi)) + (input 0 * state Defs.iy);
      (* y' = v_int cos(psi) - v_own - u x *)
      (state Defs.ivint * cos (state Defs.ipsi))
      - state Defs.ivown
      - (input 0 * state Defs.ix);
      (* psi' = -u *)
      neg (input 0);
      const 0.0;
      const 0.0;
    |]

let rho_theta ~x ~y =
  let rho = sqrt ((x *. x) +. (y *. y)) in
  (* bearing from the +y (heading) axis, counter-clockwise: a point on
     the left (x < 0) has positive bearing *)
  let theta = Float.atan2 (-.x) y in
  (rho, theta)

let wrap_angle a =
  let two_pi = 2.0 *. Float.pi in
  let r = Float.rem (a +. Float.pi) two_pi in
  let r = if r <= 0.0 then r +. two_pi else r in
  r -. Float.pi

(* normalisation used for network inputs *)
let norm_rho = Defs.sensor_range_ft
let norm_angle = Float.pi
let norm_v = 1000.0

let pre s =
  let rho, theta = rho_theta ~x:s.(Defs.ix) ~y:s.(Defs.iy) in
  [|
    rho /. norm_rho;
    theta /. norm_angle;
    s.(Defs.ipsi) /. norm_angle;
    s.(Defs.ivown) /. norm_v;
    s.(Defs.ivint) /. norm_v;
  |]

let pre_abs box =
  let x = B.get box Defs.ix and y = B.get box Defs.iy in
  let rho = I.sqrt (I.add (I.sqr x) (I.sqr y)) in
  let theta = I.atan2 (I.neg x) y in
  B.of_intervals
    [|
      I.mul_float (1.0 /. norm_rho) rho;
      I.mul_float (1.0 /. norm_angle) theta;
      I.mul_float (1.0 /. norm_angle) (B.get box Defs.ipsi);
      I.mul_float (1.0 /. norm_v) (B.get box Defs.ivown);
      I.mul_float (1.0 /. norm_v) (B.get box Defs.ivint);
    |]
