module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module C = Nncs.Controller

let erroneous =
  Nncs.Spec.norm2_lt ~name:"collision"
    ~dims:(Defs.ix, Defs.iy)
    ~radius:Defs.collision_radius_ft

let target =
  Nncs.Spec.norm2_gt ~name:"out-of-range"
    ~dims:(Defs.ix, Defs.iy)
    ~radius:Defs.sensor_range_ft

let controller ~networks ?domain ?nn_splits () =
  if Array.length networks <> 5 then
    invalid_arg "Scenario.controller: expected 5 networks";
  C.make ~period:Defs.period_s ~commands:Defs.commands ~networks
    ~select:(fun prev -> prev)
    ~pre:Dynamics.pre ~pre_abs:Dynamics.pre_abs ~post:C.argmin_post
    ~post_abs:C.argmin_post_abs ?domain ?nn_splits ()

let system ~networks ?domain ?nn_splits ?(horizon_steps = Defs.horizon_steps) () =
  Nncs.System.make ~plant:Dynamics.plant
    ~controller:(controller ~networks ?domain ?nn_splits ())
    ~erroneous ~target ~horizon_steps

let initial_state ~bearing ~heading =
  [|
    Defs.sensor_range_ft *. Float.cos bearing;
    Defs.sensor_range_ft *. Float.sin bearing;
    Dynamics.wrap_angle heading;
    Defs.v_own_fps;
    Defs.v_int_fps;
  |]

(* The intruder at bearing alpha (position angle, ccw from +x) enters the
   sensor circle iff its velocity points inward: with heading psi the
   velocity is (-v sin psi, v cos psi), and the inward condition
   sin(psi - alpha) > 0 gives the open cone (alpha, alpha + pi). *)
let heading_cone ~bearing = (bearing, bearing +. Float.pi)

let arc_center_angle ~arcs i =
  2.0 *. Float.pi *. (float_of_int i +. 0.5) /. float_of_int arcs

(* recentre the interval [lo, hi] so that its midpoint lies in
   (-pi, pi] — keeps heading cells inside the network training range *)
let recentre (lo, hi) =
  let mid = 0.5 *. (lo +. hi) in
  let shift = Dynamics.wrap_angle mid -. mid in
  (lo +. shift, hi +. shift)

let initial_cells ~arcs ~headings ?arc_indices () =
  if arcs <= 0 || headings <= 0 then
    invalid_arg "Scenario.initial_cells: non-positive partition sizes";
  let indices =
    match arc_indices with
    | Some l ->
        List.iter
          (fun i ->
            if i < 0 || i >= arcs then
              invalid_arg "Scenario.initial_cells: arc index out of range")
          l;
        l
    | None -> List.init arcs Fun.id
  in
  let coc = Defs.index Defs.Coc in
  List.concat_map
    (fun arc ->
      let (xlo, xhi), (ylo, yhi) =
        Nncs.Partition.ring ~radius:Defs.sensor_range_ft ~arcs ~arc_index:arc
      in
      let a0 = 2.0 *. Float.pi *. float_of_int arc /. float_of_int arcs in
      let a1 = 2.0 *. Float.pi *. float_of_int (arc + 1) /. float_of_int arcs in
      (* cone covering the entry headings of every bearing in the arc *)
      let psi_lo = a0 and psi_hi = a1 +. Float.pi in
      let w = (psi_hi -. psi_lo) /. float_of_int headings in
      List.init headings (fun k ->
          let lo = psi_lo +. (float_of_int k *. w) in
          let lo, hi = recentre (lo, lo +. w) in
          let box =
            B.of_intervals
              [|
                I.make xlo xhi;
                I.make ylo yhi;
                I.make lo hi;
                I.of_float Defs.v_own_fps;
                I.of_float Defs.v_int_fps;
              |]
          in
          (arc, Nncs.Symstate.make box coc)))
    indices
