module E = Nncs_ode.Expr
module I = Nncs_interval.Interval
module B = Nncs_interval.Box

let speed_fps = 700.0

let plant =
  let open E in
  Nncs_ode.Ode.make ~dim:Defs.state_dim ~input_dim:2
    [|
      neg (state Defs.ivint * sin (state Defs.ipsi)) + (input 0 * state Defs.iy);
      (state Defs.ivint * cos (state Defs.ipsi))
      - state Defs.ivown
      - (input 0 * state Defs.ix);
      input 1 - input 0;
      const 0.0;
      const 0.0;
    |]

(* The ownship's position in the intruder's body frame: the relative
   vector is negated and rotated by -psi; the relative heading seen from
   the intruder is -psi; own and intruder speeds swap. *)
let mirror_state s =
  let x = s.(Defs.ix) and y = s.(Defs.iy) and psi = s.(Defs.ipsi) in
  let c = Float.cos psi and sn = Float.sin psi in
  [|
    -.((c *. x) +. (sn *. y));
    -.((-.sn *. x) +. (c *. y));
    -.psi;
    s.(Defs.ivint);
    s.(Defs.ivown);
  |]

let mirror_pre s = Dynamics.pre (mirror_state s)

let mirror_pre_abs box =
  let x = B.get box Defs.ix
  and y = B.get box Defs.iy
  and psi = B.get box Defs.ipsi in
  let c = I.cos psi and sn = I.sin psi in
  let mx = I.neg (I.add (I.mul c x) (I.mul sn y)) in
  let my = I.neg (I.sub (I.mul c y) (I.mul sn x)) in
  Dynamics.pre_abs
    (B.of_intervals
       [|
         mx; my; I.neg psi; B.get box Defs.ivint; B.get box Defs.ivown;
       |])

let system ~networks ?(horizon_steps = Defs.horizon_steps) () =
  let own = Scenario.controller ~networks () in
  let intruder =
    Nncs.Controller.make ~period:Defs.period_s ~commands:Defs.commands
      ~networks
      ~select:(fun prev -> prev)
      ~pre:mirror_pre ~pre_abs:mirror_pre_abs
      ~post:Nncs.Controller.argmin_post
      ~post_abs:Nncs.Controller.argmin_post_abs ()
  in
  let controller = Nncs.Multi.product own intruder in
  Nncs.System.make ~plant ~controller ~erroneous:Scenario.erroneous
    ~target:Scenario.target ~horizon_steps

let initial_state ~bearing ~heading =
  [|
    Defs.sensor_range_ft *. Float.cos bearing;
    Defs.sensor_range_ft *. Float.sin bearing;
    Dynamics.wrap_angle heading;
    speed_fps;
    speed_fps;
  |]

let initial_command = Nncs.Multi.encode ~p2:5 (Defs.index Defs.Coc) (Defs.index Defs.Coc)
