(** Constants and advisory definitions of the ACAS Xu use case
    (Section 3 and Example 1 of the paper). *)

type advisory = Coc | Weak_left | Weak_right | Strong_left | Strong_right

val advisories : advisory array
(** In command-set order: COC, WL, WR, SL, SR (indices 0..4). *)

val index : advisory -> int
val of_index : int -> advisory
val name : advisory -> string

val turn_rate_deg : advisory -> float
(** Ownship turn rate in degrees per second (counter-clockwise
    positive): 0, +1.5, -1.5, +3, -3. *)

val turn_rate_rad : advisory -> float
val commands : Nncs.Command.set
(** The command set U: the five turn rates (rad/s), named. *)

val sensor_range_ft : float
(** r = 8000 ft: radius of the circle R of initial intruder positions. *)

val collision_radius_ft : float
(** 500 ft: the near-mid-air-collision cylinder. *)

val v_own_fps : float
(** 700 ft/s. *)

val v_int_fps : float
(** 600 ft/s. *)

val period_s : float
(** T = 1 s. *)

val horizon_steps : int
(** q = 20 control steps: tau = 20 s. *)

(** {1 State vector layout}: s = (x, y, psi, v_own, v_int) *)

val ix : int
val iy : int
val ipsi : int
val ivown : int
val ivint : int
val state_dim : int
