(** The "original ACAS Xu" lookup tables that the networks approximate.

    The real tables were produced by solving an MDP with dynamic
    programming (Kochenderfer et al.); the distributed networks are
    proprietary, so this module rebuilds an equivalent artefact: a
    finite-horizon value iteration on the paper's own 2D kinematic model
    over a (rho, theta, psi) grid, yielding per-action cost scores.  The
    5 per-previous-advisory tables differ by a switching penalty, exactly
    like the original design (one table per previous advisory).

    Scores are costs: the controller picks the argmin. *)

type config = {
  rho_knots : float array;  (** sorted, first >= 0 *)
  collision_buffer_ft : float;
      (** the tables treat separations below collision radius + buffer as
          collisions, giving the interpolation and the network cloning a
          safety margin *)
  theta_cells : int;  (** uniform over (-pi, pi] *)
  psi_cells : int;
  discount : float;
  iterations : int;
  collision_cost : float;
  weak_alert_cost : float;
  strong_alert_cost : float;
  switch_cost : float;
  reversal_cost : float;  (** extra cost for switching turn direction *)
}

val default_config : config

type t

val compute : ?config:config -> unit -> t
(** Runs value iteration (a few seconds with the default grid). *)

val config_of : t -> config

val scores :
  t -> prev:int -> rho:float -> theta:float -> psi:float -> float array
(** Cost score per advisory (length 5), including the switching penalty
    w.r.t. the previous advisory index. Angles are wrapped internally;
    rho is clamped to the grid. *)

val best_action : t -> prev:int -> rho:float -> theta:float -> psi:float -> int

val scores_state : t -> prev:int -> float array -> float array
(** Same from a full plant state (x, y, psi, ...). *)

val save : t -> string -> unit
val load : string -> t
(** Binary (Marshal) cache of the computed tables. *)
