(** Two-aircraft ACAS Xu (the paper's future-work direction 4): both the
    ownship and the intruder run the collision-avoidance controller.

    The plant keeps the same relative state (x, y, psi, v_own, v_int)
    but now takes two commands: u0 = ownship turn rate, u1 = intruder
    turn rate, with psi' = u1 - u0.  The intruder's controller reads the
    mirrored encounter (the ownship's position expressed in the
    intruder's body frame) through its own pre-processing; both
    controllers are combined into a single product controller, so the
    unchanged Algorithm 3 verifies the two-agent loop.

    Both aircraft fly at 700 ft/s here so the mirrored encounter matches
    the networks' training geometry. *)

val speed_fps : float
(** Common speed of both aircraft (700 ft/s). *)

val plant : Nncs_ode.Ode.system
(** The two-command kinematic model. *)

val mirror_pre : float array -> float array
(** The intruder-side pre-processing (mirrored geometry, normalised). *)

val mirror_pre_abs : Nncs_interval.Box.t -> Nncs_interval.Box.t

val system :
  networks:Nncs_nn.Network.t array ->
  ?horizon_steps:int ->
  unit ->
  Nncs.System.t
(** The two-agent closed loop with the 25-command product controller;
    E and T as in the single-agent scenario. *)

val initial_state : bearing:float -> heading:float -> float array
(** Same geometry as {!Scenario.initial_state} with both speeds 700. *)

val initial_command : int
(** Product index of (COC, COC). *)
