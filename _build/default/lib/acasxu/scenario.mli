(** Assembly of the full ACAS Xu verification scenario (Example 1):
    closed-loop system, specification sets E and T, and the ribbon
    partition of the initial states (Fig. 8). *)

val erroneous : Nncs.Spec.t
(** E: intruder inside the 500 ft collision circle. *)

val target : Nncs.Spec.t
(** T: intruder outside the 8000 ft sensor range. *)

val controller :
  networks:Nncs_nn.Network.t array ->
  ?domain:Nncs_nnabs.Transformer.domain ->
  ?nn_splits:int ->
  unit ->
  Nncs.Controller.t
(** The 5-network controller with the cylindrical pre-processing and the
    argmin post-processing; [select] maps the previous advisory to its
    network. *)

val system :
  networks:Nncs_nn.Network.t array ->
  ?domain:Nncs_nnabs.Transformer.domain ->
  ?nn_splits:int ->
  ?horizon_steps:int ->
  unit ->
  Nncs.System.t

val initial_state : bearing:float -> heading:float -> float array
(** Concrete initial plant state: intruder on the sensor circle at the
    given bearing angle (position angle on the circle, radians,
    counter-clockwise from +x) with the given relative heading. *)

val heading_cone : bearing:float -> float * float
(** The (open) cone of initial headings that make the intruder enter the
    circle at this bearing: [(bearing + pi/2 wrapped ...)] expressed in
    the heading convention of the dynamics. *)

val initial_cells :
  arcs:int ->
  headings:int ->
  ?arc_indices:int list ->
  unit ->
  (int * Nncs.Symstate.t) list
(** The ribbon partition: for each (selected) arc of the sensor circle,
    [headings] heading sub-intervals covering the entry cone; every cell
    is tagged with its arc index.  All cells start with command COC. *)

val arc_center_angle : arcs:int -> int -> float
