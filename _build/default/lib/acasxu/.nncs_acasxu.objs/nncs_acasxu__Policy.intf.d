lib/acasxu/policy.mli:
