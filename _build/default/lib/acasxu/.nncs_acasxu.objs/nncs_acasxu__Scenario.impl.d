lib/acasxu/scenario.ml: Array Defs Dynamics Float Fun List Nncs Nncs_interval
