lib/acasxu/policy.ml: Array Defs Dynamics Float Fun Marshal
