lib/acasxu/scenario.mli: Nncs Nncs_nn Nncs_nnabs
