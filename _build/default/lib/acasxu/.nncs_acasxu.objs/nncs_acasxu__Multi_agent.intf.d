lib/acasxu/multi_agent.mli: Nncs Nncs_interval Nncs_nn Nncs_ode
