lib/acasxu/dynamics.ml: Array Defs Float Nncs_interval Nncs_ode
