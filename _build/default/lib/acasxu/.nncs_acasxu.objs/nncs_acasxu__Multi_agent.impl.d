lib/acasxu/multi_agent.ml: Array Defs Dynamics Float Nncs Nncs_interval Nncs_ode Scenario
