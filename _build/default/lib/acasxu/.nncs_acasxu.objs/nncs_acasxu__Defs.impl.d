lib/acasxu/defs.ml: Array Float Nncs Printf
