lib/acasxu/training.mli: Nncs_linalg Nncs_nn Policy
