lib/acasxu/dynamics.mli: Nncs_interval Nncs_ode
