lib/acasxu/defs.mli: Nncs
