lib/acasxu/training.ml: Array Defs Dynamics Filename Float Nncs_linalg Nncs_nn Policy Printf Sys
