(** The 2D kinematic plant of Example 2 (Fig. 3): ownship + intruder in
    ownship-centred relative coordinates, ownship heading along +y.

    State s = (x, y, psi, v_own, v_int); command u = ownship turn rate
    (rad/s, counter-clockwise):
    {v
      x'     = -v_int * sin(psi) + u * y
      y'     =  v_int * cos(psi) - v_own - u * x
      psi'   = -u
      v_own' = 0
      v_int' = 0
    v}
    The intruder keeps constant heading and velocity; a positive x is to
    the ownship's right. *)

val plant : Nncs_ode.Ode.system

val pre : float array -> float array
(** The controller pre-processing: cartesian to cylindrical
    (rho, theta) plus normalisation — network input
    (rho/r, theta/pi, psi/pi, vown/1000, vint/1000). *)

val pre_abs : Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Sound interval counterpart of {!pre} (Pre#). *)

val rho_theta : x:float -> y:float -> float * float
(** rho = distance to intruder, theta = bearing of the intruder relative
    to the ownship heading (counter-clockwise, so a target on the left
    has positive theta). *)

val wrap_angle : float -> float
(** Wrap to (-pi, pi]. *)
