(** Symbolic expressions for ODE right-hand sides.

    A plant's dynamics [s'(t) = f(t, s(t), u(t))] is written as one
    expression per state dimension, over the time variable, the state
    variables and the (piecewise-constant) command inputs.  The same
    expression supports float evaluation (concrete simulation), interval
    evaluation (Picard enclosures) and Taylor-coefficient computation
    (validated integration). *)

type t =
  | Const of float
  | Time
  | State of int  (** [State i] is the i-th state variable. *)
  | Input of int  (** [Input i] is the i-th command component. *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Sin of t
  | Cos of t
  | Exp of t
  | Sqrt of t
  | Sqr of t
  | Atan of t
  | Pow of t * int

(** {1 Smart constructors} (perform constant folding) *)

val const : float -> t
val time : t
val state : int -> t
val input : int -> t
val neg : t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val sin : t -> t
val cos : t -> t
val exp : t -> t
val sqrt : t -> t
val sqr : t -> t
val atan : t -> t
val pow : t -> int -> t
val scale : float -> t -> t

(** {1 Evaluation} *)

val eval : t -> time:float -> state:float array -> inputs:float array -> float

val eval_interval :
  t ->
  time:Nncs_interval.Interval.t ->
  state:Nncs_interval.Box.t ->
  inputs:Nncs_interval.Box.t ->
  Nncs_interval.Interval.t
(** Sound interval extension. *)

val max_state_index : t -> int
(** Largest state index used, -1 if none. *)

val max_input_index : t -> int
val pp : Format.formatter -> t -> unit

val diff : t -> int -> t
(** [diff e i] is the symbolic partial derivative of [e] with respect to
    [State i] (time and inputs are treated as constants), with constant
    folding — used to build the variational equation of the Loehner
    integrator. *)
