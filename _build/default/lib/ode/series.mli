(** Taylor-series arithmetic with interval coefficients, and the
    computation of the interval Taylor coefficients of an ODE solution.

    A value of type {!t} is the truncation [sum_k a_k * d^k] of a series
    in the local time offset [d], each [a_k] an interval.  The recurrences
    implemented here are the classical automatic-differentiation rules for
    jets, evaluated in interval arithmetic so that every coefficient is a
    sound enclosure. *)

type t = Nncs_interval.Interval.t array
(** Coefficients 0..K; all operands of an operation must share K. *)

val order : t -> int
(** K (= length - 1). *)

val const : int -> Nncs_interval.Interval.t -> t
val time_var : int -> Nncs_interval.Interval.t -> t
(** Series of [t] expanded at the given instant: [t0 + 1*d]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Requires the divisor's 0-coefficient to not contain 0. *)

val sqr : t -> t
val sqrt : t -> t
val exp : t -> t
val sin_cos : t -> t * t
val atan : t -> t
val pow : t -> int -> t

val eval_expr :
  Expr.t ->
  time:t ->
  state:t array ->
  inputs:Nncs_interval.Box.t ->
  t
(** Series extension of an expression.  Commands are constant in time so
    an input contributes only to coefficient 0. *)

val solution_coeffs :
  rhs:Expr.t array ->
  order:int ->
  time:Nncs_interval.Interval.t ->
  state:Nncs_interval.Box.t ->
  inputs:Nncs_interval.Box.t ->
  Nncs_interval.Interval.t array array
(** [solution_coeffs ~rhs ~order:k ~time ~state ~inputs] returns, for each
    state dimension, enclosures of the Taylor coefficients 0..k of the ODE
    solution through [state] at [time], using the recurrence
    [z^(k+1) = f(z)^(k) / (k+1)]. *)

val horner :
  Nncs_interval.Interval.t array ->
  Nncs_interval.Interval.t ->
  Nncs_interval.Interval.t
(** [horner coeffs d] evaluates [sum_k coeffs_k * d^k] soundly. *)
