(** Mean-value (Loehner) validated integration with QR re-orthonormalised
    error frames — the classical AWA / DynIBEX scheme the paper builds
    on.

    The direct interval Taylor method ({!Onestep}) re-boxes the flow
    after every step, which wraps rotating dynamics badly.  Here a set is
    kept in the form [center + frame * errors] (a point, a float matrix,
    an interval error box): the center moves by a point Taylor step, the
    errors are propagated through an enclosure of the flow Jacobian
    (computed from the variational equation [J' = df/dz J]) and the frame
    is re-orthonormalised by a pivoted QR factorisation, which bounds the
    wrapping introduced per step. *)

type state = private {
  center : float array;
  frame : Nncs_linalg.Mat.t;
  errors : Nncs_interval.Interval.t array;
}

val init : Nncs_interval.Box.t -> state
(** Center = box midpoint, identity frame, errors = box - midpoint. *)

val hull : state -> Nncs_interval.Box.t
(** Sound box enclosure of the represented set. *)

type step_result = {
  next : state;
  range : Nncs_interval.Box.t;
      (** enclosure of the flow over the whole step *)
}

val step :
  Ode.system ->
  order:int ->
  t1:float ->
  h:float ->
  inputs:Nncs_interval.Box.t ->
  state ->
  step_result
(** One validated step; may raise {!Apriori.Enclosure_failure}. *)

val jacobian_enclosure :
  Ode.system ->
  order:int ->
  t1:float ->
  h:float ->
  inputs:Nncs_interval.Box.t ->
  Nncs_interval.Box.t ->
  Nncs_interval.Interval_matrix.t
(** Enclosure of the derivative of the time-h flow map with respect to
    the initial condition, over the given box of initial conditions
    (exposed for tests and sensitivity analyses). *)
