(** Validated one-step integration by the interval Taylor-series method
    (the two-step Loehner scheme the paper relies on): a Picard a-priori
    enclosure bounds the Lagrange remainder of a degree-K Taylor
    expansion of the flow. *)

type result = {
  range : Nncs_interval.Box.t;
      (** Enclosure of the flow over the whole step [t1, t1+h]. *)
  endpoint : Nncs_interval.Box.t;
      (** Tighter enclosure of the flow at t1+h. *)
}

val step :
  Ode.system ->
  order:int ->
  t1:float ->
  h:float ->
  state:Nncs_interval.Box.t ->
  inputs:Nncs_interval.Box.t ->
  result
(** [order] is the Taylor order K >= 1 (the remainder uses the K-th
    coefficient over the a-priori box).  May raise
    {!Apriori.Enclosure_failure}. *)
