lib/ode/onestep.ml: Apriori Array Nncs_interval Ode Series
