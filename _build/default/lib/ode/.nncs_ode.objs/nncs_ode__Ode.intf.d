lib/ode/ode.mli: Expr Nncs_interval
