lib/ode/apriori.ml: Array Nncs_interval Ode Printf
