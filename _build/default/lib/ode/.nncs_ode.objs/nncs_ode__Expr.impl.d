lib/ode/expr.ml: Array Float Format Nncs_interval Stdlib
