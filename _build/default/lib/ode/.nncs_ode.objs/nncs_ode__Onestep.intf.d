lib/ode/onestep.mli: Nncs_interval Ode
