lib/ode/expr.mli: Format Nncs_interval
