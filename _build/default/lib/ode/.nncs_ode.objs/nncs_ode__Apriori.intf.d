lib/ode/apriori.mli: Nncs_interval Ode
