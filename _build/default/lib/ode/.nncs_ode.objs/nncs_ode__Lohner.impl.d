lib/ode/lohner.ml: Apriori Array Expr Float Nncs_interval Nncs_linalg Ode Printf Series
