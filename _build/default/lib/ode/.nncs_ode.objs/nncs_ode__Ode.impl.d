lib/ode/ode.ml: Array Expr List Nncs_interval
