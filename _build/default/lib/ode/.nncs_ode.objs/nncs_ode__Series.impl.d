lib/ode/series.ml: Array Expr Nncs_interval Printf
