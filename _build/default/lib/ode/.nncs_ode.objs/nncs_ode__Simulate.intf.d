lib/ode/simulate.mli: Nncs_interval Ode
