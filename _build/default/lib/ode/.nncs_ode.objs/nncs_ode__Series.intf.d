lib/ode/series.mli: Expr Nncs_interval
