lib/ode/simulate.ml: Array Lohner Nncs_interval Onestep
