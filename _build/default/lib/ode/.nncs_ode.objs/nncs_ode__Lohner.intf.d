lib/ode/lohner.mli: Nncs_interval Nncs_linalg Ode
