(** A-priori (rough) enclosure of an ODE flow over a step, via the
    interval Picard operator and the Banach fixed-point argument: if
    [Z0 + [0,h] * f([t1,t1+h], B, u)] is included in [B] then every
    solution starting in [Z0] stays in [B] over the whole step. *)

exception Enclosure_failure of string
(** Raised when no contracting candidate is found (step too large for the
    dynamics); the caller should reduce the step size. *)

val enclosure :
  Ode.system ->
  t1:float ->
  h:float ->
  state:Nncs_interval.Box.t ->
  inputs:Nncs_interval.Box.t ->
  Nncs_interval.Box.t
(** Box containing all solution values over [t1, t1+h] from [state]. *)
