(** Algorithm 1 of the paper: over-approximation of the plant dynamics
    over one controller period [jT, (j+1)T] with M validated integration
    sub-steps (Section 6.4, "improving precision"). *)

type scheme = Direct | Lohner
(** [Direct]: re-boxed interval Taylor steps ({!Onestep}) — cheap, wraps
    on rotating dynamics.  [Lohner]: mean-value QR steps ({!Lohner}) —
    costlier, but the error set is carried across the M sub-steps in a
    rotating frame, taming wrapping. *)

type result = {
  pieces : Nncs_interval.Box.t array;
      (** [pieces.(i)] encloses the flow over the i-th sub-interval; the
          collection plays the role of [s_[j[] in the paper. *)
  range : Nncs_interval.Box.t;  (** Hull of [pieces]. *)
  endpoint : Nncs_interval.Box.t;  (** Enclosure at (j+1)T. *)
}

val simulate :
  ?scheme:scheme ->
  Ode.system ->
  t0:float ->
  period:float ->
  steps:int ->
  order:int ->
  state:Nncs_interval.Box.t ->
  inputs:Nncs_interval.Box.t ->
  result
(** [simulate sys ~t0 ~period ~steps:m ~order ~state ~inputs] performs
    [m] chained validated steps of size [period/m] with the given scheme
    ([Direct] when omitted).  May raise {!Apriori.Enclosure_failure}. *)
