(** ODE systems [s'(t) = f(t, s(t), u(t))] with piecewise-constant
    inputs, plus a concrete (non-validated) Runge-Kutta simulator used as
    ground truth in tests and by the falsification baseline. *)

type system = private {
  dim : int;  (** state dimension l *)
  input_dim : int;  (** command dimension d *)
  rhs : Expr.t array;  (** one expression per state dimension *)
}

val make : dim:int -> input_dim:int -> Expr.t array -> system
(** Validates that the expressions only mention state indices < [dim] and
    input indices < [input_dim], and that there are exactly [dim] of
    them. *)

val eval_rhs : system -> time:float -> state:float array -> inputs:float array -> float array

val eval_rhs_interval :
  system ->
  time:Nncs_interval.Interval.t ->
  state:Nncs_interval.Box.t ->
  inputs:Nncs_interval.Box.t ->
  Nncs_interval.Box.t

val rk4_step :
  system -> time:float -> state:float array -> inputs:float array -> h:float -> float array
(** One classical RK4 step (not validated). *)

val rk4_flow :
  system ->
  time:float ->
  state:float array ->
  inputs:float array ->
  duration:float ->
  steps:int ->
  float array
(** Integrate over [duration] with [steps] RK4 steps. *)

val rk4_trajectory :
  system ->
  time:float ->
  state:float array ->
  inputs:float array ->
  duration:float ->
  steps:int ->
  (float * float array) list
(** Same, returning all intermediate [(time, state)] points including the
    initial one. *)
