(** Text serialisation of networks, in the spirit of the Stanford .nnet
    format used to distribute the ACAS Xu networks:

    {v
    // optional comment lines
    nncs-nnet 1
    <num_layers> <input_dim>
    <size activation> per layer
    then per layer: one row of weights per neuron, then the bias row
    v}

    All numbers are written with full hex-float precision so that a
    save/load round trip is bit-exact. *)

val save : Network.t -> string -> unit
(** [save net path]. *)

val load : string -> Network.t
(** Raises [Failure] with a descriptive message on malformed input. *)

val to_channel : out_channel -> Network.t -> unit
val of_channel : in_channel -> Network.t
