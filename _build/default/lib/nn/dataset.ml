module Vec = Nncs_linalg.Vec
module Rng = Nncs_linalg.Rng

type t = { pairs : (float array * float array) array }

let create pairs =
  if Array.length pairs = 0 then invalid_arg "Dataset.create: empty";
  let xd = Array.length (fst pairs.(0)) and yd = Array.length (snd pairs.(0)) in
  Array.iter
    (fun (x, y) ->
      if Array.length x <> xd || Array.length y <> yd then
        invalid_arg "Dataset.create: inconsistent dimensions")
    pairs;
  { pairs }

let size d = Array.length d.pairs
let input_dim d = Array.length (fst d.pairs.(0))
let target_dim d = Array.length (snd d.pairs.(0))
let get d i = d.pairs.(i)

let of_function ~rng ~n ~lo ~hi f =
  if Array.length lo <> Array.length hi then
    invalid_arg "Dataset.of_function: bound dimension mismatch";
  let sample () =
    Array.init (Array.length lo) (fun i -> Rng.uniform rng lo.(i) hi.(i))
  in
  create
    (Array.init n (fun _ ->
         let x = sample () in
         (x, f x)))

let shuffle ~rng d =
  let pairs = Array.copy d.pairs in
  Rng.shuffle rng pairs;
  { pairs }

let split ~rng ~fraction d =
  if fraction <= 0.0 || fraction >= 1.0 then
    invalid_arg "Dataset.split: fraction must be in (0, 1)";
  let s = shuffle ~rng d in
  let k = max 1 (int_of_float (fraction *. float_of_int (size s))) in
  let k = min k (size s - 1) in
  ( { pairs = Array.sub s.pairs 0 k },
    { pairs = Array.sub s.pairs k (size s - k) } )

let batches d ~batch_size =
  if batch_size <= 0 then invalid_arg "Dataset.batches: non-positive size";
  let n = size d in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min batch_size (n - i) in
      go (i + len) (Array.sub d.pairs i len :: acc)
  in
  go 0 []

let mse net d =
  let acc = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let p = Network.eval net x in
      let e = Vec.sub p y in
      acc := !acc +. Vec.dot e e)
    d.pairs;
  !acc /. float_of_int (size d * target_dim d)

let classification_accuracy net d =
  let hits = ref 0 in
  Array.iter
    (fun (x, y) ->
      if Vec.argmin (Network.eval net x) = Vec.argmin y then incr hits)
    d.pairs;
  float_of_int !hits /. float_of_int (size d)
