module Mat = Nncs_linalg.Mat
module Vec = Nncs_linalg.Vec

let magic = "nncs-nnet"
let version = 1

let to_channel oc net =
  Printf.fprintf oc "// nncs network, %d parameters\n" (Network.num_parameters net);
  Printf.fprintf oc "%s %d\n" magic version;
  Printf.fprintf oc "%d %d\n" (Network.num_layers net) (Network.input_dim net);
  Array.iter
    (fun l ->
      Printf.fprintf oc "%d %s\n" (Mat.rows l.Network.weights)
        (Activation.to_string l.Network.activation))
    net.Network.layers;
  Array.iter
    (fun l ->
      let w = l.Network.weights in
      for i = 0 to Mat.rows w - 1 do
        for j = 0 to Mat.cols w - 1 do
          if j > 0 then output_char oc ' ';
          Printf.fprintf oc "%h" (Mat.get w i j)
        done;
        output_char oc '\n'
      done;
      let b = l.Network.biases in
      for i = 0 to Vec.dim b - 1 do
        if i > 0 then output_char oc ' ';
        Printf.fprintf oc "%h" b.(i)
      done;
      output_char oc '\n')
    net.Network.layers

let save net path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel oc net)

let fail fmt = Printf.ksprintf failwith fmt

let of_channel ic =
  let line_no = ref 0 in
  let rec next_line () =
    let l = try input_line ic with End_of_file -> fail "nnet: unexpected end of file" in
    incr line_no;
    let l = String.trim l in
    if l = "" || String.length l >= 2 && String.sub l 0 2 = "//" then next_line ()
    else l
  in
  let words l = String.split_on_char ' ' l |> List.filter (fun s -> s <> "") in
  let parse_float s =
    try float_of_string s
    with Failure _ -> fail "nnet: line %d: bad float %S" !line_no s
  in
  let parse_int s =
    try int_of_string s
    with Failure _ -> fail "nnet: line %d: bad integer %S" !line_no s
  in
  (match words (next_line ()) with
  | [ m; v ] when m = magic ->
      if parse_int v <> version then fail "nnet: unsupported version %s" v
  | _ -> fail "nnet: line %d: bad magic" !line_no);
  let num_layers, input_dim =
    match words (next_line ()) with
    | [ n; d ] -> (parse_int n, parse_int d)
    | _ -> fail "nnet: line %d: expected <num_layers> <input_dim>" !line_no
  in
  if num_layers <= 0 || input_dim <= 0 then
    fail "nnet: non-positive layer count or input dimension";
  let headers =
    Array.init num_layers (fun _ ->
        match words (next_line ()) with
        | [ size; act ] -> (parse_int size, Activation.of_string act)
        | _ -> fail "nnet: line %d: expected <size> <activation>" !line_no)
  in
  let prev = ref input_dim in
  let layers =
    Array.map
      (fun (size, activation) ->
        let in_size = !prev in
        let weights = Mat.create size in_size 0.0 in
        for i = 0 to size - 1 do
          let row = words (next_line ()) in
          if List.length row <> in_size then
            fail "nnet: line %d: expected %d weights, got %d" !line_no in_size
              (List.length row);
          List.iteri (fun j s -> Mat.set weights i j (parse_float s)) row
        done;
        let brow = words (next_line ()) in
        if List.length brow <> size then
          fail "nnet: line %d: expected %d biases, got %d" !line_no size
            (List.length brow);
        let biases = Array.of_list (List.map parse_float brow) in
        prev := size;
        { Network.weights; biases; activation })
      headers
  in
  Network.make ~input_dim layers

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try of_channel ic
      with Failure msg -> failwith (Printf.sprintf "%s: %s" path msg))
