type t = Relu | Linear

let apply f x = match f with Relu -> Float.max 0.0 x | Linear -> x

let derivative f x =
  match f with Relu -> if x > 0.0 then 1.0 else 0.0 | Linear -> 1.0

let apply_vec f v = match f with Linear -> v | Relu -> Array.map (Float.max 0.0) v
let to_string = function Relu -> "relu" | Linear -> "linear"

let of_string = function
  | "relu" -> Relu
  | "linear" -> Linear
  | s -> invalid_arg (Printf.sprintf "Activation.of_string: unknown %S" s)
