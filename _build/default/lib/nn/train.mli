(** Mini-batch training of ReLU networks with backpropagation.

    Used to produce, from the lookup-table policy, the networks that the
    paper's controller model assumes ("trained with supervised
    learning"). Adam is the default optimiser; plain SGD with momentum is
    also provided for comparison. *)

type optimizer = Sgd of { momentum : float } | Adam of { beta1 : float; beta2 : float }

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  optimizer : optimizer;
  weight_decay : float;
  verbose : bool;
}

val default_config : config
(** 50 epochs, batch 64, lr 1e-3, Adam(0.9, 0.999), no decay, quiet. *)

type report = { final_train_mse : float; final_val_mse : float; epochs_run : int }

val loss_and_gradients :
  Network.t ->
  (float array * float array) array ->
  float * (Nncs_linalg.Mat.t * Nncs_linalg.Vec.t) array
(** MSE loss over the batch and its gradient per layer (backprop).
    Exposed for testing against finite differences. *)

val fit :
  ?config:config ->
  rng:Nncs_linalg.Rng.t ->
  net:Network.t ->
  train:Dataset.t ->
  ?validation:Dataset.t ->
  unit ->
  Network.t * report
(** Trains a copy of [net]; the input network is not mutated. *)
