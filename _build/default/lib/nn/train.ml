module Mat = Nncs_linalg.Mat
module Vec = Nncs_linalg.Vec
module Rng = Nncs_linalg.Rng

type optimizer = Sgd of { momentum : float } | Adam of { beta1 : float; beta2 : float }

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  optimizer : optimizer;
  weight_decay : float;
  verbose : bool;
}

let default_config =
  {
    epochs = 50;
    batch_size = 64;
    learning_rate = 1e-3;
    optimizer = Adam { beta1 = 0.9; beta2 = 0.999 };
    weight_decay = 0.0;
    verbose = false;
  }

type report = { final_train_mse : float; final_val_mse : float; epochs_run : int }

let loss_and_gradients net batch =
  let layers = net.Network.layers in
  let n = Array.length layers in
  let grads =
    Array.map
      (fun l ->
        ( Mat.create (Mat.rows l.Network.weights) (Mat.cols l.Network.weights) 0.0,
          Vec.create (Vec.dim l.Network.biases) 0.0 ))
      layers
  in
  let bsz = Array.length batch in
  let out_dim = Array.length (snd batch.(0)) in
  let scale = 1.0 /. float_of_int (bsz * out_dim) in
  let loss = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let pre, post = Network.eval_with_preactivations net x in
      let out = post.(n - 1) in
      let err = Vec.sub out y in
      loss := !loss +. (scale *. Vec.dot err err);
      (* delta at the output layer *)
      let delta = ref (Vec.scale (2.0 *. scale) err) in
      for l = n - 1 downto 0 do
        let act = layers.(l).Network.activation in
        let d =
          Array.mapi
            (fun i v -> v *. Activation.derivative act pre.(l).(i))
            !delta
        in
        let input = if l = 0 then x else post.(l - 1) in
        let gw, gb = grads.(l) in
        Mat.add_inplace gw (Mat.outer d input);
        Vec.axpy 1.0 d gb;
        if l > 0 then delta := Mat.tmul_vec layers.(l).Network.weights d
      done)
    batch;
  (!loss, grads)

type slot_state = { m : Mat.t; v : Mat.t; bm : Vec.t; bv : Vec.t }

let fit ?(config = default_config) ~rng ~net ~train ?validation () =
  let net = Network.copy net in
  let layers = net.Network.layers in
  let opt_state =
    Array.map
      (fun l ->
        let r = Mat.rows l.Network.weights and c = Mat.cols l.Network.weights in
        {
          m = Mat.create r c 0.0;
          v = Mat.create r c 0.0;
          bm = Vec.create (Vec.dim l.Network.biases) 0.0;
          bv = Vec.create (Vec.dim l.Network.biases) 0.0;
        })
      layers
  in
  let step_count = ref 0 in
  let apply_gradients grads =
    incr step_count;
    let lr = config.learning_rate in
    Array.iteri
      (fun li (gw, gb) ->
        let l = layers.(li) and st = opt_state.(li) in
        (* weight decay folded into the gradient *)
        if config.weight_decay > 0.0 then begin
          Mat.axpy_inplace config.weight_decay l.Network.weights gw;
          ignore gb
        end;
        match config.optimizer with
        | Sgd { momentum } ->
            (* m <- momentum * m + g ; w <- w - lr * m *)
            Mat.map_inplace (fun x -> momentum *. x) st.m;
            Mat.add_inplace st.m gw;
            Mat.axpy_inplace (-.lr) st.m l.Network.weights;
            for i = 0 to Vec.dim st.bm - 1 do
              st.bm.(i) <- (momentum *. st.bm.(i)) +. gb.(i);
              l.Network.biases.(i) <- l.Network.biases.(i) -. (lr *. st.bm.(i))
            done
        | Adam { beta1 ; beta2 } ->
            let t = float_of_int !step_count in
            let c1 = 1.0 -. (beta1 ** t) and c2 = 1.0 -. (beta2 ** t) in
            let eps = 1e-8 in
            let rows = Mat.rows gw and cols = Mat.cols gw in
            for i = 0 to rows - 1 do
              for j = 0 to cols - 1 do
                let g = Mat.get gw i j in
                let m' = (beta1 *. Mat.get st.m i j) +. ((1.0 -. beta1) *. g) in
                let v' = (beta2 *. Mat.get st.v i j) +. ((1.0 -. beta2) *. g *. g) in
                Mat.set st.m i j m';
                Mat.set st.v i j v';
                let mhat = m' /. c1 and vhat = v' /. c2 in
                Mat.set l.Network.weights i j
                  (Mat.get l.Network.weights i j -. (lr *. mhat /. (sqrt vhat +. eps)))
              done
            done;
            for i = 0 to Vec.dim gb - 1 do
              let g = gb.(i) in
              let m' = (beta1 *. st.bm.(i)) +. ((1.0 -. beta1) *. g) in
              let v' = (beta2 *. st.bv.(i)) +. ((1.0 -. beta2) *. g *. g) in
              st.bm.(i) <- m';
              st.bv.(i) <- v';
              let mhat = m' /. c1 and vhat = v' /. c2 in
              l.Network.biases.(i) <-
                l.Network.biases.(i) -. (lr *. mhat /. (sqrt vhat +. eps))
            done)
      grads
  in
  for epoch = 1 to config.epochs do
    let shuffled = Dataset.shuffle ~rng train in
    List.iter
      (fun batch ->
        let _, grads = loss_and_gradients net batch in
        apply_gradients grads)
      (Dataset.batches shuffled ~batch_size:config.batch_size);
    if config.verbose && (epoch mod 10 = 0 || epoch = config.epochs) then
      Format.eprintf "epoch %3d  train mse %.6f%s@." epoch (Dataset.mse net train)
        (match validation with
        | Some v -> Printf.sprintf "  val mse %.6f" (Dataset.mse net v)
        | None -> "")
  done;
  let final_val_mse =
    match validation with Some v -> Dataset.mse net v | None -> Float.nan
  in
  (net, { final_train_mse = Dataset.mse net train; final_val_mse; epochs_run = config.epochs })
