(** Activation functions of Definition 2: ReLU units in hidden layers and
    identity in the output layer. *)

type t = Relu | Linear

val apply : t -> float -> float
val derivative : t -> float -> float
(** Sub-gradient at the input (0 at the ReLU kink). *)

val apply_vec : t -> float array -> float array
val to_string : t -> string
val of_string : string -> t
(** Raises [Invalid_argument] on unknown names. *)
