lib/nn/nnet_io.mli: Network
