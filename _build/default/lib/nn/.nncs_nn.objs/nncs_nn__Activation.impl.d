lib/nn/activation.ml: Array Float Printf
