lib/nn/network.mli: Activation Format Nncs_linalg
