lib/nn/nnet_io.ml: Activation Array Fun List Network Nncs_linalg Printf String
