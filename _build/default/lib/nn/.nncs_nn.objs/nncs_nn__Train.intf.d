lib/nn/train.mli: Dataset Network Nncs_linalg
