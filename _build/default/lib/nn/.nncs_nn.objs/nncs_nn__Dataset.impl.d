lib/nn/dataset.ml: Array List Network Nncs_linalg
