lib/nn/dataset.mli: Network Nncs_linalg
