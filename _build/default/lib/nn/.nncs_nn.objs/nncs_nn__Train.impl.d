lib/nn/train.ml: Activation Array Dataset Float Format List Network Nncs_linalg Printf
