lib/nn/network.ml: Activation Array Format List Nncs_linalg Printf
