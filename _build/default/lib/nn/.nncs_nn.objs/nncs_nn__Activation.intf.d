lib/nn/activation.mli:
