(** Supervised-learning datasets: pairs of input and target vectors. *)

type t

val create : (float array * float array) array -> t
(** Validates that all pairs share dimensions. The array is not copied. *)

val size : t -> int
val input_dim : t -> int
val target_dim : t -> int
val get : t -> int -> float array * float array

val of_function :
  rng:Nncs_linalg.Rng.t ->
  n:int ->
  lo:float array ->
  hi:float array ->
  (float array -> float array) ->
  t
(** [n] samples drawn uniformly from the box [lo, hi], labelled by the
    function — the behavioural-cloning sampler. *)

val split : rng:Nncs_linalg.Rng.t -> fraction:float -> t -> t * t
(** Shuffled (train, validation) split; [fraction] goes to train. *)

val shuffle : rng:Nncs_linalg.Rng.t -> t -> t
val batches : t -> batch_size:int -> (float array * float array) array list
val mse : Network.t -> t -> float
(** Mean squared error of the network over the dataset. *)

val classification_accuracy : Network.t -> t -> float
(** Fraction of samples where the network's argmin output index matches
    the target's argmin — the metric that matters for advisory
    selection. *)
