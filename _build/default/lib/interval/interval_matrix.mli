(** Matrices with interval entries — the propagation operators of the
    Loehner mean-value integrator (enclosures of flow Jacobians). *)

type t

val create : int -> int -> Interval.t -> t
val init : int -> int -> (int -> int -> Interval.t) -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Interval.t
val of_floats : float array array -> t
(** Degenerate intervals. *)

val identity : int -> t
val transpose : t -> t
val add : t -> t -> t
val mul : t -> t -> t
(** Interval matrix product (sound enclosure of all products of
    members). *)

val mul_vec : t -> Interval.t array -> Interval.t array
val mul_box : t -> Box.t -> Box.t
val scale : Interval.t -> t -> t
val midpoint : t -> float array array
(** Entrywise midpoints (a float matrix inside the interval matrix). *)

val hull : t -> t -> t
val width : t -> float
(** Largest entry width. *)

val contains : t -> float array array -> bool
val pp : Format.formatter -> t -> unit
