module I = Interval

type t = { rows : int; cols : int; data : I.t array }

let create rows cols v =
  if rows <= 0 || cols <= 0 then invalid_arg "Interval_matrix.create";
  { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  let m = create rows cols I.zero in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)

let of_floats a =
  init (Array.length a) (Array.length a.(0)) (fun i j -> I.of_float a.(i).(j))

let identity n = init n n (fun i j -> if i = j then I.one else I.zero)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Interval_matrix.add: dimension mismatch";
  { a with data = Array.mapi (fun k x -> I.add x b.data.(k)) a.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Interval_matrix.mul: dimension mismatch";
  init a.rows b.cols (fun i j ->
      let acc = ref I.zero in
      for k = 0 to a.cols - 1 do
        acc := I.add !acc (I.mul (get a i k) (get b k j))
      done;
      !acc)

let mul_vec m v =
  if m.cols <> Array.length v then
    invalid_arg "Interval_matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref I.zero in
      for j = 0 to m.cols - 1 do
        acc := I.add !acc (I.mul (get m i j) v.(j))
      done;
      !acc)

let mul_box m b = Box.of_intervals (mul_vec m (Box.to_array b))
let scale s m = { m with data = Array.map (I.mul s) m.data }

let midpoint m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> I.mid (get m i j)))

let hull a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Interval_matrix.hull: dimension mismatch";
  { a with data = Array.mapi (fun k x -> I.hull x b.data.(k)) a.data }

let width m = Array.fold_left (fun w x -> Float.max w (I.width x)) 0.0 m.data

let contains m a =
  try
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j v -> if not (I.contains (get m i j) v) then raise Exit)
          row)
      a;
    true
  with Exit -> false

let pp fmt m =
  Format.fprintf fmt "@[<v 1>[";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@,[";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt "%a;@ " I.pp (get m i j)
    done;
    Format.fprintf fmt "]"
  done;
  Format.fprintf fmt "]@]"
