lib/interval/rounding.ml: Float Int64
