lib/interval/box.ml: Array Float Format Interval List
