lib/interval/interval_matrix.ml: Array Box Float Format Interval
