lib/interval/rounding.mli:
