lib/interval/box.mli: Format Interval
