lib/interval/interval.ml: Float Format Printf Rounding
