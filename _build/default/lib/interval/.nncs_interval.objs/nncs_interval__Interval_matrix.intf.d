lib/interval/interval_matrix.mli: Box Format Interval
