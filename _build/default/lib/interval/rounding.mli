(** Directed rounding primitives for sound interval arithmetic.

    OCaml exposes no portable way to switch the FPU rounding mode, so we
    emulate outward rounding: every elementary operation is performed in
    round-to-nearest and the result is then moved one (or a few) units in
    the last place towards the wanted direction.  This is strictly wider
    than true directed rounding, hence sound. *)

val next_up : float -> float
(** Smallest representable float strictly greater than the argument.
    [next_up infinity = infinity], [next_up nan] is [nan]. *)

val next_down : float -> float
(** Largest representable float strictly smaller than the argument. *)

val steps_up : int -> float -> float
(** [steps_up n x] applies {!next_up} [n] times. *)

val steps_down : int -> float -> float

val add_down : float -> float -> float
(** Lower bound of the exact sum. *)

val add_up : float -> float -> float
(** Upper bound of the exact sum. *)

val sub_down : float -> float -> float
val sub_up : float -> float -> float
val mul_down : float -> float -> float
val mul_up : float -> float -> float
val div_down : float -> float -> float
val div_up : float -> float -> float
val sqrt_down : float -> float
val sqrt_up : float -> float

val lib_down : float -> float
(** Conservative lower adjustment for results of math-library functions
    (sin, cos, exp, ...) which are accurate to a few ulps but not
    correctly rounded: moves the value several ulps down. *)

val lib_up : float -> float
