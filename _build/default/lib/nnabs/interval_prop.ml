module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Mat = Nncs_linalg.Mat
module Net = Nncs_nn.Network

let relu iv = I.max_ iv I.zero

let layer_out l v =
  let w = l.Net.weights and b = l.Net.biases in
  let out =
    Array.init (Mat.rows w) (fun i ->
        let acc = ref (I.of_float b.(i)) in
        for j = 0 to Mat.cols w - 1 do
          acc := I.add !acc (I.mul_float (Mat.get w i j) v.(j))
        done;
        !acc)
  in
  match l.Net.activation with
  | Nncs_nn.Activation.Linear -> out
  | Nncs_nn.Activation.Relu -> Array.map relu out

let propagate net box =
  if B.dim box <> Net.input_dim net then
    invalid_arg "Interval_prop.propagate: input dimension mismatch";
  let v = Array.fold_left (fun v l -> layer_out l v) (B.to_array box) net.Net.layers in
  B.of_intervals v
