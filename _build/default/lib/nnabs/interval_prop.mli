(** Plain interval propagation through a ReLU network: the baseline
    abstract transformer F#. Sound but subject to the dependency problem
    (every neuron is abstracted independently). *)

val propagate : Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** [propagate net box] encloses [{F(x) | x in box}]. *)
