(** Affine-arithmetic propagation through a ReLU network: a third
    abstract transformer, tighter than plain intervals on deep affine
    chains, used in the domain-comparison ablation (DESIGN.md E6). *)

val propagate : Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Sound enclosure of [{F(x) | x in box}]. *)
