module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Net = Nncs_nn.Network

type decision = Argmin | Argmax
type verdict = Robust | Counterexample of float array | Unknown

let classify decision scores =
  let better =
    match decision with
    | Argmin -> ( < ) (* strict: ties resolve to the smaller index *)
    | Argmax -> ( > )
  in
  let best = ref 0 in
  for i = 1 to Array.length scores - 1 do
    if better scores.(i) scores.(!best) then best := i
  done;
  !best

(* can any point of the output box change the decision away from [label]? *)
let decided decision label out =
  let p = B.dim out in
  let stable = ref true in
  for j = 0 to p - 1 do
    if j <> label then begin
      let challenger_wins =
        match decision with
        | Argmin ->
            (* j could beat label if j's lower bound does not exceed
               label's upper bound *)
            I.lo (B.get out j) <= I.hi (B.get out label)
        | Argmax -> I.hi (B.get out j) >= I.lo (B.get out label)
      in
      if challenger_wins then stable := false
    end
  done;
  !stable

let check ?(domain = Transformer.Symbolic) ?(max_splits = 6) ~decision net
    ~input ~epsilon =
  if epsilon < 0.0 then invalid_arg "Robustness.check: negative epsilon";
  let label = classify decision (Net.eval net input) in
  let ball =
    B.of_intervals
      (Array.map (fun v -> I.make (v -. epsilon) (v +. epsilon)) input)
  in
  (* quick concrete counterexample hunt at the ball corners (bounded) *)
  let corner_counterexample box =
    if B.dim box > 12 then None
    else
      List.find_opt
        (fun c -> classify decision (Net.eval net c) <> label)
        (B.corners box)
  in
  let exception Found of float array in
  (* branch and bound: prove each sub-box or split it *)
  let rec go budget box =
    let out = Transformer.propagate domain net box in
    if decided decision label out then true
    else
      match corner_counterexample box with
      | Some c -> raise (Found c)
      | None ->
          if budget = 0 then false
          else
            let l, r = B.bisect_widest box in
            go (budget - 1) l && go (budget - 1) r
  in
  try if go max_splits ball then Robust else Unknown
  with Found c -> Counterexample c
