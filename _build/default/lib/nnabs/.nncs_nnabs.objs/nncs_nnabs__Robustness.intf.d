lib/nnabs/robustness.mli: Nncs_nn Transformer
