lib/nnabs/robustness.ml: Array List Nncs_interval Nncs_nn Transformer
