lib/nnabs/symbolic_prop.ml: Array Float List Nncs_interval Nncs_linalg Nncs_nn
