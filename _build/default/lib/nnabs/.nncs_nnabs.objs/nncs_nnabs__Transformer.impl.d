lib/nnabs/transformer.ml: Affine_prop Interval_prop List Nncs_interval Printf Symbolic_prop
