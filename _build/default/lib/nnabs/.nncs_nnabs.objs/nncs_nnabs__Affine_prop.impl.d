lib/nnabs/affine_prop.ml: Array Float Nncs_affine Nncs_interval Nncs_linalg Nncs_nn
