lib/nnabs/transformer.mli: Nncs_interval Nncs_nn
