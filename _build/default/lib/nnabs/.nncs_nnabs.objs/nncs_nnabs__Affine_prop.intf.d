lib/nnabs/affine_prop.mli: Nncs_interval Nncs_nn
