lib/nnabs/interval_prop.ml: Array Nncs_interval Nncs_linalg Nncs_nn
