lib/nnabs/interval_prop.mli: Nncs_interval Nncs_nn
