lib/nnabs/symbolic_prop.mli: Nncs_interval Nncs_nn
