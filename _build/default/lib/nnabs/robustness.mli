(** Local (adversarial) robustness of a classifier-style network — the
    neural-network-level property of the paper's Section 2: around a
    given input, does the decision (argmin or argmax of the outputs)
    survive every perturbation of radius epsilon?

    Decided by the same sound transformers used for the closed loop,
    with optional input splitting: [Robust] is a proof; [Unknown] means
    the abstraction was too coarse at this budget (never "not robust"
    unless a concrete counterexample is produced). *)

type decision = Argmin | Argmax

type verdict =
  | Robust  (** proved: the decision is constant on the ball *)
  | Counterexample of float array
      (** a concrete input in the ball with a different decision *)
  | Unknown

val classify : decision -> float array -> int
(** The concrete decision rule. *)

val check :
  ?domain:Transformer.domain ->
  ?max_splits:int ->
  decision:decision ->
  Nncs_nn.Network.t ->
  input:float array ->
  epsilon:float ->
  verdict
(** [check ~decision net ~input ~epsilon] analyses the infinity-ball of
    radius [epsilon] around [input].  Refines by bisecting the widest
    input dimension up to [max_splits] times (default 6); ball corners
    are tested for concrete counterexamples along the way.  [domain]
    defaults to [Symbolic]. *)
