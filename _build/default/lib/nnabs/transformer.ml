module B = Nncs_interval.Box

type domain = Interval | Symbolic | Affine

let domain_of_string = function
  | "interval" -> Interval
  | "symbolic" -> Symbolic
  | "affine" -> Affine
  | s -> invalid_arg (Printf.sprintf "Transformer.domain_of_string: unknown %S" s)

let domain_to_string = function
  | Interval -> "interval"
  | Symbolic -> "symbolic"
  | Affine -> "affine"

let propagate = function
  | Interval -> Interval_prop.propagate
  | Symbolic -> Symbolic_prop.propagate
  | Affine -> Affine_prop.propagate

let propagate_split domain ~splits net box =
  if splits < 0 then invalid_arg "Transformer.propagate_split: negative splits";
  let rec go depth box =
    if depth = 0 then propagate domain net box
    else
      let l, r = B.bisect_widest box in
      B.hull (go (depth - 1) l) (go (depth - 1) r)
  in
  go splits box

let meet_all domains net box =
  match domains with
  | [] -> invalid_arg "Transformer.meet_all: no domains"
  | d :: rest ->
      List.fold_left
        (fun acc d ->
          match B.meet acc (propagate d net box) with
          | Some m -> m
          | None -> acc)
        (propagate d net box) rest
