(** Uniform interface over the network abstract transformers F#, plus an
    input-splitting refinement wrapper. *)

type domain = Interval | Symbolic | Affine

val domain_of_string : string -> domain
val domain_to_string : domain -> string

val propagate :
  domain -> Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Sound box enclosure of the network image of the input box. *)

val propagate_split :
  domain ->
  splits:int ->
  Nncs_nn.Network.t ->
  Nncs_interval.Box.t ->
  Nncs_interval.Box.t
(** Recursively bisect the input box along its widest dimension [splits]
    times (2^splits sub-boxes), propagate each, and hull the results —
    tighter, at exponential cost in [splits]. *)

val meet_all : domain list -> Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Intersection of the enclosures from several domains (all sound, so
    the meet is sound and at least as tight as each). *)
