(** Symbolic interval propagation through a ReLU network, in the style of
    ReluVal / Neurify (the tool the paper uses for F#).

    Every neuron carries a pair of affine functions of the *network
    inputs* that bound it from below and above over the given input box.
    Affine layers transform these bounds exactly (up to rounding, which
    is accounted for in a per-equation error term); unstable ReLU nodes
    are relaxed with the standard chord (upper) and scaled-identity
    (lower) linear relaxations.  The result is usually far tighter than
    plain interval propagation because input dependencies survive the
    affine layers. *)

val propagate : Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Sound enclosure of [{F(x) | x in box}]. *)

val output_bounds :
  Nncs_nn.Network.t ->
  Nncs_interval.Box.t ->
  (float array * float * float array * float) array
(** For each output neuron, the final symbolic bounds
    [(lo_coeffs, lo_const, up_coeffs, up_const)] — exposed for
    inspection and tests. *)
