(* Command-line trainer: builds the lookup-table policy by dynamic
   programming and clones it into the 5 per-advisory ReLU networks,
   caching everything under the data directory. *)

module T = Nncs_acasxu.Training
module P = Nncs_acasxu.Policy
module D = Nncs_acasxu.Defs

let run dir hidden samples epochs seed force quiet =
  if force then
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      (T.policy_path ~dir
      :: List.init 5 (fun prev -> T.network_path ~dir ~prev));
  let spec = { T.default_spec with hidden; samples; epochs; seed } in
  let t0 = Unix.gettimeofday () in
  let policy, networks = T.load_or_train ~spec ~dir () in
  if not quiet then begin
    Printf.printf "policy + networks ready in %.1f s (dir: %s)\n"
      (Unix.gettimeofday () -. t0)
      dir;
    Array.iteri
      (fun prev net ->
        (* report argmin agreement on a fresh validation sample *)
        let rng = Nncs_linalg.Rng.create (9000 + prev) in
        let data = T.build_dataset ~rng policy ~prev ~n:4000 in
        Printf.printf "  %-3s %s  argmin agreement %.3f\n"
          (D.name (D.of_index prev))
          (Format.asprintf "%a" Nncs_nn.Network.pp_summary net)
          (Nncs_nn.Dataset.classification_accuracy net data))
      networks
  end;
  0

open Cmdliner

let dir =
  Arg.(value & opt string "data" & info [ "dir" ] ~doc:"Cache directory.")

let hidden =
  Arg.(
    value
    & opt (list int) T.default_spec.T.hidden
    & info [ "hidden" ] ~doc:"Hidden layer sizes (comma separated).")

let samples =
  Arg.(
    value
    & opt int T.default_spec.T.samples
    & info [ "samples" ] ~doc:"Training samples per network.")

let epochs =
  Arg.(value & opt int T.default_spec.T.epochs & info [ "epochs" ] ~doc:"Epochs.")

let seed = Arg.(value & opt int T.default_spec.T.seed & info [ "seed" ] ~doc:"Seed.")

let force =
  Arg.(value & flag & info [ "force" ] ~doc:"Retrain even if cached files exist.")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No report.")

let cmd =
  Cmd.v
    (Cmd.info "acasxu_train" ~doc:"Train the ACAS Xu controller networks")
    Term.(const run $ dir $ hidden $ samples $ epochs $ seed $ force $ quiet)

let () = exit (Cmd.eval' cmd)
