(* Renders the Fig 9a safety map as an SVG: the ribbon of initial cells
   (arcs of the sensor circle x heading sub-cells) coloured green when
   proved safe, orange when partially proved after refinement, red when
   not proved.  Reads the CSV written by acasxu_verify --csv. *)

let read_csv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      if header <> "index,arc,proved_fraction,elapsed_s" then
        failwith (path ^ ": unexpected CSV header");
      let rows = ref [] in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ',' line with
           | [ idx; arc; frac; _elapsed ] ->
               rows :=
                 (int_of_string idx, int_of_string arc, float_of_string frac)
                 :: !rows
           | _ -> failwith (path ^ ": malformed row: " ^ line)
         done
       with End_of_file -> ());
      List.rev !rows)

let colour fraction =
  if fraction >= 1.0 -. 1e-9 then "#2e7d32" (* proved: green *)
  else if fraction > 0.0 then "#ef6c00" (* partial: orange *)
  else "#c62828" (* not proved: red *)

let run csv_path arcs headings out =
  let rows = read_csv csv_path in
  if List.length rows <> arcs * headings then
    Printf.eprintf
      "warning: %d rows but arcs*headings = %d; pass matching --arcs/--headings\n"
      (List.length rows) (arcs * headings);
  let size = 760 in
  let center = float_of_int size /. 2.0 in
  let r_inner = 240.0 and r_outer = 360.0 in
  let oc = open_out out in
  Printf.fprintf oc
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    size size size size;
  Printf.fprintf oc
    "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" size size;
  (* each cell: annular sector at the arc's bearing; the radial direction
     indexes the heading sub-cell (inner = first heading of the cone) *)
  List.iter
    (fun (idx, arc, frac) ->
      let h = idx mod headings in
      let a0 = 2.0 *. Float.pi *. float_of_int arc /. float_of_int arcs in
      let a1 = 2.0 *. Float.pi *. float_of_int (arc + 1) /. float_of_int arcs in
      let rr0 =
        r_inner
        +. ((r_outer -. r_inner) *. float_of_int h /. float_of_int headings)
      in
      let rr1 =
        r_inner
        +. ((r_outer -. r_inner) *. float_of_int (h + 1) /. float_of_int headings)
      in
      (* screen y grows downwards: flip the sign of sin *)
      let px r a = (center +. (r *. Float.cos a), center -. (r *. Float.sin a)) in
      let x0, y0 = px rr0 a0 and x1, y1 = px rr1 a0 in
      let x2, y2 = px rr1 a1 and x3, y3 = px rr0 a1 in
      Printf.fprintf oc
        "<path d=\"M%.1f %.1f L%.1f %.1f A%.1f %.1f 0 0 0 %.1f %.1f L%.1f \
         %.1f A%.1f %.1f 0 0 1 %.1f %.1f Z\" fill=\"%s\" stroke=\"white\" \
         stroke-width=\"0.5\"/>\n"
        x0 y0 x1 y1 rr1 rr1 x2 y2 x3 y3 rr0 rr0 x0 y0 (colour frac))
    rows;
  (* ownship marker and legend *)
  Printf.fprintf oc
    "<circle cx=\"%.0f\" cy=\"%.0f\" r=\"6\" fill=\"black\"/>\n" center center;
  Printf.fprintf oc
    "<path d=\"M%.0f %.0f l-6 14 l6 -5 l6 5 Z\" fill=\"black\"/>\n" center
    (center -. 24.0);
  List.iteri
    (fun i (c, label) ->
      let y = 20 + (22 * i) in
      Printf.fprintf oc
        "<rect x=\"10\" y=\"%d\" width=\"14\" height=\"14\" fill=\"%s\"/>\n\
         <text x=\"30\" y=\"%d\" font-family=\"sans-serif\" font-size=\"14\">%s</text>\n"
        y c (y + 12) label)
    [
      ("#2e7d32", "proved safe");
      ("#ef6c00", "partially proved (after refinement)");
      ("#c62828", "not proved");
    ];
  Printf.fprintf oc
    "<text x=\"%.0f\" y=\"%d\" font-family=\"sans-serif\" font-size=\"13\" \
     text-anchor=\"middle\">radial direction = heading within the entry \
     cone</text>\n"
    center (size - 12);
  output_string oc "</svg>\n";
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" out (List.length rows);
  0

open Cmdliner

let csv =
  Arg.(
    value & opt string "results_main.csv"
    & info [ "csv" ] ~doc:"Input CSV from acasxu_verify.")

let arcs = Arg.(value & opt int 36 & info [ "arcs" ] ~doc:"Arcs used in the run.")

let headings =
  Arg.(value & opt int 10 & info [ "headings" ] ~doc:"Headings used in the run.")

let out =
  Arg.(value & opt string "fig9a.svg" & info [ "out" ] ~doc:"Output SVG path.")

let cmd =
  Cmd.v
    (Cmd.info "acasxu_map" ~doc:"Render the Fig 9a safety map as SVG")
    Term.(const run $ csv $ arcs $ headings $ out)

let () = exit (Cmd.eval' cmd)
