bin/acasxu_verify.ml: Arg Array Cmd Cmdliner Float List Nncs Nncs_acasxu Nncs_nnabs Printf Term
