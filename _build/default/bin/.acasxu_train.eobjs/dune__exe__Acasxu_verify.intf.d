bin/acasxu_verify.mli:
