bin/acasxu_train.mli:
