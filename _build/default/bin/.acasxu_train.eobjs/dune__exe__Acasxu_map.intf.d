bin/acasxu_map.mli:
