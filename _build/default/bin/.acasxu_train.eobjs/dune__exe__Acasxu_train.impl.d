bin/acasxu_train.ml: Arg Array Cmd Cmdliner Format List Nncs_acasxu Nncs_linalg Nncs_nn Printf Sys Term Unix
