bin/acasxu_map.ml: Arg Cmd Cmdliner Float Fun List Printf String Term
