(* The resident verification server for the ACAS Xu scenario: reads
   JSONL jobs from stdin (or a Unix-domain socket), answers each from
   the fingerprint-keyed verdict memo, an identical in-flight run
   (single-flight coalescing), the process-wide sharded F# cache, or a
   full reachability run, and streams JSONL events back.  See DESIGN.md
   §12–13 for the protocol.

   Example session (tiny models):
     $ dune exec bin/nncs_serve.exe -- --dir /tmp/nets --tiny-models <<'EOF'
     {"t":"job","id":"q1","partition":{"arcs":12,"headings":4,"arc_indices":[6]}}
     {"t":"job","id":"q2","partition":{"arcs":12,"headings":4,"arc_indices":[6]}}
     {"t":"stats"}
     {"t":"shutdown"}
     EOF
   q2 is answered from the memo ("source":"memo") without re-running
   the analysis.

   SIGTERM/SIGINT trigger the same graceful drain as a shutdown
   request: stop accepting input, finish queued jobs, emit a final bye,
   compact and close the memo journal.  The handler closes the fds the
   reader blocks on, so the session loop's own end-of-input path does
   the draining — no second shutdown mechanism. *)

module S = Nncs_acasxu.Scenario
module T = Nncs_acasxu.Training
module Server = Nncs_serve.Server

(* ----- signal-driven graceful drain -----

   All registration happens on the main domain, which is also where
   OCaml runs signal handlers, so plain refs suffice.  The handler
   closes every registered "wake" fd: a reader blocked on one restarts
   its syscall after the handler and immediately fails on the closed
   fd, funnelling into the session loop's EOF/error drain path. *)

let draining = Atomic.make false
let wake_fds : Unix.file_descr list ref = ref []

let close_wake_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let register_wake_fd fd =
  wake_fds := fd :: !wake_fds;
  (* the signal may have landed between the two lines above; closing
     here (idempotent) keeps the drain from missing this fd *)
  if Atomic.get draining then close_wake_fd fd

let unregister_wake_fd fd = wake_fds := List.filter (fun f -> f != fd) !wake_fds

let drain_on_signal _ =
  Atomic.set draining true;
  let fds = !wake_fds in
  wake_fds := [];
  List.iter close_wake_fd fds

let install_signal_handlers () =
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle drain_on_signal)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let serve_stdio server =
  register_wake_fd Unix.stdin;
  ignore (Server.run server stdin stdout)

let serve_socket server path quiet =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  register_wake_fd sock;
  Fun.protect
    ~finally:(fun () ->
      unregister_wake_fd sock;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      if not quiet then Printf.eprintf "nncs_serve: listening on %s\n%!" path;
      (* one connection at a time: jobs within a session already overlap
         via the dispatcher domains, and verdict memo + abstraction
         cache persist across sessions *)
      let rec loop () =
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            if not (Atomic.get draining) then loop ()
        | exception Unix.Unix_error _ when Atomic.get draining ->
            (* the handler closed the listen socket out from under us:
               that is the drain, not an error *)
            ()
        | fd, _ ->
            register_wake_fd fd;
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            (* one broken client must only end its own session, never
               the accept loop; the channels are closed on every path *)
            let outcome =
              Fun.protect
                ~finally:(fun () ->
                  unregister_wake_fd fd;
                  close_out_noerr oc;
                  (* close_out already closed the underlying fd; a
                     second close only matters if the flush path bailed
                     early *)
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  try Server.run server ic oc
                  with e ->
                    if not quiet then
                      Printf.eprintf "nncs_serve: session error: %s\n%!"
                        (Printexc.to_string e);
                    `Eof)
            in
            (match outcome with
            | `Shutdown ->
                if not quiet then Printf.eprintf "nncs_serve: shutdown\n%!"
            | `Eof -> if not (Atomic.get draining) then loop ())
      in
      loop ();
      if Atomic.get draining && not quiet then
        Printf.eprintf "nncs_serve: drained on signal\n%!")

let run dir tiny dispatchers abs_cache abs_cache_quantum abs_cache_shards memo
    memo_capacity max_queue max_line_bytes job_deadline backreach_table socket
    quiet =
  (* a client that disconnects mid-stream must not kill the resident
     server: with SIGPIPE ignored, writes to a dead peer raise
     [Sys_error], which the session loop absorbs *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  install_signal_handlers ();
  let _, networks =
    if tiny then
      T.load_or_train ~spec:T.tiny_spec ~policy_config:T.tiny_policy_config
        ~dir ()
    else T.load_or_train ~dir ()
  in
  let make_system ~domain ~nn_splits = S.system ~networks ~domain ~nn_splits () in
  let make_cells ~arcs ~headings ~arc_indices =
    let arc_indices = match arc_indices with [] -> None | l -> Some l in
    List.map snd (S.initial_cells ~arcs ~headings ?arc_indices ())
  in
  let pos_opt n = if n <= 0 then None else Some n in
  let backreach =
    match backreach_table with
    | None -> None
    | Some path -> (
        match Nncs_backreach.Backreach.load path with
        | Ok table ->
            if not quiet then
              Printf.eprintf "nncs_serve: backreach table %s (%d unsafe)\n%!"
                path
                (Nncs_backreach.Backreach.num_unsafe table);
            Some table
        | Error reason ->
            Printf.eprintf "nncs_serve: cannot load backreach table %s: %s\n%!"
              path reason;
            exit 2)
  in
  let config =
    {
      Server.dispatchers;
      cache =
        (if abs_cache <= 0 then None
         else
           Some
             {
               Nncs_nnabs.Cache.capacity = abs_cache;
               quantum = abs_cache_quantum;
               shards = abs_cache_shards;
             });
      memo_path = memo;
      memo_capacity = pos_opt memo_capacity;
      max_queue = pos_opt max_queue;
      max_line_bytes;
      job_deadline_s = (if job_deadline <= 0.0 then None else Some job_deadline);
      backreach;
    }
  in
  let server = Server.create config ~make_system ~make_cells in
  Fun.protect
    ~finally:(fun () -> Server.close server)
    (fun () ->
      match socket with
      | None -> serve_stdio server
      | Some path -> serve_socket server path quiet);
  0

open Cmdliner

let dir =
  Arg.(value & opt string "data" & info [ "dir" ] ~doc:"Network cache directory.")

let tiny =
  Arg.(
    value & flag
    & info [ "tiny-models" ]
        ~doc:"Train deliberately tiny policy tables and networks (CI \
              smoke tests; verdicts are meaningless).")

let dispatchers =
  Arg.(
    value & opt int 1
    & info [ "dispatchers" ]
        ~doc:"Concurrent jobs; each job may additionally run with its \
              own per-job $(b,workers) domains.")

let abs_cache =
  Arg.(
    value & opt int 65536
    & info [ "abs-cache" ]
        ~doc:"Process-wide F# memo table capacity (entries), shared by \
              every job and dispatcher; 0 disables caching.")

let abs_cache_quantum =
  Arg.(
    value & opt float 0.0
    & info [ "abs-cache-quantum" ]
        ~doc:"Outward quantization grid of the cache key (0 caches exact \
              boxes only, keeping served verdicts bitwise-identical to \
              uncached runs).")

let abs_cache_shards =
  Arg.(
    value
    & opt int Nncs_nnabs.Cache.default_config.Nncs_nnabs.Cache.shards
    & info [ "abs-cache-shards" ]
        ~doc:"Independently locked shards of the F# memo table.")

let memo =
  Arg.(
    value
    & opt (some string) None
    & info [ "memo" ]
        ~doc:"Back the fingerprint-keyed verdict memo with this JSONL \
              journal: replayed on startup, appended on every new \
              verdict, compacted when evictions bloat it.  Only valid \
              for one network set.")

let memo_capacity =
  Arg.(
    value & opt int 0
    & info [ "memo-capacity" ]
        ~doc:"Bound the verdict memo to this many entries (LRU \
              eviction); 0 means unbounded.")

let max_queue =
  Arg.(
    value & opt int 0
    & info [ "max-queue" ]
        ~doc:"Shed jobs with an overloaded error once this many are \
              queued in a session; 0 means unbounded.")

let max_line_bytes =
  Arg.(
    value
    & opt int Server.default_config.Server.max_line_bytes
    & info [ "max-line-bytes" ]
        ~doc:"Discard request lines longer than this many bytes with an \
              error event instead of buffering them.")

let job_deadline =
  Arg.(
    value & opt float 0.0
    & info [ "job-deadline" ]
        ~doc:"Cancel any job still running after this many seconds \
              (server-side straggler watchdog); 0 disables it.")

let backreach_table =
  Arg.(
    value
    & opt (some string) None
    & info [ "backreach-table" ]
        ~doc:"Load a quantized backreachability table (built by \
              $(b,acasxu_verify --backreach)) and answer lookup \
              requests from it, ahead of every other tier.  Only valid \
              for the network set this server runs.")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ]
        ~doc:"Listen on this Unix-domain socket instead of stdin/stdout \
              (one JSONL session per connection; a shutdown request \
              stops the server, end-of-stream only ends the session).")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No startup banner.")

let cmd =
  Cmd.v
    (Cmd.info "nncs_serve"
       ~doc:"Resident multi-query verification server for the ACAS Xu \
             closed loop")
    Term.(
      const run $ dir $ tiny $ dispatchers $ abs_cache $ abs_cache_quantum
      $ abs_cache_shards $ memo $ memo_capacity $ max_queue $ max_line_bytes
      $ job_deadline $ backreach_table $ socket $ quiet)

let () = exit (Cmd.eval' cmd)
