(* Reads a JSONL trace produced by `acasxu_verify --trace` (or any
   Nncs_obs.Trace dump) and prints a phase-level time breakdown and a
   per-worker utilization table.  Phase time is *self* time (a span's
   duration minus its direct children), so the breakdown partitions the
   traced wall time instead of double-counting nested phases. *)

module Json = Nncs_obs.Json
module Trace = Nncs_obs.Trace

type parsed = {
  spans : Trace.event list;
  counters : (string * int) list;
  hists : (string * (int * float * float * float)) list;
  wall : float option;  (* from the meta line *)
}

let parse_file path =
  let ic = open_in path in
  let spans = ref [] and counters = ref [] and hists = ref [] in
  let wall = ref None in
  let lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          Stdlib.incr lineno;
          if String.trim line <> "" then begin
            let located f =
              try f ()
              with Json.Parse_error msg ->
                failwith (Printf.sprintf "%s:%d: %s" path !lineno msg)
            in
            let j = located (fun () -> Json.of_string line) in
            match Json.member "t" j with
            | Some (Json.Str "span") ->
                spans := located (fun () -> Trace.event_of_json j) :: !spans
            | Some (Json.Str "counter") ->
                let name = Json.to_str (Option.get (Json.member "name" j)) in
                let v = Json.to_int (Option.get (Json.member "value" j)) in
                counters := (name, v) :: !counters
            | Some (Json.Str "hist") ->
                let get k = Option.get (Json.member k j) in
                hists :=
                  ( Json.to_str (get "name"),
                    ( Json.to_int (get "count"),
                      Json.to_float (get "sum"),
                      Json.to_float (get "min"),
                      Json.to_float (get "max") ) )
                  :: !hists
            | Some (Json.Str "meta") ->
                wall := Option.map Json.to_float (Json.member "wall_end" j)
            | _ -> ()
          end
        done;
        assert false
      with End_of_file ->
        {
          spans = List.rev !spans;
          counters = List.rev !counters;
          hists = List.rev !hists;
          wall = !wall;
        })

let wall_clock p =
  match p.wall with
  | Some w when w > 0.0 -> w
  | _ ->
      (* fall back to the span envelope *)
      List.fold_left
        (fun acc (e : Trace.event) -> Float.max acc (e.Trace.ts +. e.Trace.dur))
        0.0 p.spans

(* aggregate [(key, count, dur_total, self_total)] sorted by self desc *)
let aggregate key spans =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (e : Trace.event) ->
      let k = key e in
      let count, dur, self =
        Option.value (Hashtbl.find_opt tbl k) ~default:(0, 0.0, 0.0)
      in
      Hashtbl.replace tbl k (count + 1, dur +. e.Trace.dur, self +. e.Trace.self))
    spans;
  Hashtbl.fold (fun k (c, d, s) acc -> (k, c, d, s) :: acc) tbl []
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare b a)

let print_phase_table p wall =
  Printf.printf "== phase breakdown (self time) ==\n";
  Printf.printf "%-18s %10s %12s %12s %9s %12s\n" "phase" "count" "total(s)"
    "self(s)" "% wall" "mean(ms)";
  let rows = aggregate (fun e -> e.Trace.name) p.spans in
  List.iter
    (fun (name, count, dur, self) ->
      Printf.printf "%-18s %10d %12.3f %12.3f %9.1f %12.3f\n" name count dur
        self
        (if wall > 0.0 then 100.0 *. self /. wall else 0.0)
        (1000.0 *. dur /. float_of_int count))
    rows;
  let traced = List.fold_left (fun a (_, _, _, s) -> a +. s) 0.0 rows in
  Printf.printf "%-18s %10d %12s %12.3f %9.1f\n" "(total)"
    (List.length p.spans) "" traced
    (if wall > 0.0 then 100.0 *. traced /. wall else 0.0);
  traced

let print_worker_table p wall =
  Printf.printf "\n== per-worker utilization ==\n";
  Printf.printf "%-8s %10s %12s %9s\n" "domain" "spans" "busy(s)" "util%";
  let rows = aggregate (fun e -> string_of_int e.Trace.dom) p.spans in
  List.iter
    (fun (dom, count, _, self) ->
      Printf.printf "%-8s %10d %12.3f %9.1f\n" dom count self
        (if wall > 0.0 then 100.0 *. self /. wall else 0.0))
    (List.sort (fun (a, _, _, _) (b, _, _, _) -> compare (int_of_string a) (int_of_string b)) rows);
  List.length rows

let print_metrics p =
  if p.counters <> [] then begin
    Printf.printf "\n== counters ==\n";
    List.iter
      (fun (name, v) -> Printf.printf "%-28s %12d\n" name v)
      (List.sort compare p.counters)
  end;
  if p.hists <> [] then begin
    Printf.printf "\n== histograms ==\n";
    Printf.printf "%-28s %10s %12s %10s %10s %10s\n" "name" "count" "sum" "min"
      "max" "mean";
    List.iter
      (fun (name, (count, sum, min_, max_)) ->
        Printf.printf "%-28s %10d %12.1f %10.1f %10.1f %10.2f\n" name count sum
          min_ max_
          (if count > 0 then sum /. float_of_int count else 0.0))
      (List.sort compare p.hists)
  end

let run path =
  match parse_file path with
  | exception Failure msg ->
      Printf.eprintf "%s\n" msg;
      1
  | p ->
  if p.spans = [] && p.counters = [] && p.hists = [] then begin
    Printf.eprintf "%s: no trace events\n" path;
    1
  end
  else begin
    let wall = wall_clock p in
    Printf.printf "trace: %s\n" path;
    Printf.printf "wall clock: %.3f s, %d span events\n\n" wall
      (List.length p.spans);
    let traced = print_phase_table p wall in
    let workers = print_worker_table p wall in
    if workers > 0 && wall > 0.0 then
      Printf.printf "(%d domain%s; aggregate busy %.3f s = %.1f%% of %d x wall)\n"
        workers
        (if workers = 1 then "" else "s")
        traced
        (100.0 *. traced /. (float_of_int workers *. wall))
        workers;
    print_metrics p;
    0
  end

open Cmdliner

let trace_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE.jsonl" ~doc:"JSONL trace to analyze.")

let cmd =
  Cmd.v
    (Cmd.info "trace_report"
       ~doc:"Phase-level time breakdown and per-worker utilization of a JSONL trace")
    Term.(const run $ trace_file)

let () = exit (Cmd.eval' cmd)
