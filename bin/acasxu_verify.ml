(* Command-line verification driver: reproduces the Section 7 experiment
   at a configurable scale — ribbon partition of the initial states,
   per-cell reachability with split refinement, coverage accounting and
   a per-arc summary (the data behind Fig. 9a/9b).

   Resilience: per-cell budgets (--cell-deadline and friends) bound the
   damage of pathological cells; --journal checkpoints every finished
   cell to a JSONL file and --resume restarts an interrupted run without
   recomputing them. *)

module S = Nncs_acasxu.Scenario
module T = Nncs_acasxu.Training
module P = Nncs_acasxu.Policy
module Verify = Nncs.Verify
module Reach = Nncs.Reach
module Budget = Nncs_resilience.Budget
module Journal = Nncs_resilience.Journal
module Backreach = Nncs_backreach.Backreach
module B = Nncs_interval.Box

(* The quantized backreach domain (DESIGN.md §16): x/y span the sensor
   circle (beyond it the intruder has left — out-of-domain escape is
   sound to drop), psi spans every heading cell the partition can emit
   ([0, 3pi), see Scenario.initial_cells) with a one-pi margin on each
   side, and the speeds are the scenario's point values. *)
let backreach_domain () =
  let r = Nncs_acasxu.Defs.sensor_range_ft in
  let pi = Float.pi in
  B.of_bounds
    [|
      (-.r, r);
      (-.r, r);
      (-.pi, 4.0 *. pi);
      (Nncs_acasxu.Defs.v_own_fps, Nncs_acasxu.Defs.v_own_fps);
      (Nncs_acasxu.Defs.v_int_fps, Nncs_acasxu.Defs.v_int_fps);
    |]

let run_backreach ~reach ~workers ~grid ~table_path ~quiet sys =
  let gx, gy, gpsi =
    match grid with
    | [ gx; gy; gpsi ] when gx > 0 && gy > 0 && gpsi > 0 -> (gx, gy, gpsi)
    | _ ->
        Printf.eprintf
          "error: --backreach-grid wants three positive integers GX,GY,GPSI\n%!";
        exit 2
  in
  let bcfg =
    {
      (Backreach.default_config ~domain:(backreach_domain ())
         ~grid:[| gx; gy; gpsi; 1; 1 |])
      with
      Backreach.reach;
      workers;
    }
  in
  let fp = Backreach.fingerprint bcfg sys in
  let table =
    match table_path with
    | Some path when Sys.file_exists path -> (
        match Backreach.load path with
        | Error reason ->
            Printf.eprintf "error: cannot load backreach table %s: %s\n%!" path
              reason;
            exit 2
        | Ok t ->
            if Backreach.table_fingerprint t <> fp then begin
              Printf.eprintf
                "error: backreach table %s has fingerprint %s but this run's \
                 is %s\n\
                 (different domain, grid, networks or analysis \
                 configuration) — delete it or rerun with the original \
                 settings.\n\
                 %!"
                path
                (Backreach.table_fingerprint t)
                fp;
              exit 2
            end;
            if not quiet then
              Printf.eprintf "backreach: loaded table %s\n%!" path;
            t)
    | _ ->
        let journal = Option.map (fun p -> p ^ ".journal") table_path in
        let resume =
          match journal with Some j -> Sys.file_exists j | None -> false
        in
        let progress =
          if quiet then None
          else
            Some
              (fun ~done_states ~total ->
                if done_states mod 64 = 0 || done_states = total then
                  Printf.eprintf "\rbackreach %d/%d states...%!" done_states
                    total)
        in
        let t = Backreach.build ?journal ~resume ?progress bcfg sys in
        if not quiet then Printf.eprintf "\n%!";
        Option.iter (fun p -> Backreach.save_table t p) table_path;
        t
  in
  Printf.printf
    "# backreach: %d/%d states unsafe, %d sweep(s), %d failed, %d escaped, \
     %.1f s\n"
    (Backreach.num_unsafe table)
    (Backreach.num_states table)
    (Backreach.sweeps table)
    (Backreach.failed_states table)
    (Backreach.escaped_states table)
    (Backreach.build_seconds table);
  table

let run_cross_check table report =
  let cc = Backreach.check_forward table report in
  Printf.printf
    "# cross-check: %d safe + %d unsafe cell(s) compared, %d skipped, %d \
     disagreement(s)\n"
    cc.Backreach.checked_safe cc.Backreach.checked_unsafe cc.Backreach.skipped
    (List.length cc.Backreach.findings);
  List.iter
    (fun f ->
      Printf.printf "# oracle_disagreement: %s\n"
        (Nncs_obs.Json.to_string (Backreach.finding_to_json f)))
    cc.Backreach.findings;
  if cc.Backreach.findings = [] then 0 else 3

let run dir arcs headings arc_sel gamma msteps order domain nn_splits
    max_depth workers scheduler batch_leaves abs_cache abs_cache_quantum
    abs_cache_shards cell_deadline cell_ode_budget cell_state_budget
    journal_path resume tiny csv trace backreach backreach_table
    backreach_grid cross_check quiet =
  let _, networks =
    if tiny then
      T.load_or_train ~spec:T.tiny_spec ~policy_config:T.tiny_policy_config
        ~dir ()
    else T.load_or_train ~dir ()
  in
  let domain = Nncs_nnabs.Transformer.domain_of_string domain in
  let sys = S.system ~networks ~domain ~nn_splits () in
  let arc_indices = match arc_sel with [] -> None | l -> Some l in
  let cells = S.initial_cells ~arcs ~headings ?arc_indices () in
  let total = List.length cells in
  let config =
    {
      Verify.reach =
        {
          Reach.default_config with
          integration_steps = msteps;
          taylor_order = order;
          gamma;
          keep_sets = false;
          abs_cache =
            (if abs_cache <= 0 then None
             else
               Some
                 {
                   Nncs_nnabs.Cache.capacity = abs_cache;
                   quantum = abs_cache_quantum;
                   shards = abs_cache_shards;
                 });
        };
      strategy = Verify.All_dims [ Nncs_acasxu.Defs.ix; Nncs_acasxu.Defs.iy; Nncs_acasxu.Defs.ipsi ];
      max_depth;
      workers;
      limits =
        {
          Budget.deadline_s = cell_deadline;
          max_ode_steps = cell_ode_budget;
          max_symstates = cell_state_budget;
        };
      degrade = true;
      scheduler;
      batch_leaves;
    }
  in
  let states = List.map snd cells in
  let fp = Verify.fingerprint ~config sys states in
  (* checkpoint/resume: load finished cells (and, under the leaf
     scheduler, journaled terminal leaves of interrupted cells) from the
     journal, then keep appending to it as new work finishes.  A journal
     written for a different partition, spec or analysis config is
     refused: its cell indices and verdicts would be meaningless here. *)
  let resumed =
    match journal_path with
    | Some path when resume && Sys.file_exists path -> (
        let j = Verify.load_journal path in
        match (j.Verify.meta_fingerprint, j.Verify.meta_total) with
        | Some fp', _ when fp' <> fp ->
            Printf.eprintf
              "error: journal %s has problem fingerprint %s but this run's \
               is %s\n\
               (different partition, spec or analysis configuration) — \
               refusing --resume.\n\
               Delete the journal or rerun with the original settings.\n%!"
              path fp' fp;
            Error 2
        | _, Some t when t <> total ->
            Printf.eprintf
              "error: journal %s is for a %d-cell partition, this run has \
               %d: refusing --resume\n%!"
              path t total;
            Error 2
        | mfp, _ ->
            if mfp = None then
              Printf.eprintf
                "warning: journal %s predates problem fingerprints; \
                 resuming without the compatibility check\n%!"
                path;
            let completed =
              List.filter
                (fun c -> c.Verify.index < total)
                j.Verify.completed_cells
            in
            let partial =
              List.filter (fun (i, _) -> i < total) j.Verify.partial_leaves
            in
            if not quiet then
              Printf.eprintf
                "resumed %d cell(s) and %d mid-cell leaf group(s) from \
                 journal %s\n\
                 %!"
                (List.length completed) (List.length partial) path;
            Ok (completed, partial))
    | _ -> Ok ([], [])
  in
  match resumed with
  | Error code -> code
  | Ok (completed, partial) ->
  let writer =
    match journal_path with
    | None -> None
    | Some path ->
        let append = completed <> [] || partial <> [] in
        let w = Journal.create ~append path in
        if not append then
          Journal.write w (Verify.journal_meta ~total ~fingerprint:fp);
        Some w
  in
  let on_cell =
    Option.map
      (fun w c -> Journal.write w (Verify.cell_report_to_json c))
      writer
  in
  let on_leaf =
    (* mid-cell checkpoints only matter under the leaf scheduler (the
       cell scheduler never fires the hook) *)
    Option.map
      (fun w cell path leaf ->
        Journal.write w (Verify.leaf_record_to_json ~cell ~path leaf))
      writer
  in
  let progress =
    if quiet then None
    else
      Some
        (fun d t ->
          if d mod 25 = 0 || d = t then Printf.eprintf "\r%d/%d cells...%!" d t)
  in
  (* start the trace epoch after network loading/training so the wall
     clock of the dump covers exactly the verification run *)
  if trace <> None then Nncs_obs.Trace.enable ();
  let report =
    Verify.verify_partition ~config ?progress ?on_cell ?on_leaf ~completed
      ~partial sys states
  in
  Option.iter Journal.close writer;
  (match trace with
  | None -> ()
  | Some path ->
      Nncs_obs.Trace.disable ();
      Nncs_obs.Trace.write_file ~extra:(Nncs_obs.Metrics.jsonl_lines ()) path;
      if not quiet then
        Printf.eprintf "trace written to %s (dune exec bin/trace_report.exe -- %s)\n%!"
          path path);
  if not quiet then Printf.eprintf "\n%!";
  (* aggregate per arc *)
  let arcs_seen = List.sort_uniq compare (List.map fst cells) in
  let cell_arc = Array.of_list (List.map fst cells) in
  Printf.printf "# arc  bearing_deg  coverage_pct  time_s\n";
  List.iter
    (fun arc ->
      let mine =
        List.filter (fun c -> cell_arc.(c.Verify.index) = arc) report.Verify.cells
      in
      let cov = Verify.coverage_of_cells mine in
      let time =
        List.fold_left
          (fun a (c : Verify.cell_report) -> a +. c.Verify.elapsed)
          0.0 mine
      in
      Printf.printf "%4d  %10.1f  %11.2f  %7.2f\n" arc
        (S.arc_center_angle ~arcs arc *. 180.0 /. Float.pi)
        cov time)
    arcs_seen;
  Printf.printf "# overall coverage c = %.2f%%  (%d/%d cells fully proved, %d unknown, %.1f s)\n"
    report.Verify.coverage report.Verify.proved_cells report.Verify.total_cells
    report.Verify.unknown_cells report.Verify.elapsed;
  (* surface the failure reasons so Unknown cells are actionable *)
  let failures =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun l ->
            Option.map
              (fun f -> (c.Verify.index, Nncs_resilience.Failure.to_string f))
              (Verify.leaf_failure l))
          c.Verify.leaves)
      report.Verify.cells
  in
  if failures <> [] then begin
    Printf.printf "# unknown leaves:\n";
    List.iter
      (fun (i, reason) -> Printf.printf "#   cell %d: %s\n" i reason)
      failures
  end;
  (match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "index,arc,proved_fraction,unknown,elapsed_s\n";
      List.iter
        (fun c ->
          Printf.fprintf oc "%d,%d,%.6f,%d,%.4f\n" c.Verify.index
            cell_arc.(c.Verify.index) c.Verify.proved_fraction
            (if Verify.cell_has_failure c then 1 else 0)
            c.Verify.elapsed)
        report.Verify.cells;
      close_out oc);
  (* the backreachability oracle (DESIGN.md §16): build or load the
     quantized backward fixed point, then optionally replay the forward
     verdicts against it — any disagreement is evidence of a bug in one
     of the two analyses and fails the run with exit code 3 *)
  if backreach || backreach_table <> None || cross_check then begin
    let table =
      run_backreach ~reach:config.Verify.reach ~workers ~grid:backreach_grid
        ~table_path:backreach_table ~quiet sys
    in
    if cross_check then run_cross_check table report else 0
  end
  else 0

open Cmdliner

let dir = Arg.(value & opt string "data" & info [ "dir" ] ~doc:"Network cache directory.")
let arcs = Arg.(value & opt int 36 & info [ "arcs" ] ~doc:"Arcs on the sensor circle.")
let headings = Arg.(value & opt int 12 & info [ "headings" ] ~doc:"Heading cells per arc.")

let arc_sel =
  Arg.(value & opt (list int) [] & info [ "arc-indices" ] ~doc:"Only these arcs.")

let gamma = Arg.(value & opt int 5 & info [ "gamma" ] ~doc:"Symbolic-state threshold (Algorithm 2).")
let msteps = Arg.(value & opt int 10 & info [ "m" ] ~doc:"Integration steps per period (Algorithm 1).")
let order = Arg.(value & opt int 6 & info [ "order" ] ~doc:"Taylor order.")

let domain =
  Arg.(value & opt string "symbolic" & info [ "domain" ] ~doc:"NN abstraction: interval|symbolic|affine.")

let nn_splits = Arg.(value & opt int 0 & info [ "nn-splits" ] ~doc:"Input bisections in F#.")
let max_depth = Arg.(value & opt int 2 & info [ "max-depth" ] ~doc:"Split-refinement depth.")
let workers = Arg.(value & opt int 1 & info [ "workers" ] ~doc:"Parallel domains.")

let scheduler =
  Arg.(
    value
    & opt (enum [ ("cells", Verify.Cells); ("leaves", Verify.Leaves) ]) Verify.Cells
    & info [ "scheduler" ]
        ~doc:
          "Work scheduler: $(b,cells) (one task per partition cell) or \
           $(b,leaves) (work-stealing leaf frontier — refinement children \
           of a hard cell fan out across all workers; enables mid-cell \
           --resume).  Verdicts and coverage are identical either way.")

let batch_leaves =
  Arg.(
    value & opt int 1
    & info [ "batch-leaves" ]
        ~doc:
          "With --scheduler=leaves: number of compatible frontier leaves a \
           worker drains per pull and runs in lockstep, sharing batched F# \
           kernel calls.  Verdicts, leaf sets and journal records are \
           byte-identical at every value; 1 (the default) is the scalar \
           path.")

let abs_cache =
  Arg.(
    value & opt int 0
    & info [ "abs-cache" ]
        ~doc:"F# memo table capacity (entries), shared by all worker \
              domains; 0 disables caching and leaves the abstraction \
              bitwise-unchanged.")

let abs_cache_quantum =
  Arg.(
    value
    & opt float Nncs_nnabs.Cache.default_config.Nncs_nnabs.Cache.quantum
    & info [ "abs-cache-quantum" ]
        ~doc:"Outward quantization grid of the cache key, in normalised \
              network-input units; hits return a sound superset of the \
              exact F# box.  0 caches exact boxes only.")

let abs_cache_shards =
  Arg.(
    value
    & opt int Nncs_nnabs.Cache.default_config.Nncs_nnabs.Cache.shards
    & info [ "abs-cache-shards" ]
        ~doc:"Independently locked shards of the process-wide F# memo \
              table (1 = a single exactly-LRU table).")

let cell_deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "cell-deadline" ]
        ~doc:"Wall-clock budget per cell in seconds; an over-budget cell \
              degrades to Unknown instead of stalling the run.")

let cell_ode_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "cell-ode-budget" ]
        ~doc:"Max validated-integration sub-steps per cell.")

let cell_state_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "cell-state-budget" ]
        ~doc:"Max symbolic states per control step per cell.")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ]
        ~doc:"Append each finished cell's verdict to this JSONL file \
              (checkpoint for --resume).")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:"With --journal: skip cells already recorded in the journal \
              and continue appending to it.")

let tiny =
  Arg.(
    value & flag
    & info [ "tiny-models" ]
        ~doc:"Train deliberately tiny policy tables and networks (CI \
              smoke tests; verdicts are meaningless).")

let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write per-cell results to CSV.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"Record a JSONL span/metrics trace of the run (read it with trace_report).")

let backreach =
  Arg.(
    value & flag
    & info [ "backreach" ]
        ~doc:"Build the quantized unsafe-backreach table (Bak-Tran \
              backward fixed point) after the forward run and print its \
              summary.")

let backreach_table =
  Arg.(
    value
    & opt (some string) None
    & info [ "backreach-table" ]
        ~doc:"Persist the backreach table to this JSONL file (implies \
              $(b,--backreach)).  If the file already exists it is \
              loaded instead of rebuilt (its fingerprint must match); \
              during a build, FILE.journal checkpoints every computed \
              transition so an interrupted build resumes mid-sweep.")

let backreach_grid =
  Arg.(
    value
    & opt (list int) [ 16; 16; 8 ]
    & info [ "backreach-grid" ]
        ~doc:"Quantization grid GX,GY,GPSI over (x, y, psi); the speed \
              dimensions are points.")

let cross_check =
  Arg.(
    value & flag
    & info [ "cross-check" ]
        ~doc:"Replay every forward cell verdict against the backreach \
              table (implies $(b,--backreach)); any oracle_disagreement \
              finding is printed and the run exits with code 3.")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output.")

let cmd =
  Cmd.v
    (Cmd.info "acasxu_verify" ~doc:"Verify the ACAS Xu closed loop by reachability")
    Term.(
      const run $ dir $ arcs $ headings $ arc_sel $ gamma $ msteps $ order
      $ domain $ nn_splits $ max_depth $ workers $ scheduler $ batch_leaves
      $ abs_cache $ abs_cache_quantum $ abs_cache_shards $ cell_deadline
      $ cell_ode_budget $ cell_state_budget $ journal $ resume $ tiny $ csv
      $ trace $ backreach $ backreach_table $ backreach_grid $ cross_check
      $ quiet)

let () = exit (Cmd.eval' cmd)
