(* Command-line verification driver: reproduces the Section 7 experiment
   at a configurable scale — ribbon partition of the initial states,
   per-cell reachability with split refinement, coverage accounting and
   a per-arc summary (the data behind Fig. 9a/9b). *)

module S = Nncs_acasxu.Scenario
module T = Nncs_acasxu.Training
module Verify = Nncs.Verify
module Reach = Nncs.Reach

let run dir arcs headings arc_sel gamma msteps order domain nn_splits
    max_depth workers csv trace quiet =
  let _, networks = T.load_or_train ~dir () in
  let domain = Nncs_nnabs.Transformer.domain_of_string domain in
  let sys = S.system ~networks ~domain ~nn_splits () in
  let arc_indices = match arc_sel with [] -> None | l -> Some l in
  let cells = S.initial_cells ~arcs ~headings ?arc_indices () in
  let config =
    {
      Verify.reach =
        {
          Reach.default_config with
          integration_steps = msteps;
          taylor_order = order;
          gamma;
          keep_sets = false;
        };
      strategy = Verify.All_dims [ Nncs_acasxu.Defs.ix; Nncs_acasxu.Defs.iy; Nncs_acasxu.Defs.ipsi ];
      max_depth;
      workers;
    }
  in
  let states = List.map snd cells in
  let progress =
    if quiet then None
    else
      Some
        (fun d t ->
          if d mod 25 = 0 || d = t then Printf.eprintf "\r%d/%d cells...%!" d t)
  in
  (* start the trace epoch after network loading/training so the wall
     clock of the dump covers exactly the verification run *)
  if trace <> None then Nncs_obs.Trace.enable ();
  let report = Verify.verify_partition ~config ?progress sys states in
  (match trace with
  | None -> ()
  | Some path ->
      Nncs_obs.Trace.disable ();
      Nncs_obs.Trace.write_file ~extra:(Nncs_obs.Metrics.jsonl_lines ()) path;
      if not quiet then
        Printf.eprintf "trace written to %s (dune exec bin/trace_report.exe -- %s)\n%!"
          path path);
  if not quiet then Printf.eprintf "\n%!";
  (* aggregate per arc *)
  let arcs_seen = List.sort_uniq compare (List.map fst cells) in
  let cell_arc = Array.of_list (List.map fst cells) in
  Printf.printf "# arc  bearing_deg  coverage_pct  time_s\n";
  List.iter
    (fun arc ->
      let mine =
        List.filter (fun c -> cell_arc.(c.Verify.index) = arc) report.Verify.cells
      in
      let cov = Verify.coverage_of_cells mine in
      let time =
        List.fold_left
          (fun a (c : Verify.cell_report) -> a +. c.Verify.elapsed)
          0.0 mine
      in
      Printf.printf "%4d  %10.1f  %11.2f  %7.2f\n" arc
        (S.arc_center_angle ~arcs arc *. 180.0 /. Float.pi)
        cov time)
    arcs_seen;
  Printf.printf "# overall coverage c = %.2f%%  (%d/%d cells fully proved, %.1f s)\n"
    report.Verify.coverage report.Verify.proved_cells report.Verify.total_cells
    report.Verify.elapsed;
  (match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "index,arc,proved_fraction,elapsed_s\n";
      List.iter
        (fun c ->
          Printf.fprintf oc "%d,%d,%.6f,%.4f\n" c.Verify.index
            cell_arc.(c.Verify.index) c.Verify.proved_fraction c.Verify.elapsed)
        report.Verify.cells;
      close_out oc);
  0

open Cmdliner

let dir = Arg.(value & opt string "data" & info [ "dir" ] ~doc:"Network cache directory.")
let arcs = Arg.(value & opt int 36 & info [ "arcs" ] ~doc:"Arcs on the sensor circle.")
let headings = Arg.(value & opt int 12 & info [ "headings" ] ~doc:"Heading cells per arc.")

let arc_sel =
  Arg.(value & opt (list int) [] & info [ "arc-indices" ] ~doc:"Only these arcs.")

let gamma = Arg.(value & opt int 5 & info [ "gamma" ] ~doc:"Symbolic-state threshold (Algorithm 2).")
let msteps = Arg.(value & opt int 10 & info [ "m" ] ~doc:"Integration steps per period (Algorithm 1).")
let order = Arg.(value & opt int 6 & info [ "order" ] ~doc:"Taylor order.")

let domain =
  Arg.(value & opt string "symbolic" & info [ "domain" ] ~doc:"NN abstraction: interval|symbolic|affine.")

let nn_splits = Arg.(value & opt int 0 & info [ "nn-splits" ] ~doc:"Input bisections in F#.")
let max_depth = Arg.(value & opt int 2 & info [ "max-depth" ] ~doc:"Split-refinement depth.")
let workers = Arg.(value & opt int 1 & info [ "workers" ] ~doc:"Parallel domains.")
let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write per-cell results to CSV.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"Record a JSONL span/metrics trace of the run (read it with trace_report).")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No progress output.")

let cmd =
  Cmd.v
    (Cmd.info "acasxu_verify" ~doc:"Verify the ACAS Xu closed loop by reachability")
    Term.(
      const run $ dir $ arcs $ headings $ arc_sel $ gamma $ msteps $ order
      $ domain $ nn_splits $ max_depth $ workers $ csv $ trace $ quiet)

let () = exit (Cmd.eval' cmd)
