(* nncs_lint — the repo's soundness & concurrency static analysis.

   Usage:
     nncs_lint [PATHS...]                     lint (default: lib bin)
     nncs_lint --baseline lint_baseline.json  warn on baselined findings,
                                              fail on new P1 findings
     nncs_lint --update-baseline              rewrite the baseline from
                                              the current findings
     nncs_lint --prune-stale                  drop stale baseline budget
                                              (deleted files, fixed sites)
     nncs_lint --json report.jsonl            machine-readable report
                                              (findings + per-file timing)
     nncs_lint --workers N                    lint on N domains
     nncs_lint --bench-out BENCH_lint.json    runtime/finding-count record

   Exit codes: 0 clean / only baselined or P2 findings; 1 new P1
   findings (with --strict: any new finding); 2 usage or I/O error.

   The linter typechecks every file against the cmis under _build, so
   run `dune build` before linting a fresh checkout. *)

module L = Nncs_lint
module Json = Nncs_obs.Json

let usage = "nncs_lint [options] [paths]  (default paths: lib bin)"

let () =
  let baseline_path = ref "" in
  let update_baseline = ref false in
  let prune_stale = ref false in
  let json_path = ref "" in
  let bench_path = ref "" in
  let workers = ref (min 8 (Domain.recommended_domain_count ())) in
  let strict = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE compare findings against this baseline" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline file from the current findings" );
      ( "--prune-stale",
        Arg.Set prune_stale,
        " rewrite the baseline with stale budget removed (needs --baseline)" );
      ( "--json",
        Arg.Set_string json_path,
        "FILE write a JSONL report (findings + per-file wall-clock)" );
      ( "--bench-out",
        Arg.Set_string bench_path,
        "FILE write a BENCH_lint.json runtime record" );
      ( "--workers",
        Arg.Set_int workers,
        "N lint files on N domains (default: min(8, host cores))" );
      ("--strict", Arg.Set strict, " fail on new P2 findings too");
      ("--quiet", Arg.Set quiet, " only print the summary");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let roots = if !paths = [] then [ "lib"; "bin" ] else List.rev !paths in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "nncs_lint: no such path %s (run from the repo root)\n"
          r;
        exit 2
      end)
    roots;
  let t0 = Nncs_obs.Clock.monotonic_s () in
  let run = L.Driver.run ~workers:(max 1 !workers) roots in
  let wall_s = Nncs_obs.Clock.monotonic_s () -. t0 in
  let findings = run.L.Driver.findings in
  let previous =
    if !baseline_path <> "" && Sys.file_exists !baseline_path then
      try L.Baseline.load !baseline_path
      with e ->
        Printf.eprintf "nncs_lint: cannot read baseline %s: %s\n"
          !baseline_path (Printexc.to_string e);
        exit 2
    else []
  in
  if !update_baseline then begin
    let path =
      if !baseline_path = "" then "lint_baseline.json" else !baseline_path
    in
    let entries = L.Baseline.of_findings ~previous findings in
    L.Baseline.save path entries;
    Printf.printf "nncs_lint: wrote %d baseline entries (%d findings) to %s\n"
      (List.length entries) (List.length findings) path;
    exit 0
  end;
  let classified, stale = L.Baseline.apply previous findings in
  let stale_kinds = L.Baseline.classify_stale stale in
  let new_p1 = ref 0 and new_p2 = ref 0 and baselined = ref 0 in
  List.iter
    (fun (f, status) ->
      match (status : L.Baseline.status) with
      | L.Baseline.New ->
          (match L.Finding.severity f.L.Finding.rule with
          | L.Finding.P1 -> incr new_p1
          | L.Finding.P2 -> incr new_p2);
          if not !quiet then
            Printf.printf "NEW  %s\n" (L.Finding.to_string f)
      | L.Baseline.Baselined reason ->
          incr baselined;
          if not !quiet then
            Printf.printf "base %s\n       baseline: %s\n"
              (L.Finding.to_string f)
              (if reason = "" then "(no reason recorded)" else reason))
    classified;
  if not !quiet then
    List.iter
      (fun ((e : L.Baseline.entry), kind) ->
        match (kind : L.Baseline.stale_kind) with
        | L.Baseline.Missing_file ->
            Printf.printf
              "stale baseline entry (file `%s` was deleted or renamed, \
               remove the entry or run --prune-stale): %s x%d\n"
              (L.Baseline.file_of_key e.key)
              e.key e.count
        | L.Baseline.Unmatched ->
            Printf.printf
              "stale baseline entry (no longer found, remove it or run \
               --prune-stale): %s x%d\n"
              e.key e.count)
      stale_kinds;
  if !prune_stale then begin
    if !baseline_path = "" then begin
      Printf.eprintf "nncs_lint: --prune-stale needs --baseline FILE\n";
      exit 2
    end;
    let pruned = L.Baseline.prune previous stale in
    L.Baseline.save !baseline_path pruned;
    Printf.printf "nncs_lint: pruned %d stale entries from %s (%d kept)\n"
      (List.length previous - List.length pruned)
      !baseline_path (List.length pruned)
  end;
  let family_counts =
    List.fold_left
      (fun acc (f, _) ->
        let fam = L.Finding.family f.L.Finding.rule in
        let cur = try List.assoc fam acc with Not_found -> 0 in
        (fam, cur + 1) :: List.remove_assoc fam acc)
      [] classified
    |> List.sort compare
  in
  if !json_path <> "" then begin
    let oc = open_out !json_path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun (path, w) ->
            output_string oc
              (Json.to_string
                 (Json.Obj
                    [
                      ("t", Json.Str "file");
                      ("path", Json.Str path);
                      ("wall_s", Json.Num w);
                    ]));
            output_char oc '\n')
          run.L.Driver.per_file;
        List.iter
          (fun (f, status) ->
            let s =
              match (status : L.Baseline.status) with
              | L.Baseline.New -> "new"
              | L.Baseline.Baselined _ -> "baselined"
            in
            output_string oc (Json.to_string (L.Finding.to_json ~status:s f));
            output_char oc '\n')
          classified;
        let summary =
          Json.Obj
            [
              ("t", Json.Str "summary");
              ("tool", Json.Str "nncs_lint");
              ("new_p1", Json.Num (float_of_int !new_p1));
              ("new_p2", Json.Num (float_of_int !new_p2));
              ("baselined", Json.Num (float_of_int !baselined));
              ("stale", Json.Num (float_of_int (List.length stale)));
              ("total", Json.Num (float_of_int (List.length classified)));
              ("files", Json.Num (float_of_int (List.length run.L.Driver.per_file)));
              ("wall_s", Json.Num wall_s);
              ("workers", Json.Num (float_of_int (max 1 !workers)));
            ]
        in
        output_string oc (Json.to_string summary);
        output_char oc '\n')
  end;
  if !bench_path <> "" then begin
    let oc = open_out !bench_path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let j =
          Json.Obj
            [
              ("bench", Json.Str "lint");
              ("tool", Json.Str "nncs_lint");
              ( "host_cores",
                Json.Num (float_of_int (Domain.recommended_domain_count ())) );
              ("workers", Json.Num (float_of_int (max 1 !workers)));
              ("files", Json.Num (float_of_int (List.length run.L.Driver.per_file)));
              ("wall_s", Json.Num wall_s);
              ("findings", Json.Num (float_of_int (List.length classified)));
              ("new_p1", Json.Num (float_of_int !new_p1));
              ("new_p2", Json.Num (float_of_int !new_p2));
              ( "families",
                Json.Obj
                  (List.map
                     (fun (fam, n) -> (fam, Json.Num (float_of_int n)))
                     family_counts) );
            ]
        in
        output_string oc (Json.to_string j);
        output_char oc '\n')
  end;
  Printf.printf
    "nncs_lint: %d findings (%d new P1, %d new P2, %d baselined, %d stale \
     baseline entries) in %.2fs over %d files\n"
    (List.length classified) !new_p1 !new_p2 !baselined (List.length stale)
    wall_s
    (List.length run.L.Driver.per_file);
  if !new_p1 > 0 || (!strict && !new_p2 > 0) then exit 1
