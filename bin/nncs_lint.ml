(* nncs_lint — the repo's soundness & concurrency static analysis.

   Usage:
     nncs_lint [PATHS...]                     lint (default: lib bin)
     nncs_lint --baseline lint_baseline.json  warn on baselined findings,
                                              fail on new P1 findings
     nncs_lint --update-baseline              rewrite the baseline from
                                              the current findings
     nncs_lint --json report.jsonl            machine-readable report

   Exit codes: 0 clean / only baselined or P2 findings; 1 new P1
   findings (with --strict: any new finding); 2 usage or I/O error. *)

module L = Nncs_lint
module Json = Nncs_obs.Json

let usage = "nncs_lint [options] [paths]  (default paths: lib bin)"

let () =
  let baseline_path = ref "" in
  let update_baseline = ref false in
  let json_path = ref "" in
  let strict = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE compare findings against this baseline" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline file from the current findings" );
      ("--json", Arg.Set_string json_path, "FILE write a JSONL report");
      ("--strict", Arg.Set strict, " fail on new P2 findings too");
      ("--quiet", Arg.Set quiet, " only print the summary");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let roots = if !paths = [] then [ "lib"; "bin" ] else List.rev !paths in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "nncs_lint: no such path %s (run from the repo root)\n"
          r;
        exit 2
      end)
    roots;
  let findings = L.Driver.lint_paths roots in
  let previous =
    if !baseline_path <> "" && Sys.file_exists !baseline_path then
      try L.Baseline.load !baseline_path
      with e ->
        Printf.eprintf "nncs_lint: cannot read baseline %s: %s\n"
          !baseline_path (Printexc.to_string e);
        exit 2
    else []
  in
  if !update_baseline then begin
    let path =
      if !baseline_path = "" then "lint_baseline.json" else !baseline_path
    in
    let entries = L.Baseline.of_findings ~previous findings in
    L.Baseline.save path entries;
    Printf.printf "nncs_lint: wrote %d baseline entries (%d findings) to %s\n"
      (List.length entries) (List.length findings) path;
    exit 0
  end;
  let classified, stale = L.Baseline.apply previous findings in
  let new_p1 = ref 0 and new_p2 = ref 0 and baselined = ref 0 in
  List.iter
    (fun (f, status) ->
      match (status : L.Baseline.status) with
      | L.Baseline.New ->
          (match L.Finding.severity f.L.Finding.rule with
          | L.Finding.P1 -> incr new_p1
          | L.Finding.P2 -> incr new_p2);
          if not !quiet then
            Printf.printf "NEW  %s\n" (L.Finding.to_string f)
      | L.Baseline.Baselined reason ->
          incr baselined;
          if not !quiet then
            Printf.printf "base %s\n       baseline: %s\n"
              (L.Finding.to_string f)
              (if reason = "" then "(no reason recorded)" else reason))
    classified;
  if (not !quiet) && stale <> [] then
    List.iter
      (fun (e : L.Baseline.entry) ->
        Printf.printf
          "stale baseline entry (no longer found, remove it): %s x%d\n" e.key
          e.count)
      stale;
  if !json_path <> "" then begin
    let oc = open_out !json_path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun (f, status) ->
            let s =
              match (status : L.Baseline.status) with
              | L.Baseline.New -> "new"
              | L.Baseline.Baselined _ -> "baselined"
            in
            output_string oc (Json.to_string (L.Finding.to_json ~status:s f));
            output_char oc '\n')
          classified;
        let summary =
          Json.Obj
            [
              ("t", Json.Str "summary");
              ("tool", Json.Str "nncs_lint");
              ("new_p1", Json.Num (float_of_int !new_p1));
              ("new_p2", Json.Num (float_of_int !new_p2));
              ("baselined", Json.Num (float_of_int !baselined));
              ("stale", Json.Num (float_of_int (List.length stale)));
              ("total", Json.Num (float_of_int (List.length classified)));
            ]
        in
        output_string oc (Json.to_string summary);
        output_char oc '\n')
  end;
  Printf.printf
    "nncs_lint: %d findings (%d new P1, %d new P2, %d baselined, %d stale \
     baseline entries)\n"
    (List.length classified) !new_p1 !new_p2 !baselined (List.length stale);
  if !new_p1 > 0 || (!strict && !new_p2 > 0) then exit 1
