(* Abstract transformers: soundness (enclosure of sampled concrete
   evaluations) for all three domains, relative tightness, and the
   split-refinement wrapper. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Rng = Nncs_linalg.Rng
module T = Nncs_nnabs.Transformer
module Sym = Nncs_nnabs.Symbolic_prop

let check = Alcotest.(check bool)

let fig4_network () =
  let hidden =
    {
      Net.weights = Mat.init 2 2 (fun i j -> [| [| -1.0; 4.0 |]; [| 3.0; -8.0 |] |].(i).(j));
      biases = [| 5.0; 6.0 |];
      activation = Act.Relu;
    }
  in
  let output =
    {
      Net.weights = Mat.init 1 2 (fun _ j -> [| -0.5; 1.0 |].(j));
      biases = [| 2.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:2 [| hidden; output |]

let random_net rng sizes = Net.create_mlp ~rng ~layer_sizes:sizes

let sample_box rng box =
  Array.init (B.dim box) (fun i ->
      let iv = B.get box i in
      Rng.uniform rng (I.lo iv) (I.hi iv))

let soundness_case domain net box rng samples =
  let out = T.propagate domain net box in
  let ok = ref true in
  for _ = 1 to samples do
    let x = sample_box rng box in
    let y = Net.eval net x in
    if not (B.contains out y) then ok := false
  done;
  !ok

let test_fig4_point () =
  let net = fig4_network () in
  let box = B.of_point [| 1.0; 2.0 |] in
  List.iter
    (fun d ->
      let out = T.propagate d net box in
      check
        (Printf.sprintf "%s contains -4" (T.domain_to_string d))
        true
        (I.contains (B.get out 0) (-4.0));
      check
        (Printf.sprintf "%s tight on point" (T.domain_to_string d))
        true
        (I.width (B.get out 0) < 1e-9))
    [ T.Interval; T.Symbolic; T.Affine ]

let test_fig4_box () =
  let net = fig4_network () in
  let box = B.of_bounds [| (0.0, 2.0); (1.0, 3.0) |] in
  let rng = Rng.create 17 in
  List.iter
    (fun d ->
      check
        (Printf.sprintf "%s sound on fig4" (T.domain_to_string d))
        true
        (soundness_case d net box rng 500))
    [ T.Interval; T.Symbolic; T.Affine ]

let test_symbolic_tighter_than_interval () =
  (* a deep random network exhibits the dependency problem: symbolic
     propagation must be significantly tighter *)
  let rng = Rng.create 23 in
  let net = random_net rng [ 4; 20; 20; 20; 3 ] in
  let box =
    B.of_bounds [| (-0.5, 0.5); (-0.5, 0.5); (-0.5, 0.5); (-0.5, 0.5) |]
  in
  let wi = B.max_width (T.propagate T.Interval net box) in
  let ws = B.max_width (T.propagate T.Symbolic net box) in
  let wa = B.max_width (T.propagate T.Affine net box) in
  check "symbolic substantially tighter" true (ws < 0.8 *. wi);
  (* affine is workload-dependent (its chord-relaxation noise symbols
     accumulate on deep unstable nets) but must stay within a small
     factor of interval; the quantitative comparison is bench E6 *)
  check "affine comparable" true (wa < 2.0 *. wi)

let test_stable_relu_exact_symbolic () =
  (* network with strictly positive pre-activations on the box: symbolic
     propagation is exact (up to rounding) because no relaxation fires *)
  let l1 =
    {
      Net.weights = Mat.init 2 2 (fun i j -> if i = j then 1.0 else 0.0);
      biases = [| 10.0; 10.0 |];
      activation = Act.Relu;
    }
  in
  let l2 =
    {
      Net.weights = Mat.init 1 2 (fun _ j -> [| 1.0; -1.0 |].(j));
      biases = [| 0.0 |];
      activation = Act.Linear;
    }
  in
  let net = Net.make ~input_dim:2 [| l1; l2 |] in
  let box = B.of_bounds [| (-1.0, 1.0); (-1.0, 1.0) |] in
  let out = T.propagate T.Symbolic net box in
  (* exact range of x - y over the box: [-2, 2] *)
  check "lower near -2" true (Float.abs (I.lo (B.get out 0) +. 2.0) < 1e-6);
  check "upper near 2" true (Float.abs (I.hi (B.get out 0) -. 2.0) < 1e-6);
  (* interval propagation gives the same here (single affine path) but
     with the dependency lost at the output layer it is still exact *)
  let wi = B.max_width (T.propagate T.Interval net box) in
  check "interval also ~4 wide" true (Float.abs (wi -. 4.0) < 1e-6)

let test_split_refinement_tightens () =
  let rng = Rng.create 31 in
  let net = random_net rng [ 2; 16; 16; 2 ] in
  let box = B.of_bounds [| (-1.0, 1.0); (-1.0, 1.0) |] in
  let w0 = B.max_width (T.propagate T.Interval net box) in
  let w2 = B.max_width (T.propagate_split T.Interval ~splits:2 net box) in
  let w4 = B.max_width (T.propagate_split T.Interval ~splits:4 net box) in
  check "2 splits tighter" true (w2 <= w0);
  check "4 splits tighter" true (w4 <= w2);
  check "strictly tighter somewhere" true (w4 < w0)

let test_meet_all_sound_and_tighter () =
  let rng = Rng.create 37 in
  let net = random_net rng [ 3; 12; 12; 2 ] in
  let box = B.of_bounds [| (-1.0, 1.0); (0.0, 1.0); (-0.2, 0.4) |] in
  let meet = T.meet_all [ T.Interval; T.Symbolic; T.Affine ] net box in
  let rng2 = Rng.create 99 in
  let ok = ref true in
  for _ = 1 to 300 do
    let x = sample_box rng2 box in
    if not (B.contains meet (Net.eval net x)) then ok := false
  done;
  check "meet sound" true !ok;
  List.iter
    (fun d ->
      check "meet within each domain" true
        (B.subset meet (T.propagate d net box)))
    [ T.Interval; T.Symbolic; T.Affine ]

let test_thin_box_sound () =
  (* regression for the inverted-bound case in Symbolic_prop.propagate:
     on thin and degenerate (zero-width) boxes the concretized lower
     bound can land above the upper one by accumulated rounding; the
     result must widen conservatively over both evaluations — the old
     endpoint swap could exclude the true value *)
  let rng = Rng.create 41 in
  for _ = 1 to 40 do
    let net = random_net rng [ 3; 14; 14; 2 ] in
    let c = Array.init 3 (fun _ -> Rng.uniform rng (-1.0) 1.0) in
    let y = Net.eval net c in
    List.iter
      (fun w ->
        let box = B.of_bounds (Array.map (fun x -> (x -. w, x +. w)) c) in
        let out = T.propagate T.Symbolic net box in
        for i = 0 to B.dim out - 1 do
          let iv = B.get out i in
          check "well-formed output interval" true (I.lo iv <= I.hi iv)
        done;
        check "contains the center evaluation" true (B.contains out y))
      [ 0.0; 1e-15; 1e-9 ]
  done

let test_inverted_hull_adversarial () =
  (* regression: the contradictory-bounds widening used round-to-nearest
     subtraction (d = lo -. hi) to measure the gap.  At adversarial
     magnitudes the rounding error of that subtraction exceeds the ulp
     nudges downstream: with lo = 2^54 and hi = 2^53 - 1 the exact gap is
     2^53 + 1, but lo -. hi rounds DOWN to 2^53 (ties-to-even), so the
     inflated hull undershoots the interval [hi - gap, lo + gap] it must
     cover.  The fix computes the gap with Rounding.sub_up. *)
  let lo = 18014398509481984.0 (* 2^54 *)
  and hi = 9007199254740991.0 (* 2^53 - 1 *) in
  let h = Sym.inverted_hull lo hi in
  (* exact gap d = 2^53 + 1; sound coverage needs lo(h) <= hi - d = -2
     (the buggy round-to-nearest gap gave lo(h) ~ -1, excluding it) *)
  check "lower endpoint covers hi - exact_gap" true (I.lo h <= -2.0);
  check "upper endpoint covers lo + exact_gap" true
    (I.hi h >= 27021597764222977.0 (* 2^54 + 2^53 + 1 *));
  check "well-formed" true (I.lo h <= I.hi h);
  (* ordinary magnitudes keep behaving: a tiny rounding contradiction
     still hulls both evaluations *)
  let h2 = Sym.inverted_hull 1.0000000000000002 1.0 in
  check "small-gap hull covers both" true
    (I.lo h2 <= 1.0 && I.hi h2 >= 1.0000000000000002)

let test_nan_poisoned_plane () =
  (* regression: eval_lower_row/eval_upper_row selected the bound
     endpoint with [c > 0.0] / [c < 0.0], so a NaN coefficient satisfied
     neither test and silently contributed NOTHING — an unsoundly finite
     bound for a plane that actually bounds nothing.  Non-finite
     coefficients must poison the whole row to an infinite bound. *)
  let box = B.of_bounds [| (-1.0, 1.0); (2.0, 3.0) |] in
  let bounds c = Sym.Internal.row_bounds box ~c ~k:0.0 ~e:0.0 in
  (* sanity: a finite row gives finite bounds *)
  let flo, fhi = bounds [| 1.0; -2.0 |] in
  check "finite row finite lower" true (Float.is_finite flo);
  check "finite row finite upper" true (Float.is_finite fhi);
  (* NaN coefficient: both bounds must blow to infinity *)
  let nlo, nhi = bounds [| 1.0; Float.nan |] in
  check "nan row lower = -inf" true (nlo = Float.neg_infinity);
  check "nan row upper = +inf" true (nhi = Float.infinity);
  (* infinite coefficient likewise (0 * inf = nan would otherwise leak) *)
  let ilo, ihi = bounds [| Float.infinity; 1.0 |] in
  check "inf row lower = -inf" true (ilo = Float.neg_infinity);
  check "inf row upper = +inf" true (ihi = Float.infinity)

let test_nan_weight_network_sound () =
  (* end-to-end: a NaN weight anywhere in the network must surface as an
     infinite (trivially sound) output bound, never a finite lie *)
  let l1 =
    {
      Net.weights = Mat.init 2 2 (fun i j -> if i = 0 && j = 1 then Float.nan else 1.0);
      biases = [| 0.0; 0.0 |];
      activation = Act.Relu;
    }
  in
  let l2 =
    {
      Net.weights = Mat.init 1 2 (fun _ _ -> 1.0);
      biases = [| 0.0 |];
      activation = Act.Linear;
    }
  in
  let net = Net.make ~input_dim:2 [| l1; l2 |] in
  let box = B.of_bounds [| (-1.0, 1.0); (-1.0, 1.0) |] in
  let out = T.propagate T.Symbolic net box in
  let iv = B.get out 0 in
  check "poisoned output not finitely bounded" true
    (I.lo iv = Float.neg_infinity || I.hi iv = Float.infinity)

let test_output_bounds_shape () =
  let net = fig4_network () in
  let box = B.of_bounds [| (0.0, 1.0); (0.0, 1.0) |] in
  let obs = Sym.output_bounds net box in
  Alcotest.(check int) "one output" 1 (Array.length obs);
  let lo_c, _, up_c, _ = obs.(0) in
  Alcotest.(check int) "lo coeffs per input" 2 (Array.length lo_c);
  Alcotest.(check int) "up coeffs per input" 2 (Array.length up_c)

(* qcheck: random networks, random boxes, random samples, all domains *)

let arb_case =
  QCheck.make
    ~print:(fun (seed, w, sizes) ->
      Printf.sprintf "seed=%d width=%g sizes=%s" seed w
        (String.concat "-" (List.map string_of_int sizes)))
    QCheck.Gen.(
      let* seed = int_range 0 100000 in
      let* w = float_range 0.05 2.0 in
      let* h1 = int_range 2 12 in
      let* h2 = int_range 2 12 in
      let* ins = int_range 1 4 in
      let* outs = int_range 1 4 in
      return (seed, w, [ ins; h1; h2; outs ]))

let prop_domain_sound domain =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "%s propagate sound" (T.domain_to_string domain))
    arb_case
    (fun (seed, w, sizes) ->
      let rng = Rng.create seed in
      let net = random_net rng sizes in
      let ins = List.hd sizes in
      let box =
        B.of_bounds
          (Array.init ins (fun i ->
               let c = 0.3 *. float_of_int i in
               (c -. w, c +. w)))
      in
      soundness_case domain net box rng 100)


(* ----- local robustness (the Section 2 NN-level property) ----- *)

module Rob = Nncs_nnabs.Robustness

(* a hand-built 2-class network: scores (x, 1 - x); argmin flips at
   x = 0.5, so robustness around a point depends on its distance to 0.5 *)
let two_class_network () =
  let out =
    {
      Net.weights = Mat.init 2 1 (fun i _ -> [| 1.0; -1.0 |].(i));
      biases = [| 0.0; 1.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| out |]

let test_robustness_verdicts () =
  let net = two_class_network () in
  (* far from the boundary: robust for small epsilon *)
  (match Rob.check ~decision:Rob.Argmin net ~input:[| 0.1 |] ~epsilon:0.2 with
  | Rob.Robust -> ()
  | _ -> Alcotest.fail "expected robust");
  (* ball straddling the boundary: a corner gives a counterexample *)
  (match Rob.check ~decision:Rob.Argmin net ~input:[| 0.45 |] ~epsilon:0.2 with
  | Rob.Counterexample c ->
      check "counterexample flips the decision" true
        (Rob.classify Rob.Argmin (Net.eval net c)
        <> Rob.classify Rob.Argmin (Net.eval net [| 0.45 |]))
  | _ -> Alcotest.fail "expected counterexample");
  (* argmax on the same network mirrors the argmin verdicts *)
  match Rob.check ~decision:Rob.Argmax net ~input:[| 0.9 |] ~epsilon:0.1 with
  | Rob.Robust -> ()
  | _ -> Alcotest.fail "expected argmax robust"

let test_robustness_random_net_sound () =
  (* whenever check says Robust, dense sampling must agree *)
  let rng = Rng.create 71 in
  let net = random_net rng [ 2; 10; 10; 3 ] in
  let agree = ref 0 in
  for _ = 1 to 20 do
    let input = [| Rng.uniform rng (-1.0) 1.0; Rng.uniform rng (-1.0) 1.0 |] in
    let eps = Rng.uniform rng 0.01 0.2 in
    match Rob.check ~decision:Rob.Argmin net ~input ~epsilon:eps with
    | Rob.Robust ->
        incr agree;
        let label = Rob.classify Rob.Argmin (Net.eval net input) in
        for _ = 1 to 100 do
          let p =
            Array.map (fun v -> v +. Rng.uniform rng (-.eps) eps) input
          in
          check "sampled point keeps the label" true
            (Rob.classify Rob.Argmin (Net.eval net p) = label)
        done
    | Rob.Counterexample c ->
        let label = Rob.classify Rob.Argmin (Net.eval net input) in
        check "counterexample is real" true
          (Rob.classify Rob.Argmin (Net.eval net c) <> label)
    | Rob.Unknown -> ()
  done;
  check "some balls proved robust" true (!agree > 0)

let () =
  Alcotest.run "nnabs"
    [
      ( "transformers",
        [
          Alcotest.test_case "fig4 point" `Quick test_fig4_point;
          Alcotest.test_case "fig4 box" `Quick test_fig4_box;
          Alcotest.test_case "symbolic tighter" `Quick
            test_symbolic_tighter_than_interval;
          Alcotest.test_case "stable relu exact" `Quick
            test_stable_relu_exact_symbolic;
          Alcotest.test_case "split refinement" `Quick
            test_split_refinement_tightens;
          Alcotest.test_case "meet of domains" `Quick
            test_meet_all_sound_and_tighter;
          Alcotest.test_case "thin and degenerate boxes" `Quick
            test_thin_box_sound;
          Alcotest.test_case "inverted hull adversarial magnitudes" `Quick
            test_inverted_hull_adversarial;
          Alcotest.test_case "nan-poisoned plane" `Quick
            test_nan_poisoned_plane;
          Alcotest.test_case "nan-weight network" `Quick
            test_nan_weight_network_sound;
          Alcotest.test_case "output bounds shape" `Quick
            test_output_bounds_shape;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "verdicts" `Quick test_robustness_verdicts;
          Alcotest.test_case "sound on random nets" `Quick
            test_robustness_random_net_sound;
        ] );
      ( "nnabs-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_domain_sound T.Interval;
            prop_domain_sound T.Symbolic;
            prop_domain_sound T.Affine;
          ] );
    ]
