(* Networks: forward pass on the paper's worked example (Fig 4),
   serialisation round trips, gradient checks against finite differences,
   and an end-to-end training run on a small regression task. *)

module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Io = Nncs_nn.Nnet_io
module Dataset = Nncs_nn.Dataset
module Train = Nncs_nn.Train
module Mat = Nncs_linalg.Mat
module Vec = Nncs_linalg.Vec
module Rng = Nncs_linalg.Rng

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* The tiny network of Fig 4: N = (3, {2,2,1}, W, B) with
   hidden weights [[-1;4];[3;-8]], biases [5;6],
   output weights [[-0.5;1]], bias [2]. F((1,2)) = -4. *)
let fig4_network () =
  let hidden =
    {
      Net.weights = Mat.init 2 2 (fun i j -> [| [| -1.0; 4.0 |]; [| 3.0; -8.0 |] |].(i).(j));
      biases = [| 5.0; 6.0 |];
      activation = Act.Relu;
    }
  in
  let output =
    {
      Net.weights = Mat.init 1 2 (fun _ j -> [| -0.5; 1.0 |].(j));
      biases = [| 2.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:2 [| hidden; output |]

let test_fig4_forward () =
  let net = fig4_network () in
  let y = Net.eval net [| 1.0; 2.0 |] in
  checkf "paper worked example" (-4.0) y.(0);
  Alcotest.(check int) "output dim" 1 (Net.output_dim net);
  Alcotest.(check (list int)) "layer sizes" [ 2; 2; 1 ] (Net.layer_sizes net);
  Alcotest.(check int) "parameters" 9 (Net.num_parameters net)

let test_make_validation () =
  let bad =
    {
      Net.weights = Mat.create 2 3 0.0;
      biases = [| 0.0; 0.0 |];
      activation = Act.Relu;
    }
  in
  check "bad chaining rejected" true
    (try
       ignore (Net.make ~input_dim:2 [| bad |]);
       false
     with Invalid_argument _ -> true)

let test_uid_unique () =
  let rng = Rng.create 5 in
  let a = Net.create_mlp ~rng ~layer_sizes:[ 2; 4; 1 ] in
  let b = Net.create_mlp ~rng ~layer_sizes:[ 2; 4; 1 ] in
  check "distinct networks, distinct uids" true (Net.uid a <> Net.uid b);
  check "uid is stable" true (Net.uid a = Net.uid a);
  (* a parameter transform computes a different function: fresh uid, so
     a memo table keyed on it can never serve stale results *)
  let a' = Net.map_parameters a ~f:(fun w -> 2.0 *. w) in
  check "map_parameters re-stamps the uid" true (Net.uid a' <> Net.uid a);
  check "copy re-stamps the uid" true (Net.uid (Net.copy a) <> Net.uid a)

let test_relu_kink () =
  let net = fig4_network () in
  (* input making one hidden pre-activation negative *)
  let y = Net.eval net [| 10.0; 0.0 |] in
  (* hidden: relu(-10+5)=0, relu(30+6)=36 -> out = 36 + 2 = 38 *)
  checkf "relu clamps" 38.0 y.(0)

let test_io_roundtrip () =
  let rng = Rng.create 42 in
  let net = Net.create_mlp ~rng ~layer_sizes:[ 3; 8; 5; 2 ] in
  let path = Filename.temp_file "nncs" ".nnet" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save net path;
      let net' = Io.load path in
      check "structure preserved" true (Net.equal_structure net net');
      let x = [| 0.3; -0.7; 1.1 |] in
      let y = Net.eval net x and y' = Net.eval net' x in
      check "bit-exact roundtrip" true (y = y'))

let test_io_rejects_garbage () =
  let path = Filename.temp_file "nncs" ".nnet" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a network\n1 2 3\n";
      close_out oc;
      check "garbage rejected" true
        (try
           ignore (Io.load path);
           false
         with Failure _ -> true))

let test_gradient_check () =
  let rng = Rng.create 7 in
  let net = Net.create_mlp ~rng ~layer_sizes:[ 2; 4; 2 ] in
  let batch =
    [| ([| 0.5; -0.3 |], [| 1.0; 0.0 |]); ([| -0.2; 0.8 |], [| 0.0; 1.0 |]) |]
  in
  let base_loss, grads = Train.loss_and_gradients net batch in
  (* finite-difference check on a few weights of each layer *)
  let eps = 1e-6 in
  let batch_loss n =
    let acc = ref 0.0 in
    Array.iter
      (fun (x, y) ->
        let e = Vec.sub (Net.eval n x) y in
        acc := !acc +. Vec.dot e e)
      batch;
    !acc /. float_of_int (Array.length batch * 2)
  in
  checkf "loss agrees" base_loss (batch_loss net);
  Array.iteri
    (fun li l ->
      let gw, gb = grads.(li) in
      let rows = Mat.rows l.Net.weights and cols = Mat.cols l.Net.weights in
      for i = 0 to min 1 (rows - 1) do
        for j = 0 to min 1 (cols - 1) do
          let saved = Mat.get l.Net.weights i j in
          Mat.set l.Net.weights i j (saved +. eps);
          let lp = batch_loss net in
          Mat.set l.Net.weights i j (saved -. eps);
          let lm = batch_loss net in
          Mat.set l.Net.weights i j saved;
          let fd = (lp -. lm) /. (2.0 *. eps) in
          check
            (Printf.sprintf "grad w[%d][%d,%d]" li i j)
            true
            (Float.abs (fd -. Mat.get gw i j) < 1e-4)
        done
      done;
      let saved = l.Net.biases.(0) in
      l.Net.biases.(0) <- saved +. eps;
      let lp = batch_loss net in
      l.Net.biases.(0) <- saved -. eps;
      let lm = batch_loss net in
      l.Net.biases.(0) <- saved;
      let fd = (lp -. lm) /. (2.0 *. eps) in
      check (Printf.sprintf "grad b[%d]" li) true (Float.abs (fd -. gb.(0)) < 1e-4))
    net.Net.layers

let test_training_converges () =
  (* clone f(x,y) = (x + y, x * y) on [-1,1]^2 *)
  let rng = Rng.create 11 in
  let target x = [| x.(0) +. x.(1); x.(0) *. x.(1) |] in
  let data =
    Dataset.of_function ~rng ~n:800 ~lo:[| -1.0; -1.0 |] ~hi:[| 1.0; 1.0 |]
      target
  in
  let train, validation = Dataset.split ~rng ~fraction:0.8 data in
  let net = Net.create_mlp ~rng ~layer_sizes:[ 2; 24; 24; 2 ] in
  let before = Dataset.mse net validation in
  let trained, report =
    Train.fit
      ~config:{ Train.default_config with epochs = 60; learning_rate = 2e-3 }
      ~rng ~net ~train ~validation ()
  in
  check "training reduces val mse by 10x" true
    (report.final_val_mse < before /. 10.0);
  check "val mse small" true (report.final_val_mse < 0.01);
  (* spot check a prediction *)
  let p = Net.eval trained [| 0.5; 0.25 |] in
  check "prediction close" true
    (Float.abs (p.(0) -. 0.75) < 0.2 && Float.abs (p.(1) -. 0.125) < 0.2)

let test_dataset_ops () =
  let rng = Rng.create 3 in
  let d =
    Dataset.create
      (Array.init 10 (fun i -> ([| float_of_int i |], [| float_of_int (2 * i) |])))
  in
  Alcotest.(check int) "size" 10 (Dataset.size d);
  let a, b = Dataset.split ~rng ~fraction:0.7 d in
  Alcotest.(check int) "split sizes" 10 (Dataset.size a + Dataset.size b);
  let bs = Dataset.batches d ~batch_size:4 in
  Alcotest.(check (list int)) "batch sizes" [ 4; 4; 2 ]
    (List.map Array.length bs);
  let id_net = Net.create_mlp ~rng ~layer_sizes:[ 1; 4; 1 ] in
  check "mse finite" true (Float.is_finite (Dataset.mse id_net d))

let test_sgd_also_trains () =
  let rng = Rng.create 5 in
  let target x = [| (2.0 *. x.(0)) -. 1.0 |] in
  let data =
    Dataset.of_function ~rng ~n:200 ~lo:[| -1.0 |] ~hi:[| 1.0 |] target
  in
  let net = Net.create_mlp ~rng ~layer_sizes:[ 1; 8; 1 ] in
  let _, report =
    Train.fit
      ~config:
        {
          Train.default_config with
          epochs = 150;
          learning_rate = 0.05;
          optimizer = Train.Sgd { momentum = 0.9 };
        }
      ~rng ~net ~train:data ()
  in
  check "sgd converges on linear target" true (report.final_train_mse < 1e-3)


let test_block_product () =
  let rng = Rng.create 77 in
  let a = Net.create_mlp ~rng ~layer_sizes:[ 2; 6; 3 ] in
  let b = Net.create_mlp ~rng ~layer_sizes:[ 1; 4; 2 ] in
  let p = Net.block_product a b in
  Alcotest.(check int) "input dim" 3 (Net.input_dim p);
  Alcotest.(check int) "output dim" 5 (Net.output_dim p);
  for _ = 1 to 20 do
    let xa = [| Rng.gaussian rng; Rng.gaussian rng |] in
    let xb = [| Rng.gaussian rng |] in
    let y = Net.eval p (Array.append xa xb) in
    let ya = Net.eval a xa and yb = Net.eval b xb in
    check "block product = pair of evaluations" true
      (Array.append ya yb = y)
  done;
  (* depth mismatch rejected *)
  let c = Net.create_mlp ~rng ~layer_sizes:[ 1; 4; 4; 2 ] in
  check "depth mismatch rejected" true
    (try
       ignore (Net.block_product a c);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "nn"
    [
      ( "network",
        [
          Alcotest.test_case "fig4 worked example" `Quick test_fig4_forward;
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "uid unique" `Quick test_uid_unique;
          Alcotest.test_case "relu kink" `Quick test_relu_kink;
          Alcotest.test_case "block product" `Quick test_block_product;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
        ] );
      ( "training",
        [
          Alcotest.test_case "gradient check" `Quick test_gradient_check;
          Alcotest.test_case "adam converges" `Slow test_training_converges;
          Alcotest.test_case "sgd converges" `Quick test_sgd_also_trains;
          Alcotest.test_case "dataset ops" `Quick test_dataset_ops;
        ] );
    ]
