(* Chaos soak of the serve layer: one resident server driven through
   several JSONL sessions whose request streams mix valid jobs,
   duplicate fingerprints and duplicate ids, cancels of queued / running
   / finished / unknown ids, fault-injected job crashes, garbage lines,
   blank lines, stats probes, and sessions that disconnect mid-stream
   (end of input without a shutdown request).

   The stream is generated from a seeded RNG ([CHAOS_SEED], default
   0xC0FFEE) so a failure reproduces; [CHAOS_OPS] scales the soak
   (default 240 request lines, floored at the 200 the harness asserts).

   Assertions are the race-free invariants of the protocol:
   - every session drains cleanly: all output lines parse as events,
     exactly one [bye], last, and the outcome matches how the input
     ended;
   - per (session, id): at most one terminal event per submitted
     incarnation, and at least one once the id was accepted;
   - every [verdict] — run, memo or coalesced — agrees exactly with a
     direct [Verify.verify_partition] of the same job spec, and the
     memoized report behind its fingerprint is leaf-for-leaf identical
     to the direct run. *)

module B = Nncs_interval.Box
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module T = Nncs_nnabs.Transformer
module E = Nncs_ode.Expr
module J = Nncs_obs.Json
module Fault = Nncs_resilience.Fault
module Command = Nncs.Command
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Verify = Nncs.Verify
module Partition = Nncs.Partition
module P = Nncs_serve.Protocol
module Server = Nncs_serve.Server
module Backreach = Nncs_backreach.Backreach

let check = Alcotest.(check bool)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let seed = env_int "CHAOS_SEED" 0xC0FFEE
let total_ops = max 200 (env_int "CHAOS_OPS" 240)
let ops_per_session = 40

(* the homing loop of test_serve, the cheapest closed loop that still
   exercises the full pipeline *)

let homing_system () =
  let commands = Command.make [| [| -1.0 |]; [| -0.5 |] |] in
  let network =
    Net.make ~input_dim:1
      [|
        {
          Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
          biases = [| 1.0; -1.0 |];
          activation = Act.Linear;
        };
      |]
  in
  let controller =
    Controller.make ~period:0.5 ~commands ~networks:[| network |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  System.make ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
    ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

let homing_cells arcs =
  Partition.with_command 0
    (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| arcs |])

(* the job-spec pool: distinct partitions, a memo opt-out that re-runs
   every time, and one spec on the multi-domain leaf scheduler *)
type spec = { s_arcs : int; s_use_memo : bool; s_workers : int }

let specs =
  [|
    { s_arcs = 1; s_use_memo = true; s_workers = 1 };
    { s_arcs = 2; s_use_memo = true; s_workers = 1 };
    { s_arcs = 3; s_use_memo = true; s_workers = 2 };
    { s_arcs = 4; s_use_memo = true; s_workers = 1 };
    { s_arcs = 2; s_use_memo = false; s_workers = 1 };
  |]

let spec_config s =
  {
    P.default_config with
    Verify.workers = s.s_workers;
    scheduler = (if s.s_workers > 1 then Verify.Leaves else Verify.Cells);
  }

let job_line ~id spec_idx =
  let s = specs.(spec_idx) in
  J.to_string
    (P.request_to_json
       (P.Job
          {
            P.id;
            cells = P.Partition { arcs = s.s_arcs; headings = 1; arc_indices = [] };
            domain = T.Symbolic;
            nn_splits = 0;
            config = spec_config s;
            use_memo = s.s_use_memo;
          }))

let cancel_line id =
  Printf.sprintf {|{"t":"cancel","id":%s}|} (J.to_string (J.Str id))

(* the backreach table behind the lookup fast path, over the same
   homing loop; probes mix in-table, safe, out-of-domain boxes and an
   out-of-range command *)
let chaos_table =
  lazy
    (Backreach.build
       {
         (Backreach.default_config
            ~domain:(B.of_bounds [| (0.0, 4.5) |])
            ~grid:[| 9 |])
         with
         Backreach.reach = { Nncs.Reach.default_config with keep_sets = false };
       }
       (homing_system ()))

let lookup_probes =
  [|
    ((4.25, 4.5), 0);
    ((4.25, 4.5), 1);
    ((0.05, 0.2), 0);
    ((1.0, 3.0), 1);
    ((9.0, 9.5), 0);
    ((1.0, 2.0), 7);
  |]

let expected_lookup_status probe_idx =
  let (lo, hi), cmd = lookup_probes.(probe_idx) in
  match
    Backreach.query (Lazy.force chaos_table)
      ~box:(B.of_bounds [| (lo, hi) |])
      ~cmd
  with
  | Backreach.Unsafe { k } -> P.Lookup_unsafe { k }
  | Backreach.Safe -> P.Lookup_safe
  | Backreach.Out_of_domain -> P.Lookup_out_of_domain

let lookup_line ~id probe_idx =
  let (lo, hi), cmd = lookup_probes.(probe_idx) in
  J.to_string
    (P.request_to_json
       (P.Lookup { id; box = B.of_bounds [| (lo, hi) |]; cmd }))

(* direct, unserved reference runs, one per spec *)
let direct_reports : (int, Verify.report) Hashtbl.t = Hashtbl.create 8

let direct_for spec_idx =
  match Hashtbl.find_opt direct_reports spec_idx with
  | Some r -> r
  | None ->
      let s = specs.(spec_idx) in
      let r =
        Verify.verify_partition ~config:(spec_config s) (homing_system ())
          (homing_cells s.s_arcs)
      in
      Hashtbl.add direct_reports spec_idx r;
      r

let leaf_verdicts (r : Verify.report) =
  List.map
    (fun (c : Verify.cell_report) ->
      ( c.Verify.index,
        List.map
          (fun (l : Verify.leaf) -> (l.Verify.depth, l.Verify.proved))
          c.Verify.leaves ))
    r.Verify.cells

(* ----- the generated script ----- *)

type op_line = {
  text : string;
  kind : [ `Job of string * int | `Lookup of string * int | `Other ];
}
(* [`Job (id, spec_idx)]: a well-formed job request line;
   [`Lookup (id, probe_idx)]: a backreach probe *)

type session_script = {
  lines : op_line list;
  clean_shutdown : bool;  (* shutdown request vs mid-stream disconnect *)
}

let garbage rng =
  match Random.State.int rng 4 with
  | 0 -> "this line is not JSON"
  | 1 -> {|{"t":"job"}|} (* valid JSON, invalid request *)
  | 2 ->
      String.init
        (16 + Random.State.int rng 48)
        (fun _ -> Char.chr (33 + Random.State.int rng 94))
  | _ -> {|{"t":"frobnicate","id":"zzz"}|}

let gen_session rng ~session ~ops ~boom_ids =
  let lines = ref [] in
  let submitted = ref [] in
  (* reusable (non-crashing) ids, newest first *)
  let fresh = ref 0 in
  let next_id () =
    incr fresh;
    Printf.sprintf "s%d-j%d" session !fresh
  in
  let push l = lines := l :: !lines in
  for _ = 1 to ops do
    let r = Random.State.int rng 100 in
    if r < 55 then begin
      let id = next_id () in
      let spec = Random.State.int rng (Array.length specs) in
      submitted := (id, spec) :: !submitted;
      push { text = job_line ~id spec; kind = `Job (id, spec) }
    end
    else if r < 62 then begin
      (* duplicate id, same spec as its original submission, so the id
         keeps a single spec whether it is rejected or re-run *)
      match !submitted with
      | [] -> push { text = {|{"t":"stats"}|}; kind = `Other }
      | subs ->
          let id, spec = List.nth subs (Random.State.int rng (List.length subs)) in
          push { text = job_line ~id spec; kind = `Job (id, spec) }
    end
    else if r < 70 then begin
      (* a fault-armed job: crashes inside the server's firewall.  Kept
         out of [submitted] so a duplicate never re-runs a one-shot id *)
      let id = Printf.sprintf "boom%d-%d" session !fresh in
      incr fresh;
      boom_ids := id :: !boom_ids;
      let spec = Random.State.int rng (Array.length specs) in
      push { text = job_line ~id spec; kind = `Job (id, spec) }
    end
    else if r < 85 then begin
      (* a cancel: usually of a known id (queued / running / finished,
         whatever the race picks), sometimes of an unknown one *)
      let id =
        if !submitted <> [] && Random.State.int rng 10 < 7 then
          fst
            (List.nth !submitted (Random.State.int rng (List.length !submitted)))
        else Printf.sprintf "nope%d" (Random.State.int rng 1000)
      in
      push { text = cancel_line id; kind = `Other }
    end
    else if r < 90 then push { text = garbage rng; kind = `Other }
    else if r < 94 then begin
      (* a backreach lookup, interleaved among the jobs: answered
         inline off the table, never entering the run path *)
      let id = Printf.sprintf "s%d-l%d" session !fresh in
      incr fresh;
      let probe = Random.State.int rng (Array.length lookup_probes) in
      push { text = lookup_line ~id probe; kind = `Lookup (id, probe) }
    end
    else if r < 97 then push { text = {|{"t":"stats"}|}; kind = `Other }
    else push { text = ""; kind = `Other }
  done;
  let clean_shutdown = Random.State.bool rng in
  let lines = List.rev !lines in
  let lines =
    if clean_shutdown then
      lines @ [ { text = {|{"t":"shutdown"}|}; kind = `Other } ]
    else lines
  in
  { lines; clean_shutdown }

(* ----- one session through the server ----- *)

let run_script server script =
  let in_path = Filename.temp_file "nncs_chaos_in" ".jsonl" in
  let out_path = Filename.temp_file "nncs_chaos_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ in_path; out_path ])
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc (l.text ^ "\n")) script.lines;
      close_out oc;
      let ic = open_in in_path and oc = open_out out_path in
      let outcome = Server.run server ic oc in
      close_in ic;
      close_out oc;
      let events = ref [] in
      let ic = In_channel.open_text out_path in
      (try
         while true do
           let line = input_line ic in
           match P.event_of_json (J.of_string line) with
           | Ok e -> events := e :: !events
           | Error msg -> Alcotest.fail ("unparseable event line: " ^ msg)
         done
       with End_of_file -> ());
      In_channel.close ic;
      (outcome, List.rev !events))

let check_session server ~session script outcome events =
  let ctx fmt =
    Printf.ksprintf (fun s -> Printf.sprintf "session %d: %s" session s) fmt
  in
  check
    (ctx "outcome matches how the input ended")
    true
    (outcome = if script.clean_shutdown then `Shutdown else `Eof);
  (match List.rev events with
  | P.Bye :: rest ->
      check (ctx "exactly one bye") true
        (not (List.exists (function P.Bye -> true | _ -> false) rest))
  | _ -> Alcotest.fail (ctx "bye must be the last event"));
  (* per-id accounting: how many times each id was submitted, and which
     spec it stands for (first submission wins; duplicates reuse it) *)
  let submissions : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let id_spec : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l ->
      match l.kind with
      | `Job (id, spec) ->
          Hashtbl.replace submissions id
            (1 + Option.value ~default:0 (Hashtbl.find_opt submissions id));
          if not (Hashtbl.mem id_spec id) then Hashtbl.add id_spec id spec
      | `Lookup _ | `Other -> ())
    script.lines;
  let count pred = List.length (List.filter pred events) in
  (* every lookup: exactly one [lookup_result], carrying exactly the
     status a direct [Backreach.query] of the same probe answers, and
     never any job event — the fast path must not enter the run path *)
  List.iter
    (fun l ->
      match l.kind with
      | `Lookup (id, probe) ->
          let replies =
            List.filter_map
              (function
                | P.Lookup_result { id = i; status } when i = id -> Some status
                | _ -> None)
              events
          in
          check
            (ctx "lookup %s: exactly one reply" id)
            true
            (List.length replies = 1);
          check
            (ctx "lookup %s: reply matches a direct table query" id)
            true
            (replies = [ expected_lookup_status probe ]);
          check
            (ctx "lookup %s: never accepted as a job" id)
            true
            (count (function P.Accepted { id = i; _ } -> i = id | _ -> false)
            = 0)
      | `Job _ | `Other -> ())
    script.lines;
  Hashtbl.iter
    (fun id n_submitted ->
      let terminals =
        count (function
          | P.Verdict { id = i; _ }
          | P.Cancelled { id = i; _ }
          | P.Job_error { id = i; _ } ->
              i = id
          | _ -> false)
      in
      let accepted =
        count (function P.Accepted { id = i; _ } -> i = id | _ -> false)
      in
      check
        (ctx "id %s: at most one terminal per incarnation (%d <= %d)" id
           terminals n_submitted)
        true (terminals <= n_submitted);
      check
        (ctx "id %s: accepted implies a terminal" id)
        true
        (accepted = 0 || terminals >= 1))
    submissions;
  (* every verdict — whatever its source — agrees exactly with the
     direct run of its spec, and so does the memoized report behind its
     fingerprint *)
  List.iter
    (function
      | P.Verdict
          {
            id;
            fingerprint;
            coverage;
            proved_cells;
            unknown_cells;
            total_cells;
            _;
          } -> (
          let spec_idx =
            match Hashtbl.find_opt id_spec id with
            | Some s -> s
            | None -> Alcotest.fail (ctx "verdict for an unsubmitted id %s" id)
          in
          let direct = direct_for spec_idx in
          check
            (ctx "verdict %s: coverage matches the direct run" id)
            true
            (coverage = direct.Verify.coverage);
          check
            (ctx "verdict %s: cell counts match the direct run" id)
            true
            (proved_cells = direct.Verify.proved_cells
            && unknown_cells = direct.Verify.unknown_cells
            && total_cells = direct.Verify.total_cells);
          match Server.lookup server fingerprint with
          | None ->
              Alcotest.fail
                (ctx "verdict %s: fingerprint %s not memoized" id fingerprint)
          | Some stored ->
              check
                (ctx "verdict %s: memoized leaves = direct leaves" id)
                true
                (leaf_verdicts stored = leaf_verdicts direct))
      | _ -> ())
    events

let test_chaos () =
  Fun.protect ~finally:Fault.reset (fun () ->
      let rng = Random.State.make [| seed |] in
      let sessions = (total_ops + ops_per_session - 1) / ops_per_session in
      let boom_ids = ref [] in
      let scripts =
        List.init sessions (fun i ->
            gen_session rng ~session:i ~ops:ops_per_session ~boom_ids)
      in
      List.iter
        (fun id ->
          Fault.arm ~site:"serve.job" ~key:id (fun () ->
              Failure ("chaos crash " ^ id)))
        !boom_ids;
      let op_count = List.fold_left (fun n s -> n + List.length s.lines) 0 scripts in
      check "soak covers at least 200 request lines" true (op_count >= 200);
      let server =
        Server.create
          {
            Server.default_config with
            Server.dispatchers = 3;
            backreach = Some (Lazy.force chaos_table);
          }
          ~make_system:(fun ~domain:_ ~nn_splits:_ -> homing_system ())
          ~make_cells:(fun ~arcs ~headings:_ ~arc_indices:_ -> homing_cells arcs)
      in
      Fun.protect
        ~finally:(fun () -> Server.close server)
        (fun () ->
          List.iteri
            (fun i script ->
              let outcome, events = run_script server script in
              check_session server ~session:i script outcome events)
            scripts))

let () =
  Alcotest.run "chaos"
    [ ("serve", [ Alcotest.test_case "chaos soak" `Quick test_chaos ]) ]
