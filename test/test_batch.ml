(* Batched multi-leaf F# propagation must be an invisible optimization
   at every layer of the stack: the blocked kernel, the split wrapper,
   the batched cache probe and the batched controller scorer are each
   bit-for-bit their scalar counterparts, and the leaf scheduler's
   lockstep batching (--batch-leaves) preserves verdicts, leaf sets and
   journal records byte-identically at any batch width and worker
   count — with per-leaf fault firewalls intact inside a batch. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Rng = Nncs_linalg.Rng
module T = Nncs_nnabs.Transformer
module Sym = Nncs_nnabs.Symbolic_prop
module Cache = Nncs_nnabs.Cache
module Command = Nncs.Command
module Symstate = Nncs.Symstate
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Verify = Nncs.Verify
module Partition = Nncs.Partition
module Fault = Nncs_resilience.Fault

let check = Alcotest.(check bool)

(* bitwise equality: the batch paths promise Int64-identical endpoints,
   not approximate agreement *)
let box_eq_bits a b =
  B.dim a = B.dim b
  && (let ok = ref true in
      for i = 0 to B.dim a - 1 do
        let x = B.get a i and y = B.get b i in
        if
          Int64.bits_of_float (I.lo x) <> Int64.bits_of_float (I.lo y)
          || Int64.bits_of_float (I.hi x) <> Int64.bits_of_float (I.hi y)
        then ok := false
      done;
      !ok)

let boxes_eq_bits a b =
  Array.length a = Array.length b && Array.for_all2 box_eq_bits a b

let random_net rng sizes = Net.create_mlp ~rng ~layer_sizes:sizes

let random_boxes rng ~k ~dim =
  Array.init k (fun _ ->
      B.of_bounds
        (Array.init dim (fun _ ->
             let c = Rng.uniform rng (-1.0) 1.0 in
             let w = Rng.uniform rng 0.0 0.8 in
             (c -. w, c +. w))))

(* ----- the blocked kernel vs the scalar propagator ----- *)

let test_kernel_bitwise () =
  let rng = Rng.create 7 in
  List.iter
    (fun (k, sizes) ->
      let net = random_net rng sizes in
      let boxes = random_boxes rng ~k ~dim:(List.hd sizes) in
      let scalar = Array.map (Sym.propagate net) boxes in
      let batched = Sym.propagate_batch net boxes in
      check
        (Printf.sprintf "batch k=%d bitwise equal" k)
        true
        (boxes_eq_bits scalar batched))
    [ (1, [ 2; 8; 3 ]); (4, [ 3; 16; 16; 2 ]); (16, [ 4; 20; 20; 5 ]);
      (7, [ 2; 12; 12; 12; 1 ]) (* ragged, deep *) ]

let test_kernel_edge_cases () =
  let rng = Rng.create 11 in
  let net = random_net rng [ 3; 8; 2 ] in
  Alcotest.(check int) "empty batch" 0 (Array.length (Sym.propagate_batch net [||]));
  (* degenerate (point) and mixed-width boxes batch soundly *)
  let boxes =
    [| B.of_point [| 0.1; -0.2; 0.3 |]; B.of_bounds [| (-1.0, 1.0); (0.0, 0.0); (-0.5, 0.5) |] |]
  in
  check "point and thin boxes bitwise" true
    (boxes_eq_bits (Array.map (Sym.propagate net) boxes) (Sym.propagate_batch net boxes));
  (* a dimension mismatch anywhere in the batch is rejected *)
  Alcotest.check_raises "dim mismatch rejected"
    (Invalid_argument "Symbolic_prop.propagate_batch: input dimension mismatch")
    (fun () ->
      ignore (Sym.propagate_batch net [| B.of_point [| 0.0; 0.0; 0.0 |]; B.of_point [| 0.0 |] |]))

let test_transformer_batch_all_domains () =
  let rng = Rng.create 13 in
  let net = random_net rng [ 3; 10; 10; 2 ] in
  let boxes = random_boxes rng ~k:5 ~dim:3 in
  List.iter
    (fun d ->
      check
        (Printf.sprintf "%s propagate_batch bitwise" (T.domain_to_string d))
        true
        (boxes_eq_bits
           (Array.map (T.propagate d net) boxes)
           (T.propagate_batch d net boxes));
      List.iter
        (fun splits ->
          check
            (Printf.sprintf "%s propagate_split_batch splits=%d bitwise"
               (T.domain_to_string d) splits)
            true
            (boxes_eq_bits
               (Array.map (T.propagate_split d ~splits net) boxes)
               (T.propagate_split_batch d ~splits net boxes)))
        [ 0; 1; 2 ])
    [ T.Interval; T.Symbolic; T.Affine ]

(* ----- the batched cache probe ----- *)

let test_cache_batch () =
  let cfg = { Cache.capacity = 64; quantum = 0.01; shards = 2 } in
  let t = Cache.create cfg in
  let rng = Rng.create 17 in
  let net = random_net rng [ 2; 6; 2 ] in
  let boxes = random_boxes rng ~k:6 ~dim:2 in
  let calls = ref 0 in
  let f bs =
    incr calls;
    Array.map (Sym.propagate net) bs
  in
  (* cold: one compute call covering every (distinct) miss *)
  let r1 = Cache.find_or_compute_batch t ~net_id:1 ~cmd:0 boxes f in
  Alcotest.(check int) "one compute call for the cold batch" 1 !calls;
  Alcotest.(check int) "arity preserved" (Array.length boxes) (Array.length r1);
  (* warm: all hits, no compute *)
  let r2 = Cache.find_or_compute_batch t ~net_id:1 ~cmd:0 boxes f in
  Alcotest.(check int) "warm batch computes nothing" 1 !calls;
  check "warm results identical to stored" true (boxes_eq_bits r1 r2);
  (* results match the scalar call sequence on an identically fresh cache *)
  let t' = Cache.create cfg in
  let scalar =
    Array.map
      (fun b ->
        Cache.find_or_compute t' ~net_id:1 ~cmd:0 b (fun qb -> Sym.propagate net qb))
      boxes
  in
  check "batch == scalar find_or_compute sequence" true (boxes_eq_bits scalar r1);
  (* duplicate queries inside one batch are computed once *)
  let t2 = Cache.create cfg in
  let dup = [| boxes.(0); boxes.(0); boxes.(0) |] in
  let widths = ref [] in
  let g bs =
    widths := Array.length bs :: !widths;
    Array.map (Sym.propagate net) bs
  in
  let rd = Cache.find_or_compute_batch t2 ~net_id:1 ~cmd:0 dup g in
  Alcotest.(check (list int)) "duplicates deduplicated" [ 1 ] !widths;
  check "all duplicates answered alike" true
    (box_eq_bits rd.(0) rd.(1) && box_eq_bits rd.(1) rd.(2));
  (* distinct tags do not share entries *)
  let r3 = Cache.find_or_compute_batch t ~net_id:1 ~cmd:0 ~tag:5 boxes f in
  Alcotest.(check int) "different tag misses" 2 !calls;
  check "tagged results still correct" true (boxes_eq_bits r1 r3);
  (* a compute function with the wrong arity is rejected *)
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Cache.find_or_compute_batch: compute arity mismatch")
    (fun () ->
      ignore
        (Cache.find_or_compute_batch (Cache.create cfg) ~net_id:1 ~cmd:0 boxes
           (fun _ -> [||])))

(* ----- the batched controller scorer ----- *)

let two_net_controller () =
  (* two distinct networks selected by the previous command: scores from
     one must never be served for the other *)
  let net_of bias =
    let output =
      {
        Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
        biases = [| bias; -.bias |];
        activation = Act.Linear;
      }
    in
    Net.make ~input_dim:1 [| output |]
  in
  Controller.make ~period:0.5
    ~commands:(Command.make [| [| -1.0 |]; [| -0.5 |] |])
    ~networks:[| net_of 1.0; net_of 0.25 |]
    ~select:(fun c -> c)
    ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
    ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()

let test_scores_batch () =
  let ctrl = two_net_controller () in
  let rng = Rng.create 19 in
  let queries =
    Array.init 9 (fun i ->
        let c = Rng.uniform rng 0.0 2.0 in
        (B.of_bounds [| (c, c +. 0.3) |], i mod 2))
  in
  let scalar ?cache () =
    Array.map (fun (box, pc) -> Controller.abstract_scores ?cache ctrl ~box ~prev_cmd:pc) queries
  in
  (* uncached: batch groups by command/network, answers bitwise-identically *)
  check "uncached batch bitwise" true
    (boxes_eq_bits (scalar ()) (Controller.abstract_scores_batch ctrl queries));
  (* cached: identical to the scalar loop against an identically fresh cache *)
  let cfg = { Cache.capacity = 128; quantum = 0.005; shards = 2 } in
  let cb = Cache.create cfg and cs = Cache.create cfg in
  let batched = Controller.abstract_scores_batch ~cache:cb ctrl queries in
  check "cached batch bitwise" true (boxes_eq_bits (scalar ~cache:cs ()) batched);
  check "cache was populated" true ((Cache.stats cb).Cache.misses > 0);
  (* second pass over a warm cache: all hits, still identical *)
  let rebatched = Controller.abstract_scores_batch ~cache:cb ctrl queries in
  check "warm batch bitwise" true (boxes_eq_bits batched rebatched);
  Alcotest.(check int) "warm pass all hits" (Array.length queries)
    ((Cache.stats cb).Cache.hits)

(* ----- end-to-end: the lockstep leaf scheduler ----- *)

(* the homing fixture of test_scheduler: x' = u, short horizon makes the
   rightmost cells refine to max_depth *)
let homing_commands = Command.make [| [| -1.0 |]; [| -0.5 |] |]

let homing_network () =
  let output =
    {
      Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
      biases = [| 1.0; -1.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| output |]

let homing_system ?(horizon_steps = 3) ?nn_splits () =
  let controller =
    Controller.make ~period:0.5 ~commands:homing_commands
      ~networks:[| homing_network () |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs
      ?nn_splits ()
  in
  System.make ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
    ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps

let grid n =
  Partition.with_command 0
    (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| n |])

let config ?(scheduler = Verify.Cells) ?(batch_leaves = 1) workers =
  {
    Verify.default_config with
    strategy = Verify.All_dims [ 0 ];
    workers;
    scheduler;
    batch_leaves;
  }

let strip_elapsed (r : Verify.report) =
  ( r.Verify.coverage,
    r.Verify.proved_cells,
    r.Verify.unknown_cells,
    r.Verify.total_cells,
    List.map
      (fun (c : Verify.cell_report) ->
        ( c.Verify.index,
          c.Verify.proved_fraction,
          List.map
            (fun (l : Verify.leaf) ->
              ( B.to_string l.Verify.state.Symstate.box,
                l.Verify.state.Symstate.cmd,
                l.Verify.depth,
                l.Verify.proved,
                l.Verify.rungs,
                match l.Verify.result with
                | Verify.Completed _ -> "completed"
                | Verify.Failed f -> Nncs_resilience.Failure.to_string f ))
            c.Verify.leaves ))
      r.Verify.cells )

let test_verify_equivalence () =
  let sys = homing_system () in
  let cells = grid 3 in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  check "fixture exercises splitting" true
    (List.exists
       (fun (c : Verify.cell_report) -> List.length c.Verify.leaves > 1)
       baseline.Verify.cells);
  List.iter
    (fun workers ->
      List.iter
        (fun batch_leaves ->
          let r =
            Verify.verify_partition
              ~config:(config ~scheduler:Verify.Leaves ~batch_leaves workers)
              sys cells
          in
          check
            (Printf.sprintf "identical report (workers=%d K=%d)" workers
               batch_leaves)
            true
            (strip_elapsed baseline = strip_elapsed r))
        [ 1; 4; 16 ])
    [ 1; 4 ]

let test_verify_equivalence_nn_splits () =
  (* nn_splits > 0 routes through propagate_split_batch; journal records
     must also match byte for byte *)
  let sys = homing_system ~nn_splits:2 () in
  let cells = grid 3 in
  let cfg1 = config ~scheduler:Verify.Leaves ~batch_leaves:1 1 in
  let cfgk = config ~scheduler:Verify.Leaves ~batch_leaves:4 1 in
  let journal cfg =
    let recs = ref [] in
    let r =
      Verify.verify_partition ~config:cfg
        ~on_leaf:(fun cell path leaf ->
          (* byte-identical journal records modulo the elapsed field *)
          let j =
            Nncs_obs.Json.to_string
              (Verify.leaf_record_to_json ~cell ~path { leaf with Verify.elapsed = 0.0 })
          in
          recs := j :: !recs)
        sys cells
    in
    (strip_elapsed r, List.sort compare !recs)
  in
  let s1, j1 = journal cfg1 in
  let sk, jk = journal cfgk in
  check "nn_splits report identical" true (s1 = sk);
  check "journal records byte-identical" true (j1 = jk)

let test_ragged_batches () =
  (* 5 root cells drained at K = 4: the final pull is a short batch *)
  let sys = homing_system () in
  let cells = grid 5 in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  let r =
    Verify.verify_partition
      ~config:(config ~scheduler:Verify.Leaves ~batch_leaves:4 1)
      sys cells
  in
  check "ragged final batch identical" true
    (strip_elapsed baseline = strip_elapsed r);
  (* the batch path actually ran: grouped kernel calls were recorded *)
  check "batched queries metric advanced" true
    (Nncs_obs.Metrics.value (Nncs_obs.Metrics.counter "verify.fsharp_batched_queries") > 0)

let test_mixed_network_frontier () =
  (* cells with different previous commands select different networks;
     the worker's drain predicate must keep them in separate batches and
     the verdicts must match the scalar run regardless *)
  let ctrl = two_net_controller () in
  let sys =
    System.make
      ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
      ~controller:ctrl
      ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
      ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
      ~horizon_steps:3
  in
  let boxes = Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| 4 |] in
  (* alternate initial commands so adjacent frontier tasks need
     different networks *)
  let cells =
    List.mapi (fun i st -> Symstate.make st.Symstate.box (i mod 2))
      (Partition.with_command 0 boxes)
  in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  List.iter
    (fun batch_leaves ->
      let r =
        Verify.verify_partition
          ~config:(config ~scheduler:Verify.Leaves ~batch_leaves 2)
          sys cells
      in
      check
        (Printf.sprintf "mixed-network frontier identical (K=%d)" batch_leaves)
        true
        (strip_elapsed baseline = strip_elapsed r))
    [ 2; 4 ]

let test_poisoned_leaf_in_batch () =
  (* a leaf that dies mid-batch fails alone: its batchmates complete
     with verdicts identical to the serial run *)
  let sys = homing_system ~horizon_steps:10 () in
  let cells = grid 8 in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  Fun.protect ~finally:Fault.reset (fun () ->
      Fault.arm ~site:"verify.leaf" ~key:"3" (fun () -> Stdlib.Failure "boom");
      let poisoned =
        Verify.verify_partition
          ~config:(config ~scheduler:Verify.Leaves ~batch_leaves:4 1)
          sys cells
      in
      Alcotest.(check int) "one unknown cell" 1 poisoned.Verify.unknown_cells;
      List.iter2
        (fun (a : Verify.cell_report) (b : Verify.cell_report) ->
          Alcotest.(check int) "cell order" a.Verify.index b.Verify.index;
          if b.Verify.index = 3 then
            check "poisoned leaf is Worker_crashed" true
              (List.exists
                 (fun l ->
                   match Verify.leaf_failure l with
                   | Some (Nncs_resilience.Failure.Worker_crashed _) -> true
                   | _ -> false)
                 b.Verify.leaves)
          else
            Alcotest.(check (float 0.0))
              "batchmate verdict matches serial" a.Verify.proved_fraction
              b.Verify.proved_fraction)
        baseline.Verify.cells poisoned.Verify.cells)

let test_batch_leaves_validated () =
  let sys = homing_system () in
  Alcotest.check_raises "batch_leaves >= 1 enforced"
    (Invalid_argument "Verify.verify_partition: batch_leaves must be >= 1")
    (fun () ->
      ignore
        (Verify.verify_partition
           ~config:(config ~scheduler:Verify.Leaves ~batch_leaves:0 1)
           sys (grid 2)))

let test_fingerprint_batch_agnostic () =
  (* like workers and scheduler, batch_leaves is a runtime knob, not
     problem semantics: journals stay interchangeable *)
  let sys = homing_system () in
  let cells = grid 4 in
  let fp k =
    Verify.fingerprint
      ~config:(config ~scheduler:Verify.Leaves ~batch_leaves:k 1)
      sys cells
  in
  Alcotest.(check string) "fingerprint ignores batch_leaves" (fp 1) (fp 16)

let () =
  Alcotest.run "batch"
    [
      ( "kernel",
        [
          Alcotest.test_case "bitwise vs scalar" `Quick test_kernel_bitwise;
          Alcotest.test_case "edge cases" `Quick test_kernel_edge_cases;
          Alcotest.test_case "all domains and splits" `Quick
            test_transformer_batch_all_domains;
        ] );
      ( "cache",
        [ Alcotest.test_case "batched probe" `Quick test_cache_batch ] );
      ( "controller",
        [ Alcotest.test_case "batched scorer" `Quick test_scores_batch ] );
      ( "scheduler",
        [
          Alcotest.test_case "equivalence across K and workers" `Quick
            test_verify_equivalence;
          Alcotest.test_case "equivalence with nn_splits" `Quick
            test_verify_equivalence_nn_splits;
          Alcotest.test_case "ragged final batch" `Quick test_ragged_batches;
          Alcotest.test_case "mixed-network frontier" `Quick
            test_mixed_network_frontier;
          Alcotest.test_case "poisoned leaf fails alone" `Quick
            test_poisoned_leaf_in_batch;
          Alcotest.test_case "batch_leaves validated" `Quick
            test_batch_leaves_validated;
          Alcotest.test_case "fingerprint agnostic" `Quick
            test_fingerprint_batch_agnostic;
        ] );
    ]
