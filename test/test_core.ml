(* Core library tests: command sets, symbolic states/sets, regions,
   Algorithm 2 (resize), Algorithm 3 (reach) on a small hand-built
   closed-loop system, the concrete simulator, and the enclosure property
   linking them (every concrete trajectory stays inside the symbolic
   over-approximation). *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Rng = Nncs_linalg.Rng
module Command = Nncs.Command
module Symstate = Nncs.Symstate
module Symset = Nncs.Symset
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Resize = Nncs.Resize
module Reach = Nncs.Reach
module Concrete = Nncs.Concrete
module Verify = Nncs.Verify
module Partition = Nncs.Partition
module Multi = Nncs.Multi
module Monitor = Nncs.Monitor

let check = Alcotest.(check bool)

(* ----- the "homing" closed loop -----
   plant: x' = u;  commands {-1, -0.5};
   controller: a single affine layer with scores (1 - x, x - 1), so the
   argmin picks rate -1 when x > 1 and rate -0.5 when x < 1;
   start x in [1, 2]; target T = {x < 0.2}; erroneous E = {x > 4}. *)

let homing_commands = Command.make ~names:[| "fast"; "slow" |] [| [| -1.0 |]; [| -0.5 |] |]

let homing_network () =
  let output =
    {
      Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
      biases = [| 1.0; -1.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| output |]

let homing_controller ?(domain = Nncs_nnabs.Transformer.Interval) () =
  Controller.make ~period:0.5 ~commands:homing_commands
    ~networks:[| homing_network () |]
    ~select:(fun _ -> 0)
    ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
    ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ~domain
    ()

let homing_plant = Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |]

let homing_system ?domain () =
  System.make ~plant:homing_plant
    ~controller:(homing_controller ?domain ())
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

(* runaway variant: positive rates drive x into E *)
let runaway_system () =
  let commands = Command.make [| [| 1.0 |]; [| 2.0 |] |] in
  let controller =
    Controller.make ~period:0.5 ~commands
      ~networks:[| homing_network () |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  System.make ~plant:homing_plant ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

(* ----- commands ----- *)

let test_command_set () =
  let c = homing_commands in
  Alcotest.(check int) "size" 2 (Command.size c);
  Alcotest.(check int) "dim" 1 (Command.dim c);
  Alcotest.(check (float 0.0)) "value" (-0.5) (Command.scalar c 1);
  Alcotest.(check string) "name" "fast" (Command.name c 0);
  Alcotest.(check int) "index_of_name" 1 (Command.index_of_name c "slow");
  check "bad index rejected" true
    (try
       ignore (Command.value c 5);
       false
     with Invalid_argument _ -> true)

(* ----- symbolic states and sets ----- *)

let st box_lo box_hi cmd = Symstate.make (B.of_bounds [| (box_lo, box_hi) |]) cmd

let test_symstate () =
  let a = st 0.0 1.0 0 and b = st 0.5 2.0 0 in
  check "member" true (Symstate.member a [| 0.5 |] 0);
  check "member wrong cmd" false (Symstate.member a [| 0.5 |] 1);
  let j = Symstate.join a b in
  check "join is hull" true (Symstate.subset a j && Symstate.subset b j);
  check "join distance" true (Symstate.distance a b > 0.0);
  check "join cmd mismatch rejected" true
    (try
       ignore (Symstate.join a (st 0.0 1.0 1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "split count" 2 (List.length (Symstate.split a [ 0 ]))

let test_symset () =
  let s = Symset.of_list [ st 0.0 1.0 0; st 2.0 3.0 1; st 4.0 5.0 0 ] in
  Alcotest.(check int) "length" 3 (Symset.length s);
  check "member" true (Symset.member s [| 2.5 |] 1);
  check "not member" false (Symset.member s [| 2.5 |] 0);
  let groups = Symset.group_by_command ~num_commands:2 s in
  Alcotest.(check int) "group 0" 2 (List.length groups.(0));
  Alcotest.(check int) "group 1" 1 (List.length groups.(1));
  match Symset.hull_box s with
  | Some h -> check "hull covers" true (I.equal (B.get h 0) (I.make 0.0 5.0))
  | None -> Alcotest.fail "hull of non-empty set"

(* ----- regions ----- *)

let test_spec_regions () =
  let e = Spec.norm2_lt ~name:"near" ~dims:(0, 1) ~radius:1.0 in
  let inside = Symstate.make (B.of_bounds [| (0.1, 0.2); (0.1, 0.2); (0.0, 0.0) |]) 0 in
  let outside = Symstate.make (B.of_bounds [| (2.0, 3.0); (2.0, 3.0); (0.0, 0.0) |]) 0 in
  let straddle = Symstate.make (B.of_bounds [| (0.5, 2.0); (0.0, 0.0); (0.0, 0.0) |]) 0 in
  check "contains inside" true (e.Spec.contains_box inside);
  check "not contains straddle" false (e.Spec.contains_box straddle);
  check "intersects straddle" true (e.Spec.intersects_box straddle);
  check "not intersects outside" false (e.Spec.intersects_box outside);
  check "point" true (e.Spec.contains_point [| 0.3; 0.4 |] 0);
  let t = Spec.norm2_gt ~name:"far" ~dims:(0, 1) ~radius:1.0 in
  check "gt contains outside" true (t.Spec.contains_box outside);
  check "gt not intersects inside" false (t.Spec.intersects_box inside)

(* ----- resize (Algorithm 2) ----- *)

let test_resize_joins_closest () =
  let s =
    Symset.of_list [ st 0.0 1.0 0; st 1.1 2.0 0; st 8.0 9.0 0; st 0.0 1.0 1 ]
  in
  let r = Resize.resize ~num_commands:2 ~gamma:3 s in
  Alcotest.(check int) "resized to gamma" 3 (Symset.length r);
  (* the two closest ([0,1] and [1.1,2]) must have been joined *)
  check "joined state present" true
    (List.exists
       (fun x ->
         x.Symstate.cmd = 0 && I.equal (B.get x.Symstate.box 0) (I.make 0.0 2.0))
       r);
  (* soundness: every original state is covered *)
  check "superset" true
    (List.for_all (fun x -> List.exists (Symstate.subset x) r) s)

let test_resize_stats_counts_joins () =
  let s =
    Symset.of_list [ st 0.0 1.0 0; st 1.1 2.0 0; st 8.0 9.0 0; st 0.0 1.0 1 ]
  in
  (* 4 states down to gamma 3: exactly one join, and the set returned by
     resize_stats is the one resize returns *)
  let r, joins = Resize.resize_stats ~num_commands:2 ~gamma:3 s in
  Alcotest.(check int) "one join" 1 joins;
  Alcotest.(check int) "resized to gamma" 3 (Symset.length r);
  let r2, j2 = Resize.resize_stats ~num_commands:2 ~gamma:3 r in
  Alcotest.(check int) "already small: no join" 0 j2;
  Alcotest.(check int) "set unchanged" (Symset.length r) (Symset.length r2);
  (* the legacy counter agrees with the pair *)
  Alcotest.(check int) "joins_performed agrees" 1
    (Resize.joins_performed ~num_commands:2 ~gamma:3 s)

let test_resize_gamma_below_commands () =
  let s = Symset.of_list [ st 0.0 1.0 0; st 2.0 3.0 1 ] in
  check "remark 3 enforced" true
    (try
       ignore (Resize.resize ~num_commands:2 ~gamma:1 s);
       false
     with Invalid_argument _ -> true)

let prop_resize_sound =
  QCheck.Test.make ~count:200 ~name:"resize covers input (any gamma)"
    QCheck.(
      pair (int_range 2 8)
        (list_of_size Gen.(int_range 1 12)
           (triple (QCheck.float_range (-10.0) 10.0) (QCheck.float_range 0.0 3.0) (int_range 0 1))))
    (fun (gamma, specs) ->
      QCheck.assume (specs <> []);
      let states = List.map (fun (lo, w, c) -> st lo (lo +. w) c) specs in
      let r = Resize.resize ~num_commands:2 ~gamma (Symset.of_list states) in
      Symset.length r <= max gamma (Symset.length states)
      && List.for_all (fun x -> List.exists (Symstate.subset x) r) states)

(* ----- controller semantics ----- *)

let test_controller_concrete () =
  let c = homing_controller () in
  Alcotest.(check int) "x=2 -> fast" 0 (Controller.concrete_step c ~state:[| 2.0 |] ~prev_cmd:0);
  Alcotest.(check int) "x=0.5 -> slow" 1 (Controller.concrete_step c ~state:[| 0.5 |] ~prev_cmd:0)

let test_controller_abstract () =
  let c = homing_controller () in
  (* box strictly above 1: only "fast" reachable *)
  let only_fast = Controller.abstract_step c ~box:(B.of_bounds [| (1.5, 2.0) |]) ~prev_cmd:0 in
  Alcotest.(check (list int)) "above 1" [ 0 ] only_fast;
  (* box straddling 1: both *)
  let both = Controller.abstract_step c ~box:(B.of_bounds [| (0.5, 1.5) |]) ~prev_cmd:0 in
  Alcotest.(check (list int)) "straddle" [ 0; 1 ] (List.sort compare both)

let test_argminmax_post_non_finite () =
  (* a NaN makes every comparison false: before the finiteness guard the
     scan silently fell through to index 0 — assert both directions now
     raise instead, and that finite inputs are untouched *)
  Alcotest.(check int) "finite argmin" 1 (Controller.argmin_post [| 2.0; 1.0 |]);
  Alcotest.(check int) "finite argmax" 0 (Controller.argmax_post [| 2.0; 1.0 |]);
  let raises f scores =
    match f scores with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true
  in
  check "argmin NaN first (old silent index 0)" true
    (raises Controller.argmin_post [| Float.nan; 1.0 |]);
  check "argmin NaN later" true
    (raises Controller.argmin_post [| 1.0; Float.nan |]);
  check "argmin +inf" true
    (raises Controller.argmin_post [| Float.infinity; 1.0 |]);
  check "argmax NaN" true (raises Controller.argmax_post [| Float.nan; 1.0 |]);
  check "argmax -inf" true
    (raises Controller.argmax_post [| 1.0; Float.neg_infinity |])

let test_argmin_post_abs () =
  (* scores: [0] in [1,2], [1] in [3,4] -> only 0 reachable *)
  let only0 = Controller.argmin_post_abs (B.of_bounds [| (1.0, 2.0); (3.0, 4.0) |]) in
  Alcotest.(check (list int)) "dominated" [ 0 ] only0;
  let both = Controller.argmin_post_abs (B.of_bounds [| (1.0, 3.5); (3.0, 4.0) |]) in
  Alcotest.(check (list int)) "overlap" [ 0; 1 ] (List.sort compare both)

(* ----- reach (Algorithm 3) ----- *)

let initial_box lo hi = Symset.of_list [ st lo hi 0 ]

let test_reach_proves_homing () =
  let sys = homing_system () in
  let r = Reach.analyze sys (initial_box 1.0 2.0) in
  check "proved safe" true (Reach.is_proved_safe r);
  (match r.Reach.terminated_at with
  | Some j -> check "terminates within horizon" true (j <= 10)
  | None -> Alcotest.fail "expected termination");
  check "peak states bounded by gamma * P" true (r.Reach.max_states <= 10)

let test_reach_flags_runaway () =
  let sys = runaway_system () in
  let r = Reach.analyze sys (initial_box 1.0 2.0) in
  check "not proved" false (Reach.is_proved_safe r);
  match r.Reach.outcome with
  | Reach.Reached_error _ -> ()
  | _ -> Alcotest.fail "expected Reached_error"

let test_reach_horizon_exhausted () =
  (* target unreachable: T = {x < -100}; system descends but never gets
     there within 10 steps -> no contact with E yet not proved *)
  let sys =
    System.make ~plant:homing_plant
      ~controller:(homing_controller ())
      ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
      ~target:(Spec.coord_lt ~name:"far-home" ~dim:0 ~bound:(-100.0))
      ~horizon_steps:10
  in
  let r = Reach.analyze sys (initial_box 1.0 2.0) in
  check "not proved" false (Reach.is_proved_safe r);
  check "horizon exhausted" true (r.Reach.outcome = Reach.Horizon_exhausted)

let test_reach_encloses_concrete () =
  let sys = homing_system () in
  let r =
    Reach.analyze
      ~config:{ Reach.default_config with early_abort = false }
      sys (initial_box 1.0 2.0)
  in
  let rng = Rng.create 55 in
  for _ = 1 to 30 do
    let x0 = Rng.uniform rng 1.0 2.0 in
    let trace = Concrete.simulate sys ~init_state:[| x0 |] ~init_cmd:0 in
    (* every pre-termination trace point must be inside some flow piece
       of its control step *)
    List.iter
      (fun (t, s, cmd) ->
        let j = int_of_float ((t /. 0.5) +. 1e-9) in
        match List.nth_opt r.Reach.steps j with
        | None -> ()
        | Some sr ->
            check
              (Printf.sprintf "trace point t=%.2f x=%.3f enclosed" t s.(0))
              true
              (Symset.member sr.Reach.flow s cmd))
      trace.Concrete.points
  done

let test_concrete_simulation () =
  let sys = homing_system () in
  let trace = Concrete.simulate sys ~init_state:[| 1.5 |] ~init_cmd:0 in
  (match trace.Concrete.termination with
  | Concrete.Terminated t -> check "terminates in reasonable time" true (t <= 5.0)
  | _ -> Alcotest.fail "expected termination");
  let s, _ = Concrete.final_state trace in
  check "final below target" true (s.(0) < 0.2);
  let runaway = Concrete.simulate (runaway_system ()) ~init_state:[| 1.5 |] ~init_cmd:0 in
  match runaway.Concrete.termination with
  | Concrete.Hit_error _ -> ()
  | _ -> Alcotest.fail "expected error hit"

(* ----- verify driver ----- *)

let test_verify_partition_and_coverage () =
  let sys = homing_system () in
  let cells = Partition.with_command 0 (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| 4 |]) in
  Alcotest.(check int) "4 cells" 4 (List.length cells);
  let config = { Verify.default_config with strategy = Verify.All_dims [ 0 ]; max_depth = 1 } in
  let report = Verify.verify_partition ~config sys cells in
  check "full coverage" true (report.Verify.coverage > 99.9);
  Alcotest.(check int) "all cells proved" 4 report.Verify.proved_cells

let test_verify_split_refinement () =
  (* E = {x > 2.6}: the whole-box flow from [1,2] stays below; but start
     the cell wide [0.5, 2.0] with a tight E {x > 2.05}: the first flow
     piece of the "fast"? — craft instead a coverage < 100 case via the
     runaway system, where no refinement can help *)
  let sys = runaway_system () in
  let cells = [ st 1.0 2.0 0 ] in
  let config = { Verify.default_config with strategy = Verify.All_dims [ 0 ]; max_depth = 1 } in
  let report = Verify.verify_partition ~config sys cells in
  check "zero coverage" true (report.Verify.coverage < 1e-9);
  let leaves = (List.hd report.Verify.cells).Verify.leaves in
  Alcotest.(check int) "refined into 2 leaves" 2 (List.length leaves);
  check "all leaves depth 1" true (List.for_all (fun l -> l.Verify.depth = 1) leaves)

let test_verify_parallel_agrees () =
  let sys = homing_system () in
  let cells = Partition.with_command 0 (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| 6 |]) in
  let serial = Verify.verify_partition ~config:{ Verify.default_config with strategy = Verify.All_dims [ 0 ] } sys cells in
  let parallel =
    Verify.verify_partition
      ~config:{ Verify.default_config with strategy = Verify.All_dims [ 0 ]; workers = 3 }
      sys cells
  in
  Alcotest.(check (float 1e-9)) "same coverage" serial.Verify.coverage parallel.Verify.coverage;
  Alcotest.(check int) "same proved count" serial.Verify.proved_cells parallel.Verify.proved_cells

let test_partition_grid () =
  let b = B.of_bounds [| (0.0, 1.0); (0.0, 2.0) |] in
  let cells = Partition.grid b ~cells:[| 2; 3 |] in
  Alcotest.(check int) "6 cells" 6 (List.length cells);
  let hull = List.fold_left B.hull (List.hd cells) cells in
  check "cells cover" true (B.equal hull b)

let test_partition_grid_rejects_nonfinite_width () =
  (* hi - lo overflows to infinity: every derived cell bound would be
     infinite or NaN, so the failure must be loud and name the culprit *)
  let m = Float.max_float in
  let whole = B.of_bounds [| (0.0, 1.0); (-.m, m) |] in
  (match Partition.grid whole ~cells:[| 1; 2 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check "error names the dimension" true (contains msg "dimension 1"));
  (* an unsplit overflowing dimension is fine: its bounds pass through *)
  Alcotest.(check int) "unsplit dimension untouched" 3
    (List.length (Partition.grid whole ~cells:[| 3; 1 |]))

let test_partition_ring () =
  (* each arc bounding box must contain its arc's endpoints *)
  let arcs = 8 and radius = 100.0 in
  for i = 0 to arcs - 1 do
    let (xlo, xhi), (ylo, yhi) = Partition.ring ~radius ~arcs ~arc_index:i in
    List.iter
      (fun k ->
        let a = 2.0 *. Float.pi *. float_of_int k /. float_of_int arcs in
        let x = radius *. Float.cos a and y = radius *. Float.sin a in
        check "endpoint in bbox" true
          (x >= xlo -. 1e-9 && x <= xhi +. 1e-9 && y >= ylo -. 1e-9 && y <= yhi +. 1e-9))
      [ i; i + 1 ]
  done


(* ----- multi-agent product controller ----- *)

let test_multi_encode_decode () =
  for i1 = 0 to 4 do
    for i2 = 0 to 4 do
      let i = Multi.encode ~p2:5 i1 i2 in
      check "roundtrip" true (Multi.decode ~p2:5 i = (i1, i2))
    done
  done

let test_multi_product_semantics () =
  (* product of the homing controller with itself on a 2-d plant: each
     copy reads its own coordinate *)
  let c1 = homing_controller () in
  let slice i (c : Controller.t) =
    {
      c with
      Controller.pre = (fun s -> [| s.(i) |]);
      pre_abs = (fun b -> B.of_intervals [| B.get b i |]);
    }
  in
  let prod = Multi.product (slice 0 c1) (slice 1 c1) in
  Alcotest.(check int) "4 product commands" 4 (Command.size prod.Controller.commands);
  Alcotest.(check int) "command dim 2" 2 (Command.dim prod.Controller.commands);
  (* x = 2 (fast), y = 0.5 (slow): product command (0, 1) *)
  let cmd = Controller.concrete_step prod ~state:[| 2.0; 0.5 |] ~prev_cmd:0 in
  check "concrete product decision" true (Multi.decode ~p2:2 cmd = (0, 1));
  (* abstract: x strictly above 1, y straddles 1: {fast} x {fast, slow} *)
  let cmds =
    Controller.abstract_step prod
      ~box:(B.of_bounds [| (1.5, 2.0); (0.5, 1.5) |])
      ~prev_cmd:0
  in
  Alcotest.(check (list int)) "abstract product set"
    [ Multi.encode ~p2:2 0 0; Multi.encode ~p2:2 0 1 ]
    (List.sort compare cmds)

let test_multi_product_reach () =
  (* two independent homing loops verified as one system *)
  let plant2 =
    Nncs_ode.Ode.make ~dim:2 ~input_dim:2 [| E.input 0; E.input 1 |]
  in
  let c1 = homing_controller () in
  let slice i (c : Controller.t) =
    {
      c with
      Controller.pre = (fun s -> [| s.(i) |]);
      pre_abs = (fun b -> B.of_intervals [| B.get b i |]);
    }
  in
  let prod = Multi.product (slice 0 c1) (slice 1 c1) in
  let inside_target st =
    I.hi (B.get st.Symstate.box 0) < 0.2 && I.hi (B.get st.Symstate.box 1) < 0.2
  in
  let sys =
    System.make ~plant:plant2 ~controller:prod
      ~erroneous:
        (Spec.union ~name:"blowup"
           (Spec.coord_gt ~name:"x" ~dim:0 ~bound:4.0)
           (Spec.coord_gt ~name:"y" ~dim:1 ~bound:4.0))
      ~target:
        (Spec.make ~name:"home2" ~contains_box:inside_target
           ~intersects_box:(fun st ->
             I.lo (B.get st.Symstate.box 0) < 0.2
             && I.lo (B.get st.Symstate.box 1) < 0.2)
           ~contains_point:(fun s _ -> s.(0) < 0.2 && s.(1) < 0.2))
      ~horizon_steps:10
  in
  let r0 =
    Symset.of_list
      [ Symstate.make (B.of_bounds [| (1.0, 1.5); (1.2, 1.6) |]) 0 ]
  in
  let r = Reach.analyze ~config:{ Reach.default_config with gamma = 8 } sys r0 in
  check "product system proved" true (Reach.is_proved_safe r)

(* ----- monitor ----- *)

let test_monitor_accepts_and_roundtrip () =
  let proved = [ st 0.0 1.0 0; st 2.0 3.0 1 ] in
  let m = Monitor.of_cells proved in
  Alcotest.(check int) "count" 2 (Monitor.proved_cell_count m);
  check "accepts member" true (Monitor.accepts m ~state:[| 0.5 |] ~cmd:0);
  check "rejects wrong cmd" false (Monitor.accepts m ~state:[| 0.5 |] ~cmd:1);
  check "rejects outside" false (Monitor.accepts m ~state:[| 1.5 |] ~cmd:0);
  let path = Filename.temp_file "nncs_mon" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Monitor.save m path;
      let m2 = Monitor.load path in
      Alcotest.(check int) "roundtrip count" 2 (Monitor.proved_cell_count m2);
      check "roundtrip accepts" true (Monitor.accepts m2 ~state:[| 2.5 |] ~cmd:1))

let test_monitor_of_report () =
  let sys = homing_system () in
  let cells =
    Partition.with_command 0
      (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| 4 |])
  in
  let report =
    Verify.verify_partition
      ~config:{ Verify.default_config with strategy = Verify.All_dims [ 0 ] }
      sys cells
  in
  let m = Monitor.of_report report cells in
  check "all proved cells accepted" true
    (Monitor.accepts m ~state:[| 1.1 |] ~cmd:0
    && Monitor.accepts m ~state:[| 1.9 |] ~cmd:0)

(* ----- influence-guided splitting ----- *)

let test_influence_order () =
  (* 2-d plant where only dimension 0 feeds the controller: dim 0 must
     rank as the most influential *)
  let plant2 =
    Nncs_ode.Ode.make ~dim:2 ~input_dim:1 [| E.input 0; E.const 0.0 |]
  in
  let ctrl =
    {
      (homing_controller ()) with
      Controller.pre = (fun s -> [| s.(0) |]);
      pre_abs = (fun b -> B.of_intervals [| B.get b 0 |]);
    }
  in
  let sys =
    System.make ~plant:plant2 ~controller:ctrl
      ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
      ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
      ~horizon_steps:10
  in
  let cell =
    Symstate.make (B.of_bounds [| (0.5, 1.5); (-10.0, 10.0) |]) 0
  in
  (match Verify.influence_order sys cell [ 0; 1 ] with
  | first :: _ -> Alcotest.(check int) "dim 0 most influential" 0 first
  | [] -> Alcotest.fail "empty influence order");
  (* the Most_influential strategy proves the cell while splitting only
     the useful dimension *)
  let config =
    {
      Verify.default_config with
      strategy = Verify.Most_influential { candidates = [ 0; 1 ]; take = 1 };
      max_depth = 2;
    }
  in
  let report = Verify.verify_partition ~config sys [ cell ] in
  check "verified with influence splitting" true (report.Verify.coverage > 99.9)

let () =
  Alcotest.run "core"
    [
      ("command", [ Alcotest.test_case "set basics" `Quick test_command_set ]);
      ( "symbolic",
        [
          Alcotest.test_case "symstate" `Quick test_symstate;
          Alcotest.test_case "symset" `Quick test_symset;
        ] );
      ("spec", [ Alcotest.test_case "regions" `Quick test_spec_regions ]);
      ( "resize",
        [
          Alcotest.test_case "joins closest" `Quick test_resize_joins_closest;
          Alcotest.test_case "resize_stats counts joins" `Quick
            test_resize_stats_counts_joins;
          Alcotest.test_case "remark 3" `Quick test_resize_gamma_below_commands;
          QCheck_alcotest.to_alcotest prop_resize_sound;
        ] );
      ( "controller",
        [
          Alcotest.test_case "concrete" `Quick test_controller_concrete;
          Alcotest.test_case "abstract" `Quick test_controller_abstract;
          Alcotest.test_case "argmin post#" `Quick test_argmin_post_abs;
          Alcotest.test_case "non-finite scores raise" `Quick
            test_argminmax_post_non_finite;
        ] );
      ( "reach",
        [
          Alcotest.test_case "proves homing" `Quick test_reach_proves_homing;
          Alcotest.test_case "flags runaway" `Quick test_reach_flags_runaway;
          Alcotest.test_case "horizon exhausted" `Quick test_reach_horizon_exhausted;
          Alcotest.test_case "encloses concrete" `Quick test_reach_encloses_concrete;
        ] );
      ( "concrete",
        [ Alcotest.test_case "simulation" `Quick test_concrete_simulation ] );
      ( "multi",
        [
          Alcotest.test_case "encode/decode" `Quick test_multi_encode_decode;
          Alcotest.test_case "product semantics" `Quick test_multi_product_semantics;
          Alcotest.test_case "product reach" `Quick test_multi_product_reach;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "accepts + roundtrip" `Quick test_monitor_accepts_and_roundtrip;
          Alcotest.test_case "of report" `Quick test_monitor_of_report;
        ] );
      ( "verify",
        [
          Alcotest.test_case "partition + coverage" `Quick test_verify_partition_and_coverage;
          Alcotest.test_case "influence order" `Quick test_influence_order;
          Alcotest.test_case "split refinement" `Quick test_verify_split_refinement;
          Alcotest.test_case "parallel agrees" `Quick test_verify_parallel_agrees;
          Alcotest.test_case "grid partition" `Quick test_partition_grid;
          Alcotest.test_case "grid rejects non-finite width" `Quick
            test_partition_grid_rejects_nonfinite_width;
          Alcotest.test_case "ring partition" `Quick test_partition_ring;
        ] );
    ]
