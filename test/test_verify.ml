(* Verify-driver parallelism and the observability subsystem: the
   parallel partition run must agree bit-for-bit with the serial one and
   report live progress; spans must nest (self time excludes children),
   counters must merge across domains, and a trace must survive a JSONL
   round-trip. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Command = Nncs.Command
module Symstate = Nncs.Symstate
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Verify = Nncs.Verify
module Partition = Nncs.Partition
module Json = Nncs_obs.Json
module Metrics = Nncs_obs.Metrics
module Trace = Nncs_obs.Trace
module Span = Nncs_obs.Span

let check = Alcotest.(check bool)

(* the "homing" loop of test_core: x' = u, argmin picks -1 above x = 1 *)

let homing_commands = Command.make [| [| -1.0 |]; [| -0.5 |] |]

let homing_network () =
  let output =
    {
      Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
      biases = [| 1.0; -1.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| output |]

let homing_system () =
  let controller =
    Controller.make ~period:0.5 ~commands:homing_commands
      ~networks:[| homing_network () |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  System.make ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
    ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

let grid n =
  Partition.with_command 0
    (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| n |])

let config workers =
  { Verify.default_config with strategy = Verify.All_dims [ 0 ]; workers }

(* ----- parallel path agrees with serial ----- *)

let test_parallel_identical () =
  let sys = homing_system () in
  let cells = grid 8 in
  let serial = Verify.verify_partition ~config:(config 1) sys cells in
  let parallel = Verify.verify_partition ~config:(config 4) sys cells in
  Alcotest.(check (float 0.0))
    "identical coverage" serial.Verify.coverage parallel.Verify.coverage;
  Alcotest.(check int)
    "identical proved_cells" serial.Verify.proved_cells
    parallel.Verify.proved_cells;
  Alcotest.(check int)
    "identical total_cells" serial.Verify.total_cells
    parallel.Verify.total_cells;
  (* reports come back in input order with matching per-cell verdicts *)
  List.iter2
    (fun (a : Verify.cell_report) (b : Verify.cell_report) ->
      Alcotest.(check int) "cell index" a.Verify.index b.Verify.index;
      Alcotest.(check (float 0.0))
        "cell proved_fraction" a.Verify.proved_fraction b.Verify.proved_fraction)
    serial.Verify.cells parallel.Verify.cells

let test_parallel_progress_live () =
  let sys = homing_system () in
  let cells = grid 8 in
  let seen = ref [] in
  let mutex = Mutex.create () in
  let progress d t =
    Mutex.lock mutex;
    seen := (d, t) :: !seen;
    Mutex.unlock mutex
  in
  ignore (Verify.verify_partition ~config:(config 4) ~progress sys cells);
  let total = List.length cells in
  Alcotest.(check int) "one callback per cell" total (List.length !seen);
  check "every total is the cell count" true
    (List.for_all (fun (_, t) -> t = total) !seen);
  (* the atomic counter hands each invocation a distinct 1..total value *)
  Alcotest.(check (list int))
    "distinct live counts"
    (List.init total (fun i -> i + 1))
    (List.sort compare (List.map fst !seen))

let test_parallel_poisoned_cell () =
  (* a worker raising mid-cell must not disturb its siblings: the
     parallel run with one poisoned cell agrees with the clean serial
     run everywhere else, and the poisoned cell degrades to Unknown *)
  let sys = homing_system () in
  let cells = grid 8 in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  Fun.protect ~finally:Nncs_resilience.Fault.reset (fun () ->
      Nncs_resilience.Fault.arm ~site:"verify.cell" ~key:"3" (fun () ->
          Stdlib.Failure "boom");
      let poisoned = Verify.verify_partition ~config:(config 4) sys cells in
      Alcotest.(check int)
        "one unknown cell" 1 poisoned.Verify.unknown_cells;
      List.iter2
        (fun (a : Verify.cell_report) (b : Verify.cell_report) ->
          Alcotest.(check int) "cell order" a.Verify.index b.Verify.index;
          if b.Verify.index = 3 then
            check "poisoned cell is Worker_crashed" true
              (List.exists
                 (fun l ->
                   match Verify.leaf_failure l with
                   | Some (Nncs_resilience.Failure.Worker_crashed _) -> true
                   | _ -> false)
                 b.Verify.leaves)
          else
            Alcotest.(check (float 0.0))
              "sibling verdict matches serial" a.Verify.proved_fraction
              b.Verify.proved_fraction)
        baseline.Verify.cells poisoned.Verify.cells)

let test_verify_cell_index () =
  let sys = homing_system () in
  let cell = List.hd (grid 1) in
  let r = Verify.verify_cell ~config:(config 1) ~index:7 sys cell in
  Alcotest.(check int) "index carried through" 7 r.Verify.index;
  let r0 = Verify.verify_cell ~config:(config 1) sys cell in
  Alcotest.(check int) "default index 0" 0 r0.Verify.index

(* ----- obs: span nesting ----- *)

let test_span_nesting () =
  Trace.enable ();
  let outer = Span.enter ~attrs:[ ("k", Trace.Int 1) ] "outer" in
  let inner = Span.enter "inner" in
  Unix.sleepf 0.01;
  Span.exit inner;
  Span.exit ~attrs:[ ("done", Trace.Bool true) ] outer;
  Trace.disable ();
  let events = Trace.events () in
  let find name = List.find (fun e -> e.Trace.name = name) events in
  let o = find "outer" and i = find "inner" in
  Alcotest.(check int) "outer depth" 0 o.Trace.depth;
  Alcotest.(check int) "inner depth" 1 i.Trace.depth;
  check "child within parent" true
    (i.Trace.ts >= o.Trace.ts
    && i.Trace.ts +. i.Trace.dur <= o.Trace.ts +. o.Trace.dur +. 1e-9);
  check "outer self excludes child" true
    (o.Trace.self <= o.Trace.dur -. i.Trace.dur +. 1e-9);
  check "exit attrs appended" true
    (List.mem_assoc "done" o.Trace.attrs && List.mem_assoc "k" o.Trace.attrs);
  check "disabled spans are free" true
    (Span.enter "ignored" == Span.null);
  Trace.clear ()

let test_span_exception_safe () =
  Trace.enable ();
  (try Span.with_ "raising" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.disable ();
  check "span closed on raise" true
    (List.exists (fun e -> e.Trace.name = "raising") (Trace.events ()));
  Trace.clear ()

(* ----- obs: counters and spans merge across domains ----- *)

let test_domain_merge () =
  let c = Metrics.counter "test.domain_merge" in
  let h = Metrics.histogram "test.domain_merge_hist" in
  Trace.enable ();
  let work w () =
    Span.with_ "worker-span" ~attrs:[ ("w", Trace.Int w) ] (fun () ->
        for _ = 1 to 1000 do
          Metrics.incr c
        done;
        Metrics.observe h (float_of_int w))
  in
  let d1 = Domain.spawn (work 1) and d2 = Domain.spawn (work 2) in
  Domain.join d1;
  Domain.join d2;
  Trace.disable ();
  Alcotest.(check int) "counter merged" 2000 (Metrics.value c);
  let stats = Metrics.hist_value h in
  Alcotest.(check int) "hist count" 2 stats.Metrics.count;
  Alcotest.(check (float 1e-9)) "hist sum" 3.0 stats.Metrics.sum;
  let spans =
    List.filter (fun e -> e.Trace.name = "worker-span") (Trace.events ())
  in
  Alcotest.(check int) "both domains' spans merged" 2 (List.length spans);
  check "distinct domain ids" true
    (match spans with
    | [ a; b ] -> a.Trace.dom <> b.Trace.dom
    | _ -> false);
  Trace.clear ()

(* ----- obs: JSONL round-trip ----- *)

let test_jsonl_roundtrip () =
  Trace.enable ();
  Span.with_ "alpha" ~attrs:[ ("n", Trace.Int 3); ("tag", Trace.Str "x\"y") ]
    (fun () -> Span.with_ "beta" (fun () -> ()));
  Trace.disable ();
  let path = Filename.temp_file "nncs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_file ~extra:(Metrics.jsonl_lines ()) path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed = List.rev_map Json.of_string !lines in
      check "meta line present" true
        (List.exists (fun j -> Json.member "t" j = Some (Json.Str "meta")) parsed);
      let spans =
        List.filter_map
          (fun j ->
            if Json.member "t" j = Some (Json.Str "span") then
              Some (Trace.event_of_json j)
            else None)
          parsed
      in
      let originals = Trace.events () in
      Alcotest.(check int)
        "all span events written" (List.length originals) (List.length spans);
      List.iter2
        (fun (a : Trace.event) (b : Trace.event) ->
          Alcotest.(check string) "name" a.Trace.name b.Trace.name;
          Alcotest.(check int) "depth" a.Trace.depth b.Trace.depth;
          check "ts round-trips" true (Float.abs (a.Trace.ts -. b.Trace.ts) < 1e-12);
          check "attrs round-trip" true (a.Trace.attrs = b.Trace.attrs))
        (List.sort compare originals)
        (List.sort compare spans));
  Trace.clear ()

let test_json_values () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\\\"\n\t");
        ("n", Json.Num 1.5);
        ("i", Json.Num 42.0);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("o", Json.Obj [ ("k", Json.Num (-3.0)) ]);
      ]
  in
  check "print/parse round-trip" true (Json.of_string (Json.to_string v) = v);
  Alcotest.(check int) "ints stay integral" 42
    (Json.to_int (Option.get (Json.member "i" (Json.of_string (Json.to_string v)))));
  check "rejects garbage" true
    (try
       ignore (Json.of_string "{\"a\": }");
       false
     with Json.Parse_error _ -> true);
  check "rejects trailing" true
    (try
       ignore (Json.of_string "1 2");
       false
     with Json.Parse_error _ -> true)

let () =
  Alcotest.run "verify+obs"
    [
      ( "verify",
        [
          Alcotest.test_case "parallel identical to serial" `Quick
            test_parallel_identical;
          Alcotest.test_case "live progress with workers" `Quick
            test_parallel_progress_live;
          Alcotest.test_case "poisoned cell isolated in parallel" `Quick
            test_parallel_poisoned_cell;
          Alcotest.test_case "verify_cell ?index" `Quick test_verify_cell_index;
        ] );
      ( "obs",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span closed on raise" `Quick
            test_span_exception_safe;
          Alcotest.test_case "cross-domain merge" `Quick test_domain_merge;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "json printer/parser" `Quick test_json_values;
        ] );
    ]
