(* Property tests for the directed-rounding kernel.  The paper's whole
   soundness story rests on Rounding.*_down/_up bracketing the exact
   real result, so these tests verify the brackets with error-free
   transformations: TwoSum gives the exact addition error, and fma gives
   exact residuals for multiplication, division and square root — no
   appeal to a second rounding library needed. *)

module R = Nncs_interval.Rounding

(* ----- generators ----- *)

(* floats drawn uniformly from the *bit* representation: exercises
   subnormals, huge/tiny magnitudes, both zeros *)
let finite_float_gen =
  QCheck.Gen.(
    let* hi = int_bound 0xFFFF in
    let* mid = int_bound 0xFFFFFF in
    let* lo = int_bound 0xFFFFFF in
    let bits =
      Int64.(
        logor
          (shift_left (of_int hi) 48)
          (logor (shift_left (of_int mid) 24) (of_int lo)))
    in
    let x = Int64.float_of_bits bits in
    return (if Float.is_finite x then x else 1.0))

(* moderate-magnitude floats for arithmetic properties: keeps the
   error-free transformations themselves free of over/underflow *)
let mid_float_gen =
  QCheck.Gen.(
    let* mantissa = float_range (-1.0) 1.0 in
    let* e = int_range (-30) 30 in
    return (Float.ldexp mantissa e))

let arb_mid_pair =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%h, %h)" a b)
    QCheck.Gen.(tup2 mid_float_gen mid_float_gen)

let arb_mid = QCheck.make ~print:(Printf.sprintf "%h") mid_float_gen

let arb_any_finite =
  QCheck.make ~print:(Printf.sprintf "%h") finite_float_gen

(* ----- exact bracketing checks ----- *)

(* TwoSum (Knuth): s + e = a + b exactly, for any finite a b without
   overflow.  [a +. b] lies within one ulp of the true sum, and the
   float gaps [s - next_down s] / [next_up s - s] are exact floats, so
   all comparisons below are exact. *)
let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let e = (a -. (s -. bb)) +. (b -. bb) in
  (s, e)

let brackets_via_two_sum lo hi a b =
  let s, e = two_sum a b in
  if e = 0.0 then lo <= s && s <= hi
  else if e > 0.0 then lo <= s && e <= hi -. s
  else s <= hi && -.e <= s -. lo

let prop_add_brackets =
  QCheck.Test.make ~count:2000 ~name:"add_down/up bracket the exact sum"
    arb_mid_pair (fun (a, b) ->
      brackets_via_two_sum (R.add_down a b) (R.add_up a b) a b)

let prop_sub_brackets =
  QCheck.Test.make ~count:2000 ~name:"sub_down/up bracket the exact difference"
    arb_mid_pair (fun (a, b) ->
      brackets_via_two_sum (R.sub_down a b) (R.sub_up a b) a (-.b))

(* For mul/div/sqrt the residual sign from a single fma is exact, which
   turns "x <= true result" into a float comparison. *)
let prop_mul_brackets =
  QCheck.Test.make ~count:2000 ~name:"mul_down/up bracket the exact product"
    arb_mid_pair (fun (a, b) ->
      let lo = R.mul_down a b and hi = R.mul_up a b in
      (* sign of (a*b - x) is the sign of fma a b (-x) *)
      Float.fma a b (-.lo) >= 0.0 && Float.fma a b (-.hi) <= 0.0)

let prop_div_brackets =
  QCheck.Test.make ~count:2000 ~name:"div_down/up bracket the exact quotient"
    arb_mid_pair (fun (a, b) ->
      QCheck.assume (b <> 0.0);
      let lo = R.div_down a b and hi = R.div_up a b in
      (* x <= a/b  <=>  x*b <= a (b>0) / x*b >= a (b<0); residual sign
         of fma x b (-a) decides exactly *)
      let r_lo = Float.fma lo b (-.a) and r_hi = Float.fma hi b (-.a) in
      if b > 0.0 then r_lo <= 0.0 && r_hi >= 0.0
      else r_lo >= 0.0 && r_hi <= 0.0)

let prop_sqrt_brackets =
  QCheck.Test.make ~count:2000 ~name:"sqrt_down/up bracket the exact root"
    arb_mid (fun a ->
      let a = Float.abs a in
      let lo = R.sqrt_down a and hi = R.sqrt_up a in
      (* lo <= sqrt a  <=>  lo < 0 or lo^2 <= a; fma gives the exact
         residual of the squares *)
      (lo < 0.0 || Float.fma lo lo (-.a) <= 0.0)
      && Float.fma hi hi (-.a) >= 0.0)

(* ----- next_up / next_down ----- *)

(* order-preserving integer encoding of IEEE doubles: adjacent floats
   map to adjacent integers *)
let ordered_bits x =
  let b = Int64.bits_of_float x in
  if Int64.compare b 0L >= 0 then b else Int64.sub Int64.min_int b

let prop_next_up_adjacent =
  QCheck.Test.make ~count:2000 ~name:"next_up is the adjacent float"
    arb_any_finite (fun x ->
      QCheck.assume (Float.is_finite x);
      let u = R.next_up x in
      u > x && Int64.sub (ordered_bits u) (ordered_bits x) = 1L)

let prop_next_down_adjacent =
  QCheck.Test.make ~count:2000 ~name:"next_down is the adjacent float"
    arb_any_finite (fun x ->
      QCheck.assume (Float.is_finite x);
      let d = R.next_down x in
      d < x && Int64.sub (ordered_bits x) (ordered_bits d) = 1L)

let prop_next_inverse =
  QCheck.Test.make ~count:2000 ~name:"next_down (next_up x) = x"
    arb_any_finite (fun x ->
      QCheck.assume (Float.is_finite x);
      R.next_down (R.next_up x) = x && R.next_up (R.next_down x) = x)

let test_next_specials () =
  let check = Alcotest.(check bool) in
  check "up inf" true (R.next_up Float.infinity = Float.infinity);
  check "down -inf" true (R.next_down Float.neg_infinity = Float.neg_infinity);
  check "up -inf leaves the infinity" true
    (R.next_up Float.neg_infinity = -.Float.max_float);
  check "down inf" true (R.next_down Float.infinity = Float.max_float);
  check "up nan" true (Float.is_nan (R.next_up Float.nan));
  check "down nan" true (Float.is_nan (R.next_down Float.nan));
  check "up 0 is min subnormal" true
    (R.next_up 0.0 = Int64.float_of_bits 1L);
  check "up -0 equals up +0" true (R.next_up (-0.0) = R.next_up 0.0);
  check "down min subnormal is 0" true
    (R.next_down (Int64.float_of_bits 1L) = 0.0);
  check "up max_float overflows to inf" true
    (R.next_up Float.max_float = Float.infinity);
  (* crossing zero downward lands on the negative subnormals *)
  check "down 0 is -min subnormal" true
    (R.next_down 0.0 = -.Int64.float_of_bits 1L)

let test_directed_specials () =
  let check = Alcotest.(check bool) in
  (* 0.1 + 0.2 is the classic inexact sum *)
  check "add strict" true (R.add_down 0.1 0.2 < 0.1 +. 0.2);
  check "lib margin is 4 ulps" true
    (R.lib_up 1.0 = R.next_up (R.next_up (R.next_up (R.next_up 1.0))));
  check "sqrt 2 bracket" true
    (let s = R.sqrt_down 2.0 and u = R.sqrt_up 2.0 in
     (s *. s < 2.0 || Float.fma s s (-2.0) <= 0.0)
     && Float.fma u u (-2.0) >= 0.0)

let () =
  Alcotest.run "rounding"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_brackets;
            prop_sub_brackets;
            prop_mul_brackets;
            prop_div_brackets;
            prop_sqrt_brackets;
            prop_next_up_adjacent;
            prop_next_down_adjacent;
            prop_next_inverse;
          ] );
      ( "specials",
        [
          Alcotest.test_case "next_up/down special values" `Quick
            test_next_specials;
          Alcotest.test_case "directed op spot checks" `Quick
            test_directed_specials;
        ] );
    ]
