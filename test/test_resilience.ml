(* Fault-injection coverage of the resilience subsystem: numeric guards,
   per-cell budgets, the graceful-degradation ladder, the per-cell
   firewall in partition runs, worker-domain crash recovery, and the
   verdict journal with resume.

   Every test that arms a fault disarms it in a [finally]: the registry
   is global and a leak would poison later tests. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Command = Nncs.Command
module Symstate = Nncs.Symstate
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Verify = Nncs.Verify
module Reach = Nncs.Reach
module Symset = Nncs.Symset
module Partition = Nncs.Partition
module F = Nncs_resilience.Failure
module Budget = Nncs_resilience.Budget
module Cancel = Nncs_resilience.Cancel
module Fault = Nncs_resilience.Fault
module Firewall = Nncs_resilience.Firewall
module Journal = Nncs_resilience.Journal
module Json = Nncs_obs.Json

let check = Alcotest.(check bool)

let with_faults f = Fun.protect ~finally:Fault.reset f

(* the "homing" loop of test_core/test_verify: x' = u, u = -1 above 1 *)

let homing_commands = Command.make [| [| -1.0 |]; [| -0.5 |] |]

let homing_network () =
  let output =
    {
      Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
      biases = [| 1.0; -1.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| output |]

let homing_system () =
  let controller =
    Controller.make ~period:0.5 ~commands:homing_commands
      ~networks:[| homing_network () |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  System.make ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
    ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

let grid n =
  Partition.with_command 0
    (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| n |])

let one_cell () = List.hd (grid 1)

let config ?(limits = Budget.unlimited) ?(degrade = true) ?(max_depth = 0)
    ?(workers = 1) () =
  {
    Verify.default_config with
    strategy = Verify.All_dims [ 0 ];
    max_depth;
    workers;
    limits;
    degrade;
  }

let sole_leaf (r : Verify.cell_report) =
  match r.Verify.leaves with
  | [ l ] -> l
  | ls -> Alcotest.failf "expected one leaf, got %d" (List.length ls)

let enclosure_fault () = Nncs_ode.Apriori.Enclosure_failure "injected"
let numeric_fault () = I.Numeric_error "injected NaN"

(* ----- numeric guards ----- *)

let raises_numeric f =
  try
    ignore (f ());
    false
  with I.Numeric_error _ -> true

let test_numeric_guards () =
  check "make NaN lo" true (raises_numeric (fun () -> I.make Float.nan 1.0));
  check "make NaN hi" true (raises_numeric (fun () -> I.make 0.0 Float.nan));
  check "of_float NaN" true (raises_numeric (fun () -> I.of_float Float.nan));
  check "inflate NaN" true
    (raises_numeric (fun () -> I.inflate (I.make 0.0 1.0) Float.nan));
  check "inflate infinity" true
    (raises_numeric (fun () -> I.inflate (I.make 0.0 1.0) Float.infinity));
  check "box of_bounds NaN" true
    (raises_numeric (fun () -> B.of_bounds [| (0.0, 1.0); (Float.nan, 2.0) |]));
  check "box of_point NaN" true
    (raises_numeric (fun () -> B.of_point [| Float.nan |]));
  check "box inflate infinite radius" true
    (raises_numeric (fun () ->
         B.inflate (B.of_bounds [| (0.0, 1.0) |]) Float.infinity));
  (* infinite bounds are legitimate (unbounded enclosures); only NaN is
     garbage *)
  check "infinite bounds accepted" true
    (I.lo (I.make Float.neg_infinity Float.infinity) = Float.neg_infinity);
  (* negative-eps misuse still reports Invalid_argument, not Numeric *)
  check "negative eps stays invalid_arg" true
    (try
       ignore (I.inflate (I.make 0.0 1.0) (-1.0));
       false
     with Invalid_argument _ -> true)

(* ----- the firewall ----- *)

let test_firewall () =
  let classify = function
    | Nncs_ode.Apriori.Enclosure_failure m -> Some (F.Enclosure_diverged m)
    | _ -> None
  in
  check "ok passes through" true
    (Firewall.protect ~classify (fun () -> 42) = Ok 42);
  check "classified exception" true
    (Firewall.protect ~classify (fun () -> raise (enclosure_fault ()))
    = Error (F.Enclosure_diverged "injected"));
  check "budget exhaustion" true
    (Firewall.protect ~classify (fun () -> raise (Budget.Exhausted F.Deadline))
    = Error (F.Budget_exceeded F.Deadline));
  check "unclassified becomes Worker_crashed" true
    (match Firewall.protect ~classify (fun () -> failwith "boom") with
    | Error (F.Worker_crashed _) -> true
    | _ -> false);
  check "tripped token becomes Cancelled" true
    (Firewall.protect ~classify (fun () -> raise (Cancel.Cancelled "client"))
    = Error (F.Cancelled "client"));
  check "fatal re-raised" true
    (try
       ignore (Firewall.protect ~classify (fun () -> raise Out_of_memory));
       false
     with Out_of_memory -> true)

(* ----- budgets ----- *)

let failed_with (l : Verify.leaf) f =
  match l.Verify.result with
  | Verify.Failed g -> F.equal f g
  | Verify.Completed _ -> false

let test_budget_deadline () =
  let sys = homing_system () in
  let limits = { Budget.unlimited with Budget.deadline_s = Some 0.0 } in
  let r = Verify.verify_cell ~config:(config ~limits ()) sys (one_cell ()) in
  let l = sole_leaf r in
  check "leaf failed with expired deadline" true
    (failed_with l (F.Budget_exceeded F.Deadline));
  check "budget short-circuits the ladder" true (l.Verify.rungs = [ "base" ]);
  check "nothing proved" true (r.Verify.proved_fraction = 0.0)

let test_budget_ode_steps () =
  let sys = homing_system () in
  (* reach uses 10 sub-steps per control step: a 5-step budget dies on
     the first control step *)
  let limits = { Budget.unlimited with Budget.max_ode_steps = Some 5 } in
  let r = Verify.verify_cell ~config:(config ~limits ()) sys (one_cell ()) in
  check "ode-step budget fires" true
    (failed_with (sole_leaf r) (F.Budget_exceeded F.Ode_steps))

let test_budget_symstates () =
  let sys = homing_system () in
  let limits = { Budget.unlimited with Budget.max_symstates = Some 0 } in
  let r = Verify.verify_cell ~config:(config ~limits ()) sys (one_cell ()) in
  check "symstate budget fires" true
    (failed_with (sole_leaf r) (F.Budget_exceeded F.Symbolic_states))

let test_budget_stops_refinement () =
  (* out of budget => the failed leaf must NOT be split: splitting
     multiplies work for a cell that has none left *)
  let sys = homing_system () in
  let limits = { Budget.unlimited with Budget.deadline_s = Some 0.0 } in
  let r =
    Verify.verify_cell ~config:(config ~limits ~max_depth:2 ()) sys (one_cell ())
  in
  Alcotest.(check int) "single leaf despite depth budget" 1
    (List.length r.Verify.leaves)

(* ----- cooperative cancellation ----- *)

let test_cancel_token () =
  let c = Cancel.create () in
  check "fresh token untripped" false (Cancel.cancelled c);
  check "check passes untripped" true (Cancel.check c = ());
  Cancel.cancel c ~reason:"first";
  check "tripped" true (Cancel.cancelled c);
  Alcotest.(check (option string)) "reason kept" (Some "first") (Cancel.reason c);
  (* sticky and idempotent: the first reason wins *)
  Cancel.cancel c ~reason:"second";
  Alcotest.(check (option string))
    "first reason wins" (Some "first") (Cancel.reason c);
  check "check raises tripped" true
    (try
       Cancel.check c;
       false
     with Cancel.Cancelled r -> r = "first");
  check "never stays untripped" false (Cancel.cancelled Cancel.never)

let test_cancel_gates_budget () =
  let cancel = Cancel.create () in
  let b = Budget.start ~cancel Budget.unlimited in
  check "untripped: deadline gate passes" true (Budget.check_deadline b = ());
  Budget.add_ode_steps b 3;
  check "untripped: not expired" false (Budget.expired b);
  Cancel.cancel cancel ~reason:"test";
  (* both hot-loop gates must observe the trip, and the non-raising
     probe must fast-track the work item *)
  check "deadline gate raises Cancelled" true
    (try
       Budget.check_deadline b;
       false
     with Cancel.Cancelled _ -> true);
  check "ode gate raises Cancelled" true
    (try
       Budget.add_ode_steps b 1;
       false
     with Cancel.Cancelled _ -> true);
  check "expired covers cancellation" true (Budget.expired b);
  check "token reachable from budget" true (Budget.cancel_token b == cancel)

let test_cancel_pre_tripped_cell () =
  (* a token tripped before the run: the cell degrades to a single
     Cancelled leaf at its first budget gate — no refinement, no ladder
     retries (retrying a cancelled cell cannot help) *)
  let sys = homing_system () in
  let cancel = Cancel.create () in
  Cancel.cancel cancel ~reason:"before start";
  let r =
    Verify.verify_cell ~cancel ~config:(config ~max_depth:2 ()) sys (one_cell ())
  in
  let l = sole_leaf r in
  check "leaf failed as cancelled" true
    (failed_with l (F.Cancelled "before start"));
  Alcotest.(check (list string))
    "ladder short-circuited" [ "base" ] l.Verify.rungs;
  check "nothing proved" true (r.Verify.proved_fraction = 0.0)

let test_cancel_observed_within_one_cell () =
  (* cancel mid-partition from the progress callback: after the first
     cell completes, every remaining cell must come back as a single
     Cancelled leaf (observed at its first budget gate) rather than
     being analysed or split *)
  let sys = homing_system () in
  let cancel = Cancel.create () in
  let report =
    Verify.verify_partition ~cancel
      ~config:(config ~max_depth:2 ())
      ~progress:(fun cells_done _total ->
        if cells_done = 1 then Cancel.cancel cancel ~reason:"mid-run")
      sys (grid 6)
  in
  Alcotest.(check int) "all cells accounted" 6 report.Verify.total_cells;
  Alcotest.(check int) "first cell proved before the trip" 1
    report.Verify.proved_cells;
  Alcotest.(check int) "the rest cancelled" 5 report.Verify.unknown_cells;
  List.iteri
    (fun i (c : Verify.cell_report) ->
      if i > 0 then begin
        Alcotest.(check int)
          (Printf.sprintf "cell %d: one leaf, not split" i)
          1
          (List.length c.Verify.leaves);
        check
          (Printf.sprintf "cell %d: cancelled" i)
          true
          (failed_with (sole_leaf c) (F.Cancelled "mid-run"))
      end)
    report.Verify.cells

(* ----- the degradation ladder ----- *)

let test_ladder_halved_step_recovers () =
  with_faults (fun () ->
      let sys = homing_system () in
      Fault.arm ~site:"reach.step" ~times:1 enclosure_fault;
      let r = Verify.verify_cell ~config:(config ()) sys (one_cell ()) in
      let l = sole_leaf r in
      check "recovered on retry" true l.Verify.proved;
      Alcotest.(check (list string))
        "walked one rung" [ "base"; "halved_step" ] l.Verify.rungs)

let test_ladder_interval_fallback () =
  with_faults (fun () ->
      let sys = homing_system () in
      Fault.arm ~site:"reach.step" ~times:2 enclosure_fault;
      let r = Verify.verify_cell ~config:(config ()) sys (one_cell ()) in
      let l = sole_leaf r in
      check "recovered on interval domain" true l.Verify.proved;
      Alcotest.(check (list string))
        "walked the whole ladder"
        [ "base"; "halved_step"; "interval_domain" ]
        l.Verify.rungs)

let test_ladder_exhausted_is_unknown () =
  with_faults (fun () ->
      let sys = homing_system () in
      Fault.arm ~site:"reach.step" enclosure_fault;
      let r = Verify.verify_cell ~config:(config ()) sys (one_cell ()) in
      let l = sole_leaf r in
      check "unknown with the diverged reason" true
        (failed_with l (F.Enclosure_diverged "injected"));
      Alcotest.(check (list string))
        "every rung attempted"
        [ "base"; "halved_step"; "interval_domain" ]
        l.Verify.rungs)

let test_no_degrade_single_attempt () =
  with_faults (fun () ->
      let sys = homing_system () in
      Fault.arm ~site:"reach.step" ~times:1 enclosure_fault;
      let r =
        Verify.verify_cell ~config:(config ~degrade:false ()) sys (one_cell ())
      in
      let l = sole_leaf r in
      check "no retry without degrade" true
        (failed_with l (F.Enclosure_diverged "injected"));
      Alcotest.(check (list string)) "one rung only" [ "base" ] l.Verify.rungs)

let test_refinement_recovers_failed_leaf () =
  (* a failed leaf with depth and budget left is split like an unproved
     one; the children run with the fault exhausted and prove the cell *)
  with_faults (fun () ->
      let sys = homing_system () in
      Fault.arm ~site:"reach.step" ~times:1 enclosure_fault;
      let r =
        Verify.verify_cell
          ~config:(config ~degrade:false ~max_depth:1 ())
          sys (one_cell ())
      in
      Alcotest.(check int) "two child leaves" 2 (List.length r.Verify.leaves);
      Alcotest.(check (float 1e-12)) "fully proved" 1.0 r.Verify.proved_fraction)

let test_nan_dynamics_is_numeric () =
  with_faults (fun () ->
      let sys = homing_system () in
      Fault.arm ~site:"ode.simulate" numeric_fault;
      let r = Verify.verify_cell ~config:(config ()) sys (one_cell ()) in
      check "NaN surfaces as a Numeric failure" true
        (failed_with (sole_leaf r) (F.Numeric "injected NaN")))

(* ----- acceptance: one poisoned cell in a partition ----- *)

let test_partition_isolates_poisoned_cell () =
  with_faults (fun () ->
      let sys = homing_system () in
      Fault.arm ~site:"verify.cell" ~key:"1" enclosure_fault;
      let report = Verify.verify_partition ~config:(config ()) sys (grid 4) in
      Alcotest.(check int) "all cells reported" 4 report.Verify.total_cells;
      Alcotest.(check int) "three proved" 3 report.Verify.proved_cells;
      Alcotest.(check int) "one unknown" 1 report.Verify.unknown_cells;
      Alcotest.(check (float 1e-9)) "coverage 75%" 75.0 report.Verify.coverage;
      List.iteri
        (fun i (c : Verify.cell_report) ->
          Alcotest.(check int) "input order" i c.Verify.index;
          if i = 1 then
            check "poisoned cell diverged" true
              (failed_with (sole_leaf c) (F.Enclosure_diverged "injected"))
          else
            Alcotest.(check (float 1e-12))
              "sibling proved" 1.0 c.Verify.proved_fraction)
        report.Verify.cells)

(* ----- worker-domain crash recovery ----- *)

let test_worker_crash_requeues () =
  with_faults (fun () ->
      let sys = homing_system () in
      (* Sys.Break is fatal: the firewall re-raises it, the worker domain
         dies, and the re-queue sweep must still complete every cell
         (the fault is one-shot, so the retry succeeds) *)
      Fault.arm ~site:"verify.cell" ~key:"2" ~times:1 (fun () -> Sys.Break);
      let report =
        Verify.verify_partition ~config:(config ~workers:3 ()) sys (grid 6)
      in
      Alcotest.(check int) "all cells reported" 6 report.Verify.total_cells;
      Alcotest.(check int) "all proved after recovery" 6
        report.Verify.proved_cells;
      Alcotest.(check (float 1e-9)) "full coverage" 100.0 report.Verify.coverage)

(* ----- failure taxonomy serialization ----- *)

let test_failure_json_roundtrip () =
  let cases =
    [
      F.Enclosure_diverged "no contracting enclosure";
      F.Budget_exceeded F.Deadline;
      F.Budget_exceeded F.Ode_steps;
      F.Budget_exceeded F.Symbolic_states;
      F.Cancelled "client request";
      F.Numeric "NaN bound";
      F.Worker_crashed "Stack_overflow";
    ]
  in
  List.iter
    (fun f ->
      check (F.to_string f) true
        (F.equal f (F.of_json (Json.of_string (Json.to_string (F.to_json f))))))
    cases

(* ----- Reach.run: early abort returns as data ----- *)

let test_reach_run_error_contact () =
  let sys = homing_system () in
  (* the initial box already overlaps E (x > 4): the early-abort
     Error_contact signal must come back as a Reached_error verdict, not
     as an exception *)
  let bad = Symstate.make (B.of_bounds [| (4.5, 5.0) |]) 0 in
  match Reach.run sys (Symset.of_list [ bad ]) with
  | Ok r -> (
      match r.Reach.outcome with
      | Reach.Reached_error _ -> ()
      | _ -> Alcotest.fail "expected Reached_error")
  | Error f -> Alcotest.failf "expected a verdict, got %s" (F.to_string f)

(* ----- journal round-trip and resume ----- *)

let with_temp_journal f =
  let path = Filename.temp_file "nncs_journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let run_journaled ~path ?completed sys cells =
  Journal.with_writer path (fun w ->
      Journal.write w
        (Verify.journal_meta
           ~total:(List.length cells)
           ~fingerprint:(Verify.fingerprint ~config:(config ()) sys cells));
      Verify.verify_partition ~config:(config ())
        ~on_cell:(fun c -> Journal.write w (Verify.cell_report_to_json c))
        ?completed sys cells)

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      let sys = homing_system () in
      let cells = grid 4 in
      let report = run_journaled ~path sys cells in
      let j = Verify.load_journal path in
      let loaded = j.Verify.completed_cells in
      Alcotest.(check (option int)) "meta total" (Some 4) j.Verify.meta_total;
      check "meta has a fingerprint" true (j.Verify.meta_fingerprint <> None);
      Alcotest.(check int) "all cells journaled" 4 (List.length loaded);
      List.iter2
        (fun (a : Verify.cell_report) (b : Verify.cell_report) ->
          Alcotest.(check int) "index" a.Verify.index b.Verify.index;
          Alcotest.(check (float 0.0))
            "proved_fraction round-trips exactly" a.Verify.proved_fraction
            b.Verify.proved_fraction;
          List.iter2
            (fun (x : Verify.leaf) (y : Verify.leaf) ->
              check "state round-trips exactly" true
                (B.equal x.Verify.state.Symstate.box y.Verify.state.Symstate.box);
              check "result round-trips" true
                (x.Verify.proved = y.Verify.proved
                && x.Verify.rungs = y.Verify.rungs))
            a.Verify.leaves b.Verify.leaves)
        report.Verify.cells loaded)

let test_journal_resume_skips_completed () =
  with_temp_journal (fun path ->
      with_faults (fun () ->
          let sys = homing_system () in
          let cells = grid 4 in
          let full = run_journaled ~path sys cells in
          let loaded = (Verify.load_journal path).Verify.completed_cells in
          let completed =
            List.filter (fun (c : Verify.cell_report) -> c.Verify.index < 2)
              loaded
          in
          (* a fault on cell 0 proves resume does not recompute it *)
          Fault.arm ~site:"verify.cell" ~key:"0" enclosure_fault;
          let resumed =
            Verify.verify_partition ~config:(config ()) ~completed sys cells
          in
          Alcotest.(check (float 1e-9))
            "same coverage as the uninterrupted run" full.Verify.coverage
            resumed.Verify.coverage;
          Alcotest.(check int) "no unknown cells" 0 resumed.Verify.unknown_cells;
          check "completed cell 0 was not re-run" true (Fault.armed ())))

let test_journal_tolerates_truncated_tail () =
  with_temp_journal (fun path ->
      let sys = homing_system () in
      ignore (run_journaled ~path sys (grid 3));
      (* simulate a crash mid-write: chop the final line in half *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      let cut = String.length contents - 40 in
      let oc = open_out_bin path in
      output_string oc (String.sub contents 0 cut);
      close_out oc;
      let j = Verify.load_journal path in
      Alcotest.(check (option int)) "meta survives" (Some 3) j.Verify.meta_total;
      Alcotest.(check int) "only the torn record is lost" 2
        (List.length j.Verify.completed_cells))

(* Corruption is not confined to the tail: a bit-flipped or
   half-flushed record mid-file must not take the rest of the journal
   with it.  [load] skips any malformed line, reporting its 1-based
   number, and drops blank lines silently. *)
let test_journal_skips_malformed_mid_file () =
  with_temp_journal (fun path ->
      let module Json = Nncs_obs.Json in
      let oc = open_out path in
      output_string oc "{\"t\":\"meta\",\"total\":2}\n";
      output_string oc "{\"t\":\"cell\",\"index\":0}\n";
      output_string oc "{\"t\":\"cell\",\"ind\x00ex\n";
      output_string oc "\n";
      output_string oc "{\"t\":\"cell\",\"index\":1}\n";
      close_out oc;
      let reported = ref [] in
      let records =
        Journal.load ~on_malformed:(fun ~line _ -> reported := line :: !reported)
          path
      in
      Alcotest.(check int) "good records survive" 3 (List.length records);
      Alcotest.(check (list int)) "the bad line reported by number" [ 3 ]
        (List.rev !reported);
      (match List.rev records with
      | last :: _ ->
          Alcotest.(check (option int))
            "records after the corruption are kept"
            (Some 1)
            (Option.map Json.to_int (Json.member "index" last))
      | [] -> Alcotest.fail "journal came back empty"))

(* Shutdown races a worker still journaling: [close] must serialize with
   in-flight [write]s (no exception may cross the verdict boundary) and
   post-close writes must be silent no-ops.  One domain hammers writes
   while this one closes mid-stream; every line that did land must still
   be complete JSON. *)
let test_journal_close_write_race () =
  with_temp_journal (fun path ->
      let module Json = Nncs_obs.Json in
      let w = Journal.create path in
      let landed = Atomic.make 0 in
      let writer =
        Domain.spawn (fun () ->
            try
              for i = 0 to 4999 do
                Journal.write w (Json.Obj [ ("i", Json.Num (float_of_int i)) ]);
                Atomic.incr landed
              done;
              true
            with _ -> false)
      in
      (* let some writes land, then slam the journal shut under it *)
      while Atomic.get landed < 32 do
        Domain.cpu_relax ()
      done;
      Journal.close w;
      let survived = Domain.join writer in
      check "no write raised across the close" true survived;
      Journal.close w (* idempotent *);
      Journal.write w (Json.Obj [ ("i", Json.Num (-1.0)) ]);
      let bad = ref 0 in
      let records = Journal.load ~on_malformed:(fun ~line:_ _ -> incr bad) path in
      Alcotest.(check int) "no torn lines" 0 !bad;
      check "pre-close writes persisted" true (List.length records >= 32);
      check "post-close write was a no-op" true
        (List.for_all
           (fun j -> Option.map Json.to_int (Json.member "i" j) <> Some (-1))
           records))

let () =
  Alcotest.run "resilience"
    [
      ( "guards",
        [
          Alcotest.test_case "numeric guards" `Quick test_numeric_guards;
          Alcotest.test_case "firewall" `Quick test_firewall;
        ] );
      ( "budget",
        [
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "ode steps" `Quick test_budget_ode_steps;
          Alcotest.test_case "symbolic states" `Quick test_budget_symstates;
          Alcotest.test_case "stops refinement" `Quick
            test_budget_stops_refinement;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "token semantics" `Quick test_cancel_token;
          Alcotest.test_case "gates budget" `Quick test_cancel_gates_budget;
          Alcotest.test_case "pre-tripped cell" `Quick
            test_cancel_pre_tripped_cell;
          Alcotest.test_case "observed within one cell" `Quick
            test_cancel_observed_within_one_cell;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "halved step recovers" `Quick
            test_ladder_halved_step_recovers;
          Alcotest.test_case "interval fallback" `Quick
            test_ladder_interval_fallback;
          Alcotest.test_case "exhausted is unknown" `Quick
            test_ladder_exhausted_is_unknown;
          Alcotest.test_case "degrade off" `Quick test_no_degrade_single_attempt;
          Alcotest.test_case "refinement recovers failed leaf" `Quick
            test_refinement_recovers_failed_leaf;
          Alcotest.test_case "NaN dynamics" `Quick test_nan_dynamics_is_numeric;
        ] );
      ( "partition",
        [
          Alcotest.test_case "poisoned cell isolated" `Quick
            test_partition_isolates_poisoned_cell;
          Alcotest.test_case "worker crash requeued" `Quick
            test_worker_crash_requeues;
        ] );
      ( "journal",
        [
          Alcotest.test_case "failure json round-trip" `Quick
            test_failure_json_roundtrip;
          Alcotest.test_case "reach run early abort" `Quick
            test_reach_run_error_contact;
          Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "resume skips completed" `Quick
            test_journal_resume_skips_completed;
          Alcotest.test_case "truncated tail tolerated" `Quick
            test_journal_tolerates_truncated_tail;
          Alcotest.test_case "malformed mid-file line skipped" `Quick
            test_journal_skips_malformed_mid_file;
          Alcotest.test_case "close/write race" `Quick
            test_journal_close_write_race;
        ] );
    ]
