(* Controller-abstraction cache: quantized lookups stay sound (hits
   return supersets of the exact abstraction) even when worker domains
   hammer the sharded table concurrently, the LRU bound holds at
   capacity, all domains share one process-wide table, and a cached
   verification run reports the same verdicts as an uncached one. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Rng = Nncs_linalg.Rng
module T = Nncs_nnabs.Transformer
module Cache = Nncs_nnabs.Cache
module E = Nncs_ode.Expr
module Command = Nncs.Command
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Reach = Nncs.Reach
module Verify = Nncs.Verify
module Partition = Nncs.Partition

let check = Alcotest.(check bool)

(* ----- quantization ----- *)

let random_box rng dim w =
  B.of_bounds
    (Array.init dim (fun _ ->
         let c = Rng.uniform rng (-1.0) 1.0 in
         (c -. w, c +. w)))

let test_quantize_contains () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let box = random_box rng 4 (Rng.uniform rng 0.0 0.3) in
    let q = Rng.uniform rng 1e-6 0.1 in
    let qbox = Cache.quantize q box in
    check "quantized box contains the original" true (B.subset box qbox);
    (* idempotent: grid points snap to themselves *)
    check "quantization is idempotent" true (B.subset qbox (Cache.quantize q qbox))
  done;
  let box = random_box rng 3 0.1 in
  check "quantum 0 is the identity" true (Cache.quantize 0.0 box == box)

(* Outward snapping must keep containment even where floating-point
   rounding bites: |bound| / quantum near or past 2^52, quanta below one
   ulp of the bound, and divisions that overflow to infinity (the
   implementation falls back to the raw bound there). *)
let test_quantize_extreme_magnitudes () =
  let q = 0.005 in
  List.iter
    (fun x ->
      let box = B.of_bounds [| (x, x *. 1.0000001) |] in
      check
        (Printf.sprintf "containment at %g" x)
        true
        (B.subset box (Cache.quantize q box)))
    [ 1e15; 4.5e16; 7.3e17; 1e300; Float.max_float /. 2.0 ];
  List.iter
    (fun x ->
      let box = B.of_bounds [| (x *. 1.0000001, x) |] in
      check
        (Printf.sprintf "containment at %g" x)
        true
        (B.subset box (Cache.quantize q box)))
    [ -1e15; -4.5e16; -7.3e17; -1e300; -.Float.max_float /. 2.0 ]

let prop_quantize_extreme_sound =
  QCheck.Test.make ~count:2000
    ~name:"outward quantization contains the box at any magnitude"
    QCheck.(
      pair
        (pair (float_range (-1.0) 1.0) (int_range 0 300))
        (pair (int_range (-12) 2) (float_range 0.0 0.5)))
    (fun ((m, e), (qe, w)) ->
      let scale = 10.0 ** float_of_int e in
      let lo = m *. scale in
      let hi = lo +. (w *. scale) in
      let q = 10.0 ** float_of_int qe in
      QCheck.assume (Float.is_finite lo && Float.is_finite hi && lo <= hi);
      let box = B.of_bounds [| (lo, hi) |] in
      let qbox = Cache.quantize q box in
      B.subset box qbox
      && Float.is_finite (I.lo (B.get qbox 0))
      && Float.is_finite (I.hi (B.get qbox 0)))

(* ----- soundness of cached abstraction under quantization ----- *)

let test_cached_propagation_sound () =
  let rng = Rng.create 29 in
  let net = Net.create_mlp ~rng ~layer_sizes:[ 3; 10; 10; 2 ] in
  let cache = Cache.create { Cache.capacity = 64; quantum = 0.02; shards = 4 } in
  let f b = T.propagate T.Symbolic net b in
  (* clustered queries: many boxes snap to the same quantized key, so
     later ones are served from the cache — every answer must still
     enclose the exact (uncached) abstraction of the query box *)
  let centers =
    Array.init 10 (fun _ -> Array.init 3 (fun _ -> Rng.uniform rng (-0.5) 0.5))
  in
  for _ = 1 to 300 do
    let center = centers.(Rng.int rng (Array.length centers)) in
    let box =
      B.of_bounds
        (Array.map
           (fun c ->
             let j = Rng.uniform rng 0.0 0.004 in
             (c -. 0.01 -. j, c +. 0.01 +. j))
           center)
    in
    let cached = Cache.find_or_compute cache ~net_id:0 ~cmd:0 box f in
    check "cached result encloses the exact abstraction" true
      (B.subset (f box) cached)
  done;
  let s = Cache.stats cache in
  check "clustered queries produced hits" true (s.Cache.hits > 0);
  check "hit rate consistent" true
    (Float.abs
       (Cache.hit_rate cache
       -. (float_of_int s.Cache.hits /. float_of_int (s.Cache.hits + s.Cache.misses)))
    < 1e-12)

(* ----- LRU eviction at capacity ----- *)

let test_lru_eviction () =
  (* one shard: the LRU order is global and eviction deterministic *)
  let cache = Cache.create { Cache.capacity = 4; quantum = 0.0; shards = 1 } in
  let box = B.of_bounds [| (0.0, 1.0) |] in
  let computed = ref 0 in
  let query cmd =
    ignore
      (Cache.find_or_compute cache ~net_id:0 ~cmd box (fun b ->
           incr computed;
           b))
  in
  List.iter query [ 0; 1; 2; 3 ];
  Alcotest.(check int) "4 computations fill the table" 4 !computed;
  let s = Cache.stats cache in
  Alcotest.(check int) "size at capacity" 4 s.Cache.size;
  Alcotest.(check int) "no eviction yet" 0 s.Cache.evictions;
  query 0;
  (* key 0 is now most recent *)
  Alcotest.(check int) "hit costs no computation" 4 !computed;
  query 4;
  (* evicts the least recently used key, which is 1 *)
  let s = Cache.stats cache in
  Alcotest.(check int) "size still bounded" 4 s.Cache.size;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  query 0;
  Alcotest.(check int) "survivor 0 still cached" 5 !computed;
  query 1;
  Alcotest.(check int) "evicted key 1 recomputed" 6 !computed;
  let s = Cache.stats cache in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 6 s.Cache.misses;
  Cache.clear cache;
  Alcotest.(check int) "clear empties the table" 0 (Cache.stats cache).Cache.size;
  Alcotest.(check int) "clear keeps statistics" 2 (Cache.stats cache).Cache.hits

let test_tag_separates_entries () =
  let cache = Cache.create { Cache.capacity = 8; quantum = 0.0; shards = 2 } in
  let box = B.of_bounds [| (0.0, 1.0) |] in
  let wide = B.of_bounds [| (-9.0, 9.0) |] in
  let r0 =
    Cache.find_or_compute cache ~net_id:0 ~cmd:0 ~tag:0 box (fun b -> b)
  in
  let r1 =
    Cache.find_or_compute cache ~net_id:0 ~cmd:0 ~tag:1 box (fun _ -> wide)
  in
  check "tags do not share entries" true (not (B.subset wide r0));
  check "tag 1 computed its own value" true (B.subset wide r1)

(* Regression: the key must identify the *network*, not its index
   inside one controller.  Two systems verified back-to-back in the same
   process share the domain cache; with index-based keys the second
   one's queries would hit entries computed from the first one's
   weights — silently unsound. *)
let test_shared_cache_distinct_networks () =
  let rng = Rng.create 17 in
  let commands = Command.make [| [| 0.0 |]; [| 1.0 |] |] in
  let ctrl net =
    Controller.make ~period:1.0 ~commands ~networks:[| net |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  let net_a = Net.create_mlp ~rng ~layer_sizes:[ 2; 8; 2 ] in
  let net_b = Net.create_mlp ~rng ~layer_sizes:[ 2; 8; 2 ] in
  let cache = Cache.create { Cache.capacity = 64; quantum = 0.05; shards = 4 } in
  let box = B.of_bounds [| (-0.2, 0.2); (-0.1, 0.3) |] in
  let a = Controller.abstract_scores ~cache (ctrl net_a) ~box ~prev_cmd:0 in
  let b = Controller.abstract_scores ~cache (ctrl net_b) ~box ~prev_cmd:0 in
  let qbox = Cache.quantize 0.05 box in
  check "first network's scores enclose its exact abstraction" true
    (B.subset (T.propagate T.Symbolic net_a qbox) a);
  check "second network's scores enclose its exact abstraction" true
    (B.subset (T.propagate T.Symbolic net_b qbox) b);
  check "no cross-network hit: both queries computed" true
    ((Cache.stats cache).Cache.hits = 0)

(* ----- process-wide sharing ----- *)

let test_shared_process_wide () =
  let cfg = { Cache.capacity = 8; quantum = 0.0; shards = 2 } in
  let mine = Cache.shared cfg in
  check "same config, same table" true (Cache.shared cfg == mine);
  let workers =
    Array.init 3 (fun _ -> Domain.spawn (fun () -> Cache.shared cfg))
  in
  let tables = Array.map Domain.join workers in
  Array.iter
    (fun t -> check "worker sees the caller's table" true (t == mine))
    tables;
  (* a different config replaces the process table *)
  let bigger = Cache.shared { cfg with Cache.capacity = 16 } in
  check "config change gives a fresh table" true (bigger != mine);
  check "new config is sticky" true (Cache.shared { cfg with Cache.capacity = 16 } == bigger)

(* ----- concurrent domains on one sharded table ----- *)

(* Four domains hammer overlapping quantized keys on a small table: every
   answer — fresh, hit, or the loser of a concurrent same-key miss race —
   must still enclose the exact abstraction of the query box, and the
   clustered traffic must actually produce cross-domain hits. *)
let test_concurrent_hits_sound () =
  let net = Net.create_mlp ~rng:(Rng.create 5) ~layer_sizes:[ 3; 12; 12; 2 ] in
  let cache =
    Cache.create { Cache.capacity = 128; quantum = 0.02; shards = 4 }
  in
  let f b = T.propagate T.Symbolic net b in
  let failures = Atomic.make 0 in
  let worker seed () =
    let rng = Rng.create seed in
    let centers =
      Array.init 6 (fun _ -> Array.init 3 (fun _ -> Rng.uniform rng (-0.4) 0.4))
    in
    for _ = 1 to 200 do
      let center = centers.(Rng.int rng (Array.length centers)) in
      let box =
        B.of_bounds
          (Array.map
             (fun c ->
               let j = Rng.uniform rng 0.0 0.003 in
               (c -. 0.008 -. j, c +. 0.008 +. j))
             center)
      in
      let cached = Cache.find_or_compute cache ~net_id:0 ~cmd:0 box f in
      if not (B.subset (f box) cached) then Atomic.incr failures
    done
  in
  let domains =
    (* two seed groups of two domains: the domains inside a group draw
       the same six centers, guaranteeing cross-domain key overlap *)
    Array.init 4 (fun i -> Domain.spawn (worker (100 + (i mod 2))))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "every concurrent answer sound" 0 (Atomic.get failures);
  let s = Cache.stats cache in
  check "overlapping traffic produced hits" true (s.Cache.hits > 0);
  check "statistics account every query" true
    (s.Cache.hits + s.Cache.misses = 4 * 200);
  check "table bounded by capacity" true (s.Cache.size <= 128);
  check "shard sizes sum to the table size" true
    (Array.fold_left ( + ) 0 (Cache.shard_sizes cache) = s.Cache.size)

(* Two networks queried concurrently through one shared table: the
   [net_id] ([Network.uid]) key component must keep their entries apart
   even under racy interleavings — an answer computed from the other
   network's weights would be silently unsound. *)
let test_concurrent_network_isolation () =
  let rng = Rng.create 23 in
  let net_a = Net.create_mlp ~rng ~layer_sizes:[ 2; 10; 2 ] in
  let net_b = Net.create_mlp ~rng ~layer_sizes:[ 2; 10; 2 ] in
  let cache =
    Cache.create { Cache.capacity = 64; quantum = 0.05; shards = 4 }
  in
  let failures = Atomic.make 0 in
  let worker net () =
    let f b = T.propagate T.Symbolic net b in
    for i = 0 to 99 do
      let c = float_of_int (i mod 5) *. 0.05 in
      let box = B.of_bounds [| (c -. 0.02, c +. 0.02); (-0.1, 0.1) |] in
      let cached =
        Cache.find_or_compute cache ~net_id:(Net.uid net) ~cmd:0 box f
      in
      if not (B.subset (f box) cached) then Atomic.incr failures
    done
  in
  let domains =
    [| Domain.spawn (worker net_a); Domain.spawn (worker net_b);
       Domain.spawn (worker net_a); Domain.spawn (worker net_b) |]
  in
  Array.iter Domain.join domains;
  Alcotest.(check int)
    "no cross-network contamination" 0 (Atomic.get failures);
  (* identical query streams per network: hits only within a network *)
  check "within-network hits occurred" true ((Cache.stats cache).Cache.hits > 0)

(* ----- cached vs uncached verification verdicts ----- *)
(* the homing loop of test_verify: x' = u, argmin picks -1 above x = 1 *)

let homing_system () =
  let commands = Command.make [| [| -1.0 |]; [| -0.5 |] |] in
  let network =
    Net.make ~input_dim:1
      [|
        {
          Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
          biases = [| 1.0; -1.0 |];
          activation = Act.Linear;
        };
      |]
  in
  let controller =
    Controller.make ~period:0.5 ~commands ~networks:[| network |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  System.make ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
    ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

let config ?abs_cache workers =
  {
    Verify.default_config with
    reach = { Reach.default_config with abs_cache };
    strategy = Verify.All_dims [ 0 ];
    workers;
  }

let leaf_verdicts (r : Verify.report) =
  List.map
    (fun (c : Verify.cell_report) ->
      ( c.Verify.index,
        List.map
          (fun (l : Verify.leaf) -> (l.Verify.depth, l.Verify.proved))
          c.Verify.leaves ))
    r.Verify.cells

let test_cached_verdicts_identical () =
  let sys = homing_system () in
  let cells =
    Partition.with_command 0
      (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| 8 |])
  in
  let abs_cache = { Cache.capacity = 1024; quantum = 0.0; shards = 4 } in
  let plain = Verify.verify_partition ~config:(config 1) sys cells in
  let cached =
    Verify.verify_partition ~config:(config ~abs_cache 1) sys cells
  in
  (* workers > 1: all domains share the process-wide sharded table *)
  let parallel =
    Verify.verify_partition ~config:(config ~abs_cache 4) sys cells
  in
  Alcotest.(check (float 0.0))
    "cached coverage identical" plain.Verify.coverage cached.Verify.coverage;
  Alcotest.(check (float 0.0))
    "parallel cached coverage identical" plain.Verify.coverage
    parallel.Verify.coverage;
  check "cached leaf verdicts identical" true
    (leaf_verdicts plain = leaf_verdicts cached);
  check "parallel cached leaf verdicts identical" true
    (leaf_verdicts plain = leaf_verdicts parallel)

let () =
  Alcotest.run "nnabs-cache"
    [
      ( "cache",
        [
          Alcotest.test_case "quantize contains" `Quick test_quantize_contains;
          Alcotest.test_case "quantize extreme magnitudes" `Quick
            test_quantize_extreme_magnitudes;
          QCheck_alcotest.to_alcotest prop_quantize_extreme_sound;
          Alcotest.test_case "cached propagation sound" `Quick
            test_cached_propagation_sound;
          Alcotest.test_case "shared cache, distinct networks" `Quick
            test_shared_cache_distinct_networks;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "tags separate entries" `Quick
            test_tag_separates_entries;
          Alcotest.test_case "process-wide sharing" `Quick
            test_shared_process_wide;
          Alcotest.test_case "concurrent hits sound" `Quick
            test_concurrent_hits_sound;
          Alcotest.test_case "concurrent network isolation" `Quick
            test_concurrent_network_isolation;
          Alcotest.test_case "cached verdicts identical" `Quick
            test_cached_verdicts_identical;
        ] );
    ]
