(* Fixture: inconsistent lock-acquisition order between two mutexes —
   one caller takes a then b, another takes b then a: deadlock risk
   reported as a lock-order cycle. *)

let lock_a = Mutex.create ()
let lock_b = Mutex.create ()

let forward f =
  Mutex.protect lock_a (fun () -> Mutex.protect lock_b (fun () -> f ()))

let backward f =
  Mutex.protect lock_b (fun () -> Mutex.protect lock_a (fun () -> f ()))
