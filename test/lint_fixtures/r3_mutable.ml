(* Fixture: top-level mutable state and exception-unsafe locking. *)

let bad_cache = ref []
let bad_table = Hashtbl.create 16
let fine_atomic = Atomic.make 0
let fine_local () = ref 0

let m = Mutex.create ()

let bad_section x =
  Mutex.lock m;
  let r = x + 1 in
  Mutex.unlock m;
  r

let fine_section x =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> x + 1)
