(* Fixture: structural equality on abstract types.  Local stand-in
   modules carry the policy's abstract-module names so the fixture is
   self-contained under the typed engine (the rule matches the owning
   module of the operand's resolved type). *)

module Interval = struct
  type t = { lo : float; hi : float }

  let make lo hi = { lo; hi }
  let equal a b = a == b
end

module Network = struct
  type t = { layers : int }

  let make layers = { layers }
end

module Symstate = struct
  type t = { dim : int }

  let make dim = { dim }
end

let bad_interval a = a = Interval.make 0.0 1.0
let bad_net (n : Network.t) m = n = m
let bad_compare n m = compare (Symstate.make n) (Symstate.make m)
let fine_strings a b = String.equal a b
let fine_own_equal a b = Interval.equal a b
