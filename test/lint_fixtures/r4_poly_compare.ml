(* Fixture: structural equality on abstract types. *)

let bad_interval a = a = Interval.make 0.0 1.0
let bad_net n m = Network.layers n = Network.layers m
let bad_compare n m = compare (Symstate.make n) (Symstate.make m)
let fine_strings a b = String.equal a b
let fine_own_equal a b = Interval.equal a b
