(* Fixture: bare float arithmetic.  Linted under a fake path inside
   lib/interval so R1 is in scope. *)

let widen lo hi = (lo +. 1.0, hi *. 2.0)
let libm_call x = sqrt x
let float_module x = Float.exp x

(* local shadowing: this [cos] is the file's own function, so the call
   below must NOT be flagged *)
let cos x = x
let uses_local_cos x = cos x

(* exact queries are not rounding operations *)
let fine x = Float.abs (Float.max x 1.0)
