(* Fixture: atomic protocol hazards. *)

let counter = Atomic.make 0

(* bad: the value read by get can be overwritten before the set lands
   (lost update) *)
let bad_bump () = Atomic.set counter (Atomic.get counter + 1)

(* good: CAS retry loop — the get/set pair goes through compare_and_set *)
let rec good_bump () =
  let v = Atomic.get counter in
  if not (Atomic.compare_and_set counter v (v + 1)) then good_bump ()

type holder = { mutable slot : int Atomic.t }

(* bad: publishing a fresh Atomic.t through a plain mutable field with
   no lock held *)
let bad_publish h = h.slot <- Atomic.make 1

(* bad: discarded fetch_and_add with a unit delta — Atomic.incr is the
   drop-in replacement *)
let bad_faa () = ignore (Atomic.fetch_and_add counter 1)

(* good: arbitrary deltas have no non-fetching equivalent *)
let good_add n = ignore (Atomic.fetch_and_add counter n)
