(* Fixture: fiber/effect safety. *)

type _ Effect.t += Yield : unit Effect.t

let m = Mutex.create ()

(* bad: performing parks the fiber with the lock still held *)
let bad_perform () = Mutex.protect m (fun () -> Effect.perform Yield)

(* good: the lock is released before performing *)
let good_perform () =
  Mutex.protect m (fun () -> ());
  Effect.perform Yield

let key = Domain.DLS.new_key (fun () -> 0)

(* bad: the handler may run on whichever domain resumes the fiber, so
   domain-local state read here can belong to the wrong domain *)
let bad_handler f =
  Effect.Deep.match_with f ()
    {
      Effect.Deep.retc = (fun v -> v);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  let _ = Domain.DLS.get key in
                  Effect.Deep.continue k ())
          | _ -> None);
    }
