(* Fixture: checked [@@lint.guarded_by] lock discipline.  Linted under
   a fake lib/ path so the concurrency rules are in scope. *)

let state_mutex = Mutex.create ()
let state : int list ref = ref [] [@@lint.guarded_by "state_mutex"]

(* good: access inside a Mutex.protect region on the declared lock *)
let good_push x = Mutex.protect state_mutex (fun () -> state := x :: !state)

(* good: access inside a lock/Fun.protect region on the declared lock *)
let good_read () =
  Mutex.lock state_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock state_mutex)
    (fun () -> !state)

(* bad: no lock held around the guarded binding *)
let bad_peek () = !state
