(* Fixture: every finding below is suppressed by an annotation, so the
   linter must report nothing for this file. *)

let heuristic_width iv = (Interval.hi iv -. Interval.lo iv) *. 0.5
[@@lint.fp_exact "test: heuristic measure"]

let inline_site x = (x +. 1.0) [@lint.fp_exact "test: inline suppression"]

let zero_test w = (w = 0.0) [@lint.fp_exact "test: exact zero check"]

let guarded_registry = ref [] [@@lint.guarded_by "registry_mutex"]

let allowed_state = Hashtbl.create 8
[@@lint.allow "r3-top-mutable test: read-only after init"]

let allowed_eq a = (a = Interval.zero) [@lint.allow "r4 test: interned values"]

[@@@lint.fp_exact "test: rest of file is exempt"]

let after_floating x = sqrt (x ** 2.0)
