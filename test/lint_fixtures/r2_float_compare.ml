(* Fixture: polymorphic comparison at float type. *)

let bad_eq x = x = 1.0
let bad_neq x = x <> 0.5
let bad_min x y = min (x +. 1.0) y
let bad_pattern = function 0.0 -> true | _ -> false
let fine_int x = x = 1
