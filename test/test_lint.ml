(* Self-tests for the nncs_lint static analyzer: one fixture per rule
   family, suppression coverage, scope rules, shadowing, and the
   baseline workflow.  Fixtures are real .ml files under lint_fixtures/
   but are linted under fake repo paths so the scope logic (R1 only in
   soundness-critical dirs, R3 only under lib/) is exercised. *)

module L = Nncs_lint
module F = L.Finding

let read_fixture name =
  let path = Filename.concat "lint_fixtures" name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* lint fixture [name] as if it lived at [path] in the repo *)
let lint_as name path = L.Driver.lint_source ~path (read_fixture name)

let rule_counts findings =
  List.fold_left
    (fun acc f ->
      let id = F.rule_id f.F.rule in
      let cur = try List.assoc id acc with Not_found -> 0 in
      (id, cur + 1) :: List.remove_assoc id acc)
    [] findings
  |> List.sort compare

let check_counts msg expected findings =
  Alcotest.(check (list (pair string int))) msg expected (rule_counts findings)

let bindings_of rule findings =
  List.filter_map
    (fun f -> if f.F.rule = rule then Some f.F.binding else None)
    findings
  |> List.sort_uniq compare

(* ----- rule families ----- *)

let test_r1 () =
  let fs = lint_as "r1_bare_float.ml" "lib/interval/r1_bare_float.ml" in
  check_counts "r1 fixture" [ ("r1-bare-float", 4) ] fs;
  Alcotest.(check (list string))
    "flagged bindings"
    [ "float_module"; "libm_call"; "widen" ]
    (bindings_of F.R1_bare_float fs);
  List.iter
    (fun f ->
      Alcotest.(check string) "severity" "P1" (F.severity_id (F.severity f.F.rule)))
    fs

let test_r1_scope () =
  (* the same file outside the soundness-critical dirs yields nothing *)
  let fs = lint_as "r1_bare_float.ml" "lib/obs/r1_bare_float.ml" in
  check_counts "r1 out of scope" [] fs

let test_r1_shadowing () =
  let fs = lint_as "r1_bare_float.ml" "lib/interval/r1_bare_float.ml" in
  Alcotest.(check bool)
    "locally-defined cos is not libm" false
    (List.exists (fun f -> f.F.binding = "uses_local_cos") fs)

let test_r2 () =
  let fs = lint_as "r2_float_compare.ml" "bin/r2_float_compare.ml" in
  check_counts "r2 fixture" [ ("r2-float-compare", 4) ] fs;
  List.iter
    (fun f ->
      Alcotest.(check string) "severity" "P2" (F.severity_id (F.severity f.F.rule)))
    fs

let test_r3 () =
  let fs = lint_as "r3_mutable.ml" "lib/obs/r3_mutable.ml" in
  check_counts "r3 fixture"
    [ ("r3-mutex-unsafe", 1); ("r3-top-mutable", 2) ]
    fs;
  Alcotest.(check (list string))
    "mutable bindings" [ "bad_cache"; "bad_table" ]
    (bindings_of F.R3_top_mutable fs);
  Alcotest.(check (list string))
    "unsafe lock in" [ "bad_section" ]
    (bindings_of F.R3_mutex_unsafe fs)

let test_r4 () =
  let fs = lint_as "r4_poly_compare.ml" "bin/r4_poly_compare.ml" in
  check_counts "r4 fixture" [ ("r4-poly-compare", 3) ] fs

let test_r5_guarded () =
  let fs = lint_as "r5_guarded.ml" "lib/serve/r5_guarded.ml" in
  check_counts "r5 guarded" [ ("r5-guarded-by", 1) ] fs;
  Alcotest.(check (list string))
    "only the unlocked access" [ "bad_peek" ]
    (bindings_of F.R5_guarded_by fs);
  List.iter
    (fun f ->
      Alcotest.(check string) "severity" "P1" (F.severity_id (F.severity f.F.rule)))
    fs

let test_r5_lock_order () =
  let fs = lint_as "r5_lock_order.ml" "lib/serve/r5_lock_order.ml" in
  check_counts "r5 lock order" [ ("r5-lock-order", 1) ] fs;
  let f = List.hd fs in
  Alcotest.(check string) "P1" "P1" (F.severity_id (F.severity f.F.rule));
  Alcotest.(check bool)
    "cycle key names both locks" true
    (String.starts_with ~prefix:"cycle:" f.F.detail
    && String.length f.F.detail > String.length "cycle:")

let test_r6 () =
  let fs = lint_as "r6_atomic.ml" "lib/serve/r6_atomic.ml" in
  check_counts "r6 fixture"
    [
      ("r6-atomic-publish", 1); ("r6-atomic-rmw", 1); ("r6-faa-discard", 1);
    ]
    fs;
  Alcotest.(check (list string))
    "lost update flagged in" [ "bad_bump" ]
    (bindings_of F.R6_atomic_rmw fs);
  let sev rule =
    List.find_map
      (fun f ->
        if f.F.rule = rule then Some (F.severity_id (F.severity f.F.rule))
        else None)
      fs
  in
  Alcotest.(check (option string)) "rmw is P1" (Some "P1") (sev F.R6_atomic_rmw);
  Alcotest.(check (option string))
    "publish is P2" (Some "P2") (sev F.R6_atomic_publish)

let test_r7 () =
  let fs = lint_as "r7_effect.ml" "lib/serve/r7_effect.ml" in
  check_counts "r7 fixture"
    [ ("r7-dls-in-handler", 1); ("r7-perform-under-lock", 1) ]
    fs;
  Alcotest.(check (list string))
    "perform-under-lock flagged in" [ "bad_perform" ]
    (bindings_of F.R7_perform_under_lock fs);
  Alcotest.(check (list string))
    "dls-in-handler flagged in" [ "bad_handler" ]
    (bindings_of F.R7_dls_in_handler fs)

let test_conc_scope () =
  (* the same hazards outside lib/ and bin/ are out of concurrency
     scope *)
  let fs = lint_as "r6_atomic.ml" "tools/r6_atomic.ml" in
  check_counts "r6 out of scope" [] fs

let test_suppression () =
  let fs = lint_as "suppressed.ml" "lib/interval/suppressed.ml" in
  check_counts "all suppressed" [] fs

let test_conc_suppression () =
  (* [@lint.allow "r6..."] and family prefixes silence the new rules *)
  let source =
    "let c = Atomic.make 0\n\
     let bump () = (Atomic.set c (Atomic.get c + 1))\n\
     [@@lint.allow \"r6-atomic-rmw test: single-writer protocol\"]\n"
  in
  let fs = L.Driver.lint_source ~path:"lib/serve/allow_rmw.ml" source in
  check_counts "rmw allowed" [] fs

let test_parse_failure () =
  let fs = L.Driver.lint_source ~path:"lib/core/broken.ml" "let let = in" in
  check_counts "parse failure" [ ("parse-failure", 1) ] fs

let test_type_failure () =
  (* well-formed syntax that does not typecheck is a P1 type-failure,
     not a silent skip *)
  let fs =
    L.Driver.lint_source ~path:"lib/core/untyped.ml" "let f x = x + 0.5\n"
  in
  check_counts "type failure" [ ("type-failure", 1) ] fs

(* ----- acceptance criterion: a deliberately-introduced bare [+.] in
   lib/interval is flagged as a new P1 when run without a baseline ----- *)

let test_deliberate_regression () =
  let source = "let widen_ulp iv = Interval.hi iv +. 1e-9\n" in
  let fs = L.Driver.lint_source ~path:"lib/interval/patch.ml" source in
  check_counts "bare +. flagged" [ ("r1-bare-float", 1) ] fs;
  let f = List.hd fs in
  Alcotest.(check string) "P1" "P1" (F.severity_id (F.severity f.F.rule));
  Alcotest.(check string) "op" "+." f.F.detail;
  (* no baseline: the finding is New *)
  let classified, stale = L.Baseline.apply [] fs in
  Alcotest.(check bool)
    "new without baseline" true
    (List.for_all (fun (_, s) -> s = L.Baseline.New) classified);
  Alcotest.(check int) "no stale" 0 (List.length stale)

(* ----- baseline workflow ----- *)

let test_baseline_roundtrip () =
  let fs = lint_as "r1_bare_float.ml" "lib/interval/r1_bare_float.ml" in
  let entries = L.Baseline.of_findings fs in
  let path = Filename.temp_file "nncs_lint_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      L.Baseline.save path entries;
      let loaded = L.Baseline.load path in
      Alcotest.(check int)
        "entry count survives" (List.length entries) (List.length loaded);
      (* a full baseline classifies everything as baselined, nothing stale *)
      let classified, stale = L.Baseline.apply loaded fs in
      Alcotest.(check bool)
        "all baselined" true
        (List.for_all
           (fun (_, s) -> match s with L.Baseline.Baselined _ -> true | _ -> false)
           classified);
      Alcotest.(check int) "no stale" 0 (List.length stale))

let test_baseline_budget_and_stale () =
  (* two occurrences of the same key (+. twice in one binding): a budget
     of 1 baselines the first and reports the second as new *)
  let fs =
    L.Driver.lint_source ~path:"lib/interval/twice.ml"
      "let f x = x +. 1.0 +. 2.0\n"
  in
  Alcotest.(check int) "two findings, one key" 2 (List.length fs);
  let entries = L.Baseline.of_findings fs in
  Alcotest.(check (list int))
    "single entry with count 2" [ 2 ]
    (List.map (fun (e : L.Baseline.entry) -> e.count) entries);
  let cut =
    List.map (fun e -> { e with L.Baseline.count = 1 }) entries
  in
  let classified, _ = L.Baseline.apply cut fs in
  let news =
    List.filter (fun (_, s) -> s = L.Baseline.New) classified |> List.length
  in
  Alcotest.(check int) "excess occurrence is new" 1 news;
  (* and a baseline for findings the tree no longer produces goes stale *)
  let _, stale = L.Baseline.apply entries [] in
  Alcotest.(check int)
    "all entries stale on empty run" (List.length entries) (List.length stale)

let test_baseline_keeps_reasons () =
  let fs = lint_as "r1_bare_float.ml" "lib/interval/r1_bare_float.ml" in
  let entries = L.Baseline.of_findings fs in
  let with_reason =
    List.map (fun e -> { e with L.Baseline.reason = "checked by hand" }) entries
  in
  let rebuilt = L.Baseline.of_findings ~previous:with_reason fs in
  Alcotest.(check bool)
    "reasons survive regeneration" true
    (List.for_all (fun (e : L.Baseline.entry) -> e.reason = "checked by hand") rebuilt)

(* ----- parallel driver ----- *)

let test_parallel_driver_equivalence () =
  (* identical findings and per-file coverage regardless of worker
     count; also drives the serialized typer section from several
     domains at once *)
  let seq = L.Driver.run ~workers:1 [ "lint_fixtures" ] in
  let par = L.Driver.run ~workers:4 [ "lint_fixtures" ] in
  Alcotest.(check (list string))
    "same findings"
    (List.map F.to_string seq.L.Driver.findings)
    (List.map F.to_string par.L.Driver.findings);
  Alcotest.(check (list string))
    "same files covered"
    (List.map fst seq.L.Driver.per_file)
    (List.map fst par.L.Driver.per_file);
  Alcotest.(check bool)
    "wall-clock recorded" true
    (List.for_all (fun (_, w) -> w >= 0.) par.L.Driver.per_file)

(* ----- stale baseline entries for deleted files ----- *)

let test_stale_missing_file () =
  let e =
    { L.Baseline.key = "r1-bare-float|lib/interval/gone.ml|f|+."; count = 2;
      reason = "was pending" }
  in
  let _, stale = L.Baseline.apply [ e ] [] in
  Alcotest.(check int) "entry is stale" 1 (List.length stale);
  let kinds exists =
    L.Baseline.classify_stale ~file_exists:(fun _ -> exists) stale
    |> List.map (fun (_, k) -> k = L.Baseline.Missing_file)
  in
  Alcotest.(check (list bool)) "deleted file detected" [ true ] (kinds false);
  Alcotest.(check (list bool)) "live file is just unmatched" [ false ]
    (kinds true);
  let pruned = L.Baseline.prune [ e ] stale in
  Alcotest.(check int) "stale budget pruned away" 0 (List.length pruned);
  (* partially-consumed entries keep the consumed part *)
  let half = [ { e with L.Baseline.count = 1 } ] in
  let kept = L.Baseline.prune [ e ] half in
  Alcotest.(check (list int))
    "partial prune keeps consumed budget" [ 1 ]
    (List.map (fun (x : L.Baseline.entry) -> x.count) kept)

(* ----- the real tree: the linter gate itself ----- *)

let test_repo_is_clean () =
  (* the test runs from _build/default/test, so the copied sources sit
     at ../lib and ../bin; lint them as ONE tree under their
     repo-relative names so scope rules and the cross-module analyses
     (guard declarations, lock-order graph) apply exactly as in CI.
     Skip silently if the layout is unexpected (e.g. installed
     tests). *)
  let roots =
    List.filter
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ Filename.concat ".." "lib"; Filename.concat ".." "bin" ]
  in
  if roots <> [] then begin
    let files = L.Driver.collect_ml_files roots in
    let sources =
      List.map
        (fun file ->
          let repo_path =
            String.sub file 3 (String.length file - 3) (* drop "../" *)
          in
          let ic = open_in_bin file in
          let src =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          (repo_path, src))
        files
    in
    let fs = L.Driver.lint_sources sources in
    (* the committed baseline is empty: every rule family (R1-R7) must
       come back clean, not just the P1 subset *)
    Alcotest.(check (list string))
      "no findings in lib/ and bin/" []
      (List.map F.to_string fs)
  end

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "r1 bare float" `Quick test_r1;
          Alcotest.test_case "r1 scope" `Quick test_r1_scope;
          Alcotest.test_case "r1 shadowing" `Quick test_r1_shadowing;
          Alcotest.test_case "r2 float compare" `Quick test_r2;
          Alcotest.test_case "r3 mutable + mutex" `Quick test_r3;
          Alcotest.test_case "r4 poly compare" `Quick test_r4;
          Alcotest.test_case "r5 guarded by" `Quick test_r5_guarded;
          Alcotest.test_case "r5 lock order" `Quick test_r5_lock_order;
          Alcotest.test_case "r6 atomic protocols" `Quick test_r6;
          Alcotest.test_case "r7 fiber safety" `Quick test_r7;
          Alcotest.test_case "concurrency scope" `Quick test_conc_scope;
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "concurrency suppression" `Quick
            test_conc_suppression;
          Alcotest.test_case "parse failure" `Quick test_parse_failure;
          Alcotest.test_case "type failure" `Quick test_type_failure;
        ] );
      ( "driver",
        [
          Alcotest.test_case "parallel equivalence" `Quick
            test_parallel_driver_equivalence;
        ] );
      ( "gate",
        [
          Alcotest.test_case "deliberate regression" `Quick
            test_deliberate_regression;
          Alcotest.test_case "repo lib/ and bin/ are clean" `Quick
            test_repo_is_clean;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "budget and stale" `Quick
            test_baseline_budget_and_stale;
          Alcotest.test_case "keeps reasons" `Quick test_baseline_keeps_reasons;
          Alcotest.test_case "stale for missing file" `Quick
            test_stale_missing_file;
        ] );
    ]
