(* The verification service: protocol codecs round-trip and reject
   malformed requests; a served job answers identically to a direct
   uncached [Verify.verify_partition]; a repeated job is answered from
   the verdict memo without re-running; a poisoned job yields an error
   event and never kills the server; the memo journal survives a
   crash-torn tail; and the full JSONL session loop handles garbage
   lines, stats probes and shutdown. *)

module B = Nncs_interval.Box
module I = Nncs_interval.Interval
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module T = Nncs_nnabs.Transformer
module Cache = Nncs_nnabs.Cache
module E = Nncs_ode.Expr
module J = Nncs_obs.Json
module Fault = Nncs_resilience.Fault
module Command = Nncs.Command
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Symstate = Nncs.Symstate
module Verify = Nncs.Verify
module Partition = Nncs.Partition
module P = Nncs_serve.Protocol
module Memo = Nncs_serve.Memo
module Server = Nncs_serve.Server

module Metrics = Nncs_obs.Metrics

let check = Alcotest.(check bool)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ----- protocol codecs ----- *)

let sample_cells =
  [
    Symstate.make (B.of_bounds [| (1.0, 1.5); (-0.25, 0.25) |]) 0;
    Symstate.make (B.of_bounds [| (1.5, 2.0); (-0.25, 0.25) |]) 1;
  ]

let boxes_equal a b =
  B.dim a = B.dim b
  && List.for_all
       (fun d ->
         let ia = B.get a d and ib = B.get b d in
         I.lo ia = I.lo ib && I.hi ia = I.hi ib)
       (List.init (B.dim a) Fun.id)

let reparse req =
  (* through the printed wire form, exactly as a client round-trips *)
  P.request_of_json (J.of_string (J.to_string (P.request_to_json req)))

let test_request_roundtrip () =
  let config =
    {
      P.default_config with
      Verify.max_depth = 3;
      workers = 2;
      scheduler = Verify.Leaves;
      strategy = Verify.Most_influential { candidates = [ 0; 1 ]; take = 1 };
      limits =
        {
          Nncs_resilience.Budget.deadline_s = Some 2.5;
          max_ode_steps = Some 10_000;
          max_symstates = None;
        };
    }
  in
  let job =
    {
      P.id = "q1";
      cells = P.Explicit sample_cells;
      domain = T.Interval;
      nn_splits = 4;
      config;
      use_memo = false;
    }
  in
  (match reparse (P.Job job) with
  | Ok (P.Job j) ->
      Alcotest.(check string) "id" "q1" j.P.id;
      check "domain" true (j.P.domain = T.Interval);
      Alcotest.(check int) "nn_splits" 4 j.P.nn_splits;
      check "memo flag" true (j.P.use_memo = false);
      Alcotest.(check int) "max_depth" 3 j.P.config.Verify.max_depth;
      Alcotest.(check int) "workers" 2 j.P.config.Verify.workers;
      check "scheduler" true (j.P.config.Verify.scheduler = Verify.Leaves);
      check "strategy" true
        (j.P.config.Verify.strategy
        = Verify.Most_influential { candidates = [ 0; 1 ]; take = 1 });
      check "limits" true
        (j.P.config.Verify.limits.Nncs_resilience.Budget.deadline_s = Some 2.5
        && j.P.config.Verify.limits.Nncs_resilience.Budget.max_ode_steps
           = Some 10_000);
      (match j.P.cells with
      | P.Explicit l ->
          Alcotest.(check int) "cell count" 2 (List.length l);
          List.iter2
            (fun (a : Symstate.t) (b : Symstate.t) ->
              check "cell box round-trips" true
                (boxes_equal a.Symstate.box b.Symstate.box);
              Alcotest.(check int) "cell cmd" a.Symstate.cmd b.Symstate.cmd)
            sample_cells l
      | P.Partition _ -> Alcotest.fail "explicit cells became a partition")
  | Ok _ -> Alcotest.fail "job parsed as a different request"
  | Error e -> Alcotest.fail e);
  let partition_job =
    {
      P.id = "q2";
      cells = P.Partition { arcs = 12; headings = 4; arc_indices = [ 3; 7 ] };
      domain = T.Symbolic;
      nn_splits = 0;
      config = P.default_config;
      use_memo = true;
    }
  in
  (match reparse (P.Job partition_job) with
  | Ok (P.Job j) ->
      check "partition round-trips" true
        (j.P.cells
        = P.Partition { arcs = 12; headings = 4; arc_indices = [ 3; 7 ] })
  | Ok _ | Error _ -> Alcotest.fail "partition job did not round-trip");
  (match
     reparse
       (P.Lookup
          { id = "l1"; box = B.of_bounds [| (0.5, 1.0); (2.0, 3.0) |]; cmd = 3 })
   with
  | Ok (P.Lookup { id; box; cmd }) ->
      Alcotest.(check string) "lookup id" "l1" id;
      Alcotest.(check int) "lookup cmd" 3 cmd;
      check "lookup box round-trips" true
        (boxes_equal box (B.of_bounds [| (0.5, 1.0); (2.0, 3.0) |]))
  | Ok _ | Error _ -> Alcotest.fail "lookup did not round-trip");
  check "stats round-trips" true (reparse P.Stats = Ok P.Stats);
  check "shutdown round-trips" true (reparse P.Shutdown = Ok P.Shutdown)

let test_request_rejects () =
  let parse s = P.request_of_json (J.of_string s) in
  let rejects label s =
    match parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": malformed request accepted")
  in
  rejects "no type" {|{"id":"x"}|};
  rejects "unknown type" {|{"t":"frobnicate"}|};
  rejects "job without id" {|{"t":"job","partition":{"arcs":1,"headings":1}}|};
  rejects "job without cells" {|{"t":"job","id":"x"}|};
  rejects "both cells and partition"
    {|{"t":"job","id":"x","cells":[],"partition":{"arcs":1,"headings":1}}|};
  rejects "bad domain"
    {|{"t":"job","id":"x","partition":{"arcs":1,"headings":1},"domain":"zonotope"}|};
  rejects "bad scheme"
    {|{"t":"job","id":"x","partition":{"arcs":1,"headings":1},"scheme":"rk4"}|};
  rejects "take without dims"
    {|{"t":"job","id":"x","partition":{"arcs":1,"headings":1},"split_take":1}|};
  rejects "malformed box"
    {|{"t":"job","id":"x","cells":[{"box":[[0.0]],"cmd":0}]}|}

let test_event_roundtrip () =
  let events =
    [
      P.Accepted { id = "a"; fingerprint = "00ff" };
      P.Progress { id = "a"; cells_done = 3; total = 8 };
      P.Verdict
        {
          id = "a";
          fingerprint = "00ff";
          source = P.Run;
          coverage = 87.5;
          proved_cells = 7;
          unknown_cells = 1;
          total_cells = 8;
          elapsed_s = 0.25;
        };
      P.Verdict
        {
          id = "b";
          fingerprint = "00ff";
          source = P.Memo;
          coverage = 87.5;
          proved_cells = 7;
          unknown_cells = 1;
          total_cells = 8;
          elapsed_s = 0.0;
        };
      P.Lookup_result { id = "l1"; status = P.Lookup_unsafe { k = 4 } };
      P.Lookup_result { id = "l2"; status = P.Lookup_safe };
      P.Lookup_result { id = "l3"; status = P.Lookup_out_of_domain };
      P.Lookup_result { id = "l4"; status = P.Lookup_unavailable };
      P.Job_error { id = ""; reason = "unparseable line" };
      P.Stats_report (J.Obj [ ("jobs", J.Num 2.0) ]);
      P.Bye;
    ]
  in
  List.iter
    (fun e ->
      match P.event_of_json (J.of_string (J.to_string (P.event_to_json e))) with
      | Ok e' -> check "event round-trips" true (e = e')
      | Error msg -> Alcotest.fail msg)
    events

(* ----- the served pipeline on the homing loop of test_verify ----- *)

let homing_system () =
  let commands = Command.make [| [| -1.0 |]; [| -0.5 |] |] in
  let network =
    Net.make ~input_dim:1
      [|
        {
          Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
          biases = [| 1.0; -1.0 |];
          activation = Act.Linear;
        };
      |]
  in
  let controller =
    Controller.make ~period:0.5 ~commands ~networks:[| network |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  System.make ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
    ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:10

let homing_cells arcs =
  Partition.with_command 0
    (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| arcs |])

let make_server ?memo_path ?memo_capacity ?job_deadline_s () =
  Server.create
    {
      Server.default_config with
      Server.dispatchers = 1;
      cache = Some { Cache.capacity = 1024; quantum = 0.0; shards = 4 };
      memo_path;
      memo_capacity;
      job_deadline_s;
    }
    ~make_system:(fun ~domain:_ ~nn_splits:_ -> homing_system ())
    ~make_cells:(fun ~arcs ~headings:_ ~arc_indices ->
      let all = homing_cells arcs in
      match arc_indices with
      | [] -> all
      | idxs -> List.filteri (fun i _ -> List.mem i idxs) all)

let homing_job ?(id = "q") ?(use_memo = true) () =
  {
    P.id;
    cells = P.Explicit (homing_cells 8);
    domain = T.Symbolic;
    nn_splits = 0;
    config = P.default_config;
    use_memo;
  }

let collect server job =
  let events = ref [] in
  Server.submit server ~emit:(fun e -> events := e :: !events) job;
  List.rev !events

let leaf_verdicts (r : Verify.report) =
  List.map
    (fun (c : Verify.cell_report) ->
      ( c.Verify.index,
        List.map
          (fun (l : Verify.leaf) -> (l.Verify.depth, l.Verify.proved))
          c.Verify.leaves ))
    r.Verify.cells

(* the [Verdict] payload, extracted (inline records cannot escape) *)
type verdict = {
  vid : string;
  vfp : string;
  vsrc : P.source;
  vcov : float;
  vproved : int;
  vtotal : int;
}

let verdict_payload = function
  | P.Verdict { id; fingerprint; source; coverage; proved_cells; total_cells; _ }
    ->
      Some
        {
          vid = id;
          vfp = fingerprint;
          vsrc = source;
          vcov = coverage;
          vproved = proved_cells;
          vtotal = total_cells;
        }
  | _ -> None

let find_verdict events =
  match List.filter_map verdict_payload events with
  | [ v ] -> v
  | _ -> Alcotest.fail "expected exactly one verdict event"

let test_served_verdict_matches_direct () =
  let server = make_server () in
  let job = homing_job ~id:"first" () in
  let events = collect server job in
  let v = find_verdict events in
  check "first query ran the pipeline" true (v.vsrc = P.Run);
  (match List.hd events with
  | P.Accepted { id; fingerprint } ->
      Alcotest.(check string) "accepted echoes the id" "first" id;
      Alcotest.(check string)
        "accepted and verdict agree on the fingerprint" fingerprint
        v.vfp
  | _ -> Alcotest.fail "first event must be accepted");
  check "run jobs report progress" true
    (List.exists (function P.Progress _ -> true | _ -> false) events);
  (* the served report must be the direct, uncached one *)
  let direct =
    Verify.verify_partition ~config:job.P.config (homing_system ())
      (homing_cells 8)
  in
  Alcotest.(check (float 0.0))
    "served coverage = direct coverage" direct.Verify.coverage v.vcov;
  Alcotest.(check int) "total cells" direct.Verify.total_cells v.vtotal;
  Alcotest.(check int)
    "proved cells" direct.Verify.proved_cells v.vproved;
  match Server.lookup server v.vfp with
  | None -> Alcotest.fail "verdict not memoized"
  | Some stored ->
      check "memoized leaf verdicts = direct leaf verdicts" true
        (leaf_verdicts stored = leaf_verdicts direct)

let jobs_counted server =
  match J.member "jobs" (Server.stats_json server) with
  | Some n -> J.to_int n
  | None -> Alcotest.fail "stats_json lacks a jobs field"

let test_repeat_answered_from_memo () =
  let server = make_server () in
  (* the jobs metric is process-wide: count relative to the baseline *)
  let jobs0 = jobs_counted server in
  let v1 = find_verdict (collect server (homing_job ~id:"a" ())) in
  let events2 = collect server (homing_job ~id:"b" ()) in
  let v2 = find_verdict events2 in
  check "first from the pipeline" true (v1.vsrc = P.Run);
  check "identical repeat from the memo" true (v2.vsrc = P.Memo);
  Alcotest.(check string)
    "same problem, same fingerprint" v1.vfp v2.vfp;
  Alcotest.(check (float 0.0))
    "same coverage either way" v1.vcov v2.vcov;
  check "memo answers emit no progress" true
    (not (List.exists (function P.Progress _ -> true | _ -> false) events2));
  (* memo opt-out: same job with memo:false runs again *)
  let v3 = find_verdict (collect server (homing_job ~id:"c" ~use_memo:false ())) in
  check "memo:false re-runs the pipeline" true (v3.vsrc = P.Run);
  Alcotest.(check (float 0.0))
    "and still agrees" v1.vcov v3.vcov;
  Alcotest.(check int) "stats count the jobs" 3 (jobs_counted server - jobs0)

(* regression: the memo key must include the budget limits.  A
   budget-truncated report stored first must not be served for the same
   problem without the budget (Verify.fingerprint alone omits
   config.limits). *)
let test_budget_distinct_in_memo () =
  let server = make_server () in
  let limited_job id =
    {
      (homing_job ~id ()) with
      P.config =
        {
          P.default_config with
          Verify.limits =
            {
              Nncs_resilience.Budget.unlimited with
              Nncs_resilience.Budget.max_ode_steps = Some 1;
            };
        };
    }
  in
  let v_lim = find_verdict (collect server (limited_job "tight")) in
  check "budget-limited first run hits the pipeline" true (v_lim.vsrc = P.Run);
  (* the same problem, unlimited: must re-run, not collide *)
  let v_full = find_verdict (collect server (homing_job ~id:"full" ())) in
  check "unlimited job not served the truncated report" true
    (v_full.vsrc = P.Run);
  check "budget-only difference yields distinct fingerprints" true
    (v_lim.vfp <> v_full.vfp);
  let direct =
    Verify.verify_partition ~config:P.default_config (homing_system ())
      (homing_cells 8)
  in
  Alcotest.(check (float 0.0))
    "unlimited verdict = direct unlimited run" direct.Verify.coverage
    v_full.vcov;
  (* an identical budget-limited repeat does share its memo entry *)
  let v_lim2 = find_verdict (collect server (limited_job "tight2")) in
  check "same budget answered from the memo" true (v_lim2.vsrc = P.Memo);
  Alcotest.(check string)
    "same budget, same fingerprint" v_lim.vfp v_lim2.vfp

let test_poisoned_job_firewalled () =
  let server = make_server () in
  Fun.protect ~finally:Fault.reset (fun () ->
      Fault.arm ~site:"serve.job" ~key:"bad" (fun () ->
          Failure "injected fault");
      let events = collect server (homing_job ~id:"bad" ()) in
      (match events with
      | [ P.Job_error { id; reason = _ } ] ->
          Alcotest.(check string) "error tagged with the job id" "bad" id
      | _ -> Alcotest.fail "poisoned job must yield exactly one error event"));
  (* the server survives: the next job runs normally *)
  let v = find_verdict (collect server (homing_job ~id:"good" ())) in
  check "next job unaffected" true (v.vsrc = P.Run)

let test_empty_partition_rejected () =
  let server = make_server () in
  let job =
    { (homing_job ~id:"empty" ()) with P.cells = P.Explicit [] }
  in
  match collect server job with
  | [ P.Job_error { id = "empty"; _ } ] -> ()
  | _ -> Alcotest.fail "empty cell list must yield an error event"

(* ----- cooperative cancellation and single-flight coalescing ----- *)

(* cancel a running job from its first progress event: the acknowledged
   party receives no further events from the flight, the truncated
   report never reaches the memo, and an identical retry re-runs *)
let test_cancel_running_job () =
  let server = make_server () in
  let events = ref [] in
  let ticket = ref None in
  let acked = ref false in
  let emit e =
    events := e :: !events;
    match e with
    | P.Progress _ when not !acked -> (
        match !ticket with
        | Some tk -> acked := Server.cancel_ticket server tk ~reason:"client"
        | None -> Alcotest.fail "progress before on_start")
    | _ -> ()
  in
  Server.submit server ~emit
    ~on_start:(fun tk -> ticket := Some tk)
    (homing_job ~id:"doomed" ());
  let events = List.rev !events in
  check "mid-run cancel acknowledged" true !acked;
  (match !ticket with
  | Some tk ->
      check "second cancel of the same party nacked" false
        (Server.cancel_ticket server tk ~reason:"again")
  | None -> Alcotest.fail "on_start never fired");
  check "acknowledged party gets no terminal event" true
    (not
       (List.exists
          (function
            | P.Verdict _ | P.Cancelled _ | P.Job_error _ -> true | _ -> false)
          events));
  let fp =
    match List.hd events with
    | P.Accepted { fingerprint; _ } -> fingerprint
    | _ -> Alcotest.fail "first event must be accepted"
  in
  check "cancellation-truncated report not memoized" true
    (Server.lookup server fp = None);
  let v = find_verdict (collect server (homing_job ~id:"retry" ())) in
  check "identical job re-runs after a cancelled attempt" true (v.vsrc = P.Run);
  let direct =
    Verify.verify_partition ~config:P.default_config (homing_system ())
      (homing_cells 8)
  in
  Alcotest.(check (float 0.0))
    "and answers the full verdict" direct.Verify.coverage v.vcov

let wait_until ?(timeout_s = 10.0) pred label =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout_s then
      Alcotest.fail ("timed out waiting for " ^ label)
    else begin
      Unix.sleepf 0.001;
      go ()
    end
  in
  go ()

let stat_int server field =
  match J.member field (Server.stats_json server) with
  | Some n -> J.to_int n
  | None -> Alcotest.fail ("stats_json lacks " ^ field)

(* park a leader inside its first progress event until [gate] flips, so
   concurrent identical jobs deterministically find its flight in the
   in-flight index instead of racing it or hitting the memo *)
let spawn_gated_leader server ~id ~record ~gate ~started =
  Domain.spawn (fun () ->
      Server.submit server
        ~emit:(fun e ->
          record id e;
          match e with
          | P.Progress _ ->
              while not (Atomic.get gate) do
                Unix.sleepf 0.001
              done
          | _ -> ())
        ~on_start:(fun _ -> Atomic.set started true)
        (homing_job ~id ()))

let test_coalesced_followers () =
  let server = make_server () in
  let coalesced0 = stat_int server "coalesced_jobs" in
  let gate = Atomic.make false and started = Atomic.make false in
  let lock = Mutex.create () in
  let tagged = ref [] in
  let record tag e =
    Mutex.lock lock;
    tagged := (tag, e) :: !tagged;
    Mutex.unlock lock
  in
  let leader = spawn_gated_leader server ~id:"lead" ~record ~gate ~started in
  wait_until (fun () -> Atomic.get started) "leader flight registration";
  (* identical jobs while the leader is parked: both join as followers,
     and their submit returns without running any reachability *)
  let follower tag =
    Domain.spawn (fun () ->
        Server.submit server ~emit:(record tag) (homing_job ~id:tag ()))
  in
  let fb = follower "fb" and fc = follower "fc" in
  Domain.join fb;
  Domain.join fc;
  Alcotest.(check int)
    "both jobs coalesced" 2
    (stat_int server "coalesced_jobs" - coalesced0);
  Atomic.set gate true;
  Domain.join leader;
  let events = List.rev !tagged in
  let verdict_of tag =
    match
      List.filter_map
        (fun (t, e) -> if t = tag then verdict_payload e else None)
        events
    with
    | [ v ] -> v
    | _ -> Alcotest.fail ("expected exactly one verdict for " ^ tag)
  in
  let vl = verdict_of "lead" in
  let vb = verdict_of "fb" and vc = verdict_of "fc" in
  check "leader ran the pipeline" true (vl.vsrc = P.Run);
  check "followers coalesced" true
    (vb.vsrc = P.Coalesced && vc.vsrc = P.Coalesced);
  Alcotest.(check string) "one flight, one fingerprint" vl.vfp vb.vfp;
  Alcotest.(check string) "one flight, one fingerprint (2)" vl.vfp vc.vfp;
  check "all parties share the shared run's verdict" true
    (vl.vcov = vb.vcov && vl.vcov = vc.vcov && vl.vproved = vb.vproved);
  check "the shared report reached the memo" true
    (Option.is_some (Server.lookup server vl.vfp))

let test_follower_cancel_spares_run () =
  let server = make_server () in
  let gate = Atomic.make false and started = Atomic.make false in
  let lock = Mutex.create () in
  let tagged = ref [] in
  let record tag e =
    Mutex.lock lock;
    tagged := (tag, e) :: !tagged;
    Mutex.unlock lock
  in
  let leader = spawn_gated_leader server ~id:"lead2" ~record ~gate ~started in
  wait_until (fun () -> Atomic.get started) "leader flight registration";
  let fticket = ref None in
  let fb =
    Domain.spawn (fun () ->
        Server.submit server ~emit:(record "quitter")
          ~on_start:(fun tk -> fticket := Some tk)
          (homing_job ~id:"quitter" ()))
  in
  let fc =
    Domain.spawn (fun () ->
        Server.submit server ~emit:(record "stayer") (homing_job ~id:"stayer" ()))
  in
  Domain.join fb;
  Domain.join fc;
  (match !fticket with
  | None -> Alcotest.fail "follower never got a ticket"
  | Some tk ->
      check "follower cancel acknowledged" true
        (Server.cancel_ticket server tk ~reason:"one client left"));
  Atomic.set gate true;
  Domain.join leader;
  let events = List.rev !tagged in
  let verdicts tag =
    List.filter_map
      (fun (t, e) -> if t = tag then verdict_payload e else None)
      events
  in
  (match verdicts "lead2" with
  | [ v ] -> check "shared run completed as a full run" true (v.vsrc = P.Run)
  | _ -> Alcotest.fail "leader must get exactly one verdict");
  (match verdicts "stayer" with
  | [ v ] ->
      check "remaining follower still coalesced" true (v.vsrc = P.Coalesced);
      check "uncancelled run reached the memo" true
        (Option.is_some (Server.lookup server v.vfp))
  | _ -> Alcotest.fail "remaining follower must get exactly one verdict");
  check "cancelled follower got nothing past accepted" true
    (List.for_all
       (fun (t, e) ->
         t <> "quitter" || match e with P.Accepted _ -> true | _ -> false)
       events)

(* ----- memo journal: persistence across restart, torn tail ----- *)

let test_memo_journal_torn_tail () =
  let path = Filename.temp_file "nncs_memo" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let report =
        Verify.verify_partition ~config:P.default_config (homing_system ())
          (homing_cells 4)
      in
      let memo = Memo.create ~path () in
      Memo.store memo "deadbeef00000001" report;
      Memo.close memo;
      (* a complete record whose report is corrupt deeper than the JSON
         layer: inverted box bounds raise [Invalid_argument] from
         [B.of_bounds], not [Parse_error] — replay must skip it too *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc
        ({|{"t":"verdict_memo","fingerprint":"c0ffee0000000002",|}
       ^ {|"report":{"t":"report","coverage":0,"elapsed":0,|}
       ^ {|"proved_cells":0,"unknown_cells":1,"total_cells":1,|}
       ^ {|"cells":[{"t":"cell","index":0,"proved_fraction":0,"elapsed":0,|}
       ^ {|"leaves":[{"box":[[1.0,0.0]],"cmd":0,"depth":0,"proved":false,|}
       ^ {|"result":{"verdict":"horizon"},"rungs":[],"elapsed":0}]}]}}|}
       ^ "\n");
      (* and a crash mid-append: a torn, unterminated JSON prefix *)
      output_string oc "{\"t\":\"verdict_memo\",\"fingerprint\":\"feed";
      close_out oc;
      let reloaded = Memo.create ~path () in
      Fun.protect
        ~finally:(fun () -> Memo.close reloaded)
        (fun () ->
          Alcotest.(check int)
            "torn tail skipped, good entry replayed" 1 (Memo.size reloaded);
          match Memo.peek reloaded "deadbeef00000001" with
          | None -> Alcotest.fail "journaled verdict lost on reload"
          | Some r ->
              check "replayed report identical" true
                (leaf_verdicts r = leaf_verdicts report
                && r.Verify.coverage = report.Verify.coverage)))

(* ----- bounded memo: LRU eviction, compaction, duplicate stores ----- *)

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let small_report () =
  Verify.verify_partition ~config:P.default_config (homing_system ())
    (homing_cells 2)

let test_memo_lru_eviction () =
  let report = small_report () in
  let memo = Memo.create ~capacity:2 () in
  Memo.store memo "fp1" report;
  Memo.store memo "fp2" report;
  (* a find promotes: fp2 becomes the eviction victim, not fp1 *)
  ignore (Memo.find memo "fp1");
  Memo.store memo "fp3" report;
  Alcotest.(check int) "size bounded by capacity" 2 (Memo.size memo);
  Alcotest.(check int) "eviction counted" 1 (Memo.eviction_count memo);
  check "LRU entry evicted" true (Memo.peek memo "fp2" = None);
  check "recently used entry kept" true (Option.is_some (Memo.peek memo "fp1"));
  check "new entry kept" true (Option.is_some (Memo.peek memo "fp3"));
  Memo.close memo

let compactions () = Metrics.value (Metrics.counter "serve.memo_compactions")

let test_memo_journal_compaction () =
  let path = Filename.temp_file "nncs_memo" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let report = small_report () in
      let c0 = compactions () in
      let memo = Memo.create ~path ~capacity:1 () in
      List.iter
        (fun i -> Memo.store memo (Printf.sprintf "fp%d" i) report)
        [ 1; 2; 3; 4; 5; 6 ];
      (* five evictions against one live entry: the dead lines must
         cross the compaction threshold while the memo is still open *)
      check "eviction churn triggers live compaction" true
        (compactions () - c0 >= 1);
      Memo.close memo;
      Alcotest.(check int)
        "journal rewritten to exactly the live entries" 1 (count_lines path);
      let reloaded = Memo.create ~path ~capacity:1 () in
      Fun.protect
        ~finally:(fun () -> Memo.close reloaded)
        (fun () ->
          Alcotest.(check int) "live entry replayed" 1 (Memo.size reloaded);
          check "newest entry survived" true
            (Option.is_some (Memo.peek reloaded "fp6"))))

let test_memo_duplicate_store_skipped () =
  let path = Filename.temp_file "nncs_memo" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let report = small_report () in
      let c0 = compactions () in
      let memo = Memo.create ~path () in
      Memo.store memo "dup" report;
      Memo.store memo "dup" report;
      Memo.store memo "dup" report;
      Memo.close memo;
      (* a compaction would mask re-appended duplicates; assert both
         that none ran and that the file holds a single record *)
      check "dead-line-free journal never compacted" true (compactions () = c0);
      Alcotest.(check int)
        "duplicate stores not re-journaled" 1 (count_lines path))

(* ----- the JSONL session loop ----- *)

let run_session ?(dispatchers = 2) ?max_queue ?max_line_bytes ?backreach lines
    =
  let in_path = Filename.temp_file "nncs_serve_in" ".jsonl" in
  let out_path = Filename.temp_file "nncs_serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ in_path; out_path ])
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      let server =
        Server.create
          {
            Server.default_config with
            Server.dispatchers;
            max_queue;
            max_line_bytes =
              Option.value max_line_bytes
                ~default:Server.default_config.Server.max_line_bytes;
            backreach;
          }
          ~make_system:(fun ~domain:_ ~nn_splits:_ -> homing_system ())
          ~make_cells:(fun ~arcs ~headings:_ ~arc_indices:_ ->
            homing_cells arcs)
      in
      let ic = open_in in_path and oc = open_out out_path in
      let outcome = Server.run server ic oc in
      close_in ic;
      close_out oc;
      Server.close server;
      let events = ref [] in
      let ic = In_channel.open_text out_path in
      (try
         while true do
           let line = input_line ic in
           match P.event_of_json (J.of_string line) with
           | Ok e -> events := e :: !events
           | Error msg -> Alcotest.fail ("unparseable event line: " ^ msg)
         done
       with End_of_file -> ());
      In_channel.close ic;
      (outcome, List.rev !events))

let test_session_loop () =
  let outcome, events =
    run_session
      [
        {|{"t":"job","id":"s1","partition":{"arcs":4,"headings":1}}|};
        {|this line is not JSON|};
        {|{"t":"job","id":"s2","partition":{"arcs":4,"headings":1}}|};
        {|{"t":"stats"}|};
        {|{"t":"shutdown"}|};
      ]
  in
  check "shutdown ends the session" true (outcome = `Shutdown);
  let verdict_of id =
    match
      List.filter (fun v -> v.vid = id) (List.filter_map verdict_payload events)
    with
    | [ v ] -> v
    | _ -> Alcotest.fail ("expected exactly one verdict for " ^ id)
  in
  let v1 = verdict_of "s1" and v2 = verdict_of "s2" in
  Alcotest.(check string)
    "identical jobs share a fingerprint" v1.vfp v2.vfp;
  Alcotest.(check (float 0.0))
    "identical jobs share a coverage" v1.vcov v2.vcov;
  check "garbage line yields an error with an empty id" true
    (List.exists
       (function P.Job_error { id = ""; _ } -> true | _ -> false)
       events);
  check "stats answered in-session" true
    (List.exists (function P.Stats_report _ -> true | _ -> false) events);
  (match List.rev events with
  | P.Bye :: _ -> ()
  | _ -> Alcotest.fail "bye must be the last event");
  (* end-of-input without shutdown: the session ends with [`Eof] *)
  let outcome, events =
    run_session ~dispatchers:1 [ {|{"t":"stats"}|} ]
  in
  check "eof ends the session" true (outcome = `Eof);
  check "eof session still says bye" true
    (List.exists (function P.Bye -> true | _ -> false) events)

let session_server () =
  Server.create
    { Server.default_config with Server.dispatchers = 1 }
    ~make_system:(fun ~domain:_ ~nn_splits:_ -> homing_system ())
    ~make_cells:(fun ~arcs ~headings:_ ~arc_indices:_ -> homing_cells arcs)

(* regression: a client that stops reading mid-session (writes raise
   [Sys_error EPIPE] once SIGPIPE is ignored) must not kill a
   dispatcher domain or the session loop — the session still drains,
   joins and returns its outcome *)
let test_broken_client_output () =
  let old = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigpipe old)
    (fun () ->
      let in_path = Filename.temp_file "nncs_serve_in" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove in_path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out in_path in
          List.iter
            (fun l -> output_string oc (l ^ "\n"))
            [
              {|{"t":"job","id":"b1","partition":{"arcs":2,"headings":1}}|};
              {|{"t":"shutdown"}|};
            ];
          close_out oc;
          let r, w = Unix.pipe () in
          Unix.close r;
          let broken = Unix.out_channel_of_descr w in
          let ic = open_in in_path in
          let server = session_server () in
          let outcome = Server.run server ic broken in
          close_in ic;
          close_out_noerr broken;
          Server.close server;
          check "session survives the broken client" true
            (outcome = `Shutdown)))

(* regression: a read error (e.g. ECONNRESET on a socket) must end the
   session like end-of-input — drain, join, bye — not propagate *)
let test_reader_error_ends_session () =
  let out_path = Filename.temp_file "nncs_serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let r, w = Unix.pipe () in
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      Unix.close r;
      (* input_line on the dead descriptor raises Sys_error, not
         End_of_file *)
      let oc = open_out out_path in
      let server = session_server () in
      let outcome = Server.run server ic oc in
      close_out oc;
      Server.close server;
      check "read error ends the session as eof" true (outcome = `Eof);
      let events = ref [] in
      let ic = In_channel.open_text out_path in
      (try
         while true do
           let line = input_line ic in
           match P.event_of_json (J.of_string line) with
           | Ok e -> events := e :: !events
           | Error msg -> Alcotest.fail ("unparseable event line: " ^ msg)
         done
       with End_of_file -> ());
      In_channel.close ic;
      check "dispatchers joined and bye emitted" true
        (List.exists (function P.Bye -> true | _ -> false) !events))

(* cancel requests against every id class in one session.  Whether the
   cancel line catches c1 queued, running, or already finished is a
   scheduling race — all three are legal — so the assertions are the
   race-free invariants: exactly one terminal event for the id, and
   empty-id nacks for the repeat and for the unknown id *)
let test_session_cancel_paths () =
  let outcome, events =
    run_session ~dispatchers:1
      [
        {|{"t":"job","id":"c1","partition":{"arcs":4,"headings":1}}|};
        {|{"t":"cancel","id":"c1"}|};
        {|{"t":"cancel","id":"c1"}|};
        {|{"t":"cancel","id":"ghost"}|};
        {|{"t":"shutdown"}|};
      ]
  in
  check "shutdown honoured" true (outcome = `Shutdown);
  let terminals =
    List.filter
      (function
        | P.Verdict { id = "c1"; _ }
        | P.Cancelled { id = "c1"; _ }
        | P.Job_error { id = "c1"; _ } ->
            true
        | _ -> false)
      events
  in
  Alcotest.(check int)
    "exactly one terminal event for the cancelled id" 1 (List.length terminals);
  let nack needle =
    List.exists
      (function
        | P.Job_error { id = ""; reason } -> contains reason needle
        | _ -> false)
      events
  in
  check "repeat cancel nacked as already finished" true
    (nack {|cancel "c1": job already finished|});
  check "unknown id nacked" true (nack {|cancel "ghost": unknown job id|});
  match List.rev events with
  | P.Bye :: _ -> ()
  | _ -> Alcotest.fail "bye must be the last event"

(* a duplicate id while the first job is still in flight: rejected with
   an empty-id error so the original keeps its own terminal event *)
let test_session_duplicate_id_rejected () =
  Fun.protect ~finally:Fault.reset (fun () ->
      (* park the only dispatcher inside the first job so the duplicate
         line is deterministically read while the id is in flight *)
      Fault.arm ~site:"serve.job" ~key:"dup" (fun () ->
          Unix.sleepf 0.2;
          Failure "injected crash");
      let outcome, events =
        run_session ~dispatchers:1
          [
            {|{"t":"job","id":"dup","partition":{"arcs":2,"headings":1}}|};
            {|{"t":"job","id":"dup","partition":{"arcs":2,"headings":1}}|};
            {|{"t":"shutdown"}|};
          ]
      in
      check "session shuts down" true (outcome = `Shutdown);
      let dup_errors =
        List.filter_map
          (function
            | P.Job_error { id = "dup"; reason } -> Some reason | _ -> None)
          events
      in
      Alcotest.(check int)
        "the original job keeps its single terminal event" 1
        (List.length dup_errors);
      check "duplicate rejected with an empty id" true
        (List.exists
           (function
             | P.Job_error { id = ""; reason } ->
                 contains reason {|duplicate job id "dup"|}
             | _ -> false)
           events))

(* admission control: one dispatcher parked in a slow job, a queue of
   one.  Scheduling decides which of the trailing jobs grabs the queue
   slot, so assert the shed/served split rather than specific ids *)
let test_session_overload_shed () =
  Fun.protect ~finally:Fault.reset (fun () ->
      Fault.arm ~site:"serve.job" ~key:"slow" (fun () ->
          Unix.sleepf 0.3;
          Failure "injected slow crash");
      let outcome, events =
        run_session ~dispatchers:1 ~max_queue:1
          [
            {|{"t":"job","id":"slow","partition":{"arcs":2,"headings":1}}|};
            {|{"t":"job","id":"q2","partition":{"arcs":2,"headings":1}}|};
            {|{"t":"job","id":"q3","partition":{"arcs":2,"headings":1}}|};
            {|{"t":"job","id":"q4","partition":{"arcs":2,"headings":1}}|};
            {|{"t":"shutdown"}|};
          ]
      in
      check "overloaded session still shuts down" true (outcome = `Shutdown);
      (match
         List.filter_map
           (function
             | P.Job_error { id = "slow"; reason } -> Some reason | _ -> None)
           events
       with
      | [ _ ] -> ()
      | _ -> Alcotest.fail "poisoned job must error exactly once");
      let shed =
        List.filter
          (function
            | P.Job_error { id; reason } ->
                List.mem id [ "q2"; "q3"; "q4" ] && contains reason "overloaded"
            | _ -> false)
          events
      in
      let served =
        List.filter
          (fun v -> List.mem v.vid [ "q2"; "q3"; "q4" ])
          (List.filter_map verdict_payload events)
      in
      check "at least two jobs shed" true (List.length shed >= 2);
      Alcotest.(check int)
        "every trailing job either shed or served" 3
        (List.length shed + List.length served))

let test_session_line_cap () =
  let outcome, events =
    run_session ~dispatchers:1 ~max_line_bytes:64
      [
        String.make 200 'x';
        {|{"t":"job","id":"lc","partition":{"arcs":2,"headings":1}}|};
        {|{"t":"shutdown"}|};
      ]
  in
  check "oversized line survived" true (outcome = `Shutdown);
  check "oversized line reported" true
    (List.exists
       (function
         | P.Job_error { id = ""; reason } ->
             contains reason "exceeds 64 bytes"
         | _ -> false)
       events);
  match
    List.filter (fun v -> v.vid = "lc") (List.filter_map verdict_payload events)
  with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "the job after the oversized line must still run"

(* ----- the backreach lookup fast path ----- *)

let homing_backreach_table () =
  let module Backreach = Nncs_backreach.Backreach in
  Backreach.build
    {
      (Backreach.default_config
         ~domain:(B.of_bounds [| (0.0, 4.5) |])
         ~grid:[| 9 |])
      with
      Backreach.reach = { Nncs.Reach.default_config with keep_sets = false };
    }
    (homing_system ())

let test_session_lookup_fast_path () =
  let module Backreach = Nncs_backreach.Backreach in
  let table = homing_backreach_table () in
  let m_lookups = Metrics.counter "serve.lookups" in
  let lookups0 = Metrics.value m_lookups in
  let outcome, events =
    run_session ~dispatchers:1 ~backreach:table
      [
        (* the same hot probe twice: both must be answered from the
           table, neither may found a job *)
        {|{"t":"lookup","id":"hot","box":[[4.25,4.5]],"cmd":0}|};
        {|{"t":"lookup","id":"hot2","box":[[4.25,4.5]],"cmd":0}|};
        {|{"t":"lookup","id":"cold","box":[[0.05,0.2]],"cmd":0}|};
        {|{"t":"lookup","id":"gone","box":[[9.0,9.5]],"cmd":0}|};
        {|{"t":"job","id":"s1","partition":{"arcs":4,"headings":1}}|};
        {|{"t":"stats"}|};
        {|{"t":"shutdown"}|};
      ]
  in
  check "shutdown ends the session" true (outcome = `Shutdown);
  let status_of id =
    match
      List.filter_map
        (function
          | P.Lookup_result { id = id'; status } when id' = id -> Some status
          | _ -> None)
        events
    with
    | [ s ] -> s
    | _ -> Alcotest.fail ("expected exactly one lookup_result for " ^ id)
  in
  (* the cell overlapping E (x > 4.0) is a contact; with both commands
     strictly negative nothing below ever climbs back up; the last probe
     leaves the [0, 4.5] table domain *)
  check "contact probe is unsafe" true
    (match status_of "hot" with P.Lookup_unsafe _ -> true | _ -> false);
  check "repeated probe answers identically" true
    (status_of "hot" = status_of "hot2");
  check "low probe is safe" true (status_of "cold" = P.Lookup_safe);
  check "escaped probe is out of domain" true
    (status_of "gone" = P.Lookup_out_of_domain);
  (* the fast path never enters the run path: the only job events of the
     session belong to s1 — four lookups produced no accepted/progress
     and no extra verdicts *)
  Alcotest.(check int)
    "one accepted event (the real job)" 1
    (List.length
       (List.filter (function P.Accepted _ -> true | _ -> false) events));
  Alcotest.(check int)
    "one verdict event (the real job)" 1
    (List.length (List.filter_map verdict_payload events));
  check "the real job still runs" true
    ((find_verdict events).vid = "s1");
  Alcotest.(check int)
    "every lookup counted by serve.lookups" 4
    (Metrics.value m_lookups - lookups0);
  (* stats advertises the table *)
  check "stats reports the table" true
    (List.exists
       (function
         | P.Stats_report (J.Obj fields) ->
             List.assoc_opt "backreach_table" fields = Some (J.Bool true)
         | _ -> false)
       events)

let test_session_lookup_unavailable () =
  let outcome, events =
    run_session ~dispatchers:1
      [
        {|{"t":"lookup","id":"l0","box":[[1.0,2.0]],"cmd":0}|};
        {|{"t":"shutdown"}|};
      ]
  in
  check "shutdown ends the session" true (outcome = `Shutdown);
  check "tableless server answers unavailable" true
    (List.exists
       (function
         | P.Lookup_result { id = "l0"; status = P.Lookup_unavailable } -> true
         | _ -> false)
       events)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_request_rejects;
          Alcotest.test_case "event round-trip" `Quick test_event_roundtrip;
        ] );
      ( "server",
        [
          Alcotest.test_case "served verdict matches direct run" `Quick
            test_served_verdict_matches_direct;
          Alcotest.test_case "repeat answered from memo" `Quick
            test_repeat_answered_from_memo;
          Alcotest.test_case "budget keys the memo" `Quick
            test_budget_distinct_in_memo;
          Alcotest.test_case "poisoned job firewalled" `Quick
            test_poisoned_job_firewalled;
          Alcotest.test_case "empty partition rejected" `Quick
            test_empty_partition_rejected;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "running job cancelled" `Quick
            test_cancel_running_job;
          Alcotest.test_case "identical jobs coalesce" `Quick
            test_coalesced_followers;
          Alcotest.test_case "follower cancel spares the run" `Quick
            test_follower_cancel_spares_run;
        ] );
      ( "memo",
        [
          Alcotest.test_case "journal survives a torn tail" `Quick
            test_memo_journal_torn_tail;
          Alcotest.test_case "lru eviction" `Quick test_memo_lru_eviction;
          Alcotest.test_case "journal compaction" `Quick
            test_memo_journal_compaction;
          Alcotest.test_case "duplicate store skipped" `Quick
            test_memo_duplicate_store_skipped;
        ] );
      ( "session",
        [
          Alcotest.test_case "jsonl session loop" `Quick test_session_loop;
          Alcotest.test_case "broken client output survived" `Quick
            test_broken_client_output;
          Alcotest.test_case "reader error ends session" `Quick
            test_reader_error_ends_session;
          Alcotest.test_case "cancel id classes" `Quick
            test_session_cancel_paths;
          Alcotest.test_case "duplicate id rejected" `Quick
            test_session_duplicate_id_rejected;
          Alcotest.test_case "overload shed" `Quick test_session_overload_shed;
          Alcotest.test_case "line cap" `Quick test_session_line_cap;
          Alcotest.test_case "backreach lookup fast path" `Quick
            test_session_lookup_fast_path;
          Alcotest.test_case "lookup without a table" `Quick
            test_session_lookup_unavailable;
        ] );
    ]
