(* The backreachability oracle (lib/backreach): quantized backward
   fixed point, journal/resume, table persistence, and the forward
   cross-check.

   The deterministic systems below are engineered so quantization is
   LOSSLESS: 1-D plants with constant drifts that are integer multiples
   of the cell width, one integration sub-step per period (the step size
   is then exactly representable), and cell edges that are multiples of
   0.25 — every endpoint lands on a grid edge up to outward-rounding
   ulps, and the Picard enclosure of a constant derivative contracts on
   the first iterate.  The interval library rounds every operation
   outward, so "exact" values carry ulp-wide slack: endpoint enclosures
   overlap the neighbouring cell by a hair and flow boxes overrun their
   exact hull.  All spec bounds below are therefore placed OFF the grid
   (margins of 0.1-0.125, ten orders of magnitude above the slack) so
   every containment/intersection decision is rounding-robust; under
   that discipline the forward and backward oracles must agree exactly,
   which is what the qcheck property at the bottom exercises on random
   tiny systems. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Command = Nncs.Command
module Symstate = Nncs.Symstate
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Reach = Nncs.Reach
module Verify = Nncs.Verify
module Partition = Nncs.Partition
module Backreach = Nncs_backreach.Backreach
module Json = Nncs_obs.Json

let check = Alcotest.(check bool)

(* one exact integration sub-step per period; gamma large enough that
   the forward analysis never joins states (joins would break the
   forward/backward symmetry the lossless construction relies on) *)
let reach1 =
  { Reach.default_config with Reach.integration_steps = 1; gamma = 1000 }

let verify_config =
  {
    Verify.default_config with
    Verify.reach = reach1;
    strategy = Verify.All_dims [ 0 ];
    max_depth = 0;
  }

let linear_net rows biases =
  let n = Array.length rows in
  let layer =
    {
      Net.weights = Mat.init n 1 (fun i _ -> rows.(i));
      biases;
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| layer |]

let make_controller ?(pre_abs = Controller.identity_pre_abs) ~commands ~net ()
    =
  Controller.make ~period:0.5 ~commands ~networks:[| net |]
    ~select:(fun _ -> 0)
    ~pre:Controller.identity_pre ~pre_abs ~post:Controller.argmin_post
    ~post_abs:Controller.argmin_post_abs ()

let plant1 = Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |]

(* the homing loop of test_core: u = -1 above x=1, -0.5 below; all
   drifts negative, so only the cells already overlapping E are unsafe *)
let homing_commands = Command.make [| [| -1.0 |]; [| -0.5 |] |]
let homing_net () = linear_net [| -1.0; 1.0 |] [| 1.0; -1.0 |]

let homing_system ?(horizon = 20) () =
  System.make ~plant:plant1
    ~controller:
      (make_controller ~commands:homing_commands ~net:(homing_net ()) ())
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.1)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps:horizon

let homing_config ?(workers = 1) () =
  {
    (Backreach.default_config
       ~domain:(B.of_bounds [| (0.0, 4.5) |])
       ~grid:[| 9 |])
    with
    Backreach.reach = reach1;
    workers;
  }

(* a single up-drift command: every state marches toward E = {x > 2},
   one cell per sweep — exercises k > 0 chains *)
let drift_commands = Command.make [| [| 0.5 |] |]

let drift_system () =
  System.make ~plant:plant1
    ~controller:
      (make_controller ~commands:drift_commands
         ~net:(linear_net [| 1.0 |] [| 0.0 |])
         ())
    ~erroneous:(Spec.coord_gt ~name:"err" ~dim:0 ~bound:2.0)
    ~target:(Spec.coord_lt ~name:"t" ~dim:0 ~bound:(-1.0))
    ~horizon_steps:20

let drift_config () =
  {
    (Backreach.default_config
       ~domain:(B.of_bounds [| (0.0, 2.5) |])
       ~grid:[| 5 |])
    with
    Backreach.reach = reach1;
  }

let with_temp_file f =
  let path = Filename.temp_file "backreach" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let q t lo hi cmd = Backreach.query t ~box:(B.of_bounds [| (lo, hi) |]) ~cmd

let check_k msg t lo hi cmd expect =
  match q t lo hi cmd with
  | Backreach.Unsafe { k } -> Alcotest.(check int) msg expect k
  | Backreach.Safe -> Alcotest.failf "%s: Safe, expected Unsafe k=%d" msg expect
  | Backreach.Out_of_domain ->
      Alcotest.failf "%s: Out_of_domain, expected Unsafe k=%d" msg expect

(* ----- table construction ----- *)

let test_homing_table () =
  let t = Backreach.build ~progress:(fun ~done_states:_ ~total:_ -> ())
      (homing_config ~workers:2 ()) (homing_system ())
  in
  Alcotest.(check int) "9 cells x 2 commands" 18 (Backreach.num_states t);
  (* only the E-overlapping cell is unsafe: every drift is negative *)
  Alcotest.(check int) "unsafe = last cell, both commands" 2
    (Backreach.num_unsafe t);
  Alcotest.(check int) "no backward chain" 0 (Backreach.sweeps t);
  Alcotest.(check int) "nothing firewalled" 0 (Backreach.failed_states t);
  check_k "inside E, fast" t 4.2 4.4 0 0;
  check_k "inside E, slow" t 4.2 4.4 1 0;
  check "mid-domain is safe" true (q t 1.0 2.0 0 = Backreach.Safe);
  check "safe under both commands" true (q t 0.1 3.9 1 = Backreach.Safe);
  check "beyond the domain" true (q t 5.0 6.0 0 = Backreach.Out_of_domain);
  check "straddling the domain edge" true
    (q t (-1.0) 0.1 0 = Backreach.Out_of_domain);
  check "invalid command" true (q t 1.0 2.0 7 = Backreach.Out_of_domain);
  check "dimension mismatch" true
    (Backreach.query t ~box:(B.of_bounds [| (1.0, 2.0); (0.0, 1.0) |]) ~cmd:0
    = Backreach.Out_of_domain)

let test_drift_chain () =
  let t = Backreach.build (drift_config ()) (drift_system ()) in
  Alcotest.(check int) "5 states" 5 (Backreach.num_states t);
  (* every cell reaches E: the contact cell and its one-period flow
     neighbour at k = 0, then one more cell per sweep *)
  Alcotest.(check int) "all unsafe" 5 (Backreach.num_unsafe t);
  Alcotest.(check int) "three sweeps" 3 (Backreach.sweeps t);
  check_k "cell 4 overlaps E" t 2.05 2.1 0 0;
  check_k "cell 3 touches E within one period" t 1.55 1.6 0 0;
  check_k "cell 2" t 1.05 1.1 0 1;
  check_k "cell 1" t 0.55 0.6 0 2;
  check_k "cell 0" t 0.05 0.1 0 3;
  check_k "a box spanning cells answers the min k" t 0.05 1.6 0 0

(* ----- journal + resume ----- *)

let test_journal_resume () =
  with_temp_file (fun path ->
      let cfg = drift_config () and sys = drift_system () in
      let t = Backreach.build ~journal:path cfg sys in
      (* the build journal is loadable and answers identically *)
      (match Backreach.load path with
      | Error e -> Alcotest.failf "load of build journal failed: %s" e
      | Ok t2 ->
          Alcotest.(check int) "journal round-trip: unsafe"
            (Backreach.num_unsafe t) (Backreach.num_unsafe t2);
          Alcotest.(check int) "journal round-trip: sweeps"
            (Backreach.sweeps t) (Backreach.sweeps t2);
          check_k "journal round-trip: k" t2 0.05 0.1 0 3);
      (* chop the tail: lose the fixed point and two transition records *)
      let lines =
        String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
      in
      let keep = List.filteri (fun i _ -> i < 4) lines in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Printf.fprintf oc "%s\n" l) keep);
      (match Backreach.load path with
      | Ok _ -> Alcotest.fail "truncated build journal must not load"
      | Error e -> check "truncation reported" true (e <> ""));
      (* resume completes the table without recomputing journaled states *)
      let recomputed = ref 0 in
      let t3 =
        Backreach.build ~journal:path ~resume:true
          ~progress:(fun ~done_states:_ ~total:_ -> incr recomputed)
          cfg sys
      in
      Alcotest.(check int) "resume agrees" (Backreach.num_unsafe t)
        (Backreach.num_unsafe t3);
      check_k "resume: k chain intact" t3 0.05 0.1 0 3;
      (* progress counts every state, but the journal already held 3
         transition records: the resumed journal must not duplicate them *)
      let trans =
        List.filter
          (fun j ->
            match Json.member "t" j with
            | Some (Json.Str "trans") -> true
            | _ -> false)
          (Nncs_resilience.Journal.load path)
      in
      Alcotest.(check int) "no duplicated transition records" 5
        (List.length trans))

let test_resume_fingerprint_mismatch () =
  with_temp_file (fun path ->
      ignore (Backreach.build ~journal:path (drift_config ()) (drift_system ()));
      check "resume under a different system refuses" true
        (try
           ignore
             (Backreach.build ~journal:path ~resume:true (homing_config ())
                (homing_system ()));
           false
         with Invalid_argument _ -> true))

(* ----- compact table artifact ----- *)

let test_save_load_roundtrip () =
  with_temp_file (fun path ->
      let t = Backreach.build (drift_config ()) (drift_system ()) in
      Backreach.save_table t path;
      (match Backreach.load path with
      | Error e -> Alcotest.failf "table load failed: %s" e
      | Ok t2 ->
          Alcotest.(check int) "entries" (Backreach.num_unsafe t)
            (Backreach.num_unsafe t2);
          Alcotest.(check string) "fingerprint survives"
            (Backreach.table_fingerprint t)
            (Backreach.table_fingerprint t2);
          check_k "k survives" t2 0.55 0.6 0 2;
          check "safe stays safe" true
            (Backreach.query t2
               ~box:(B.of_bounds [| (0.0, 2.5) |])
               ~cmd:0
            <> Backreach.Out_of_domain));
      (* a torn table would silently answer Safe for lost entries: the
         trailer check must refuse it *)
      let contents = In_channel.with_open_text path In_channel.input_all in
      let cut = String.length contents - 60 in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (String.sub contents 0 cut));
      match Backreach.load path with
      | Ok _ -> Alcotest.fail "torn table must not load"
      | Error e -> check "torn table reported" true (e <> ""))

(* ----- forward cross-check ----- *)

let forward_report ?(cmd = 0) ~config sys domain cells =
  let states =
    Partition.with_command cmd (Partition.grid domain ~cells:[| cells |])
  in
  Verify.verify_partition ~config sys states

let test_cross_check_agreement () =
  (* homing: forward proves 8 cells safe and reaches E from the last;
     the sound table must agree on every one *)
  let sys = homing_system () in
  let t = Backreach.build (homing_config ()) sys in
  let report =
    forward_report ~config:verify_config sys (B.of_bounds [| (0.0, 4.5) |]) 9
  in
  let cc = Backreach.check_forward t report in
  Alcotest.(check int) "no disagreements" 0 (List.length cc.Backreach.findings);
  Alcotest.(check int) "safe cells compared" 8 cc.Backreach.checked_safe;
  Alcotest.(check int) "unsafe cells compared" 1 cc.Backreach.checked_unsafe;
  Alcotest.(check int) "nothing skipped" 0 cc.Backreach.skipped;
  (* drift: forward reaches E from every cell; table members throughout *)
  let sys = drift_system () in
  let t = Backreach.build (drift_config ()) sys in
  let report =
    forward_report ~config:verify_config sys (B.of_bounds [| (0.0, 2.5) |]) 5
  in
  let cc = Backreach.check_forward t report in
  Alcotest.(check int) "drift: no disagreements" 0
    (List.length cc.Backreach.findings);
  Alcotest.(check int) "drift: all unsafe compared" 5 cc.Backreach.checked_unsafe

(* Two commands, up (+0.5) and down (-0.5); the honest network picks
   "up" on the whole domain, so every quantized state can reach
   E = {x > 2.1}.  The BROKEN controller abstraction evaluates the
   network on a constant point instead of Pre#(box) — it always answers
   "down", and the forward analysis happily proves every non-contact
   cell safe.  The cross-check against the honestly-built table must
   flag exactly those cells. *)
let broken_commands = Command.make [| [| 0.5 |]; [| -0.5 |] |]
let updown_net () = linear_net [| -1.0; 1.0 |] [| 0.0; 0.0 |]

let updown_system ~pre_abs () =
  System.make ~plant:plant1
    ~controller:
      (make_controller ~pre_abs ~commands:broken_commands ~net:(updown_net ())
         ())
    ~erroneous:(Spec.coord_gt ~name:"err" ~dim:0 ~bound:2.1)
    ~target:(Spec.coord_lt ~name:"t" ~dim:0 ~bound:(-1.0))
    ~horizon_steps:20

let updown_config () =
  {
    (Backreach.default_config
       ~domain:(B.of_bounds [| (0.0, 2.5) |])
       ~grid:[| 5 |])
    with
    Backreach.reach = reach1;
  }

let test_broken_transformer_flagged () =
  let sound = updown_system ~pre_abs:Controller.identity_pre_abs () in
  let broken =
    updown_system ~pre_abs:(fun _ -> B.of_point [| -1.0 |]) ()
  in
  let t = Backreach.build (updown_config ()) sound in
  (* sanity: sound forward agrees with the sound table (initial command
     "down" — under the honest abstraction the controller still climbs
     back up and reaches E from every cell) *)
  let sound_report =
    forward_report ~cmd:1 ~config:verify_config sound
      (B.of_bounds [| (0.0, 2.5) |])
      5
  in
  let cc = Backreach.check_forward t sound_report in
  Alcotest.(check int) "sound vs sound: no disagreements" 0
    (List.length cc.Backreach.findings);
  (* the broken abstraction proves cells 0-3 safe; the table knows every
     covering quantized state reaches E *)
  let broken_report =
    forward_report ~cmd:1 ~config:verify_config broken
      (B.of_bounds [| (0.0, 2.5) |])
      5
  in
  let cc = Backreach.check_forward t broken_report in
  Alcotest.(check int) "broken: four cells flagged" 4
    (List.length cc.Backreach.findings);
  List.iter
    (fun (f : Backreach.finding) ->
      (match f.Backreach.f_kind with
      | Backreach.Safe_in_backreach _ -> ()
      | Backreach.Unsafe_not_in_backreach _ ->
          Alcotest.fail "expected Safe_in_backreach findings");
      check "finding carries the forward command" true (f.Backreach.f_cmd = 1))
    cc.Backreach.findings;
  (* the finding JSON names the disagreement *)
  match cc.Backreach.findings with
  | f :: _ ->
      check "json tagged oracle_disagreement" true
        (Json.member "t" (Backreach.finding_to_json f)
        = Some (Json.Str "oracle_disagreement"))
  | [] -> Alcotest.fail "expected findings"

(* ----- qcheck: forward/backward agreement on random tiny systems ----- *)

(* Random lossless systems: n cells of width 0.25 on [0, n/4], one or
   two constant drifts that are integer multiples of the cell width,
   random affine scores.  Constraints keeping the construction sound and
   rounding-robust (see the header comment): spec thresholds sit at
   mid-cell offsets (k*cw - 0.125) so no containment test ever compares
   against a grid value; the E threshold is low enough that any state
   escaping the domain to the right is itself already in contact; and
   T > 0 so a left escape is fully inside the target.  The forward run
   uses a small gamma: states are cell boxes up to ulps, so the closest
   same-command pair is near-identical and Algorithm 2's joins stay
   lossless while bounding the branch-everywhere controllers the random
   scores occasionally produce.

   What is asserted.  The soundness theorem — a forward error-reaching
   cell is always in the table (no [Unsafe_not_in_backreach] finding) —
   must hold for EVERY generated system.  Exact agreement additionally
   holds when all drifts are strictly negative: then an endpoint
   enclosure never lands above its start cell, so the ±1-ulp phantom
   neighbours from outward rounding cannot climb.  With a zero or
   positive drift an endpoint edge sits exactly on the grid boundary
   below a higher cell, the ulp overlap covers it, and the backward
   closure conservatively gains up to one cell per sweep over the exact
   quantization — a forward-Safe cell next to the contact region is then
   legitimately (conservatively) flagged, so [Safe_in_backreach]
   findings are permitted for that subclass. *)
let reach_q = { reach1 with Reach.gamma = 32 }
let verify_config_q = { verify_config with Verify.reach = reach_q }

let prop_forward_backward_agree =
  QCheck.Test.make ~count:60 ~name:"forward/backward verdicts agree"
    QCheck.(
      quad (int_range 2 6)
        (list_of_size (Gen.int_range 1 2) (int_range (-2) 2))
        (pair (int_range 1 6) (int_range 1 6))
        (pair (int_range (-2) 2) (int_range (-2) 2)))
    (fun (n, drifts, (eb0, tb0), (w1, b1)) ->
      QCheck.assume (drifts <> []);
      let cw = 0.25 in
      let max_up =
        List.fold_left (fun a m -> if m > a then m else a) 0 drifts
      in
      QCheck.assume (n - max_up >= 1);
      (* the max 1 guards also hold the invariants against shrunk inputs
         that escape the generator's stated ranges *)
      let eb = max 1 (min eb0 (n - max_up)) in
      let tb = max 1 (min tb0 eb) in
      let ncmds = List.length drifts in
      let commands =
        Command.make
          (Array.of_list (List.map (fun m -> [| float_of_int m *. 0.5 |]) drifts))
      in
      (* scores: row 0 is w1*x + b1, row 1 (if present) its negation —
         boxes overlap on part of the domain, so Post# genuinely
         branches *)
      let rows =
        Array.init ncmds (fun i ->
            if i = 0 then float_of_int w1 else float_of_int (-w1))
      in
      let biases =
        Array.init ncmds (fun i ->
            if i = 0 then float_of_int b1 else float_of_int (-b1))
      in
      let sys =
        System.make ~plant:plant1
          ~controller:
            (make_controller ~commands ~net:(linear_net rows biases) ())
          ~erroneous:
            (Spec.coord_gt ~name:"err" ~dim:0
               ~bound:((float_of_int eb *. cw) -. 0.125))
          ~target:
            (Spec.coord_lt ~name:"t" ~dim:0
               ~bound:((float_of_int tb *. cw) -. 0.125))
          ~horizon_steps:(3 * n)
      in
      let domain = B.of_bounds [| (0.0, float_of_int n *. cw) |] in
      let cfg =
        {
          (Backreach.default_config ~domain ~grid:[| n |]) with
          Backreach.reach = reach1;
        }
      in
      let t = Backreach.build cfg sys in
      let report = forward_report ~config:verify_config_q sys domain n in
      let cc = Backreach.check_forward t report in
      let unsound =
        List.exists
          (fun (f : Backreach.finding) ->
            match f.Backreach.f_kind with
            | Backreach.Unsafe_not_in_backreach _ -> true
            | Backreach.Safe_in_backreach _ -> false)
          cc.Backreach.findings
      in
      let all_down = List.for_all (fun m -> m < 0) drifts in
      (not unsound)
      && ((not all_down) || cc.Backreach.findings = [])
      && cc.Backreach.checked_safe + cc.Backreach.checked_unsafe
         + cc.Backreach.skipped
         = n)

let () =
  Alcotest.run "backreach"
    [
      ( "table",
        [
          Alcotest.test_case "homing: contact only" `Quick test_homing_table;
          Alcotest.test_case "drift: k chain" `Quick test_drift_chain;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "journal + resume" `Quick test_journal_resume;
          Alcotest.test_case "resume fingerprint mismatch" `Quick
            test_resume_fingerprint_mismatch;
          Alcotest.test_case "table round-trip + torn tail" `Quick
            test_save_load_roundtrip;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "sound analyses agree" `Quick
            test_cross_check_agreement;
          Alcotest.test_case "broken transformer flagged" `Quick
            test_broken_transformer_flagged;
          QCheck_alcotest.to_alcotest prop_forward_backward_agree;
        ] );
    ]
