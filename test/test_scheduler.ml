(* The leaf-frontier scheduler must be an invisible optimization: same
   verdicts, leaves, coverage and journal as the per-cell scheduler (and
   the sequential run) for any worker count, with faults isolated to one
   leaf, orphans of dead workers re-queued, and mid-cell resume from
   journaled leaf records.  Plus the partition/verify-layer correctness
   fixes that rode along: NaN-proof influence ordering and count-once
   progress. *)

module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module E = Nncs_ode.Expr
module Net = Nncs_nn.Network
module Act = Nncs_nn.Activation
module Mat = Nncs_linalg.Mat
module Command = Nncs.Command
module Symstate = Nncs.Symstate
module Spec = Nncs.Spec
module Controller = Nncs.Controller
module System = Nncs.System
module Verify = Nncs.Verify
module Partition = Nncs.Partition
module Journal = Nncs_resilience.Journal
module Fault = Nncs_resilience.Fault
module Metrics = Nncs_obs.Metrics

let check = Alcotest.(check bool)

(* the "homing" loop of test_verify: x' = u, argmin picks -1 above x = 1 *)

let homing_commands = Command.make [| [| -1.0 |]; [| -0.5 |] |]

let homing_network () =
  let output =
    {
      Net.weights = Mat.init 2 1 (fun i _ -> [| -1.0; 1.0 |].(i));
      biases = [| 1.0; -1.0 |];
      activation = Act.Linear;
    }
  in
  Net.make ~input_dim:1 [| output |]

(* [horizon_steps] tunes the workload shape: with the default 10 every
   cell proves at depth 0; with 3 (tau = 1.5 s) a cell needs
   [hi - 0.2 <= 1.5] to prove termination, so the rightmost cells fail
   and refine to max_depth — the skewed partition the leaf frontier is
   built for *)
let homing_system ?(horizon_steps = 10) () =
  let controller =
    Controller.make ~period:0.5 ~commands:homing_commands
      ~networks:[| homing_network () |]
      ~select:(fun _ -> 0)
      ~pre:Controller.identity_pre ~pre_abs:Controller.identity_pre_abs
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs ()
  in
  System.make ~plant:(Nncs_ode.Ode.make ~dim:1 ~input_dim:1 [| E.input 0 |])
    ~controller
    ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
    ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
    ~horizon_steps

let grid n =
  Partition.with_command 0
    (Partition.grid (B.of_bounds [| (1.0, 2.0) |]) ~cells:[| n |])

let config ?(scheduler = Verify.Cells) workers =
  {
    Verify.default_config with
    strategy = Verify.All_dims [ 0 ];
    workers;
    scheduler;
  }

let strip_elapsed (r : Verify.report) =
  ( r.Verify.coverage,
    r.Verify.proved_cells,
    r.Verify.unknown_cells,
    r.Verify.total_cells,
    List.map
      (fun (c : Verify.cell_report) ->
        ( c.Verify.index,
          c.Verify.proved_fraction,
          List.map
            (fun (l : Verify.leaf) ->
              ( B.to_string l.Verify.state.Symstate.box,
                l.Verify.state.Symstate.cmd,
                l.Verify.depth,
                l.Verify.proved,
                match l.Verify.result with
                | Verify.Completed _ -> "completed"
                | Verify.Failed f -> Nncs_resilience.Failure.to_string f ))
            c.Verify.leaves ))
      r.Verify.cells )

(* ----- scheduler equivalence ----- *)

let test_equivalence () =
  let sys = homing_system ~horizon_steps:3 () in
  let cells = grid 3 in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  (* the fixture must actually refine, or the frontier is never used *)
  check "fixture exercises splitting" true
    (List.exists
       (fun (c : Verify.cell_report) -> List.length c.Verify.leaves > 1)
       baseline.Verify.cells);
  List.iter
    (fun workers ->
      let leaves =
        Verify.verify_partition
          ~config:(config ~scheduler:Verify.Leaves workers)
          sys cells
      in
      Alcotest.(check int)
        (Printf.sprintf "leaf count preserved (workers=%d)" workers)
        (List.fold_left
           (fun n (c : Verify.cell_report) -> n + List.length c.Verify.leaves)
           0 baseline.Verify.cells)
        (List.fold_left
           (fun n (c : Verify.cell_report) -> n + List.length c.Verify.leaves)
           0 leaves.Verify.cells);
      check
        (Printf.sprintf "identical report modulo elapsed (workers=%d)" workers)
        true
        (strip_elapsed baseline = strip_elapsed leaves))
    [ 1; 4 ]

(* ----- per-leaf fault isolation ----- *)

let test_poisoned_leaf_isolated () =
  let sys = homing_system () in
  let cells = grid 8 in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  Fun.protect ~finally:Fault.reset (fun () ->
      (* key "3" is cell 3's root leaf (task keys are cell.path) *)
      Fault.arm ~site:"verify.leaf" ~key:"3" (fun () ->
          Stdlib.Failure "boom");
      let poisoned =
        Verify.verify_partition
          ~config:(config ~scheduler:Verify.Leaves 4)
          sys cells
      in
      Alcotest.(check int) "one unknown cell" 1 poisoned.Verify.unknown_cells;
      List.iter2
        (fun (a : Verify.cell_report) (b : Verify.cell_report) ->
          Alcotest.(check int) "cell order" a.Verify.index b.Verify.index;
          if b.Verify.index = 3 then
            check "poisoned leaf is Worker_crashed" true
              (List.exists
                 (fun l ->
                   match Verify.leaf_failure l with
                   | Some (Nncs_resilience.Failure.Worker_crashed _) -> true
                   | _ -> false)
                 b.Verify.leaves)
          else
            Alcotest.(check (float 0.0))
              "sibling verdict matches serial" a.Verify.proved_fraction
              b.Verify.proved_fraction)
        baseline.Verify.cells poisoned.Verify.cells)

(* ----- a dying worker's in-flight leaf is re-queued, not lost ----- *)

let test_fatal_death_requeues_orphan () =
  let sys = homing_system () in
  let cells = grid 8 in
  let baseline = Verify.verify_partition ~config:(config 1) sys cells in
  let requeued = Metrics.counter "resilience.requeued_leaves" in
  let before = Metrics.value requeued in
  Fun.protect ~finally:Fault.reset (fun () ->
      (* one-shot fatal fault: the claiming domain dies, the orphaned
         leaf is re-queued and the retry (no fault left) succeeds *)
      Fault.arm ~site:"verify.leaf" ~key:"5" ~times:1 (fun () -> Sys.Break);
      let report =
        Verify.verify_partition
          ~config:(config ~scheduler:Verify.Leaves 2)
          sys cells
      in
      check "orphaned leaf was re-queued" true
        (Metrics.value requeued > before);
      Alcotest.(check int) "no unknown cells" 0 report.Verify.unknown_cells;
      check "report identical to serial after recovery" true
        (strip_elapsed baseline = strip_elapsed report))

(* ----- mid-cell resume from journaled leaf records ----- *)

let test_midcell_resume () =
  let sys = homing_system ~horizon_steps:3 () in
  let cells = grid 3 in
  let total = List.length cells in
  let cfg = config ~scheduler:Verify.Leaves 1 in
  let recs = ref [] in
  let baseline =
    Verify.verify_partition ~config:cfg
      ~on_leaf:(fun cell path leaf -> recs := (cell, path, leaf) :: !recs)
      sys cells
  in
  let all = List.rev !recs in
  check "every terminal leaf journaled" true
    (List.length all
    = List.fold_left
        (fun n (c : Verify.cell_report) -> n + List.length c.Verify.leaves)
        0 baseline.Verify.cells);
  (* simulate a kill partway through: the journal holds the meta line and
     every other leaf record, and no completed-cell record *)
  let kept = List.filteri (fun i _ -> i mod 2 = 0) all in
  check "interruption leaves a strict subset" true
    (kept <> [] && List.length kept < List.length all);
  let path = Filename.temp_file "nncs_sched" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Journal.with_writer path (fun w ->
          Journal.write w
            (Verify.journal_meta ~total
               ~fingerprint:(Verify.fingerprint ~config:cfg sys cells));
          List.iter
            (fun (cell, p, leaf) ->
              Journal.write w (Verify.leaf_record_to_json ~cell ~path:p leaf))
            kept);
      let j = Verify.load_journal path in
      Alcotest.(check int) "no completed cells in journal" 0
        (List.length j.Verify.completed_cells);
      Alcotest.(check int) "journaled leaves grouped by cell"
        (List.length kept)
        (List.fold_left
           (fun n (_, ls) -> n + List.length ls)
           0 j.Verify.partial_leaves);
      let replayed = Metrics.counter "verify.replayed_leaves" in
      let before = Metrics.value replayed in
      let resumed_recs = ref [] in
      let resumed =
        Verify.verify_partition ~config:cfg ~partial:j.Verify.partial_leaves
          ~on_leaf:(fun cell p leaf -> resumed_recs := (cell, p, leaf) :: !resumed_recs)
          sys cells
      in
      Alcotest.(check int) "recorded leaves replayed, not recomputed"
        (List.length kept)
        (Metrics.value replayed - before);
      Alcotest.(check int) "replayed leaves not re-journaled"
        (List.length all - List.length kept)
        (List.length !resumed_recs);
      check "resumed report identical to the uninterrupted run" true
        (strip_elapsed baseline = strip_elapsed resumed))

(* ----- problem fingerprint ----- *)

let test_fingerprint_sensitivity () =
  let sys = homing_system () in
  let cells = grid 4 in
  let cfg = config 1 in
  let fp = Verify.fingerprint ~config:cfg sys cells in
  Alcotest.(check string)
    "deterministic" fp
    (Verify.fingerprint ~config:cfg sys cells);
  Alcotest.(check int) "16 hex digits" 16 (String.length fp);
  let differs what fp' = check ("sensitive to " ^ what) true (fp <> fp') in
  differs "partition bounds"
    (Verify.fingerprint ~config:cfg sys
       (Partition.with_command 0
          (Partition.grid (B.of_bounds [| (1.0, 2.125) |]) ~cells:[| 4 |])));
  differs "partition size" (Verify.fingerprint ~config:cfg sys (grid 5));
  differs "max_depth"
    (Verify.fingerprint ~config:{ cfg with Verify.max_depth = 3 } sys cells);
  differs "scheduler-independent = false: horizon"
    (Verify.fingerprint ~config:cfg
       { sys with System.horizon_steps = 11 }
       cells);
  (* Spec.t is opaque: a changed erroneous set must flip a probe bit even
     when its name is unchanged *)
  differs "spec semantics (same name)"
    (Verify.fingerprint ~config:cfg
       {
         sys with
         System.erroneous = Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:1.5;
       }
       cells);
  (* the scheduler choice does not change the problem: journals are
     interchangeable between cells and leaves mode *)
  Alcotest.(check string)
    "scheduler-agnostic" fp
    (Verify.fingerprint
       ~config:{ cfg with Verify.scheduler = Verify.Leaves }
       sys cells)

(* ----- influence_order with NaN scores ----- *)

(* A 2-dim plant whose controller pre-processing degenerates to an
   infinite network input exactly when dimension 1 is bisected: the
   influence score of dim 1 becomes NaN (width of an [inf, inf] score
   interval) while dim 0's stays finite.  The order must put the finite
   dimension first — under polymorphic compare (or bare Float.compare)
   NaN sorted *below* every number and silently won the
   "most influential" slot. *)
let test_influence_order_nan () =
  let controller =
    Controller.make ~period:0.5 ~commands:homing_commands
      ~networks:[| homing_network () |]
      ~select:(fun _ -> 0)
      ~pre:(fun s -> [| s.(0) |])
      ~pre_abs:(fun b ->
        if I.lo (B.get b 1) = 6.0 then
          B.of_intervals [| I.make infinity infinity |]
        else B.of_intervals [| B.get b 0 |])
      ~post:Controller.argmin_post ~post_abs:Controller.argmin_post_abs
      ~domain:Nncs_nnabs.Transformer.Interval ()
  in
  let sys =
    System.make
      ~plant:(Nncs_ode.Ode.make ~dim:2 ~input_dim:1 [| E.input 0; E.const 0.0 |])
      ~controller
      ~erroneous:(Spec.coord_gt ~name:"blowup" ~dim:0 ~bound:4.0)
      ~target:(Spec.coord_lt ~name:"home" ~dim:0 ~bound:0.2)
      ~horizon_steps:10
  in
  (* bisecting dim 1 of [5, 7] produces the half with lo = 6.0 that the
     pre-processing maps to an infinite input, so dim 1 scores NaN *)
  let cell = Symstate.make (B.of_bounds [| (0.0, 1.0); (5.0, 7.0) |]) 0 in
  Alcotest.(check (list int))
    "NaN-scored dimension goes last" [ 0; 1 ]
    (Verify.influence_order sys cell [ 0; 1 ]);
  Alcotest.(check (list int))
    "candidate order does not matter" [ 0; 1 ]
    (Verify.influence_order sys cell [ 1; 0 ])

(* ----- progress counts each cell at most once ----- *)

let test_progress_counts_once_after_crash () =
  let sys = homing_system () in
  let cells = grid 8 in
  let total = List.length cells in
  let seen = ref [] in
  let mutex = Mutex.create () in
  let progress d t =
    Mutex.lock mutex;
    seen := (d, t) :: !seen;
    Mutex.unlock mutex
  in
  Fun.protect ~finally:Fault.reset (fun () ->
      (* a one-shot fatal fault kills one of the two workers after it has
         already completed (and counted) at least one cell: its results
         are lost and re-run by crash recovery, which previously counted
         them a second time and pushed progress past [total] *)
      Fault.arm ~site:"verify.cell" ~key:"2" ~times:1 (fun () -> Sys.Break);
      let report =
        Verify.verify_partition ~config:(config 2) ~progress sys cells
      in
      Alcotest.(check int) "all cells reported" total report.Verify.total_cells;
      Alcotest.(check int) "no unknown cells after recovery" 0
        report.Verify.unknown_cells;
      check "crash recovery actually ran" true
        (Metrics.value (Metrics.counter "resilience.requeued_cells") > 0);
      Alcotest.(check int) "exactly one callback per cell" total
        (List.length !seen);
      check "every total is the cell count" true
        (List.for_all (fun (_, t) -> t = total) !seen);
      Alcotest.(check (list int))
        "distinct live counts, never past total"
        (List.init total (fun i -> i + 1))
        (List.sort compare (List.map fst !seen)))

let () =
  Alcotest.run "scheduler"
    [
      ( "leaf scheduler",
        [
          Alcotest.test_case "equivalent to cells scheduler" `Quick
            test_equivalence;
          Alcotest.test_case "poisoned leaf isolated" `Quick
            test_poisoned_leaf_isolated;
          Alcotest.test_case "fatal death re-queues orphan" `Quick
            test_fatal_death_requeues_orphan;
          Alcotest.test_case "mid-cell resume" `Quick test_midcell_resume;
        ] );
      ( "bugfixes",
        [
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_fingerprint_sensitivity;
          Alcotest.test_case "influence order with NaN" `Quick
            test_influence_order_nan;
          Alcotest.test_case "progress counts once" `Quick
            test_progress_counts_once_after_crash;
        ] );
    ]
