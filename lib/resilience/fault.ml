type fault = {
  site : string;
  key : string option;
  make_exn : unit -> exn;
  mutable remaining : int;  (* < 0 = unlimited *)
}

(* [count] mirrors the list length so [trigger] can bail with a single
   atomic load when nothing is armed (the common, production case). *)
let count = Atomic.make 0
let mutex = Mutex.create ()
let faults : fault list ref = ref [] [@@lint.guarded_by "mutex"]

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let arm ~site ?key ?(times = -1) make_exn =
  if times = 0 then invalid_arg "Fault.arm: times must be non-zero";
  with_lock (fun () ->
      faults := { site; key; make_exn; remaining = times } :: !faults;
      Atomic.set count (List.length !faults))

let reset () =
  with_lock (fun () ->
      faults := [];
      Atomic.set count 0)

let armed () = Atomic.get count > 0

let trigger ?key site =
  if Atomic.get count > 0 then begin
    let fired =
      with_lock (fun () ->
          match
            List.find_opt
              (fun f ->
                f.site = site
                && (match f.key with None -> true | Some k -> Some k = key))
              !faults
          with
          | None -> None
          | Some f ->
              if f.remaining > 0 then begin
                f.remaining <- f.remaining - 1;
                if f.remaining = 0 then begin
                  faults := List.filter (fun g -> g != f) !faults;
                  Atomic.set count (List.length !faults)
                end
              end;
              Some (f.make_exn ()))
    in
    match fired with None -> () | Some e -> raise e
  end
