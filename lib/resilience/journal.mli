(** Append-only JSONL journals for checkpoint/resume.

    A journal is a file of one JSON object per line, appended and
    flushed as each work item completes, so an interrupted run loses at
    most the line being written.  {!load} tolerates exactly that: a
    truncated or malformed {e final} line is dropped (the crash
    artifact), while corruption elsewhere raises. *)

type writer

val create : ?append:bool -> string -> writer
(** Open [path] for journaling; truncates unless [append] (default
    false).  Writes are mutex-protected: worker domains may append
    concurrently. *)

val write : writer -> Nncs_obs.Json.t -> unit
(** Serialize on one line and flush. *)

val close : writer -> unit

val with_writer : ?append:bool -> string -> (writer -> 'a) -> 'a

val load : string -> Nncs_obs.Json.t list
(** Parse every line of [path].  A malformed final line is silently
    dropped; a malformed line anywhere else raises
    [Nncs_obs.Json.Parse_error].  Raises [Sys_error] if the file cannot
    be read. *)
