(** Append-only JSONL journals for checkpoint/resume.

    A journal is a file of one JSON object per line, appended and
    flushed as each work item completes, so an interrupted run loses at
    most the line being written.  {!load} tolerates that even for a
    long-running appender: a truncated or malformed line {e anywhere} —
    the crash artifact may sit mid-file once a restarted server appends
    past it — is skipped with a warning instead of failing the parse. *)

type writer

val create : ?append:bool -> string -> writer
(** Open [path] for journaling; truncates unless [append] (default
    false).  Writes are mutex-protected: worker domains may append
    concurrently. *)

val write : writer -> Nncs_obs.Json.t -> unit
(** Serialize on one line and flush.  A write after {!close} is a
    silent no-op: a worker journaling its last record may race the
    shutdown path, and losing that record is within the crash-loss
    contract — raising through the verdict boundary is not. *)

val close : writer -> unit
(** Close the underlying channel.  Taken under the writer mutex, so a
    concurrent {!write} either completes its line first or becomes a
    no-op — never hits a closed channel.  Idempotent. *)

val with_writer : ?append:bool -> string -> (writer -> 'a) -> 'a

val load :
  ?on_malformed:(line:int -> string -> unit) -> string -> Nncs_obs.Json.t list
(** Parse every line of [path], skipping blank lines silently and
    malformed lines with a warning — [on_malformed ~line reason] is
    called for each (1-based line number), defaulting to a message on
    stderr.  Never raises on content; raises [Sys_error] if the file
    cannot be read. *)
