module Json = Nncs_obs.Json

type writer = { oc : out_channel; mutex : Mutex.t }

let create ?(append = false) path =
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  { oc = open_out_gen flags 0o644 path; mutex = Mutex.create () }

let write w j =
  Mutex.lock w.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.mutex)
    (fun () ->
      output_string w.oc (Json.to_string j);
      output_char w.oc '\n';
      flush w.oc)

let close w = close_out w.oc

let with_writer ?append path f =
  let w = create ?append path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> f w)

let load path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> ());
        List.rev !acc)
  in
  let lines =
    (* blank tail = the newline of the last complete record *)
    match List.rev lines with
    | l :: rest when String.trim l = "" -> List.rev rest
    | _ -> lines
  in
  let n = List.length lines in
  List.mapi (fun i l -> (i, l)) lines
  |> List.filter_map (fun (i, l) ->
         match Json.of_string l with
         | j -> Some j
         | exception Json.Parse_error _ when i = n - 1 ->
             (* the line being written when the run died *)
             None)
