module Json = Nncs_obs.Json

type writer = { oc : out_channel; mutex : Mutex.t }

let create ?(append = false) path =
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  { oc = open_out_gen flags 0o644 path; mutex = Mutex.create () }

let write w j =
  Mutex.lock w.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.mutex)
    (fun () ->
      output_string w.oc (Json.to_string j);
      output_char w.oc '\n';
      flush w.oc)

let close w = close_out w.oc

let with_writer ?append path f =
  let w = create ?append path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> f w)

let load ?on_malformed path =
  let warn =
    match on_malformed with
    | Some f -> f
    | None ->
        fun ~line reason ->
          Printf.eprintf "warning: journal %s: skipping malformed line %d (%s)\n%!"
            path line reason
  in
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> ());
        List.rev !acc)
  in
  (* A server appending continuously can crash mid-line and then keep
     appending complete records after the torn one on restart, so a
     malformed line is a recoverable event *anywhere*, not only at the
     tail: skip it with a warning and keep every parseable record.
     Blank lines (the newline of the last complete record) are silently
     ignored. *)
  List.mapi (fun i l -> (i, l)) lines
  |> List.filter_map (fun (i, l) ->
         if String.trim l = "" then None
         else
           match Json.of_string l with
           | j -> Some j
           | exception Json.Parse_error reason ->
               warn ~line:(i + 1) reason;
               None)
