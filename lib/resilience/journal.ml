module Json = Nncs_obs.Json

(* [closed] is guarded by [mutex], like the channel itself: a close
   racing a concurrent write must not slam the channel shut mid-line
   (the write would raise on the closed descriptor and escape the
   verdict boundary).  After [close], further writes are no-ops — the
   shutdown path may cross a worker still journaling its last record,
   and losing that record is the documented crash-loss contract
   anyway. *)
type writer = { oc : out_channel; mutex : Mutex.t; mutable closed : bool }

let create ?(append = false) path =
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  { oc = open_out_gen flags 0o644 path; mutex = Mutex.create (); closed = false }

let write w j =
  Mutex.lock w.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.mutex)
    (fun () ->
      if not w.closed then begin
        output_string w.oc (Json.to_string j);
        output_char w.oc '\n';
        flush w.oc
      end)

let close w =
  Mutex.lock w.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.mutex)
    (fun () ->
      if not w.closed then begin
        w.closed <- true;
        close_out w.oc
      end)

let with_writer ?append path f =
  let w = create ?append path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> f w)

let load ?on_malformed path =
  let warn =
    match on_malformed with
    | Some f -> f
    | None ->
        fun ~line reason ->
          Printf.eprintf "warning: journal %s: skipping malformed line %d (%s)\n%!"
            path line reason
  in
  (* A server appending continuously can crash mid-line and then keep
     appending complete records after the torn one on restart, so a
     malformed line is a recoverable event *anywhere*, not only at the
     tail: skip it with a warning and keep every parseable record.
     Blank lines (the newline of the last complete record) are silently
     ignored.  Lines are parsed as they stream in — a long-lived memo
     journal must not be materialized as a whole string list first,
     which would make restart memory proportional to the file size. *)
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go line acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | l when String.trim l = "" -> go (line + 1) acc
        | l -> (
            match Json.of_string l with
            | j -> go (line + 1) (j :: acc)
            | exception Json.Parse_error reason ->
                warn ~line reason;
                go (line + 1) acc)
      in
      go 1 [])
