(** The structured failure taxonomy: every way a verification work item
    can fail to produce a verdict, as data rather than as an escaping
    exception.  A cell whose analysis fails degrades to an [Unknown]
    verdict carrying one of these reasons; sibling cells are unaffected.

    The taxonomy is deliberately closed (five constructors): downstream
    consumers — journals, reports, refinement policies — must handle
    every case, and anything unrecognised is folded into
    {!Worker_crashed} by the {!Firewall}. *)

type budget_kind =
  | Deadline  (** per-cell wall-clock deadline expired *)
  | Ode_steps  (** validated-integration sub-step budget exhausted *)
  | Symbolic_states  (** symbolic-state count exceeded its cap *)

type t =
  | Enclosure_diverged of string
      (** the validated integrator found no contracting a-priori
          enclosure (e.g. [Apriori.Enclosure_failure]) *)
  | Budget_exceeded of budget_kind
  | Cancelled of string
      (** the work item's {!Cancel} token was tripped (client cancel
          request, server-side job deadline, shutdown); the payload is
          the trip reason *)
  | Numeric of string
      (** numeric garbage: NaN bounds, empty interval meet, division by
          an interval containing zero *)
  | Worker_crashed of string
      (** an unclassified exception; the payload is its rendering *)

val budget_kind_to_string : budget_kind -> string
val budget_kind_of_string : string -> budget_kind option

val to_string : t -> string
(** One-line human rendering, e.g.
    ["enclosure_diverged: no contracting enclosure after 30 ..."]. *)

val to_json : t -> Nncs_obs.Json.t
(** [{"reason":R}] plus a ["detail"] or ["kind"] field; inverse of
    {!of_json}. *)

val of_json : Nncs_obs.Json.t -> t
(** Raises [Nncs_obs.Json.Parse_error] on malformed input. *)

val equal : t -> t -> bool
