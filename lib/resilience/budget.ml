type limits = {
  deadline_s : float option;
  max_ode_steps : int option;
  max_symstates : int option;
}

let unlimited = { deadline_s = None; max_ode_steps = None; max_symstates = None }

let is_unlimited l =
  l.deadline_s = None && l.max_ode_steps = None && l.max_symstates = None

type t = {
  deadline : float option;  (* absolute monotonic-clock stamp *)
  max_ode_steps : int option;
  max_symstates : int option;
  ode_steps : int Atomic.t;
  cancel : Cancel.t;
}

exception Exhausted of Failure.budget_kind

let now () = Nncs_obs.Clock.monotonic_s ()

let start ?(cancel = Cancel.never) l =
  {
    deadline = Option.map (fun s -> now () +. s) l.deadline_s;
    max_ode_steps = l.max_ode_steps;
    max_symstates = l.max_symstates;
    ode_steps = Atomic.make 0;
    cancel;
  }

let none =
  {
    deadline = None;
    max_ode_steps = None;
    max_symstates = None;
    ode_steps = Atomic.make 0;
    cancel = Cancel.never;
  }

let check_deadline t =
  Cancel.check t.cancel;
  match t.deadline with
  | Some d when now () >= d -> raise (Exhausted Failure.Deadline)
  | _ -> ()

let expired t =
  Cancel.cancelled t.cancel
  ||
  match t.deadline with Some d -> now () >= d | None -> false

let add_ode_steps t n =
  Cancel.check t.cancel;
  match t.max_ode_steps with
  | None -> ()
  | Some m ->
      if Atomic.fetch_and_add t.ode_steps n + n > m then
        raise (Exhausted Failure.Ode_steps)

let check_symstates t n =
  match t.max_symstates with
  | Some m when n > m -> raise (Exhausted Failure.Symbolic_states)
  | _ -> ()

let used_ode_steps t = Atomic.get t.ode_steps
let cancel_token t = t.cancel
