type limits = {
  deadline_s : float option;
  max_ode_steps : int option;
  max_symstates : int option;
}

let unlimited = { deadline_s = None; max_ode_steps = None; max_symstates = None }

let is_unlimited l =
  l.deadline_s = None && l.max_ode_steps = None && l.max_symstates = None

type t = {
  deadline : float option;  (* absolute wall-clock stamp *)
  max_ode_steps : int option;
  max_symstates : int option;
  ode_steps : int Atomic.t;
}

exception Exhausted of Failure.budget_kind

let start l =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) l.deadline_s;
    max_ode_steps = l.max_ode_steps;
    max_symstates = l.max_symstates;
    ode_steps = Atomic.make 0;
  }

let none =
  {
    deadline = None;
    max_ode_steps = None;
    max_symstates = None;
    ode_steps = Atomic.make 0;
  }

let check_deadline t =
  match t.deadline with
  | Some d when Unix.gettimeofday () >= d -> raise (Exhausted Failure.Deadline)
  | _ -> ()

let expired t =
  match t.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

let add_ode_steps t n =
  match t.max_ode_steps with
  | None -> ()
  | Some m ->
      if Atomic.fetch_and_add t.ode_steps n + n > m then
        raise (Exhausted Failure.Ode_steps)

let check_symstates t n =
  match t.max_symstates with
  | Some m when n > m -> raise (Exhausted Failure.Symbolic_states)
  | _ -> ()

let used_ode_steps t = Atomic.get t.ode_steps
