(** Fault injection for resilience testing.

    Pipeline code places named trigger points ([Fault.trigger "site"]);
    tests arm an exception at a site and the next matching trigger
    raises it, exercising the degradation ladder, the per-cell firewall
    and the worker crash recovery without contriving pathological
    inputs.

    Disarmed cost is one atomic load and a branch, so trigger points are
    safe in hot loops.  The registry is global and mutex-protected:
    worker domains see faults armed by the main domain.  Production code
    never arms anything. *)

val arm : site:string -> ?key:string -> ?times:int -> (unit -> exn) -> unit
(** Arm [site]: the next {!trigger} on that site raises the built
    exception.  With [?key], only triggers carrying the same key fire
    (e.g. the index of one cell in a partition).  [times] bounds how
    often the fault fires before disarming itself (default: unlimited).
    Arming the same site again stacks an additional fault. *)

val reset : unit -> unit
(** Disarm everything.  Tests must call this in a [finally]. *)

val armed : unit -> bool
(** Any fault currently armed? *)

val trigger : ?key:string -> string -> unit
(** Raise the armed exception if [site] (and key, when the armed fault
    has one) matches; no-op otherwise. *)
