(** Per-work-item resource budgets.

    A budget bounds one verification cell (including any degradation
    retries): a wall-clock deadline, a cap on validated-integration
    sub-steps, and a cap on the symbolic-state count.  Exceeding any
    limit raises {!Exhausted}, which the {!Firewall} maps to a
    [Failure.Budget_exceeded] verdict — the cell degrades to [Unknown]
    instead of monopolising a worker.

    Checks are cheap (a clock read or an atomic add) and are meant to be
    called from the hot reach loop once per control step. *)

type limits = {
  deadline_s : float option;
      (** wall-clock seconds allowed from {!start}; a non-positive value
          is already expired *)
  max_ode_steps : int option;
      (** total validated-integration sub-steps across the whole item *)
  max_symstates : int option;
      (** cap on the symbolic-state count per control step *)
}

val unlimited : limits
(** All limits off: checks never fire. *)

val is_unlimited : limits -> bool

type t

exception Exhausted of Failure.budget_kind

val start : limits -> t
(** Stamp the deadline now; counters start at zero. *)

val none : t
(** The no-op budget (all checks pass); shared, never exhausts. *)

val check_deadline : t -> unit
(** Raises [Exhausted Deadline] once the wall clock passes the stamp. *)

val expired : t -> bool
(** Non-raising probe of the deadline: has the wall clock passed the
    stamp?  Always [false] for deadline-less budgets.  Schedulers use it
    to fast-track work items whose budget is already gone. *)

val add_ode_steps : t -> int -> unit
(** Account [n] integrator sub-steps; raises [Exhausted Ode_steps] when
    the running total crosses the cap. *)

val check_symstates : t -> int -> unit
(** Raises [Exhausted Symbolic_states] when [n] exceeds the cap. *)

val used_ode_steps : t -> int
