(** Per-work-item resource budgets.

    A budget bounds one verification cell (including any degradation
    retries): a wall-clock deadline, a cap on validated-integration
    sub-steps, and a cap on the symbolic-state count.  Exceeding any
    limit raises {!Exhausted}, which the {!Firewall} maps to a
    [Failure.Budget_exceeded] verdict — the cell degrades to [Unknown]
    instead of monopolising a worker.

    Checks are cheap (a clock read or an atomic add) and are meant to be
    called from the hot reach loop once per control step.

    A budget also carries a {!Cancel} token: the same hot-loop gates
    ([check_deadline] / [add_ode_steps]) poll it, so cooperative
    cancellation rides the existing budget plumbing at the cost of one
    extra atomic load per gate.  Deadlines are stamped against the
    monotonic clock ({!Nncs_obs.Clock}), immune to NTP steps. *)

type limits = {
  deadline_s : float option;
      (** wall-clock seconds allowed from {!start}; a non-positive value
          is already expired *)
  max_ode_steps : int option;
      (** total validated-integration sub-steps across the whole item *)
  max_symstates : int option;
      (** cap on the symbolic-state count per control step *)
}

val unlimited : limits
(** All limits off: checks never fire. *)

val is_unlimited : limits -> bool

type t

exception Exhausted of Failure.budget_kind

val start : ?cancel:Cancel.t -> limits -> t
(** Stamp the deadline now (monotonic clock); counters start at zero.
    [cancel] (default {!Cancel.never}) is polled by every
    {!check_deadline} / {!add_ode_steps} gate, which raise
    [Cancel.Cancelled] once it is tripped. *)

val none : t
(** The no-op budget (all checks pass); shared, never exhausts. *)

val check_deadline : t -> unit
(** Raises [Cancel.Cancelled] if the cancel token is tripped, else
    [Exhausted Deadline] once the clock passes the stamp. *)

val expired : t -> bool
(** Non-raising probe: has the deadline passed, or the cancel token
    tripped?  Always [false] for deadline-less uncancellable budgets.
    Schedulers use it to fast-track work items whose budget is already
    gone. *)

val add_ode_steps : t -> int -> unit
(** Account [n] integrator sub-steps; raises [Cancel.Cancelled] if the
    token is tripped, else [Exhausted Ode_steps] when the running total
    crosses the cap. *)

val check_symstates : t -> int -> unit
(** Raises [Exhausted Symbolic_states] when [n] exceeds the cap. *)

val used_ode_steps : t -> int

val cancel_token : t -> Cancel.t
(** The token this budget polls ({!Cancel.never} unless one was passed
    to {!start}). *)
