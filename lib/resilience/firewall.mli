(** The per-work-item exception firewall.

    [protect ~classify f] runs [f] and converts any escaping exception
    into a structured {!Failure.t}: budget exhaustion maps to
    [Budget_exceeded], a tripped {!Cancel} token maps to [Cancelled],
    [classify] maps domain exceptions it recognises
    (enclosure failures, numeric errors, ...), and anything else becomes
    [Worker_crashed] with the exception's rendering — so one poisoned
    work item yields an [Unknown] verdict instead of killing the run.

    Genuinely fatal conditions ([Out_of_memory], [Sys.Break]) are
    re-raised: converting them to a verdict would mask resource
    exhaustion or swallow an interrupt. *)

val fatal : exn -> bool
(** Exceptions the firewall refuses to absorb. *)

val protect :
  classify:(exn -> Failure.t option) ->
  (unit -> 'a) ->
  ('a, Failure.t) result
