(** Cooperative cancellation tokens.

    A token is an atomic flag plus the reason it was tripped.  The
    holder of a long-running work item (a resident server's dispatcher,
    a straggler watchdog) trips the token from any domain; the work
    polls it from its hot loop — a poll on an untripped token costs one
    atomic load — and unwinds by raising {!Cancelled}, which the
    {!Firewall} maps to a {!Failure.Cancelled} verdict.

    Tokens ride inside {!Budget}: the existing budget gates in the
    reach loop and the leaf scheduler ([check_deadline] /
    [add_ode_steps], hit once per control step) double as cancellation
    poll points, so a cancelled job is observed within one control
    step of one leaf — cancellation latency is bounded by
    construction, without a single extra poll site.

    Tripping is idempotent and sticky: the first reason wins, a token
    never un-cancels. *)

type t

exception Cancelled of string
(** Raised by {!check} on a tripped token; the payload is the reason. *)

val create : unit -> t
(** A fresh, untripped token. *)

val never : t
(** A shared token that is never tripped (and must never be passed to
    {!cancel}): the no-op default for uncancellable work. *)

val cancel : t -> reason:string -> unit
(** Trip the token.  Idempotent; the first reason is kept. *)

val cancelled : t -> bool
(** One atomic load. *)

val reason : t -> string option
(** The reason the token was tripped, if it was. *)

val check : t -> unit
(** Raise [Cancelled reason] if tripped; no-op otherwise. *)
