type t = { state : string option Atomic.t }

exception Cancelled of string

let create () = { state = Atomic.make None }
let never = create ()

let cancel t ~reason =
  (* first reason wins; losing the race means someone else's reason is
     already in place, which is just as final *)
  ignore (Atomic.compare_and_set t.state None (Some reason))

let cancelled t = Atomic.get t.state <> None
let reason t = Atomic.get t.state

let check t =
  match Atomic.get t.state with None -> () | Some r -> raise (Cancelled r)
