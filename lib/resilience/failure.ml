module Json = Nncs_obs.Json

type budget_kind = Deadline | Ode_steps | Symbolic_states

type t =
  | Enclosure_diverged of string
  | Budget_exceeded of budget_kind
  | Cancelled of string
  | Numeric of string
  | Worker_crashed of string

let budget_kind_to_string = function
  | Deadline -> "deadline"
  | Ode_steps -> "ode_steps"
  | Symbolic_states -> "symbolic_states"

let budget_kind_of_string = function
  | "deadline" -> Some Deadline
  | "ode_steps" -> Some Ode_steps
  | "symbolic_states" -> Some Symbolic_states
  | _ -> None

let to_string = function
  | Enclosure_diverged msg -> "enclosure_diverged: " ^ msg
  | Budget_exceeded k -> "budget_exceeded: " ^ budget_kind_to_string k
  | Cancelled reason -> "cancelled: " ^ reason
  | Numeric msg -> "numeric: " ^ msg
  | Worker_crashed msg -> "worker_crashed: " ^ msg

let to_json = function
  | Enclosure_diverged msg ->
      Json.Obj [ ("reason", Json.Str "enclosure_diverged"); ("detail", Json.Str msg) ]
  | Budget_exceeded k ->
      Json.Obj
        [
          ("reason", Json.Str "budget_exceeded");
          ("kind", Json.Str (budget_kind_to_string k));
        ]
  | Cancelled reason ->
      Json.Obj [ ("reason", Json.Str "cancelled"); ("detail", Json.Str reason) ]
  | Numeric msg ->
      Json.Obj [ ("reason", Json.Str "numeric"); ("detail", Json.Str msg) ]
  | Worker_crashed msg ->
      Json.Obj [ ("reason", Json.Str "worker_crashed"); ("detail", Json.Str msg) ]

let fail fmt = Printf.ksprintf (fun s -> raise (Json.Parse_error s)) fmt

let of_json j =
  let detail () =
    match Json.member "detail" j with Some (Json.Str s) -> s | _ -> ""
  in
  match Json.member "reason" j with
  | Some (Json.Str "enclosure_diverged") -> Enclosure_diverged (detail ())
  | Some (Json.Str "budget_exceeded") -> (
      match Json.member "kind" j with
      | Some (Json.Str k) -> (
          match budget_kind_of_string k with
          | Some kind -> Budget_exceeded kind
          | None -> fail "Failure.of_json: unknown budget kind %S" k)
      | _ -> fail "Failure.of_json: budget_exceeded without kind")
  | Some (Json.Str "cancelled") -> Cancelled (detail ())
  | Some (Json.Str "numeric") -> Numeric (detail ())
  | Some (Json.Str "worker_crashed") -> Worker_crashed (detail ())
  | Some (Json.Str r) -> fail "Failure.of_json: unknown reason %S" r
  | _ -> fail "Failure.of_json: not a failure object"

let equal (a : t) (b : t) = a = b
