let fatal = function Out_of_memory | Sys.Break -> true | _ -> false

let protect ~classify f =
  try Ok (f ()) with
  | Budget.Exhausted kind -> Error (Failure.Budget_exceeded kind)
  | Cancel.Cancelled reason -> Error (Failure.Cancelled reason)
  | e when not (fatal e) -> (
      match classify e with
      | Some failure -> Error failure
      | None -> Error (Failure.Worker_crashed (Printexc.to_string e)))
