module I = Nncs_interval.Interval
module R = Nncs_interval.Rounding

type t = {
  c : float;  (* center *)
  terms : (int * float) array;  (* sorted by noise-symbol index *)
  err : float;  (* magnitude of the anonymous error term, >= 0 *)
}

(* atomic so that parallel verification workers never hand two distinct
   quantities the same noise symbol (which would fake a correlation and
   break soundness) *)
let counter = Atomic.make 0
let fresh_symbol () = Atomic.fetch_and_add counter 1 + 1

let of_float x = { c = x; terms = [||]; err = 0.0 }

let of_interval_with sym iv =
  let c = I.mid iv in
  (* everything the midpoint-radius split loses goes into the radius *)
  let r =
    Float.max (R.sub_up (I.hi iv) c) (R.sub_up c (I.lo iv))
  in
  if (r = 0.0) [@lint.fp_exact "exact zero-radius test; NaN radius falls through to the general case"] then { c; terms = [||]; err = 0.0 }
  else { c; terms = [| (sym, r) |]; err = 0.0 }

let of_interval iv = of_interval_with (fresh_symbol ()) iv

(* Upper bound on the rounding error of the nearest-rounded value [v]
   whose exact counterpart lies in [down, up]. *)
let round_gap down up v =
  Float.max (R.sub_up up v) (R.sub_up v down)

let total_dev x =
  Array.fold_left (fun acc (_, w) -> R.add_up acc (Float.abs w)) x.err x.terms

let radius = total_dev
let center x = x.c
let error_term x = x.err

let coeff x sym =
  (* terms are sorted: binary search *)
  let n = Array.length x.terms in
  let rec go lo hi =
    if lo >= hi then 0.0
    else
      let m = (lo + hi) / 2 in
      let s, w = x.terms.(m) in
      if s = sym then w else if s < sym then go (m + 1) hi else go lo m
  in
  go 0 n

let to_interval x =
  let r = total_dev x in
  I.make (R.sub_down x.c r) (R.add_up x.c r)

let neg x =
  { c = -.x.c; terms = Array.map (fun (s, w) -> (s, -.w)) x.terms; err = x.err }

let merge_terms f a b =
  (* f combines coefficients present in both; absent = 0. Returns the
     merged sorted array and the accumulated rounding error. *)
  let out = ref [] and err = ref 0.0 and i = ref 0 and j = ref 0 in
  let push s w gap =
    if (w <> 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then out := (s, w) :: !out;
    if gap > 0.0 then err := R.add_up !err gap
  in
  let na = Array.length a and nb = Array.length b in
  while !i < na || !j < nb do
    if !j >= nb || (!i < na && fst a.(!i) < fst b.(!j)) then begin
      let s, w = a.(!i) in
      let v, gap = f w 0.0 in
      push s v gap;
      incr i
    end
    else if !i >= na || fst b.(!j) < fst a.(!i) then begin
      let s, w = b.(!j) in
      let v, gap = f 0.0 w in
      push s v gap;
      incr j
    end
    else begin
      let s, wa = a.(!i) and _, wb = b.(!j) in
      let v, gap = f wa wb in
      push s v gap;
      incr i;
      incr j
    end
  done;
  (Array.of_list (List.rev !out), !err)

let add a b =
  let f x y =
    let v = x +. y in
    (v, round_gap (R.add_down x y) (R.add_up x y) v)
  in
  let terms, gap = merge_terms f a.terms b.terms in
  let c = a.c +. b.c in
  let cgap = round_gap (R.add_down a.c b.c) (R.add_up a.c b.c) c in
  { c; terms; err = R.add_up (R.add_up (R.add_up a.err b.err) gap) cgap }

let sub a b = add a (neg b)

let add_const a k =
  let c = a.c +. k in
  let cgap = round_gap (R.add_down a.c k) (R.add_up a.c k) c in
  { a with c; err = R.add_up a.err cgap }

let scale s a =
  if (s = 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then of_float 0.0
  else
    let gap = ref 0.0 in
    let scale1 w =
      let v = s *. w in
      gap := R.add_up !gap (round_gap (R.mul_down s w) (R.mul_up s w) v);
      v
    in
    let c = scale1 a.c in
    let terms = Array.map (fun (sym, w) -> (sym, scale1 w)) a.terms in
    { c; terms; err = R.add_up (R.mul_up (Float.abs s) a.err) !gap }

let add_error a e =
  if e < 0.0 then invalid_arg "Affine_form.add_error: negative error";
  { a with err = R.add_up a.err e }

let mul a b =
  (* a*b = ac*bc + ac*Pb + bc*Pa + Pa*Pb with |Pa| <= ra, |Pb| <= rb *)
  let ra = total_dev a and rb = total_dev b in
  let sa = scale b.c { a with c = 0.0 } in
  let sb = scale a.c { b with c = 0.0 } in
  let lin = add sa sb in
  let c = a.c *. b.c in
  let cgap = round_gap (R.mul_down a.c b.c) (R.mul_up a.c b.c) c in
  let quad = R.mul_up ra rb in
  {
    c = c +. lin.c;
    terms = lin.terms;
    err = R.add_up (R.add_up (R.add_up lin.err quad) cgap)
            (round_gap (R.add_down c lin.c) (R.add_up c lin.c) (c +. lin.c));
  }

let linear_combination ws b =
  let acc = List.fold_left (fun acc (w, x) -> add acc (scale w x)) (of_float b) ws in
  acc

let pp fmt x =
  Format.fprintf fmt "@[<hov 2>%.6g" x.c;
  Array.iter (fun (s, w) -> Format.fprintf fmt "@ %+.6g*e%d" w s) x.terms;
  if x.err > 0.0 then Format.fprintf fmt "@ +/- %.6g" x.err;
  Format.fprintf fmt "@]"
