(** A single static-analysis finding.

    Findings are identified for baselining purposes by {!key}, which
    deliberately excludes source positions: the tuple (rule, file,
    enclosing binding, flagged detail) plus an occurrence count is
    stable under unrelated edits, whereas line numbers are not. *)

type rule =
  | R1_bare_float      (** bare float arithmetic in soundness-critical code *)
  | R2_float_compare   (** polymorphic =/<>/compare/min/max at float type *)
  | R3_top_mutable     (** top-level mutable state without Atomic/Mutex/DLS *)
  | R3_mutex_unsafe    (** Mutex.lock without an exception-safe unlock *)
  | R4_poly_compare    (** structural equality on abstract domain values *)
  | Parse_failure      (** the linter could not parse the file *)

type severity = P1 | P2

val rule_id : rule -> string
val all_rule_ids : string list
val severity : rule -> severity
val severity_id : severity -> string

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  binding : string;
  detail : string;
  message : string;
}

val key : t -> string
val compare_loc : t -> t -> int
val to_string : t -> string
val to_json : ?status:string -> t -> Nncs_obs.Json.t
