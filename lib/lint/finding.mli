(** A single static-analysis finding.

    Findings are identified for baselining purposes by {!key}, which
    deliberately excludes source positions: the tuple (rule, file,
    enclosing binding, flagged detail) plus an occurrence count is
    stable under unrelated edits, whereas line numbers are not.

    {2 Checked [\[@@lint.guarded_by\]] annotations}

    Since the typedtree rewrite the [\[@@lint.guarded_by "m"\]]
    annotation is {e checked}, not declarative.  Attaching it to a
    top-level mutable binding (or to a mutable record label) does two
    things:

    - it suppresses the {!R3_top_mutable} advisory for that binding, and
    - it registers the binding with rule {!R5_guarded_by}: every read or
      write of the binding that is not inside a region holding the named
      lock becomes a P1 finding.

    The annotation grammar is a dotted name matched against the linter's
    canonical lock keys by suffix: ["m"] matches a lock whose key ends
    in [.m] (or is exactly [m]), ["Memo.lock"] matches
    [Serve.Memo.lock], ["shard.lock"] matches the [lock] field of any
    [shard] record.  A region holds a lock after [Mutex.lock m] (until a
    matching [Mutex.unlock m] in the same sequence), inside the thunk of
    [Mutex.protect m f], and inside literal function arguments of a
    lock-wrapper function — a same-file function whose body starts with
    [Mutex.lock]/[Mutex.protect] (e.g. the repo's [with_lock]
    [with_registry] idioms).  The analysis is lexical: a closure that
    escapes its locked region is assumed to run under the lock, and
    cross-function lock context is not propagated; see DESIGN.md §15 for
    the full list of limits. *)

type rule =
  | R1_bare_float      (** bare float arithmetic in soundness-critical code *)
  | R2_float_compare   (** polymorphic =/<>/compare/min/max at float type *)
  | R3_top_mutable     (** top-level mutable state without Atomic/Mutex/DLS *)
  | R3_mutex_unsafe    (** Mutex.lock without an exception-safe unlock *)
  | R4_poly_compare    (** structural equality on abstract domain values *)
  | R5_guarded_by      (** access to a [@@lint.guarded_by] binding outside its lock *)
  | R5_lock_order      (** cyclic lock-acquisition order (deadlock risk) *)
  | R6_atomic_rmw      (** Atomic.get flowing into Atomic.set: lost-update window *)
  | R6_atomic_publish  (** Atomic.t published through a non-atomic mutable cell *)
  | R6_faa_discard     (** fetch_and_add result discarded: use incr/decr *)
  | R7_perform_under_lock  (** Effect.perform while a mutex is held *)
  | R7_dls_in_handler  (** Domain.DLS access inside an effect handler *)
  | Parse_failure      (** the linter could not parse the file *)
  | Type_failure       (** the linter could not typecheck the file *)

type severity = P1 | P2

val rule_id : rule -> string
val all_rule_ids : string list
val severity : rule -> severity
val severity_id : severity -> string

(** the rule family ("r1".."r7", "parse-failure", "type-failure") a rule
    belongs to, for per-family reporting *)
val family : rule -> string

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  binding : string;
  detail : string;
  message : string;
}

val key : t -> string
val compare_loc : t -> t -> int
val to_string : t -> string
val to_json : ?status:string -> t -> Nncs_obs.Json.t
