(* The rule engine: a Parsetree walk (compiler-libs Ast_iterator) with a
   mutable context carrying the active suppression set and the enclosing
   top-level binding name.

   Everything here is syntactic — the linter runs on untyped ASTs, so
   R2/R4 use "looks like a float / looks like an abstract value"
   heuristics and err towards silence on expressions whose type is not
   apparent.  The baseline machinery absorbs the residual noise. *)

open Parsetree

type ctx = {
  file : string;
  r1_active : bool;
  r3_active : bool;
  mutable binding : string;
  mutable sup : Suppress.t;
  mutable static : bool;  (* directly under structure items, not inside an expression *)
  locals : (string, unit) Hashtbl.t;
      (* top-level names the file has defined so far: an unqualified
         [cos]/[exp]/[sqrt] after such a definition is the file's own
         function (e.g. interval cosine), not the libm one *)
  mutable findings : Finding.t list;
}

let report ctx rule loc detail message =
  let id = Finding.rule_id rule in
  if
    (not (Suppress.allows ctx.sup id))
    && Config.allowlisted ~file:ctx.file ~rule_id:id = None
  then
    let p = loc.Location.loc_start in
    ctx.findings <-
      {
        Finding.rule;
        file = ctx.file;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        binding = ctx.binding;
        detail;
        message;
      }
      :: ctx.findings

(* ----- identifier classification ----- *)

let path_of_lid lid = String.concat "." (Longident.flatten lid)

(* the module component closest to the value: M for M.f and Outer.M.f *)
let owning_module lid =
  match List.rev (Longident.flatten lid) with
  | _ :: m :: _ -> Some m
  | _ -> None

let strip_stdlib lid =
  match lid with
  | Longident.Ldot (Lident "Stdlib", s) -> Longident.Lident s
  | l -> l

(* Is this identifier a bare rounding float operation? Returns the
   display name.  [shadowed] filters alphabetic names (sqrt, cos, ...)
   the file has redefined — those resolve to the local definition, not
   libm.  Operators and Float.* stay flagged regardless. *)
let bare_float_ident ~shadowed lid =
  match strip_stdlib lid with
  | Lident op when List.mem op Config.bare_float_ops -> Some op
  | Lident f when List.mem f Config.bare_float_funs && not (shadowed f) ->
      Some f
  | Ldot (Lident "Float", f) when List.mem f Config.float_module_rounding ->
      Some ("Float." ^ f)
  | _ -> None

(* Heads that mark an expression as float-typed for R2 (superset of the
   R1 set: exact operations like ~-. and Float.abs type at float too). *)
let floatish_head lid =
  match strip_stdlib lid with
  | Lident op
    when List.mem op Config.bare_float_ops
         || List.mem op Config.bare_float_funs
         || List.mem op
              [ "~-."; "~+."; "abs_float"; "float_of_int"; "float_of_string" ]
    ->
      true
  | Ldot (Lident "Float", _) -> true
  | _ -> false

let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      floatish_head txt
  | Pexp_ident { txt; _ } -> (
      match strip_stdlib txt with
      | Ldot (Lident "Float", _) -> true
      | Lident
          ( "infinity" | "neg_infinity" | "nan" | "max_float" | "min_float"
          | "epsilon_float" ) ->
          true
      | _ -> false)
  | Pexp_constraint (e', _) | Pexp_open (_, e') -> floatish e'
  | _ -> false

(* R4: an argument whose head is a qualified call/constructor/value from
   a module with an abstract principal type. *)
let abstract_headed e =
  let from_abstract lid =
    match owning_module lid with
    | Some m -> List.mem m Config.abstract_modules
    | None -> false
  in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      from_abstract txt
  | Pexp_construct ({ txt; _ }, _) -> from_abstract txt
  | Pexp_ident { txt; _ } -> from_abstract txt
  | _ -> false

(* ----- R3: top-level mutable state ----- *)

(* The maker of the value bound at toplevel, looking through let/seq/
   constraints but NOT through functions (a function creating a ref per
   call is not shared state). *)
let rec state_maker e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let p = path_of_lid (strip_stdlib txt) in
      if List.mem p Config.safe_makers then None
      else if List.mem p Config.mutable_makers then Some p
      else None
  | Pexp_array (_ :: _) -> Some "array literal"
  | Pexp_let (_, _, body)
  | Pexp_sequence (_, body)
  | Pexp_constraint (body, _)
  | Pexp_open (_, body) ->
      state_maker body
  | Pexp_tuple es -> List.find_map state_maker es
  | _ -> None

(* ----- R3: exception-unsafe Mutex.lock ----- *)

let expr_mentions path e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when path_of_lid txt = path -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

(* Within one top-level binding: collect Mutex.lock sites and whether
   some Fun.protect has a ~finally that unlocks.  The check is
   binding-granular — one exception-safe critical section vouches for
   the binding — which is deliberately coarse but has no false negatives
   on lock-free bindings and no false positives on the
   lock-then-Fun.protect idiom. *)
let check_mutex ctx vb_expr =
  let locks = ref [] in
  let protected_unlock = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } when path_of_lid txt = "Mutex.lock" ->
              locks := loc :: !locks
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when path_of_lid txt = "Fun.protect" ->
              if
                List.exists
                  (fun (lbl, a) ->
                    lbl = Asttypes.Labelled "finally"
                    && expr_mentions "Mutex.unlock" a)
                  args
              then protected_unlock := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it vb_expr;
  if !locks <> [] && not !protected_unlock then
    List.iter
      (fun loc ->
        report ctx Finding.R3_mutex_unsafe loc "Mutex.lock"
          "Mutex.lock whose unlock is not exception-safe: wrap the \
           critical section in Fun.protect ~finally:(fun () -> \
           Mutex.unlock ...)")
      (List.rev !locks)

(* ----- per-expression checks (R1 / R2 / R4) ----- *)

let check_expr ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } when ctx.r1_active -> (
      match bare_float_ident ~shadowed:(Hashtbl.mem ctx.locals) txt with
      | Some op ->
          report ctx Finding.R1_bare_float loc op
            (Printf.sprintf
               "bare `%s` in soundness-critical code: outward rounding is \
                not applied; use Rounding/Interval/Box, or annotate \
                [@lint.fp_exact \"reason\"] if exactness/heuristic use is \
                intended"
               op)
      | None -> ())
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
    when List.length args >= 2 -> (
      let plain_args =
        List.filter_map
          (fun (lbl, a) -> if lbl = Asttypes.Nolabel then Some a else None)
          args
      in
      match strip_stdlib txt with
      | Lident op
        when List.mem op Config.poly_eq_ops
             || List.mem op Config.poly_minmax_ops -> (
          if List.exists floatish plain_args then
            report ctx Finding.R2_float_compare loc op
              (Printf.sprintf
                 "polymorphic `%s` on a float operand: NaN and -0.0 \
                  compare structurally (use Float.%s / explicit bit-level \
                  logic, or annotate [@lint.fp_exact \"reason\"])"
                 op
                 (match op with
                 | "=" -> "equal"
                 | "<>" -> "equal + not"
                 | o -> o))
          else
            match
              if List.mem op Config.poly_eq_ops then
                List.find_opt abstract_headed plain_args
              else None
            with
            | Some witness ->
                let w =
                  match witness.pexp_desc with
                  | Pexp_apply
                      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
                  | Pexp_construct ({ txt; _ }, _)
                  | Pexp_ident { txt; _ } ->
                      path_of_lid txt
                  | _ -> "?"
                in
                report ctx Finding.R4_poly_compare loc (op ^ " " ^ w)
                  (Printf.sprintf
                     "structural `%s` on an abstract value (%s): use the \
                      module's own equal/compare, or annotate [@lint.allow \
                      \"r4 reason\"]"
                     op w)
            | None -> ())
      | _ -> ())
  | _ -> ()

let check_pattern ctx p =
  match p.ppat_desc with
  | Ppat_constant (Pconst_float (lit, _)) ->
      report ctx Finding.R2_float_compare p.ppat_loc ("pattern " ^ lit)
        (Printf.sprintf
           "float literal pattern %s matches by structural equality \
            (NaN/-0.0 hazards); compare explicitly"
           lit)
  | _ -> ()

(* ----- the walk ----- *)

let rec binding_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p', _) -> binding_name p'
  | _ -> None

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr self e =
    let saved_sup = ctx.sup and saved_static = ctx.static in
    ctx.static <- false;
    ctx.sup <- Suppress.of_attributes e.pexp_attributes ctx.sup;
    check_expr ctx e;
    default.expr self e;
    ctx.sup <- saved_sup;
    ctx.static <- saved_static
  in
  let pat self p =
    check_pattern ctx p;
    default.pat self p
  in
  let structure_item self item =
    match item.pstr_desc with
    | Pstr_value (rec_flag, vbs) ->
        let register () =
          List.iter
            (fun vb ->
              match binding_name vb.pvb_pat with
              | Some n -> Hashtbl.replace ctx.locals n ()
              | None -> ())
            vbs
        in
        (* a recursive binding shadows inside its own body; a plain one
           only from the next item on *)
        if rec_flag = Asttypes.Recursive then register ();
        List.iter
          (fun vb ->
            let saved_sup = ctx.sup and saved_binding = ctx.binding in
            ctx.sup <- Suppress.of_attributes vb.pvb_attributes ctx.sup;
            (match binding_name vb.pvb_pat with
            | Some n -> ctx.binding <- n
            | None -> ());
            if ctx.static && ctx.r3_active then begin
              (* report itself applies suppression and the allowlist *)
              (match state_maker vb.pvb_expr with
              | Some maker ->
                  report ctx Finding.R3_top_mutable vb.pvb_pat.ppat_loc
                    (Printf.sprintf "%s=%s" ctx.binding maker)
                    (Printf.sprintf
                       "top-level mutable state (`%s` via %s) reachable \
                        from parallel workers: use Atomic/Mutex/Domain.DLS \
                        or annotate [@@lint.guarded_by \"mutex\"]"
                       ctx.binding maker)
              | _ -> ());
              check_mutex ctx vb.pvb_expr
            end;
            self.Ast_iterator.pat self vb.pvb_pat;
            self.Ast_iterator.expr self vb.pvb_expr;
            ctx.sup <- saved_sup;
            ctx.binding <- saved_binding)
          vbs;
        if rec_flag <> Asttypes.Recursive then register ()
    | _ -> default.structure_item self item
  in
  let structure self items =
    (* floating [@@@lint.*] attributes scope over the rest of the file
       (or of the enclosing module) *)
    let saved = ctx.sup in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_attribute a -> ctx.sup <- Suppress.add a ctx.sup
        | _ -> self.Ast_iterator.structure_item self item)
      items;
    ctx.sup <- saved
  in
  { default with expr; pat; structure_item; structure }

let check ~file (ast : structure) : Finding.t list =
  let ctx =
    {
      file;
      r1_active = Config.r1_scope file;
      r3_active = Config.r3_scope file;
      binding = "";
      sup = Suppress.empty;
      static = true;
      locals = Hashtbl.create 32;
      findings = [];
    }
  in
  let it = make_iterator ctx in
  it.Ast_iterator.structure it ast;
  List.sort Finding.compare_loc ctx.findings
