(* The rule engine: a Typedtree walk (compiler-libs Tast_iterator) with
   a mutable context carrying the active suppression set, the enclosing
   top-level binding, and the set of locks held on the current lexical
   path.

   Everything here runs on *typed* ASTs produced by Typing.typecheck,
   so identifier classification uses resolved paths (shadowing is the
   typer's problem) and R2/R4 read principal types instead of
   "looks like a float" heuristics.

   Lock-region model (R5/R7): a lock is "held" inside

   - the rest of a [Texp_sequence] chain after [Mutex.lock m] (until a
     matching [Mutex.unlock m] element),
   - the thunk of [Mutex.protect m f], and
   - literal function arguments of a *lock wrapper*: a same-file
     function whose body immediately takes a lock (the repo's
     [with_lock sh] / [with_registry] idioms), inferred in a pre-pass.

   The model is lexical and over-approximates into nested lambdas (the
   [Fun.protect] thunk idiom depends on it); closures that escape their
   locked region and run elsewhere are misattributed — a documented
   limit (DESIGN.md §15).  Cross-file facts (lock-order edges, guard
   declarations, accesses to foreign globals) are returned to the
   driver, which builds the global lock graph and checks cross-module
   guarded accesses after all files are walked.

   MUST run inside Typing.with_typer: reading types expands
   abbreviations through compiler-libs' shared memo tables. *)

open Typedtree

(* ----- display names: strip dune's unit mangling ----- *)

let strip_mangle comp =
  let n = String.length comp in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if comp.[i] = '_' && comp.[i + 1] = '_' then last_sep (i + 2) (i + 2)
    else last_sep (i + 1) best
  in
  match last_sep 0 (-1) with
  | -1 -> comp
  | j when j < n -> String.sub comp j (n - j)
  | _ -> comp

let display_path p =
  Path.name p |> String.split_on_char '.' |> List.map strip_mangle
  |> String.concat "."

let last_segment s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

(* ----- cross-file facts ----- *)

type lock = { canon : string; aliases : string list }

type edge = {
  e_from : string;
  e_to : string;
  e_file : string;
  e_line : int;
  e_col : int;
  e_binding : string;
}

type guard_decl = { g_canon : string; g_guard : string }

type ext_access = {
  x_canon : string;
  x_display : string;
  x_file : string;
  x_line : int;
  x_col : int;
  x_binding : string;
  x_held : lock list;
}

type result_ = {
  findings : Finding.t list;
  edges : edge list;
  guards : guard_decl list;
  ext : ext_access list;
}

(* guard annotation "m" / "Memo.lock" matches a held lock if it equals
   one of its aliases or its dotted segments are a suffix of the lock's
   canonical key *)
let guard_matches guard lk =
  List.mem guard lk.aliases
  ||
  let gs = String.split_on_char '.' guard in
  let cs = String.split_on_char '.' lk.canon in
  let rec suffix xs ys =
    List.length ys >= List.length xs
    &&
    match ys with
    | [] -> xs = []
    | _ :: tl -> xs = ys || suffix xs tl
  in
  suffix gs cs

let held_satisfies guard held = List.exists (guard_matches guard) held

(* ----- context ----- *)

type wspec =
  | W_global of lock
  | W_param of int * (string * string) option  (* (field canon, field name) *)

type ctx = {
  file : string;
  unit_display : string;
  r1_active : bool;
  r3_active : bool;
  conc_active : bool;
  mutable binding : string;
  mutable sup : Suppress.t;
  mutable static : bool;
  mutable held : lock list;
  mutable in_handler : bool;
  toplevels : (Ident.t, string) Hashtbl.t;  (* toplevel value -> canon *)
  guards_by_ident : (Ident.t, string) Hashtbl.t;
  field_guards : (string, string) Hashtbl.t;  (* "Type.label" canon -> guard *)
  wrappers : (Ident.t, wspec) Hashtbl.t;
  (* per-top-level-binding R6/R3 state *)
  mutable atomic_gets : (string * Location.t) list;
  (* key, site, suppressions in scope, no-lock-held at the set *)
  mutable atomic_sets : (string * Location.t * Suppress.t * bool) list;
  mutable atomic_rmw : string list;
  mutable mutex_locks : Location.t list;
  mutable mutex_protected : bool;
  (* accumulated results *)
  mutable findings : Finding.t list;
  mutable edges : edge list;
  mutable guard_decls : guard_decl list;
  mutable ext : ext_access list;
}

let loc_pos (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let report ?sup ctx rule loc detail message =
  let sup = Option.value sup ~default:ctx.sup in
  let id = Finding.rule_id rule in
  if
    (not (Suppress.allows sup id))
    && Policy.allowlisted ~file:ctx.file ~rule_id:id = None
  then
    let line, col = loc_pos loc in
    ctx.findings <-
      {
        Finding.rule;
        file = ctx.file;
        line;
        col;
        binding = ctx.binding;
        detail;
        message;
      }
      :: ctx.findings

(* ----- typed classification helpers ----- *)

let head_desc env ty =
  match Ctype.expand_head env ty with
  | ty -> Some (Types.get_desc ty)
  | exception _ -> None

let type_head_path env ty =
  match head_desc env ty with
  | Some (Types.Tconstr (p, _, _)) -> Some p
  | _ -> None

let is_float_expr e =
  match type_head_path e.exp_env e.exp_type with
  | Some p -> Path.same p Predef.path_float
  | None -> false

(* a tuple with a float component compares NaN-hazardously too *)
let floatish_expr e =
  is_float_expr e
  ||
  match head_desc e.exp_env e.exp_type with
  | Some (Types.Ttuple tys) ->
      List.exists
        (fun ty ->
          match type_head_path e.exp_env ty with
          | Some p -> Path.same p Predef.path_float
          | None -> false)
        tys
  | _ -> false

let abstract_module_of_expr e =
  match type_head_path e.exp_env e.exp_type with
  | Some p -> (
      match List.rev (String.split_on_char '.' (display_path p)) with
      | _ :: m :: _ when List.mem m Policy.abstract_modules -> Some m
      | [ m ] when List.mem m Policy.abstract_modules -> Some m
      | _ -> None)
  | None -> None

(* Type-constructor paths normalize to the defining unit
   (Stdlib__Atomic.t, not the surface Stdlib.Atomic.t), so compare
   display names with the Stdlib prefix stripped: "Atomic.t",
   "Hashtbl.t", "ref". *)
let norm_type_name p =
  let d = display_path p in
  match String.index_opt d '.' with
  | Some 6 when String.sub d 0 6 = "Stdlib" ->
      String.sub d 7 (String.length d - 7)
  | _ -> d

let mutable_type_expr e =
  match type_head_path e.exp_env e.exp_type with
  | Some p -> List.mem (norm_type_name p) Policy.mutable_type_heads
  | None -> false

let is_atomic_expr e =
  match type_head_path e.exp_env e.exp_type with
  | Some p -> norm_type_name p = "Atomic.t"
  | None -> false

let head_path e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let head_path_name e = Option.map Path.name (head_path e)

let plain_args args =
  List.filter_map
    (fun (lbl, a) ->
      match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

(* the record-type-qualified canon of a field, e.g. "Cache.shard.lock";
   local type names are qualified with the unit so the key is stable
   across files *)
let field_canon ctx (lbl : Types.label_description) =
  let tycanon =
    match Types.get_desc lbl.Types.lbl_res with
    | Types.Tconstr (Path.Pident id, _, _) ->
        ctx.unit_display ^ "." ^ Ident.name id
    | Types.Tconstr (p, _, _) -> display_path p
    | _ -> "?"
  in
  tycanon ^ "." ^ lbl.Types.lbl_name

let foreign_label (lbl : Types.label_description) =
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (Path.Pident _, _, _) -> false
  | Types.Tconstr (_, _, _) -> true
  | _ -> false

(* canonical key + match aliases of an lvalue-ish expression (a mutex, an
   atomic, a guarded global): idents, record fields, array elements *)
let rec lvalue_key ctx e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      match Hashtbl.find_opt ctx.toplevels id with
      | Some canon -> Some { canon; aliases = [ canon; Ident.name id ] }
      | None ->
          let n = Ident.name id in
          Some { canon = n; aliases = [ n ] })
  | Texp_ident (p, _, _) ->
      let d = display_path p in
      Some { canon = d; aliases = [ d; last_segment d ] }
  | Texp_field (b, _, lbl) ->
      let canon = field_canon ctx lbl in
      let extra =
        match lvalue_key ctx b with
        | Some bk -> [ bk.canon ^ "." ^ lbl.Types.lbl_name ]
        | None -> []
      in
      Some { canon; aliases = (canon :: lbl.Types.lbl_name :: extra) }
  | Texp_apply (f, args)
    when head_path_name f = Some "Stdlib.Array.get"
         || head_path_name f = Some "Stdlib.Array.unsafe_get" -> (
      match plain_args args with
      | base :: _ -> (
          match lvalue_key ctx base with
          | Some bk ->
              Some
                {
                  canon = bk.canon ^ ".()";
                  aliases = List.map (fun a -> a ^ ".()") bk.aliases;
                }
          | None -> None)
      | [] -> None)
  | _ -> None

let lock_of ctx e =
  match lvalue_key ctx e with
  | Some lk -> lk
  | None -> { canon = "?"; aliases = [] }

(* ----- pre-pass 1: toplevel idents, guard registrations ----- *)

let binding_ident p =
  match p.pat_desc with
  | Tpat_var (id, name) -> Some (id, name.Asttypes.txt)
  | Tpat_alias (_, id, name) -> Some (id, name.Asttypes.txt)
  | _ -> None

let register_structure ctx prefix str =
  let rec go prefix str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match binding_ident vb.vb_pat with
                | Some (id, name) ->
                    let canon = prefix ^ "." ^ name in
                    Hashtbl.replace ctx.toplevels id canon;
                    (match Suppress.guarded_by vb.vb_attributes with
                    | Some g ->
                        Hashtbl.replace ctx.guards_by_ident id g;
                        ctx.guard_decls <-
                          { g_canon = canon; g_guard = g } :: ctx.guard_decls
                    | None -> ())
                | None -> ())
              vbs
        | Tstr_type (_, decls) ->
            List.iter
              (fun (d : type_declaration) ->
                match d.typ_kind with
                | Ttype_record lds ->
                    List.iter
                      (fun (ld : label_declaration) ->
                        match Suppress.guarded_by ld.ld_attributes with
                        | Some g ->
                            let canon =
                              prefix ^ "." ^ Ident.name d.typ_id ^ "."
                              ^ Ident.name ld.ld_id
                            in
                            Hashtbl.replace ctx.field_guards canon g;
                            ctx.guard_decls <-
                              { g_canon = canon; g_guard = g }
                              :: ctx.guard_decls
                        | None -> ())
                      lds
                | _ -> ())
              decls
        | Tstr_module mb -> (
            match (mb.mb_id, mb.mb_expr.mod_desc) with
            | Some mid, Tmod_structure sub ->
                go (prefix ^ "." ^ Ident.name mid) sub
            | _ -> ())
        | _ -> ())
      str.str_items
  in
  go prefix str

(* ----- pre-pass 2: lock-wrapper inference ----- *)

let rec peel_params acc e =
  match e.exp_desc with
  | Texp_function { param; cases = [ { c_rhs; _ } ]; _ } ->
      peel_params (param :: acc) c_rhs
  | _ -> (List.rev acc, e)

let wrapper_spec ctx params body =
  let classify m =
    match m.exp_desc with
    | Texp_ident (Path.Pident id, _, _)
      when List.exists (Ident.same id) params ->
        let idx = ref 0 in
        List.iteri (fun i p -> if Ident.same p id then idx := i) params;
        Some (W_param (!idx, None))
    | Texp_field ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ }, _, lbl)
      when List.exists (Ident.same id) params ->
        let idx = ref 0 in
        List.iteri (fun i p -> if Ident.same p id then idx := i) params;
        Some (W_param (!idx, Some (field_canon ctx lbl, lbl.Types.lbl_name)))
    | _ -> (
        match lvalue_key ctx m with
        | Some lk -> Some (W_global lk)
        | None -> None)
  in
  let acquisition e =
    match e.exp_desc with
    | Texp_apply (f, args) when head_path_name f = Some "Stdlib.Mutex.lock"
      -> (
        match plain_args args with m :: _ -> Some m | [] -> None)
    | Texp_apply (f, args)
      when head_path_name f = Some "Stdlib.Mutex.protect" -> (
        match plain_args args with m :: _ -> Some m | [] -> None)
    | _ -> None
  in
  match body.exp_desc with
  | Texp_sequence (e1, _) -> Option.bind (acquisition e1) classify
  | _ -> Option.bind (acquisition body) classify

let register_wrappers ctx str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_ident vb.vb_pat with
              | Some (id, _) -> (
                  let params, body = peel_params [] vb.vb_expr in
                  if params <> [] then
                    match wrapper_spec ctx params body with
                    | Some spec -> Hashtbl.replace ctx.wrappers id spec
                    | None -> ())
              | None -> ())
            vbs
      | _ -> ())
    str.str_items

let wrapper_lock ctx spec args =
  match spec with
  | W_global lk -> Some lk
  | W_param (idx, field) -> (
      match List.nth_opt (plain_args args) idx with
      | Some arg -> (
          let base = lvalue_key ctx arg in
          match field with
          | None -> base
          | Some (canon, fname) ->
              let extra =
                match base with
                | Some bk -> [ bk.canon ^ "." ^ fname ]
                | None -> []
              in
              Some { canon; aliases = (canon :: fname :: extra) })
      | None -> None)

(* ----- R3: top-level mutable state ----- *)

let rec state_maker e =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match head_path_name f with
      | Some p when List.mem p Policy.safe_makers -> None
      | Some p when List.mem p Policy.mutable_makers ->
          Some (last_segment (display_path (Option.get (head_path f))))
      | Some _ ->
          (* a maker hidden behind a function call: the *type* decides *)
          if mutable_type_expr e then Some "mutable-typed value" else None
      | None -> None)
  | Texp_array (_ :: _) -> Some "array literal"
  | Texp_let (_, _, body)
  | Texp_sequence (_, body)
  | Texp_open (_, body) ->
      state_maker body
  | Texp_tuple es -> List.find_map state_maker es
  | _ -> None

(* ----- the walk ----- *)

let expr_mentions_path path e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) when Path.name p = path -> found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

let atomic_key ctx args =
  match plain_args args with
  | a :: _ -> Option.map (fun lk -> lk.canon) (lvalue_key ctx a)
  | [] -> None

(* a fetch_and_add whose delta is a literal 1/-1: discarding its result
   has a drop-in replacement (Atomic.incr/decr); arbitrary deltas have
   no non-fetching equivalent, so those are not flagged *)
let faa_unit_delta e =
  match e.exp_desc with
  | Texp_apply (f, args)
    when head_path_name f = Some "Stdlib.Atomic.fetch_and_add" -> (
      match plain_args args with
      | [ _; { exp_desc = Texp_constant (Asttypes.Const_int (1 | -1)); _ } ]
        ->
          true
      | _ -> false)
  | _ -> false

let acquire ctx loc lk =
  if ctx.conc_active && not (Suppress.allows ctx.sup "r5-lock-order") then
    let line, col = loc_pos loc in
    List.iter
      (fun h ->
        ctx.edges <-
          {
            e_from = h.canon;
            e_to = lk.canon;
            e_file = ctx.file;
            e_line = line;
            e_col = col;
            e_binding = ctx.binding;
          }
          :: ctx.edges)
      ctx.held

let check_guarded_ident ctx p loc =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt ctx.guards_by_ident id with
      | Some g when not (held_satisfies g ctx.held) ->
          let name = Ident.name id in
          report ctx Finding.R5_guarded_by loc (name ^ " guard=" ^ g)
            (Printf.sprintf
               "access to `%s` outside its declared lock `%s` \
                ([@@lint.guarded_by]): take the lock around this access, \
                or annotate [@lint.allow \"r5-guarded-by reason\"]"
               name g)
      | _ -> ())
  | _ ->
      (* cross-module: defer to the driver, which knows every file's
         guard declarations *)
      ()

let record_ext_candidate ctx canon display loc =
  if ctx.conc_active && not (Suppress.allows ctx.sup "r5-guarded-by") then begin
    let line, col = loc_pos loc in
    ctx.ext <-
      {
        x_canon = canon;
        x_display = display;
        x_file = ctx.file;
        x_line = line;
        x_col = col;
        x_binding = ctx.binding;
        x_held = ctx.held;
      }
      :: ctx.ext
  end

let check_field_guard ctx lbl loc =
  if ctx.conc_active then begin
    let canon = field_canon ctx lbl in
    match Hashtbl.find_opt ctx.field_guards canon with
    | Some g when not (held_satisfies g ctx.held) ->
        report ctx Finding.R5_guarded_by loc
          (last_segment canon ^ " guard=" ^ g)
          (Printf.sprintf
             "access to guarded field `%s` outside its declared lock `%s` \
              ([@@lint.guarded_by]): take the lock around this access, or \
              annotate [@lint.allow \"r5-guarded-by reason\"]"
             canon g)
    | Some _ -> ()
    | None ->
        if foreign_label lbl && lbl.Types.lbl_mut = Asttypes.Mutable then
          record_ext_candidate ctx canon canon loc
  end

let check_poly ctx loc op args =
  let is_eq = List.mem op [ "="; "<>"; "compare" ] in
  match List.find_opt floatish_expr args with
  | Some _ ->
      report ctx Finding.R2_float_compare loc op
        (Printf.sprintf
           "polymorphic `%s` on a float operand: NaN and -0.0 compare \
            structurally (use Float.%s / explicit bit-level logic, or \
            annotate [@lint.fp_exact \"reason\"])"
           op
           (match op with
           | "=" -> "equal"
           | "<>" -> "equal + not"
           | o -> o))
  | None -> (
      if is_eq then
        match List.find_map abstract_module_of_expr args with
        | Some m ->
            report ctx Finding.R4_poly_compare loc (op ^ " " ^ m)
              (Printf.sprintf
                 "structural `%s` on an abstract value (%s.t): use the \
                  module's own equal/compare, or annotate [@lint.allow \
                  \"r4 reason\"]"
                 op m)
        | None -> ())

let make_iterator ctx =
  let default = Tast_iterator.default_iterator in
  let with_held self extra f =
    let saved = ctx.held in
    ctx.held <- extra @ saved;
    f self;
    ctx.held <- saved
  in
  let expr self e =
    let saved_sup = ctx.sup and saved_static = ctx.static in
    ctx.static <- false;
    ctx.sup <- Suppress.of_attributes e.exp_attributes ctx.sup;
    let handled =
      match e.exp_desc with
      | Texp_ident (p, _, _) ->
          let name = Path.name p in
          (if ctx.r1_active then
             match Hashtbl.find_opt Policy.bare_float_paths name with
             | Some op ->
                 report ctx Finding.R1_bare_float e.exp_loc op
                   (Printf.sprintf
                      "bare `%s` in soundness-critical code: outward \
                       rounding is not applied; use Rounding/Interval/Box, \
                       or annotate [@lint.fp_exact \"reason\"] if \
                       exactness/heuristic use is intended"
                      op)
             | None -> ());
          if ctx.conc_active then begin
            if name = "Stdlib.Mutex.lock" then
              ctx.mutex_locks <- e.exp_loc :: ctx.mutex_locks;
            if name = "Stdlib.Effect.perform" && ctx.held <> [] then
              report ctx Finding.R7_perform_under_lock e.exp_loc
                ("perform holding "
                ^ String.concat "," (List.map (fun l -> l.canon) ctx.held))
                (Printf.sprintf
                   "Effect.perform while holding `%s`: a parked fiber \
                    keeps the lock and deadlocks every other domain that \
                    needs it; release the lock before performing, or \
                    annotate [@lint.allow \"r7-perform-under-lock \
                    reason\"]"
                   (String.concat ", "
                      (List.map (fun l -> l.canon) ctx.held)));
            if
              (name = "Stdlib.Domain.DLS.get" || name = "Stdlib.Domain.DLS.set")
              && ctx.in_handler
            then
              report ctx Finding.R7_dls_in_handler e.exp_loc
                (last_segment name)
                "Domain.DLS access inside an effect handler: the handler \
                 runs on whichever domain resumes the fiber, so \
                 domain-local state may belong to a different domain \
                 than the suspension point; pass state explicitly or \
                 annotate [@lint.allow \"r7-dls-in-handler reason\"]";
            check_guarded_ident ctx p e.exp_loc;
            match p with
            | Path.Pident _ -> ()
            | _ ->
                if mutable_type_expr e then
                  record_ext_candidate ctx (display_path p) (display_path p)
                    e.exp_loc
          end;
          false
      | Texp_field (_, _, lbl) ->
          check_field_guard ctx lbl e.exp_loc;
          false
      | Texp_setfield (_, _, lbl, v) ->
          check_field_guard ctx lbl e.exp_loc;
          if ctx.conc_active && ctx.held = [] && is_atomic_expr v then
            report ctx Finding.R6_atomic_publish e.exp_loc
              ("publish " ^ lbl.Types.lbl_name)
              (Printf.sprintf
                 "Atomic.t published through non-atomic mutable field \
                  `%s` with no lock held: another domain can observe the \
                  field before the atomic's initialization; publish \
                  under a lock / through an Atomic, or annotate \
                  [@lint.allow \"r6-atomic-publish reason\"]"
                 lbl.Types.lbl_name);
          false
      | Texp_sequence (e1, e2) ->
          self.Tast_iterator.expr self e1;
          (let lock_op =
             match e1.exp_desc with
             | Texp_apply (f, args) -> (
                 match (head_path_name f, plain_args args) with
                 | Some "Stdlib.Mutex.lock", m :: _ ->
                     Some (`Lock (lock_of ctx m, e1.exp_loc))
                 | Some "Stdlib.Mutex.unlock", m :: _ ->
                     Some (`Unlock (lock_of ctx m))
                 | _ -> None)
             | _ -> None
           in
           match lock_op with
           | Some (`Lock (lk, loc)) ->
               acquire ctx loc lk;
               with_held self [ lk ] (fun self ->
                   self.Tast_iterator.expr self e2)
           | Some (`Unlock lk) ->
               let saved = ctx.held in
               ctx.held <-
                 List.filter (fun h -> h.canon <> lk.canon) ctx.held;
               self.Tast_iterator.expr self e2;
               ctx.held <- saved
           | None -> self.Tast_iterator.expr self e2);
          true
      | Texp_record { fields; _ }
        when Array.exists
               (fun ((l : Types.label_description), _) ->
                 l.Types.lbl_name = "effc")
               fields ->
          (* an Effect.Deep/Shallow handler literal: its components run
             as part of the handler *)
          let saved = ctx.in_handler in
          ctx.in_handler <- true;
          default.expr self e;
          ctx.in_handler <- saved;
          true
      | Texp_apply (f, args) -> (
          let fname = head_path_name f in
          (* typed R2/R4 on the actual argument types *)
          (match fname with
          | Some p
            when List.mem p Policy.poly_eq_paths
                 || List.mem p Policy.poly_minmax_paths ->
              let present = plain_args args in
              if present <> [] then
                check_poly ctx e.exp_loc (last_segment p) present
          | _ -> ());
          (* R6 atomic protocol bookkeeping *)
          (if ctx.conc_active then
             match fname with
             | Some "Stdlib.Atomic.get" -> (
                 match atomic_key ctx args with
                 | Some k -> ctx.atomic_gets <- (k, e.exp_loc) :: ctx.atomic_gets
                 | None -> ())
             | Some "Stdlib.Atomic.set" -> (
                 match atomic_key ctx args with
                 | Some k ->
                     ctx.atomic_sets <-
                       (k, e.exp_loc, ctx.sup, ctx.held = [])
                       :: ctx.atomic_sets
                 | None -> ())
             | Some
                 ( "Stdlib.Atomic.compare_and_set" | "Stdlib.Atomic.exchange"
                 | "Stdlib.Atomic.fetch_and_add" | "Stdlib.Atomic.incr"
                 | "Stdlib.Atomic.decr" ) -> (
                 match atomic_key ctx args with
                 | Some k -> ctx.atomic_rmw <- k :: ctx.atomic_rmw
                 | None -> ())
             | Some "Stdlib.ignore" -> (
                 match plain_args args with
                 | [ a ] when faa_unit_delta a ->
                     report ctx Finding.R6_faa_discard e.exp_loc
                       "ignore fetch_and_add"
                       "fetch_and_add result discarded: use \
                        Atomic.incr/decr (same RMW, clearer intent), or \
                        annotate [@lint.allow \"r6-faa-discard reason\"] \
                        if only the ordering matters"
                 | _ -> ())
             | Some ":=" | Some "Stdlib.:=" -> (
                 match plain_args args with
                 | [ _; v ] when ctx.held = [] && is_atomic_expr v ->
                     report ctx Finding.R6_atomic_publish e.exp_loc
                       "publish :="
                       "Atomic.t published through a non-atomic ref with \
                        no lock held: another domain can observe the ref \
                        before the atomic's initialization; publish under \
                        a lock / through an Atomic, or annotate \
                        [@lint.allow \"r6-atomic-publish reason\"]"
                 | _ -> ())
             | Some "Stdlib.Fun.protect" ->
                 if
                   List.exists
                     (fun (lbl, a) ->
                       lbl = Asttypes.Labelled "finally"
                       &&
                       match a with
                       | Some a -> expr_mentions_path "Stdlib.Mutex.unlock" a
                       | None -> false)
                     args
                 then ctx.mutex_protected <- true
             | _ -> ());
          (* lock acquisitions: Mutex.protect and inferred wrappers *)
          let acquisition =
            if not ctx.conc_active then None
            else
              match fname with
              | Some "Stdlib.Mutex.protect" -> (
                  match plain_args args with
                  | m :: _ -> Some (lock_of ctx m)
                  | [] -> None)
              | _ -> (
                  match f.exp_desc with
                  | Texp_ident (Path.Pident id, _, _) -> (
                      match Hashtbl.find_opt ctx.wrappers id with
                      | Some spec -> wrapper_lock ctx spec args
                      | None -> None)
                  | _ -> None)
          in
          match acquisition with
          | Some lk ->
              acquire ctx e.exp_loc lk;
              self.Tast_iterator.expr self f;
              List.iter
                (fun (_, a) ->
                  match a with
                  | Some a -> (
                      match a.exp_desc with
                      | Texp_function _ ->
                          with_held self [ lk ] (fun self ->
                              self.Tast_iterator.expr self a)
                      | _ -> self.Tast_iterator.expr self a)
                  | None -> ())
                args;
              true
          | None -> false)
      | _ -> false
    in
    if not handled then default.expr self e;
    ctx.sup <- saved_sup;
    ctx.static <- saved_static
  in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun self p ->
    (match p.pat_desc with
    | Tpat_constant (Asttypes.Const_float lit) ->
        report ctx Finding.R2_float_compare p.pat_loc ("pattern " ^ lit)
          (Printf.sprintf
             "float literal pattern %s matches by structural equality \
              (NaN/-0.0 hazards); compare explicitly"
             lit)
    | _ -> ());
    default.pat self p
  in
  let finish_binding () =
    (* R6: a get and a set of the same atomic in one binding without a
       CAS-family op on it is a lost-update window *)
    List.iter
      (fun (k, loc, sup, unlocked) ->
        if
          unlocked
          && List.exists (fun (k', _) -> k' = k) ctx.atomic_gets
          && not (List.mem k ctx.atomic_rmw)
        then
          report ~sup ctx Finding.R6_atomic_rmw loc ("get->set " ^ k)
            (Printf.sprintf
               "non-CAS read-modify-write on atomic `%s`: the value read \
                by Atomic.get can be overwritten between the get and this \
                Atomic.set (lost update); use \
                compare_and_set/exchange/fetch_and_add, or annotate \
                [@lint.allow \"r6-atomic-rmw reason\"]"
               k))
      ctx.atomic_sets;
    (* R3: exception-unsafe Mutex.lock, binding-granular like v1 *)
    if ctx.r3_active && ctx.mutex_locks <> [] && not ctx.mutex_protected then
      List.iter
        (fun loc ->
          report ctx Finding.R3_mutex_unsafe loc "Mutex.lock"
            "Mutex.lock whose unlock is not exception-safe: wrap the \
             critical section in Fun.protect ~finally:(fun () -> \
             Mutex.unlock ...) or use Mutex.protect")
        (List.rev ctx.mutex_locks);
    ctx.atomic_gets <- [];
    ctx.atomic_sets <- [];
    ctx.atomic_rmw <- [];
    ctx.mutex_locks <- [];
    ctx.mutex_protected <- false
  in
  let structure_item self item =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let saved_sup = ctx.sup and saved_binding = ctx.binding in
            ctx.sup <- Suppress.of_attributes vb.vb_attributes ctx.sup;
            (match binding_ident vb.vb_pat with
            | Some (_, n) -> ctx.binding <- n
            | None -> ());
            if ctx.static && ctx.r3_active then begin
              match state_maker vb.vb_expr with
              | Some maker ->
                  report ctx Finding.R3_top_mutable vb.vb_pat.pat_loc
                    (Printf.sprintf "%s=%s" ctx.binding maker)
                    (Printf.sprintf
                       "top-level mutable state (`%s` via %s) reachable \
                        from parallel workers: use Atomic/Mutex/Domain.DLS \
                        or annotate [@@lint.guarded_by \"mutex\"]"
                       ctx.binding maker)
              | None -> ()
            end;
            self.Tast_iterator.pat self vb.vb_pat;
            self.Tast_iterator.expr self vb.vb_expr;
            finish_binding ();
            ctx.sup <- saved_sup;
            ctx.binding <- saved_binding)
          vbs
    | _ -> default.structure_item self item
  in
  let structure self str =
    (* floating [@@@lint.*] attributes scope over the rest of the file
       (or of the enclosing module) *)
    let saved = ctx.sup in
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_attribute a -> ctx.sup <- Suppress.add a ctx.sup
        | _ -> self.Tast_iterator.structure_item self item)
      str.str_items;
    ctx.sup <- saved
  in
  { default with expr; pat; structure_item; structure }

let check ~file ~unit_display (tstr : structure) : result_ =
  let ctx =
    {
      file;
      unit_display;
      r1_active = Policy.r1_scope file;
      r3_active = Policy.r3_scope file;
      conc_active = Policy.conc_scope file;
      binding = "";
      sup = Suppress.empty;
      static = true;
      held = [];
      in_handler = false;
      toplevels = Hashtbl.create 64;
      guards_by_ident = Hashtbl.create 8;
      field_guards = Hashtbl.create 8;
      wrappers = Hashtbl.create 8;
      atomic_gets = [];
      atomic_sets = [];
      atomic_rmw = [];
      mutex_locks = [];
      mutex_protected = false;
      findings = [];
      edges = [];
      guard_decls = [];
      ext = [];
    }
  in
  register_structure ctx ctx.unit_display tstr;
  register_wrappers ctx tstr;
  let it = make_iterator ctx in
  it.Tast_iterator.structure it tstr;
  {
    findings = List.sort Finding.compare_loc ctx.findings;
    edges = List.rev ctx.edges;
    guards = ctx.guard_decls;
    ext = List.rev ctx.ext;
  }
