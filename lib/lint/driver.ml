(* File discovery + parsing front-end.  Parsing uses the installed
   compiler's own parser (compiler-libs), so the linter accepts exactly
   the syntax the build accepts; a file that fails to parse yields a P1
   parse-failure finding rather than being skipped silently. *)

let parse_failure ~path msg =
  {
    Finding.rule = Finding.Parse_failure;
    file = path;
    line = 1;
    col = 0;
    binding = "";
    detail = "parse";
    message = "could not parse file: " ^ msg;
  }

let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Rules.check ~file:path ast
  | exception e ->
      let msg =
        match Location.error_of_exn e with
        | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
        | _ -> Printexc.to_string e
      in
      [ parse_failure ~path (String.trim msg) ]

let lint_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> lint_source ~path source
  | exception Sys_error msg -> [ parse_failure ~path msg ]

(* every .ml under the roots, skipping _build/.git/other tool dirs *)
let collect_ml_files roots =
  let skip_dir name =
    String.length name > 0 && (name.[0] = '_' || name.[0] = '.')
  in
  let rec go acc path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort compare
      |> List.fold_left
           (fun acc name ->
             if skip_dir name then acc
             else go acc (Filename.concat path name))
           acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.rev (List.fold_left go [] roots)

let lint_paths paths =
  List.concat_map
    (fun p ->
      if Sys.file_exists p && Sys.is_directory p then
        List.concat_map lint_file (collect_ml_files [ p ])
      else lint_file p)
    paths
  |> List.sort Finding.compare_loc
