(* File discovery + the run pipeline.

   v2 pipeline per file: read source (plain IO, parallel-safe) ->
   typecheck + rules walk (serialized inside Typing.with_typer:
   compiler-libs is not domain-safe) -> per-file findings and
   cross-file facts.  After all files: [finalize] matches guarded
   accesses to foreign globals against every file's
   [@@lint.guarded_by] declarations and folds the per-file
   lock-acquisition edges into a global lock-order graph, reporting
   each cycle (deadlock risk) once.

   The Domain-worker mode ([run ~workers]) overlaps file IO and report
   assembly with the serialized typer section and records per-file
   wall-clock; with the typer dominating, the win is bounded (Amdahl) —
   the per-file timings in the JSONL report make that visible rather
   than hiding it.

   A file that fails to parse or typecheck yields a P1 finding rather
   than being skipped silently (type-failure usually means the tree was
   not built first). *)

type file_entry = {
  fe_path : string;
  fe_findings : Finding.t list;
  fe_edges : Rules.edge list;
  fe_guards : Rules.guard_decl list;
  fe_ext : Rules.ext_access list;
  fe_wall_s : float;
}

type report = {
  findings : Finding.t list;
  per_file : (string * float) list;  (* path, lint wall-clock seconds *)
}

let failure_finding ~path (e : Typing.error) =
  let rule, detail, what =
    match e.kind with
    | Typing.Parse_error -> (Finding.Parse_failure, "parse", "parse")
    | Typing.Type_error -> (Finding.Type_failure, "typecheck", "typecheck")
  in
  {
    Finding.rule;
    file = path;
    line = e.line;
    col = 0;
    binding = "";
    detail;
    message = Printf.sprintf "could not %s file: %s" what e.msg;
  }

let process_source ~path source =
  Typing.with_typer (fun () ->
      match Typing.typecheck ~path source with
      | Ok (tstr, info) ->
          let unit_display = Rules.strip_mangle info.unit_name in
          let r = Rules.check ~file:path ~unit_display tstr in
          {
            fe_path = path;
            fe_findings = r.Rules.findings;
            fe_edges = r.Rules.edges;
            fe_guards = r.Rules.guards;
            fe_ext = r.Rules.ext;
            fe_wall_s = 0.;
          }
      | Error e ->
          {
            fe_path = path;
            fe_findings = [ failure_finding ~path e ];
            fe_edges = [];
            fe_guards = [];
            fe_ext = [];
            fe_wall_s = 0.;
          })

(* ----- cross-file analysis ----- *)

let io_error_entry ~path msg =
  {
    fe_path = path;
    fe_findings =
      [
        failure_finding ~path
          { Typing.kind = Typing.Parse_error; msg; line = 1 };
      ];
    fe_edges = [];
    fe_guards = [];
    fe_ext = [];
    fe_wall_s = 0.;
  }

(* Tarjan SCC over the lock graph; every SCC of size > 1, and every
   self-edge, is a lock-order cycle. *)
let strongly_connected nodes succs =
  let index = Hashtbl.create 16 in
  let low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  !sccs

let cycle_findings entries =
  let edges =
    List.concat_map (fun en -> en.fe_edges) entries
    |> List.filter (fun (e : Rules.edge) ->
           e.Rules.e_from <> "?" && e.Rules.e_to <> "?")
  in
  let nodes =
    List.concat_map (fun (e : Rules.edge) -> [ e.Rules.e_from; e.Rules.e_to ]) edges
    |> List.sort_uniq compare
  in
  let succs v =
    List.filter_map
      (fun (e : Rules.edge) ->
        if e.Rules.e_from = v then Some e.Rules.e_to else None)
      edges
    |> List.sort_uniq compare
  in
  let sccs = strongly_connected nodes succs in
  let cyclic =
    List.filter_map
      (fun scc ->
        match scc with
        | [ v ] ->
            if
              List.exists
                (fun (e : Rules.edge) ->
                  e.Rules.e_from = v && e.Rules.e_to = v)
                edges
            then Some [ v ]
            else None
        | _ :: _ :: _ -> Some (List.sort compare scc)
        | [] -> None)
      sccs
  in
  List.map
    (fun cycle ->
      let members = List.sort_uniq compare cycle in
      let in_cycle e =
        List.mem e.Rules.e_from members && List.mem e.Rules.e_to members
      in
      let cycle_edges =
        List.filter in_cycle edges
        |> List.sort (fun (a : Rules.edge) b ->
               compare
                 (a.Rules.e_file, a.Rules.e_line, a.Rules.e_col)
                 (b.Rules.e_file, b.Rules.e_line, b.Rules.e_col))
      in
      let rep = List.hd cycle_edges in
      let detail = "cycle:" ^ String.concat "->" members in
      let sites =
        List.map
          (fun (e : Rules.edge) ->
            Printf.sprintf "%s->%s at %s:%d" e.Rules.e_from e.Rules.e_to
              e.Rules.e_file e.Rules.e_line)
          cycle_edges
        |> String.concat "; "
      in
      {
        Finding.rule = Finding.R5_lock_order;
        file = rep.Rules.e_file;
        line = rep.Rules.e_line;
        col = rep.Rules.e_col;
        binding = rep.Rules.e_binding;
        detail;
        message =
          Printf.sprintf
            "lock-acquisition-order cycle between {%s} (deadlock risk): \
             %s; pick one acquisition order and annotate the deliberate \
             exception with [@lint.allow \"r5-lock-order reason\"]"
            (String.concat ", " members)
            sites;
      })
    cyclic

let cross_guard_findings entries =
  let guards = Hashtbl.create 16 in
  List.iter
    (fun en ->
      List.iter
        (fun (g : Rules.guard_decl) ->
          Hashtbl.replace guards g.Rules.g_canon g.Rules.g_guard)
        en.fe_guards)
    entries;
  List.concat_map
    (fun en ->
      List.filter_map
        (fun (x : Rules.ext_access) ->
          match Hashtbl.find_opt guards x.Rules.x_canon with
          | Some g
            when (not (Rules.held_satisfies g x.Rules.x_held))
                 && Policy.allowlisted ~file:x.Rules.x_file
                      ~rule_id:"r5-guarded-by"
                    = None ->
              Some
                {
                  Finding.rule = Finding.R5_guarded_by;
                  file = x.Rules.x_file;
                  line = x.Rules.x_line;
                  col = x.Rules.x_col;
                  binding = x.Rules.x_binding;
                  detail =
                    Rules.last_segment x.Rules.x_canon ^ " guard=" ^ g;
                  message =
                    Printf.sprintf
                      "access to `%s` outside its declared lock `%s` \
                       ([@@lint.guarded_by] in the defining module): take \
                       the lock around this access, or annotate \
                       [@lint.allow \"r5-guarded-by reason\"]"
                      x.Rules.x_display g;
                }
          | _ -> None)
        en.fe_ext)
    entries

let finalize entries =
  let per_file =
    List.map (fun en -> (en.fe_path, en.fe_wall_s)) entries
    |> List.sort compare
  in
  let findings =
    List.concat_map (fun en -> en.fe_findings) entries
    @ cross_guard_findings entries
    @ cycle_findings entries
    |> List.sort Finding.compare_loc
  in
  { findings; per_file }

(* ----- entry points ----- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* every .ml under the roots, skipping _build/.git/other tool dirs *)
let collect_ml_files roots =
  let skip_dir name =
    String.length name > 0 && (name.[0] = '_' || name.[0] = '.')
  in
  let rec go acc path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort compare
      |> List.fold_left
           (fun acc name ->
             if skip_dir name then acc
             else go acc (Filename.concat path name))
           acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.rev (List.fold_left go [] roots)

let expand_paths paths =
  List.concat_map
    (fun p ->
      if Sys.file_exists p && Sys.is_directory p then collect_ml_files [ p ]
      else [ p ])
    paths

let process_file path =
  let t0 = Nncs_obs.Clock.monotonic_s () in
  let entry =
    match read_file path with
    | source -> process_source ~path source
    | exception Sys_error msg -> io_error_entry ~path msg
  in
  { entry with fe_wall_s = Nncs_obs.Clock.monotonic_s () -. t0 }

let run ?(workers = 1) paths =
  let files = Array.of_list (expand_paths paths) in
  let n = Array.length files in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* ticket frontier: each worker claims the next unprocessed index;
     [results] cells are disjoint per ticket, so no lock is needed, and
     the Domain.join below publishes them to this domain *)
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (process_file files.(i));
        loop ()
      end
    in
    loop ()
  in
  let w = max 1 (min workers (max 1 n)) in
  if w = 1 then worker ()
  else begin
    let doms = List.init (w - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join doms
  end;
  finalize (Array.to_list results |> List.filter_map Fun.id)

(* single-source compatibility entry points (tests, tooling) *)

let lint_source ~path source =
  (finalize [ process_source ~path source ]).findings

(* lint in-memory sources as one tree: cross-module guard checks and
   the lock-order graph span all of them (the test gate uses this to
   lint the copied lib/ + bin/ sources under their repo paths) *)
let lint_sources pairs =
  (finalize (List.map (fun (path, source) -> process_source ~path source) pairs))
    .findings

let lint_file path = (finalize [ process_file path ]).findings

let lint_paths paths = (run ~workers:1 paths).findings
