(* Repo policy for the lint rules: which directories are
   soundness-critical, what counts as bare float arithmetic, which
   modules hold abstract types, and the per-file allowlist.

   Since the typedtree rewrite the identifier sets below are *resolved*
   paths (what Path.name prints after typechecking), not surface
   syntax: a file-local [sqrt] shadows the libm one in the typer itself,
   so no shadowing heuristics are needed.

   The allowlist is the coarse suppression tool: a whole (file, rule)
   pair is waived with a recorded reason.  Prefer the finer-grained
   [@lint.fp_exact]/[@lint.allow] attributes when only a few sites in a
   file are intentional; prefer the baseline for findings that should
   eventually be fixed. *)

(* R1 applies only where a bare rounding error can corrupt an
   enclosure.  lib/nn, lib/linalg, lib/acasxu are concrete-math
   (training, simulation sampling) by design. *)
let r1_dirs =
  [ "lib/interval"; "lib/ode"; "lib/nnabs"; "lib/affine"; "lib/core" ]

(* R3 applies to every library reachable from the Domain.spawn workers
   in Verify.verify_partition — approximated as all of lib/.  bin/ is
   excluded: Arg/Cmdliner option refs at executable toplevel are
   main-domain-only by construction. *)
let r3_dirs = [ "lib" ]

(* The concurrency protocols (R5 lock discipline, R6 atomics, R7
   fiber/effect safety) also cover the executables: nncs_serve spawns
   dispatcher domains from bin/. *)
let conc_dirs = [ "lib"; "bin" ]

(* ----- resolved-path identifier sets ----- *)

let bare_float_ops = [ "+."; "-."; "*."; "/."; "**" ]

let bare_float_funs =
  [
    "sqrt"; "exp"; "log"; "log10"; "log1p"; "expm1"; "sin"; "cos"; "tan";
    "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "hypot";
    "cbrt"; "mod_float"; "ldexp"; "frexp";
  ]

(* Float.* entries that perform a rounding operation.  Exact queries
   and NaN-correct selections (is_nan, abs, min, max, neg, ...) are
   deliberately absent. *)
let float_module_rounding =
  [
    "add"; "sub"; "mul"; "div"; "pow"; "rem"; "sqrt"; "exp"; "exp2";
    "log"; "log10"; "log2"; "log1p"; "expm1"; "sin"; "cos"; "tan";
    "asin"; "acos"; "atan"; "atan2"; "sinh"; "cosh"; "tanh"; "hypot";
    "cbrt"; "fma"; "of_string";
  ]

(* resolved path -> display name for R1, e.g. "Stdlib.+." -> "+.",
   "Stdlib.Float.add" -> "Float.add" *)
let bare_float_paths : (string, string) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter (fun op -> Hashtbl.replace t ("Stdlib." ^ op) op) bare_float_ops;
  List.iter (fun f -> Hashtbl.replace t ("Stdlib." ^ f) f) bare_float_funs;
  List.iter
    (fun f -> Hashtbl.replace t ("Stdlib.Float." ^ f) ("Float." ^ f))
    float_module_rounding;
  t

let poly_eq_paths = [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare" ]
let poly_minmax_paths = [ "Stdlib.min"; "Stdlib.max" ]

(* Modules whose principal type is abstract (or whose structural
   equality is documented as meaningless): comparing their values with
   polymorphic =/compare is R4.  Matched against the owning module of
   the operand's resolved type constructor, with dune unit mangling
   stripped ("Nncs_interval__Box.t" owns "Box"). *)
let abstract_modules =
  [
    "Network"; "Symstate"; "Symset"; "System"; "Controller"; "Box";
    "Interval"; "Interval_matrix"; "Affine_form"; "Expr"; "Ode"; "Cache";
  ]

(* Constructors of shared mutable state (R3), as resolved paths ... *)
let mutable_makers =
  [
    "Stdlib.ref"; "Stdlib.Hashtbl.create"; "Stdlib.Array.make";
    "Stdlib.Array.init"; "Stdlib.Array.copy"; "Stdlib.Array.create_float";
    "Stdlib.Array.make_matrix"; "Stdlib.Buffer.create";
    "Stdlib.Queue.create"; "Stdlib.Stack.create"; "Stdlib.Bytes.create";
    "Stdlib.Bytes.make"; "Stdlib.Bytes.copy"; "Stdlib.Weak.create";
  ]

(* ... and the domain-safe ones that exempt a binding. *)
let safe_makers =
  [
    "Stdlib.Atomic.make"; "Stdlib.Mutex.create"; "Stdlib.Condition.create";
    "Stdlib.Semaphore.Counting.make"; "Stdlib.Semaphore.Binary.make";
    "Stdlib.Domain.DLS.new_key";
  ]

(* Type constructors that make a top-level binding shared mutable state
   even when the maker is hidden behind a function call (typed R3), and
   that mark a global as a candidate for cross-module [@@lint.guarded_by]
   checking (R5).  Display names with the Stdlib prefix stripped (type
   paths normalize to defining units like Stdlib__Hashtbl). *)
let mutable_type_heads =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "Bytes.t"; "array" ]

(* ----- per-file allowlist ----- *)

type allow_entry = {
  path_suffix : string;  (* matched against the end of the file path *)
  rules : string list;   (* rule ids or family prefixes ("r1") *)
  reason : string;
}

let rule_matches pattern rule_id =
  pattern = rule_id || String.starts_with ~prefix:(pattern ^ "-") rule_id

(* The per-file allowlist.  Every entry must carry a reason that a
   reviewer can check against the file's own comments. *)
let allowlist : allow_entry list =
  [
    {
      path_suffix = "lib/nnabs/symbolic_prop.ml";
      rules = [ "r1" ];
      reason =
        "the symbolic transformer computes coefficients in float and \
         accounts for its own rounding with dedicated error terms \
         (accum_err / round_err), per DESIGN.md; routing every op \
         through Rounding would double the cost for no soundness gain";
    };
    {
      path_suffix = "lib/nnabs/affine_prop.ml";
      rules = [ "r1" ];
      reason =
        "the affine transformer tracks the rounding error of its own \
         coefficient arithmetic in noise symbols, like Symbolic_prop";
    };
    {
      path_suffix = "lib/affine/affine_form.ml";
      rules = [ "r1" ];
      reason =
        "affine forms carry rounding error in their own error symbol; \
         each operation widens it by the computed ulp bounds";
    };
    {
      path_suffix = "lib/nnabs/robustness.ml";
      rules = [ "r1" ];
      reason =
        "robustness radii are diagnostics (search heuristics), not \
         enclosure bounds";
    };
    {
      path_suffix = "lib/core/partition.ml";
      rules = [ "r1" ];
      reason =
        "partitioning only chooses where to cut the initial set; any \
         float drift moves cell borders but every cell is still \
         verified from its exact stored bounds";
    };
    {
      path_suffix = "lib/core/concrete.ml";
      rules = [ "r1" ];
      reason =
        "concrete simulation is the falsification/test oracle, not an \
         enclosure; it deliberately runs plain float math";
    };
  ]

let allowlisted ~file ~rule_id =
  List.find_map
    (fun e ->
      if
        String.ends_with ~suffix:e.path_suffix file
        && List.exists (fun p -> rule_matches p rule_id) e.rules
      then Some e.reason
      else None)
    allowlist

let in_dirs dirs file =
  List.exists (fun d -> String.starts_with ~prefix:(d ^ "/") file) dirs

let r1_scope file = in_dirs r1_dirs file
let r3_scope file = in_dirs r3_dirs file
let conc_scope file = in_dirs conc_dirs file
