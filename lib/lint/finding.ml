type rule =
  | R1_bare_float
  | R2_float_compare
  | R3_top_mutable
  | R3_mutex_unsafe
  | R4_poly_compare
  | Parse_failure

type severity = P1 | P2

let rule_id = function
  | R1_bare_float -> "r1-bare-float"
  | R2_float_compare -> "r2-float-compare"
  | R3_top_mutable -> "r3-top-mutable"
  | R3_mutex_unsafe -> "r3-mutex-unsafe"
  | R4_poly_compare -> "r4-poly-compare"
  | Parse_failure -> "parse-failure"

let all_rule_ids =
  [
    "r1-bare-float";
    "r2-float-compare";
    "r3-top-mutable";
    "r3-mutex-unsafe";
    "r4-poly-compare";
    "parse-failure";
  ]

(* Soundness (R1) and concurrency (R3) defects make verdicts wrong or
   runs racy: P1, gating.  Comparison hazards (R2/R4) are usually
   latent: P2, advisory unless --strict. *)
let severity = function
  | R1_bare_float | R3_top_mutable | R3_mutex_unsafe | Parse_failure -> P1
  | R2_float_compare | R4_poly_compare -> P2

let severity_id = function P1 -> "P1" | P2 -> "P2"

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  binding : string;  (* enclosing top-level binding, "" at toplevel *)
  detail : string;   (* the operator / identifier / binding flagged *)
  message : string;
}

(* The baseline key deliberately omits line/column so findings survive
   unrelated edits above them; occurrences of the same (rule, file,
   binding, detail) are budgeted by count instead. *)
let key f =
  String.concat "|" [ rule_id f.rule; f.file; f.binding; f.detail ]

let compare_loc a b =
  Stdlib.compare
    (a.file, a.line, a.col, rule_id a.rule, a.detail)
    (b.file, b.line, b.col, rule_id b.rule, b.detail)

let to_string f =
  Printf.sprintf "%s:%d:%d [%s/%s] %s%s" f.file f.line f.col (rule_id f.rule)
    (severity_id (severity f.rule))
    f.message
    (if f.binding = "" then "" else Printf.sprintf " (in `%s`)" f.binding)

let to_json ?status f =
  let base =
    [
      ("t", Nncs_obs.Json.Str "finding");
      ("rule", Nncs_obs.Json.Str (rule_id f.rule));
      ("severity", Nncs_obs.Json.Str (severity_id (severity f.rule)));
      ("file", Nncs_obs.Json.Str f.file);
      ("line", Nncs_obs.Json.Num (float_of_int f.line));
      ("col", Nncs_obs.Json.Num (float_of_int f.col));
      ("binding", Nncs_obs.Json.Str f.binding);
      ("detail", Nncs_obs.Json.Str f.detail);
      ("message", Nncs_obs.Json.Str f.message);
      ("key", Nncs_obs.Json.Str (key f));
    ]
  in
  let extra =
    match status with
    | None -> []
    | Some s -> [ ("status", Nncs_obs.Json.Str s) ]
  in
  Nncs_obs.Json.Obj (base @ extra)
