type rule =
  | R1_bare_float
  | R2_float_compare
  | R3_top_mutable
  | R3_mutex_unsafe
  | R4_poly_compare
  | R5_guarded_by
  | R5_lock_order
  | R6_atomic_rmw
  | R6_atomic_publish
  | R6_faa_discard
  | R7_perform_under_lock
  | R7_dls_in_handler
  | Parse_failure
  | Type_failure

type severity = P1 | P2

let rule_id = function
  | R1_bare_float -> "r1-bare-float"
  | R2_float_compare -> "r2-float-compare"
  | R3_top_mutable -> "r3-top-mutable"
  | R3_mutex_unsafe -> "r3-mutex-unsafe"
  | R4_poly_compare -> "r4-poly-compare"
  | R5_guarded_by -> "r5-guarded-by"
  | R5_lock_order -> "r5-lock-order"
  | R6_atomic_rmw -> "r6-atomic-rmw"
  | R6_atomic_publish -> "r6-atomic-publish"
  | R6_faa_discard -> "r6-faa-discard"
  | R7_perform_under_lock -> "r7-perform-under-lock"
  | R7_dls_in_handler -> "r7-dls-in-handler"
  | Parse_failure -> "parse-failure"
  | Type_failure -> "type-failure"

let all_rule_ids =
  [
    "r1-bare-float";
    "r2-float-compare";
    "r3-top-mutable";
    "r3-mutex-unsafe";
    "r4-poly-compare";
    "r5-guarded-by";
    "r5-lock-order";
    "r6-atomic-rmw";
    "r6-atomic-publish";
    "r6-faa-discard";
    "r7-perform-under-lock";
    "r7-dls-in-handler";
    "parse-failure";
    "type-failure";
  ]

(* Soundness (R1) and concurrency defects that corrupt state or deadlock
   (R3, R5, the atomic lost-update window, perform-under-lock) make
   verdicts wrong or hang runs: P1, gating.  Comparison hazards (R2/R4)
   and the advisory atomic/DLS protocols are usually latent: P2,
   advisory unless --strict. *)
let severity = function
  | R1_bare_float | R3_top_mutable | R3_mutex_unsafe | R5_guarded_by
  | R5_lock_order | R6_atomic_rmw | R7_perform_under_lock | Parse_failure
  | Type_failure ->
      P1
  | R2_float_compare | R4_poly_compare | R6_atomic_publish | R6_faa_discard
  | R7_dls_in_handler ->
      P2

let severity_id = function P1 -> "P1" | P2 -> "P2"

let family = function
  | R1_bare_float -> "r1"
  | R2_float_compare -> "r2"
  | R3_top_mutable | R3_mutex_unsafe -> "r3"
  | R4_poly_compare -> "r4"
  | R5_guarded_by | R5_lock_order -> "r5"
  | R6_atomic_rmw | R6_atomic_publish | R6_faa_discard -> "r6"
  | R7_perform_under_lock | R7_dls_in_handler -> "r7"
  | Parse_failure -> "parse-failure"
  | Type_failure -> "type-failure"

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  binding : string;  (* enclosing top-level binding, "" at toplevel *)
  detail : string;   (* the operator / identifier / binding flagged *)
  message : string;
}

(* The baseline key deliberately omits line/column so findings survive
   unrelated edits above them; occurrences of the same (rule, file,
   binding, detail) are budgeted by count instead. *)
let key f =
  String.concat "|" [ rule_id f.rule; f.file; f.binding; f.detail ]

let compare_loc a b =
  Stdlib.compare
    (a.file, a.line, a.col, rule_id a.rule, a.detail)
    (b.file, b.line, b.col, rule_id b.rule, b.detail)

let to_string f =
  Printf.sprintf "%s:%d:%d [%s/%s] %s%s" f.file f.line f.col (rule_id f.rule)
    (severity_id (severity f.rule))
    f.message
    (if f.binding = "" then "" else Printf.sprintf " (in `%s`)" f.binding)

let to_json ?status f =
  let base =
    [
      ("t", Nncs_obs.Json.Str "finding");
      ("rule", Nncs_obs.Json.Str (rule_id f.rule));
      ("severity", Nncs_obs.Json.Str (severity_id (severity f.rule)));
      ("file", Nncs_obs.Json.Str f.file);
      ("line", Nncs_obs.Json.Num (float_of_int f.line));
      ("col", Nncs_obs.Json.Num (float_of_int f.col));
      ("binding", Nncs_obs.Json.Str f.binding);
      ("detail", Nncs_obs.Json.Str f.detail);
      ("message", Nncs_obs.Json.Str f.message);
      ("key", Nncs_obs.Json.Str (key f));
    ]
  in
  let extra =
    match status with
    | None -> []
    | Some s -> [ ("status", Nncs_obs.Json.Str s) ]
  in
  Nncs_obs.Json.Obj (base @ extra)
