(* The checked-in baseline: a budget of known findings per key.  A run
   compares its findings against the budget — the first [count]
   occurrences of a key are "baselined" (warn), any excess is "new"
   (fails CI for P1 rules).  Keys the tree no longer produces are
   reported as stale so the baseline shrinks over time instead of
   fossilizing. *)

module Json = Nncs_obs.Json

type entry = { key : string; count : int; reason : string }

let version = 1.0

let load path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string s with
  | Json.Obj _ as j ->
      let entries =
        match Json.member "entries" j with
        | Some (Json.List es) -> es
        | _ -> raise (Json.Parse_error "baseline: missing entries list")
      in
      List.map
        (fun e ->
          {
            key =
              (match Json.member "key" e with
              | Some (Json.Str k) -> k
              | _ -> raise (Json.Parse_error "baseline: entry without key"));
            count =
              (match Json.member "count" e with
              | Some n -> Json.to_int n
              | None -> 1);
            reason =
              (match Json.member "reason" e with
              | Some (Json.Str r) -> r
              | _ -> "");
          })
        entries
  | _ -> raise (Json.Parse_error "baseline: expected an object")

let entry_to_json e =
  Json.Obj
    [
      ("key", Json.Str e.key);
      ("count", Json.Num (float_of_int e.count));
      ("reason", Json.Str e.reason);
    ]

let save path entries =
  let sorted = List.sort (fun a b -> compare a.key b.key) entries in
  let j =
    Json.Obj
      [
        ("version", Json.Num version);
        ("tool", Json.Str "nncs_lint");
        ("entries", Json.List (List.map entry_to_json sorted));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* one entry per line keeps diffs reviewable *)
      output_string oc "{\n";
      output_string oc
        (Printf.sprintf "\"version\": %.0f,\n\"tool\": \"nncs_lint\",\n"
           version);
      output_string oc "\"entries\": [\n";
      List.iteri
        (fun i e ->
          if i > 0 then output_string oc ",\n";
          output_string oc (Json.to_string (entry_to_json e)))
        sorted;
      output_string oc "\n]}\n";
      ignore j)

type status = New | Baselined of string

(* Pair each finding (in location order) with its status, consuming the
   per-key budget first-come-first-served; return leftover budget as
   stale entries. *)
let apply entries findings =
  let budget = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cur =
        match Hashtbl.find_opt budget e.key with
        | Some (c, _) -> c
        | None -> 0
      in
      Hashtbl.replace budget e.key (cur + e.count, e.reason))
    entries;
  let classified =
    List.map
      (fun f ->
        let k = Finding.key f in
        match Hashtbl.find_opt budget k with
        | Some (c, reason) when c > 0 ->
            Hashtbl.replace budget k (c - 1, reason);
            (f, Baselined reason)
        | _ -> (f, New))
      (List.sort Finding.compare_loc findings)
  in
  let stale =
    Hashtbl.fold
      (fun key (c, reason) acc ->
        if c > 0 then { key; count = c; reason } :: acc else acc)
      budget []
    |> List.sort (fun a b -> compare a.key b.key)
  in
  (classified, stale)

(* ----- stale-entry classification -----

   [apply] reports leftover budget as stale, but "stale" has two very
   different flavors for a reviewer: the finding was fixed in place
   (remove the entry), or the whole file was deleted/renamed (the entry
   can never match again and silently lingers until someone runs
   --update-baseline).  Classify by checking whether the file a key
   points at still exists. *)

(* baseline keys are rule|file|binding|detail (Finding.key) *)
let file_of_key key =
  match String.split_on_char '|' key with
  | _ :: file :: _ -> file
  | _ -> ""

type stale_kind = Unmatched | Missing_file

let classify_stale ?(file_exists = Sys.file_exists) stale =
  List.map
    (fun e ->
      let f = file_of_key e.key in
      if f <> "" && not (file_exists f) then (e, Missing_file)
      else (e, Unmatched))
    stale

(* shrink [entries] by the stale leftover reported by [apply]: budget
   the tree no longer uses is dropped, partially-consumed entries keep
   the consumed part *)
let prune entries stale =
  let leftover = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt leftover e.key) in
      Hashtbl.replace leftover e.key (cur + e.count))
    stale;
  List.filter_map
    (fun e ->
      match Hashtbl.find_opt leftover e.key with
      | None -> Some e
      | Some l ->
          let keep = max 0 (e.count - l) in
          Hashtbl.replace leftover e.key (max 0 (l - e.count));
          if keep = 0 then None else Some { e with count = keep })
    entries

(* Build a fresh baseline from the current findings, keeping reasons
   from a previous baseline where keys persist. *)
let of_findings ?(previous = []) findings =
  let reasons = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace reasons e.key e.reason) previous;
  let counts = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let k = Finding.key f in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    findings;
  Hashtbl.fold
    (fun key count acc ->
      let reason =
        match Hashtbl.find_opt reasons key with
        | Some r when r <> "" -> r
        | _ -> "TODO: justify or fix"
      in
      { key; count; reason } :: acc)
    counts []
  |> List.sort (fun a b -> compare a.key b.key)
