(* The typedtree front-end: compile each .ml through compiler-libs with
   the project's include paths, replicating dune's unit naming, so the
   rules see resolved paths and principal types instead of surface
   syntax.

   How a file is placed in the build:

   - The repo root is the nearest ancestor of the cwd containing
     `dune-project`.  Run from a checkout that is the source root; run
     from `_build/default/test` (the test harness) it is the build root
     itself — both layouts carry the `dune` files this module reads.
   - Include paths are every `.objs/byte` / `.eobjs/byte` directory
     under the build root (dune's per-library and per-executable cmi
     dirs), plus the stdlib's unix/threads/compiler-libs subdirs and the
     opam-installed cmdliner/fmt used by bin/.  The tree must have been
     built (`dune build`) or typechecking reports missing-cmi failures.
   - Unit naming replicates dune: a file `lib/foo/bar.ml` in a library
     `(name nncs_foo)` typechecks as unit `Nncs_foo__Bar` with
     `-open Nncs_foo` (the generated alias module), so sibling modules
     resolve exactly as in the real build; `bin/baz.ml` typechecks as
     `Dune__exe__Baz`.

   CONCURRENCY: compiler-libs is a thicket of global mutable state
   (Load_path, Env caches, type-variable levels, abbreviation memos) and
   is NOT domain-safe.  Every entry point that touches it must run
   inside [with_typer], which serializes on [typer_mutex].  The parallel
   driver overlaps file IO and report assembly with the typer section;
   the typecheck+walk itself is the serialized critical region. *)

type unit_info = { unit_name : string; opens : string list }

type error_kind = Parse_error | Type_error
type error = { kind : error_kind; msg : string; line : int }

let typer_mutex = Mutex.create ()
let with_typer f = Mutex.protect typer_mutex f

(* ----- repo layout discovery ----- *)

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

(* every dune cmi dir under [dir]: .objs/byte and .eobjs/byte *)
let rec collect_obj_dirs acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc name ->
          let p = Filename.concat dir name in
          if (not (Sys.file_exists p)) || not (Sys.is_directory p) then acc
          else if name = "byte" && Filename.check_suffix dir "objs" then
            p :: acc
          else if name = ".git" then acc
          else collect_obj_dirs acc p)
        acc entries

type layout = {
  root : string;        (* where linted paths are resolved against *)
  build_root : string;  (* where the cmi dirs live *)
}

let layout : (layout, string) result option Atomic.t = Atomic.make None

(* Initialize Load_path/Clflags once (under the typer lock).  Returns
   the discovered layout, or an error message when no dune-project is in
   sight.  The memo cell is an Atomic published with compare_and_set:
   callers all hold [typer_mutex] today, but the cell must not rely on
   that. *)
let init () =
  match Atomic.get layout with
  | Some (Ok l) -> Ok l
  | Some (Error e) -> Error e
  | None ->
      let r =
        match find_root (Sys.getcwd ()) with
        | None ->
            Error
              "no dune-project above the current directory: run from the \
               repo root"
        | Some root ->
            let candidate =
              Filename.concat (Filename.concat root "_build") "default"
            in
            let build_root =
              if Sys.file_exists candidate && Sys.is_directory candidate then
                candidate
              else root
            in
            let obj_dirs = collect_obj_dirs [] build_root in
            let stdlib = Config.standard_library in
            let opamlib = Filename.dirname stdlib in
            let extra =
              List.filter Sys.file_exists
                [
                  Filename.concat stdlib "unix";
                  Filename.concat stdlib "threads";
                  Filename.concat stdlib "compiler-libs";
                  Filename.concat opamlib "cmdliner";
                  Filename.concat opamlib "fmt";
                ]
            in
            Clflags.include_dirs := obj_dirs @ extra;
            (* the linter only reads cmis; never let the typer write *)
            Clflags.dont_write_files := true;
            ignore (Warnings.parse_options false "-a");
            Compmisc.init_path ();
            Ok { root; build_root }
      in
      ignore (Atomic.compare_and_set layout None (Some r));
      r

(* ----- dune-file unit naming ----- *)

(* first "(name X)" token in a dune file; enough for this repo's
   one-stanza library dune files *)
let stanza_name content =
  let tag = "(name " in
  let rec find i =
    match String.index_from_opt content i '(' with
    | None -> None
    | Some j ->
        if
          j + String.length tag <= String.length content
          && String.sub content j (String.length tag) = tag
        then
          let start = j + String.length tag in
          let stop = ref start in
          while
            !stop < String.length content
            && not
                 (content.[!stop] = ')'
                 || content.[!stop] = ' '
                 || content.[!stop] = '\n')
          do
            incr stop
          done;
          Some (String.sub content start (!stop - start))
        else find (j + 1)
  in
  find 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* dune unit naming for the file at (repo-relative) [path].  Looks for
   the `dune` file next to it under the source root, then the build
   root, so fixture files linted under fake repo paths resolve too. *)
let unit_info_for l path =
  let base =
    String.capitalize_ascii (Filename.remove_extension (Filename.basename path))
  in
  let dir = Filename.dirname path in
  let dune_content =
    List.find_map
      (fun root ->
        let p = Filename.concat (Filename.concat root dir) "dune" in
        if Sys.file_exists p then Some (read_file p) else None)
      [ l.root; l.build_root ]
  in
  match dune_content with
  | None -> { unit_name = base; opens = [] }
  | Some content ->
      if contains_sub content "(executable" then
        { unit_name = "Dune__exe__" ^ base; opens = [] }
      else (
        match stanza_name content with
        | Some lib ->
            let prefix = String.capitalize_ascii lib in
            if prefix = base then { unit_name = base; opens = [] }
            else
              { unit_name = prefix ^ "__" ^ base; opens = [ prefix ] }
        | None -> { unit_name = base; opens = [] })

(* ----- the guarded typecheck ----- *)

let error_of_exn kind e =
  match Location.error_of_exn e with
  | Some (`Ok report) ->
      let line =
        report.Location.main.Location.loc.Location.loc_start.Lexing.pos_lnum
      in
      let msg =
        Format.asprintf "%a" Location.print_report report |> String.trim
      in
      { kind; msg; line = max 1 line }
  | _ ->
      {
        kind;
        msg =
          Printf.sprintf
            "%s (is the tree built? the typed linter reads cmis from \
             _build — run `dune build` first)"
            (Printexc.to_string e);
        line = 1;
      }

(* Parse and typecheck [source] as if it were the file at [path].  MUST
   be called with [typer_mutex] held (use [with_typer]); the caller's
   typedtree walk must stay inside the same critical section, because
   reading types can expand abbreviations through compiler-libs'
   shared memo tables. *)
let typecheck ~path source : (Typedtree.structure * unit_info, error) result =
  match init () with
  | Error msg -> Error { kind = Type_error; msg; line = 1 }
  | Ok l -> (
      let info = unit_info_for l path in
      match
        let lexbuf = Lexing.from_string source in
        Lexing.set_filename lexbuf path;
        Parse.implementation lexbuf
      with
      | exception e -> Error (error_of_exn Parse_error e)
      | ast -> (
          match
            (* fresh persistent-structure cache per file: a unit
               imported while checking a sibling may be the *current*
               unit of the next file, and stale entries would alias it *)
            Env.reset_cache ();
            Env.set_unit_name info.unit_name;
            Clflags.open_modules := info.opens;
            let env = Compmisc.initial_env () in
            Typemod.type_structure env ast
          with
          | tstr, _sig, _names, _shape, _env -> Ok (tstr, info)
          | exception e -> Error (error_of_exn Type_error e)))
