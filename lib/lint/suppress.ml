(* Suppression attributes understood by the linter:

   - [@lint.fp_exact "reason"] / [@@lint.fp_exact "reason"] — the float
     arithmetic in scope is intentionally exact (or intentionally
     heuristic: midpoints, telemetry, step-size control) and must not go
     through Rounding.  Suppresses R1 and R2.
   - [@@lint.guarded_by "mutex_name"] — the top-level mutable binding
     (or mutable record label) is protected by the named mutex on every
     access path.  Suppresses r3-top-mutable AND registers the binding
     with rule R5, which *checks* the claim: accesses outside a region
     holding the named lock are P1 findings (see Finding docs for the
     annotation grammar).
   - [@lint.allow "rule-id reason"] — generic escape hatch; the first
     token names a rule id or family prefix ("r4").  Scoped like any
     attribute: expression, binding ([@@...]) or rest-of-file
     ([@@@...]). *)

type t = { fp_exact : bool; allowed : string list }

let empty = { fp_exact = false; allowed = [] }

let payload_string (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let add (attr : Parsetree.attribute) t =
  match attr.attr_name.txt with
  | "lint.fp_exact" -> { t with fp_exact = true }
  | "lint.guarded_by" -> { t with allowed = "r3-top-mutable" :: t.allowed }
  | "lint.allow" -> (
      match payload_string attr with
      | None -> t
      | Some s ->
          let rule =
            match String.index_opt s ' ' with
            | Some i -> String.sub s 0 i
            | None -> s
          in
          { t with allowed = rule :: t.allowed })
  | _ -> t

let of_attributes attrs t = List.fold_left (fun t a -> add a t) t attrs

(* the payload of a [@@lint.guarded_by "m"] attribute, for the R5
   registry (the suppression side is handled by [add]) *)
let guarded_by attrs =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = "lint.guarded_by" then payload_string a else None)
    attrs

let allows t rule_id =
  (t.fp_exact
  && (rule_id = "r1-bare-float" || rule_id = "r2-float-compare"))
  || List.exists (fun p -> Policy.rule_matches p rule_id) t.allowed
