module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Rng = Nncs_linalg.Rng

type strategy =
  | Random_descent
  | Cross_entropy of { population : int; elite : int; generations : int }

type config = {
  shots : int;
  descent_steps : int;
  seed : int;
  substeps : int;
  strategy : strategy;
}

let default_config =
  { shots = 60; descent_steps = 40; seed = 7; substeps = 20; strategy = Random_descent }

let cem_config =
  {
    default_config with
    strategy = Cross_entropy { population = 30; elite = 6; generations = 12 };
  }

type result = {
  witness : (float array * Nncs.Concrete.trace) option;
  best_metric : float;
  simulations : int;
}

let sample_box rng box =
  Array.init (B.dim box) (fun i ->
      let iv = B.get box i in
      if I.is_degenerate iv then I.lo iv else Rng.uniform rng (I.lo iv) (I.hi iv))

let clamp_to_box box s =
  Array.mapi
    (fun i v ->
      let iv = B.get box i in
      Float.max (I.lo iv) (Float.min (I.hi iv) v))
    s

(* shared search harness: the strategies below drive [consider] *)

let run_random_descent config rng box consider witness =
  let widths = B.widths box in
  try
    for _shot = 1 to config.shots do
      let start = sample_box rng box in
      let m0 = consider start in
      (* local gaussian descent with shrinking radius, one coordinate
         frame over the non-degenerate dimensions *)
      let current = ref start and current_m = ref m0 in
      for step = 1 to config.descent_steps do
        let sigma =
          0.25
          *. (1.0 -. (float_of_int step /. float_of_int (config.descent_steps + 1)))
        in
        let cand =
          clamp_to_box box
            (Array.mapi
               (fun i v ->
                 if (widths.(i) = 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then v
                 else v +. (sigma *. widths.(i) *. Rng.gaussian rng))
               !current)
        in
        let m = consider cand in
        if m < !current_m then begin
          current := cand;
          current_m := m
        end
      done;
      if !witness <> None then raise Exit
    done
  with Exit -> ()

let run_cross_entropy ~population ~elite ~generations rng box consider witness =
  let n = B.dim box in
  let widths = B.widths box in
  let mean = ref (B.center box) in
  let sigma = ref (Array.map (fun w -> Float.max 1e-12 (0.4 *. w)) widths) in
  (try
     for _gen = 1 to generations do
       let scored =
         Array.init population (fun _ ->
             let cand =
               clamp_to_box box
                 (Array.init n (fun i ->
                      if (widths.(i) = 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then !mean.(i)
                      else !mean.(i) +. (!sigma.(i) *. Rng.gaussian rng)))
             in
             (consider cand, cand))
       in
       if !witness <> None then raise Exit;
       Array.sort (fun (a, _) (b, _) -> compare a b) scored;
       let k = max 1 (min elite population) in
       (* refit the gaussian on the elites, with a variance floor to keep
          exploring *)
       for i = 0 to n - 1 do
         if widths.(i) > 0.0 then begin
           let m = ref 0.0 in
           for e = 0 to k - 1 do
             m := !m +. (snd scored.(e)).(i)
           done;
           let m = !m /. float_of_int k in
           let v = ref 0.0 in
           for e = 0 to k - 1 do
             let d = (snd scored.(e)).(i) -. m in
             v := !v +. (d *. d)
           done;
           !mean.(i) <- m;
           !sigma.(i) <-
             Float.max (0.01 *. widths.(i)) (sqrt (!v /. float_of_int k))
         end
       done
     done
   with Exit -> ())

let falsify ?(config = default_config) sys ~cell ~metric =
  let rng = Rng.create config.seed in
  let box = cell.Nncs.Symstate.box in
  let cmd = cell.Nncs.Symstate.cmd in
  let sims = ref 0 in
  let objective init =
    incr sims;
    let trace =
      Nncs.Concrete.simulate ~substeps:config.substeps sys ~init_state:init
        ~init_cmd:cmd
    in
    (Nncs.Concrete.min_erroneous_distance ~metric trace, trace)
  in
  let best = ref Float.infinity and witness = ref None in
  let consider init =
    let m, trace = objective init in
    if m < !best then begin
      best := m;
      if m <= 0.0 && !witness = None then witness := Some (init, trace)
    end;
    m
  in
  (match config.strategy with
  | Random_descent -> run_random_descent config rng box consider witness
  | Cross_entropy { population; elite; generations } ->
      run_cross_entropy ~population ~elite ~generations rng box consider witness);
  { witness = !witness; best_metric = !best; simulations = !sims }

let acasxu_metric s =
  Float.sqrt ((s.(0) *. s.(0)) +. (s.(1) *. s.(1))) -. 500.0
