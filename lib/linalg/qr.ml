let decompose a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Qr.decompose: matrix must be square";
  let r = Mat.copy a in
  let q = Mat.identity n in
  (* Householder: for each column k, reflect to zero the sub-diagonal *)
  for k = 0 to n - 2 do
    let norm = ref 0.0 in
    for i = k to n - 1 do
      let v = Mat.get r i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm > 1e-300 then begin
      let alpha = if Mat.get r k k >= 0.0 then -.norm else norm in
      let v = Array.make n 0.0 in
      v.(k) <- Mat.get r k k -. alpha;
      for i = k + 1 to n - 1 do
        v.(i) <- Mat.get r i k
      done;
      let vnorm2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v in
      if vnorm2 > 1e-300 then begin
        (* r <- (I - 2 v v^T / |v|^2) r ; q <- q (I - 2 v v^T / |v|^2) *)
        for j = 0 to n - 1 do
          let dot = ref 0.0 in
          for i = k to n - 1 do
            dot := !dot +. (v.(i) *. Mat.get r i j)
          done;
          let c = 2.0 *. !dot /. vnorm2 in
          for i = k to n - 1 do
            Mat.set r i j (Mat.get r i j -. (c *. v.(i)))
          done
        done;
        for i = 0 to n - 1 do
          let dot = ref 0.0 in
          for j = k to n - 1 do
            dot := !dot +. (Mat.get q i j *. v.(j))
          done;
          let c = 2.0 *. !dot /. vnorm2 in
          for j = k to n - 1 do
            Mat.set q i j (Mat.get q i j -. (c *. v.(j)))
          done
        done
      end
    end
  done;
  (q, r)

let orthonormalize a =
  let n = Mat.rows a in
  (* sort columns by decreasing euclidean norm (Loehner pivoting) *)
  let norms =
    Array.init n (fun j ->
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          let v = Mat.get a i j in
          acc := !acc +. (v *. v)
        done;
        (j, !acc))
  in
  Array.sort (fun (_, x) (_, y) -> Float.compare y x) norms;
  let permuted = Mat.init n n (fun i j -> Mat.get a i (fst norms.(j))) in
  let q, r = decompose permuted in
  (* guard against rank deficiency: a vanishing diagonal entry of R means
     the column brought no new direction; Q is orthogonal regardless *)
  ignore r;
  q
