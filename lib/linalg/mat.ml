type t = { rows : int; cols : int; data : float array }

let create rows cols v =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: non-positive size";
  { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  let m = create rows cols 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }
let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v
let row m i = Array.sub m.data (i * m.cols) m.cols
let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same a b name =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: dimension mismatch" name)

let add a b =
  check_same a b "add";
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same a b "sub";
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.rows b.cols 0.0 in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if (aik <> 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let tmul_vec m v =
  if m.rows <> Array.length v then invalid_arg "Mat.tmul_vec: dimension mismatch";
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let vi = v.(i) in
    if (vi <> 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.((i * m.cols) + j) *. vi)
      done
  done;
  out

let outer u v = init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))
let map f m = { m with data = Array.map f m.data }

let map_inplace f m =
  for k = 0 to Array.length m.data - 1 do
    m.data.(k) <- f m.data.(k)
  done

let add_inplace a b =
  check_same a b "add_inplace";
  for k = 0 to Array.length a.data - 1 do
    a.data.(k) <- a.data.(k) +. b.data.(k)
  done

let axpy_inplace s x y =
  check_same x y "axpy_inplace";
  for k = 0 to Array.length x.data - 1 do
    y.data.(k) <- (s *. x.data.(k)) +. y.data.(k)
  done

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let pp fmt m =
  Format.fprintf fmt "@[<v 1>[";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@,%a" Vec.pp (row m i)
  done;
  Format.fprintf fmt "]@]"
