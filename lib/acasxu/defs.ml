type advisory = Coc | Weak_left | Weak_right | Strong_left | Strong_right

let advisories = [| Coc; Weak_left; Weak_right; Strong_left; Strong_right |]
[@@lint.allow "r3-top-mutable read-only advisory table, never written"]

let index = function
  | Coc -> 0
  | Weak_left -> 1
  | Weak_right -> 2
  | Strong_left -> 3
  | Strong_right -> 4

let of_index = function
  | 0 -> Coc
  | 1 -> Weak_left
  | 2 -> Weak_right
  | 3 -> Strong_left
  | 4 -> Strong_right
  | i -> invalid_arg (Printf.sprintf "Defs.of_index: %d" i)

let name = function
  | Coc -> "COC"
  | Weak_left -> "WL"
  | Weak_right -> "WR"
  | Strong_left -> "SL"
  | Strong_right -> "SR"

let turn_rate_deg = function
  | Coc -> 0.0
  | Weak_left -> 1.5
  | Weak_right -> -1.5
  | Strong_left -> 3.0
  | Strong_right -> -3.0

let deg = Float.pi /. 180.0
let turn_rate_rad a = turn_rate_deg a *. deg

let commands =
  Nncs.Command.make
    ~names:(Array.map name advisories)
    (Array.map (fun a -> [| turn_rate_rad a |]) advisories)

let sensor_range_ft = 8000.0
let collision_radius_ft = 500.0
let v_own_fps = 700.0
let v_int_fps = 600.0
let period_s = 1.0
let horizon_steps = 20
let ix = 0
let iy = 1
let ipsi = 2
let ivown = 3
let ivint = 4
let state_dim = 5
