module Rng = Nncs_linalg.Rng
module Net = Nncs_nn.Network
module Dataset = Nncs_nn.Dataset
module Train = Nncs_nn.Train
module Io = Nncs_nn.Nnet_io

type spec = {
  hidden : int list;
  samples : int;
  epochs : int;
  learning_rate : float;
  batch_size : int;
  seed : int;
}

let default_spec =
  {
    hidden = [ 32; 32; 32 ];
    samples = 20_000;
    epochs = 40;
    learning_rate = 1e-3;
    batch_size = 64;
    seed = 2024;
  }

(* deliberately under-trained models for CI smoke tests: seconds, not
   hours, to first verification attempt *)
let tiny_spec = { default_spec with hidden = [ 8 ]; samples = 400; epochs = 2 }

let tiny_policy_config =
  {
    Policy.default_config with
    Policy.rho_knots =
      [| 0.0; 500.0; 1000.0; 2000.0; 4000.0; 6000.0; 8000.0; 9000.0 |];
    theta_cells = 9;
    psi_cells = 9;
    iterations = 10;
  }

(* Max heading drift over the horizon (strongest turn rate times tau)
   plus half a worst-case partition cell of slack: wrapped initial
   heading cells recentred into (-pi, pi] can overhang by up to half
   their width before drifting. *)
let psi_training_halfwidth =
  Float.pi
  +. (Defs.turn_rate_rad Defs.Strong_left *. float_of_int Defs.horizon_steps)
  +. 0.55

let network_input ~rho ~theta ~psi =
  Dynamics.pre
    [| -.rho *. Float.sin theta; rho *. Float.cos theta; psi; Defs.v_own_fps; Defs.v_int_fps |]

(* The network only has to reproduce the table's argmin, so instead of
   the raw cost-to-go (whose collision cliffs dominate the regression
   loss) we clone the per-state *advantages* clipped at [advantage_clip]:
   score_a - min_a' score_a', capped.  Subtracting the minimum and
   clipping both preserve the argmin while shrinking the dynamic range
   the network must fit — the same trick as the asymmetric losses used
   for the original ACAS Xu compression. *)
let advantage_clip = 0.5

let advantages scores =
  let m = Array.fold_left Float.min scores.(0) scores in
  Array.map (fun v -> Float.min (v -. m) advantage_clip) scores

let build_dataset ~rng policy ~prev ~n =
  let rho_max = Defs.sensor_range_ft *. 1.12 in
  Dataset.create
    (Array.init n (fun _ ->
         (* sample rho with a bias towards close range, where the policy
            has the most structure *)
         let u = Rng.float rng 1.0 in
         let rho = rho_max *. (u ** 1.5) in
         let theta = Rng.uniform rng (-.Float.pi) Float.pi in
         let psi =
           Rng.uniform rng (-.psi_training_halfwidth) psi_training_halfwidth
         in
         ( network_input ~rho ~theta ~psi,
           advantages (Policy.scores policy ~prev ~rho ~theta ~psi) )))

let train_network ?(spec = default_spec) policy ~prev =
  let rng = Rng.create (spec.seed + (1000 * prev)) in
  let data = build_dataset ~rng policy ~prev ~n:spec.samples in
  let train, validation = Dataset.split ~rng ~fraction:0.9 data in
  let net = Net.create_mlp ~rng ~layer_sizes:((5 :: spec.hidden) @ [ 5 ]) in
  let trained, _report =
    Train.fit
      ~config:
        {
          Train.default_config with
          epochs = spec.epochs;
          learning_rate = spec.learning_rate;
          batch_size = spec.batch_size;
        }
      ~rng ~net ~train ~validation ()
  in
  (trained, Dataset.classification_accuracy trained validation)

let train_all ?spec policy =
  Array.init 5 (fun prev -> fst (train_network ?spec policy ~prev))

let network_path ~dir ~prev =
  Filename.concat dir (Printf.sprintf "acasxu_%s.nnet" (Defs.name (Defs.of_index prev)))

let policy_path ~dir = Filename.concat dir "acasxu_policy.bin"

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let load_or_train ?spec ?policy_config ~dir () =
  ensure_dir dir;
  let ppath = policy_path ~dir in
  let policy =
    if Sys.file_exists ppath then Policy.load ppath
    else begin
      let p = Policy.compute ?config:policy_config () in
      Policy.save p ppath;
      p
    end
  in
  let networks =
    Array.init 5 (fun prev ->
        let path = network_path ~dir ~prev in
        if Sys.file_exists path then Io.load path
        else begin
          let net, _acc = train_network ?spec policy ~prev in
          Io.save net path;
          net
        end)
  in
  (policy, networks)
