(** Production of the 5 ReLU networks from the lookup-table policy by
    supervised learning (behavioural cloning), replacing the proprietary
    ACAS Xu networks with an artefact of identical shape: one network per
    previous advisory, 5 inputs, 5 cost scores, argmin selection.

    Trained networks are cached on disk in .nnet format; the cache key is
    the file name only, so delete the files to retrain. *)

type spec = {
  hidden : int list;  (** hidden layer sizes, e.g. [32; 32; 32] *)
  samples : int;  (** training set size per network *)
  epochs : int;
  learning_rate : float;
  batch_size : int;
  seed : int;
}

val default_spec : spec
(** 3 hidden layers of 32, 20k samples, 40 epochs, Adam 1e-3, seed 2024. *)

val tiny_spec : spec
(** Deliberately under-trained models for CI smoke tests (one hidden
    layer of 8, 400 samples, 2 epochs): seconds, not hours, to first
    verification attempt; verdicts are meaningless. *)

val tiny_policy_config : Policy.config
(** The matching coarse policy grid for {!tiny_spec} smoke runs. *)

val psi_training_halfwidth : float
(** Networks are trained for psi in [-w, w]; w exceeds pi by the largest
    drift the ownship can accumulate over the horizon, so wrapped initial
    headings never leave the training domain. *)

val network_input : rho:float -> theta:float -> psi:float -> float array
(** The normalised 5-d network input (matches {!Dynamics.pre}). *)

val build_dataset :
  rng:Nncs_linalg.Rng.t -> Policy.t -> prev:int -> n:int -> Nncs_nn.Dataset.t

val train_network :
  ?spec:spec -> Policy.t -> prev:int -> Nncs_nn.Network.t * float
(** Returns the trained network and its argmin agreement with the table
    on a held-out validation set (in [0, 1]). *)

val train_all : ?spec:spec -> Policy.t -> Nncs_nn.Network.t array
(** The 5 networks, indices = advisory indices. *)

val network_path : dir:string -> prev:int -> string
val policy_path : dir:string -> string

val load_or_train :
  ?spec:spec ->
  ?policy_config:Policy.config ->
  dir:string ->
  unit ->
  Policy.t * Nncs_nn.Network.t array
(** Loads the policy tables and networks from [dir] when present;
    otherwise computes/trains and saves them there (creating [dir]). *)
