type config = {
  rho_knots : float array;
  collision_buffer_ft : float;
  theta_cells : int;
  psi_cells : int;
  discount : float;
  iterations : int;
  collision_cost : float;
  weak_alert_cost : float;
  strong_alert_cost : float;
  switch_cost : float;
  reversal_cost : float;
}

let default_config =
  {
    collision_buffer_ft = 250.0;
    rho_knots =
      [|
        0.0; 200.0; 400.0; 500.0; 600.0; 800.0; 1000.0; 1300.0; 1700.0;
        2200.0; 2800.0; 3500.0; 4300.0; 5200.0; 6200.0; 7200.0; 8000.0; 9000.0;
      |];
    theta_cells = 41;
    psi_cells = 41;
    discount = 0.97;
    iterations = 80;
    collision_cost = 10.0;
    weak_alert_cost = 0.02;
    strong_alert_cost = 0.05;
    switch_cost = 0.01;
    reversal_cost = 0.02;
  }

let num_actions = 5

type t = {
  config : config;
  theta_knots : float array;
  psi_knots : float array;
  (* q.(((ir * nt) + it) * np + ip) * 5 + a : converged cost-to-go *)
  q : float array;
}

let config_of t = t.config

(* ----- geometry helpers ----- *)

let two_pi = 2.0 *. Float.pi

let wrap = Dynamics.wrap_angle

(* one 1-second transition of (rho, theta, psi) under advisory a,
   tracking the minimum separation along the way *)
let transition ~rho ~theta ~psi a =
  let u = Defs.turn_rate_rad (Defs.of_index a) in
  let x = ref (-.rho *. Float.sin theta) and y = ref (rho *. Float.cos theta) in
  let p = ref psi in
  let substeps = 5 in
  let h = Defs.period_s /. float_of_int substeps in
  let min_rho = ref rho in
  for _ = 1 to substeps do
    (* RK2 (midpoint) on the kinematic model, fixed velocities *)
    let f x y p =
      ( (-.Defs.v_int_fps *. Float.sin p) +. (u *. y),
        (Defs.v_int_fps *. Float.cos p) -. Defs.v_own_fps -. (u *. x),
        -.u )
    in
    let dx1, dy1, dp1 = f !x !y !p in
    let xm = !x +. (0.5 *. h *. dx1)
    and ym = !y +. (0.5 *. h *. dy1)
    and pm = !p +. (0.5 *. h *. dp1) in
    let dx2, dy2, dp2 = f xm ym pm in
    x := !x +. (h *. dx2);
    y := !y +. (h *. dy2);
    p := !p +. (h *. dp2);
    min_rho := Float.min !min_rho (Float.sqrt ((!x *. !x) +. (!y *. !y)))
  done;
  let rho' = Float.sqrt ((!x *. !x) +. (!y *. !y)) in
  let theta' = Float.atan2 (-. !x) !y in
  (rho', theta', wrap !p, !min_rho)

(* ----- grid / interpolation ----- *)

let uniform_knots n =
  Array.init n (fun i ->
      -.Float.pi +. (two_pi *. float_of_int i /. float_of_int (n - 1)))

(* locate v in sorted knots: index i and fraction t with
   v ~ knots.(i) + t * (knots.(i+1) - knots.(i)), clamped *)
let locate knots v =
  let n = Array.length knots in
  if v <= knots.(0) then (0, 0.0)
  else if v >= knots.(n - 1) then (n - 2, 1.0)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let m = (!lo + !hi) / 2 in
      if knots.(m) <= v then lo := m else hi := m
    done;
    let i = !lo in
    (i, (v -. knots.(i)) /. (knots.(i + 1) -. knots.(i)))
  end

(* ----- value iteration ----- *)

let action_cost cfg a =
  match Defs.of_index a with
  | Defs.Coc -> 0.0
  | Defs.Weak_left | Defs.Weak_right -> cfg.weak_alert_cost
  | Defs.Strong_left | Defs.Strong_right -> cfg.strong_alert_cost

(* terminal classification of a transition endpoint *)
type dest =
  | Collision
  | Escaped
  | Interior of (int * float) * (int * float) * (int * float)
      (* interpolation stencils in rho, theta, psi *)

(* trilinear interpolation over a stencil, [get ir it ip] reading the
   grid; indices are clamped by the caller-provided bounds *)
let trilinear ~nr ~nt ~np ~get ((ir, tr), (it, tt), (ip, tp)) =
  let g dr dt dp w acc =
    if (w = 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then acc
    else
      let ir = min (nr - 1) (ir + dr)
      and it = min (nt - 1) (it + dt)
      and ip = min (np - 1) (ip + dp) in
      acc +. (w *. get ir it ip)
  in
  0.0
  |> g 0 0 0 ((1.0 -. tr) *. (1.0 -. tt) *. (1.0 -. tp))
  |> g 0 0 1 ((1.0 -. tr) *. (1.0 -. tt) *. tp)
  |> g 0 1 0 ((1.0 -. tr) *. tt *. (1.0 -. tp))
  |> g 0 1 1 ((1.0 -. tr) *. tt *. tp)
  |> g 1 0 0 (tr *. (1.0 -. tt) *. (1.0 -. tp))
  |> g 1 0 1 (tr *. (1.0 -. tt) *. tp)
  |> g 1 1 0 (tr *. tt *. (1.0 -. tp))
  |> g 1 1 1 (tr *. tt *. tp)

let compute ?(config = default_config) () =
  let cfg = config in
  let nr = Array.length cfg.rho_knots in
  let nt = cfg.theta_cells and np = cfg.psi_cells in
  if nr < 2 || nt < 2 || np < 2 then
    invalid_arg "Policy.compute: grid too small";
  let theta_knots = uniform_knots nt and psi_knots = uniform_knots np in
  let rho_max = cfg.rho_knots.(nr - 1) in
  let idx ir it ip = ((ir * nt) + it) * np + ip in
  let nstates = nr * nt * np in
  (* precompute transitions *)
  let dests = Array.make (nstates * num_actions) Escaped in
  for ir = 0 to nr - 1 do
    for it = 0 to nt - 1 do
      for ip = 0 to np - 1 do
        let rho = cfg.rho_knots.(ir)
        and theta = theta_knots.(it)
        and psi = psi_knots.(ip) in
        for a = 0 to num_actions - 1 do
          let rho', theta', psi', min_rho = transition ~rho ~theta ~psi a in
          let dest =
            if min_rho < Defs.collision_radius_ft +. cfg.collision_buffer_ft then
            Collision
            else if rho' >= rho_max then Escaped
            else
              Interior
                (locate cfg.rho_knots rho', locate theta_knots theta',
                 locate psi_knots psi')
          in
          dests.((idx ir it ip * num_actions) + a) <- dest
        done
      done
    done
  done;
  (* iterate V(s) = min_a [cost(a) + gamma * V(next)] *)
  let v = Array.make nstates 0.0 in
  let q_of_dest a dest =
    action_cost cfg a
    +.
    match dest with
    | Collision -> cfg.discount *. cfg.collision_cost
    | Escaped -> 0.0
    | Interior (sr, st, sp) ->
        cfg.discount
        *. trilinear ~nr ~nt ~np ~get:(fun ir it ip -> v.(idx ir it ip))
             (sr, st, sp)
  in
  for _iter = 1 to cfg.iterations do
    for s = 0 to nstates - 1 do
      let best = ref Float.infinity in
      for a = 0 to num_actions - 1 do
        let q = q_of_dest a dests.((s * num_actions) + a) in
        if q < !best then best := q
      done;
      v.(s) <- !best
    done
  done;
  (* final Q table *)
  let q = Array.make (nstates * num_actions) 0.0 in
  for s = 0 to nstates - 1 do
    for a = 0 to num_actions - 1 do
      q.((s * num_actions) + a) <- q_of_dest a dests.((s * num_actions) + a)
    done
  done;
  { config = cfg; theta_knots; psi_knots; q }

(* ----- queries ----- *)

let same_side a b =
  (* both left turns or both right turns *)
  let side i =
    match Defs.of_index i with
    | Defs.Coc -> 0
    | Defs.Weak_left | Defs.Strong_left -> 1
    | Defs.Weak_right | Defs.Strong_right -> -1
  in
  side a = side b

let switch_penalty cfg ~prev a =
  if a = prev then 0.0
  else if prev <> 0 && a <> 0 && not (same_side prev a) then
    cfg.switch_cost +. cfg.reversal_cost
  else cfg.switch_cost

let scores t ~prev ~rho ~theta ~psi =
  if prev < 0 || prev >= num_actions then
    invalid_arg "Policy.scores: invalid previous advisory";
  let cfg = t.config in
  let nr = Array.length cfg.rho_knots in
  let nt = cfg.theta_cells and np = cfg.psi_cells in
  let idx ir it ip = ((ir * nt) + it) * np + ip in
  let sr = locate cfg.rho_knots rho
  and st = locate t.theta_knots (wrap theta)
  and sp = locate t.psi_knots (wrap psi) in
  Array.init num_actions (fun a ->
      trilinear ~nr ~nt ~np
        ~get:(fun ir it ip -> t.q.((idx ir it ip * num_actions) + a))
        (sr, st, sp)
      +. switch_penalty cfg ~prev a)

let best_action t ~prev ~rho ~theta ~psi =
  let s = scores t ~prev ~rho ~theta ~psi in
  let best = ref 0 in
  for a = 1 to num_actions - 1 do
    if s.(a) < s.(!best) then best := a
  done;
  !best

let scores_state t ~prev s =
  let rho, theta = Dynamics.rho_theta ~x:s.(Defs.ix) ~y:s.(Defs.iy) in
  scores t ~prev ~rho ~theta ~psi:s.(Defs.ipsi)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Marshal.to_channel oc t [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> (Marshal.from_channel ic : t))
