(** ReLU feedforward networks (Definition 2 of the paper).

    A network is a sequence of affine layers, each followed by an
    activation; hidden layers use ReLU, the output layer is affine
    (identity activation). *)

type layer = {
  weights : Nncs_linalg.Mat.t;  (** shape: (output size) x (input size) *)
  biases : Nncs_linalg.Vec.t;
  activation : Activation.t;
}

type t = private {
  input_dim : int;
  layers : layer array;
  uid : int;
      (** process-unique identity, assigned at construction (see {!uid}) *)
}

val make : input_dim:int -> layer array -> t
(** Validates the chaining of layer dimensions. Raises
    [Invalid_argument] on mismatch or on an empty layer array. *)

val uid : t -> int
(** A process-unique identity for this network value, assigned
    atomically at construction.  Two networks never share a uid — even
    structurally identical copies get distinct ones — so it is safe to
    key memo tables on it ({!Nncs_nnabs.Cache} does): a cached result
    can never be served for a network with different weights. *)

val create_mlp :
  rng:Nncs_linalg.Rng.t -> layer_sizes:int list -> t
(** [create_mlp ~rng ~layer_sizes:[m; h1; ...; p]] builds a ReLU MLP with
    He-initialised weights: input size [m], hidden sizes [h1...], affine
    output of size [p]. *)

val input_dim : t -> int
val output_dim : t -> int
val num_layers : t -> int
(** Number of non-input layers (hidden + output). *)

val layer_sizes : t -> int list
(** [m; k2; ...; kL] as in Definition 2. *)

val num_parameters : t -> int

val eval : t -> float array -> float array
(** Forward pass (the function F of Definition 2). *)

val eval_with_preactivations : t -> float array -> float array array * float array array
(** [(pre, post)] per layer — used by backpropagation. *)

val map_parameters : t -> f:(float -> float) -> t
val copy : t -> t
val equal_structure : t -> t -> bool
val pp_summary : Format.formatter -> t -> unit

val block_product : t -> t -> t
(** [block_product a b] is the network computing
    [x1 ++ x2 -> a(x1) ++ b(x2)] by block-diagonal weight matrices —
    the construction that lets one network execution host several
    independent controllers (multi-agent closed loops).  Both networks
    must have the same depth and per-layer activations; raises
    [Invalid_argument] otherwise. *)
