module Mat = Nncs_linalg.Mat
module Vec = Nncs_linalg.Vec
module Rng = Nncs_linalg.Rng

type layer = { weights : Mat.t; biases : Vec.t; activation : Activation.t }
type t = { input_dim : int; layers : layer array; uid : int }

(* Process-unique identity, atomically assigned so networks built on
   different domains never collide.  Any construction that could change
   the computed function gets a fresh uid — caches keyed on it must
   never conflate two networks with different weights. *)
let uid_counter = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add uid_counter 1

let make ~input_dim layers =
  if Array.length layers = 0 then invalid_arg "Network.make: no layers";
  let expected = ref input_dim in
  Array.iteri
    (fun idx l ->
      if Mat.cols l.weights <> !expected then
        invalid_arg
          (Printf.sprintf
             "Network.make: layer %d expects input size %d, weights have %d \
              columns"
             idx !expected (Mat.cols l.weights));
      if Mat.rows l.weights <> Vec.dim l.biases then
        invalid_arg
          (Printf.sprintf "Network.make: layer %d weight/bias size mismatch" idx);
      expected := Mat.rows l.weights)
    layers;
  { input_dim; layers; uid = fresh_uid () }

let create_mlp ~rng ~layer_sizes =
  match layer_sizes with
  | [] | [ _ ] -> invalid_arg "Network.create_mlp: need at least input and output sizes"
  | input_dim :: rest ->
      let n = List.length rest in
      let layers =
        List.mapi
          (fun idx out_size ->
            let in_size =
              if idx = 0 then input_dim else List.nth rest (idx - 1)
            in
            (* He initialisation, suited to ReLU *)
            let std = sqrt (2.0 /. float_of_int in_size) in
            {
              weights =
                Mat.init out_size in_size (fun _ _ -> std *. Rng.gaussian rng);
              biases = Vec.create out_size 0.0;
              activation =
                (if idx = n - 1 then Activation.Linear else Activation.Relu);
            })
          rest
      in
      make ~input_dim (Array.of_list layers)

let input_dim net = net.input_dim
let uid net = net.uid

let output_dim net =
  Mat.rows net.layers.(Array.length net.layers - 1).weights

let num_layers net = Array.length net.layers

let layer_sizes net =
  net.input_dim :: Array.to_list (Array.map (fun l -> Mat.rows l.weights) net.layers)

let num_parameters net =
  Array.fold_left
    (fun acc l -> acc + (Mat.rows l.weights * Mat.cols l.weights) + Vec.dim l.biases)
    0 net.layers

let eval net x =
  if Array.length x <> net.input_dim then
    invalid_arg "Network.eval: input dimension mismatch";
  Array.fold_left
    (fun v l ->
      Activation.apply_vec l.activation (Vec.add (Mat.mul_vec l.weights v) l.biases))
    x net.layers

let eval_with_preactivations net x =
  let n = Array.length net.layers in
  let pre = Array.make n [||] and post = Array.make n [||] in
  let v = ref x in
  for i = 0 to n - 1 do
    let l = net.layers.(i) in
    let z = Vec.add (Mat.mul_vec l.weights !v) l.biases in
    pre.(i) <- z;
    post.(i) <- Activation.apply_vec l.activation z;
    v := post.(i)
  done;
  (pre, post)

let map_parameters net ~f =
  {
    net with
    uid = fresh_uid ();
    layers =
      Array.map
        (fun l -> { l with weights = Mat.map f l.weights; biases = Vec.map f l.biases })
        net.layers;
  }

let copy net = map_parameters net ~f:(fun x -> x)

let equal_structure a b =
  a.input_dim = b.input_dim
  && Array.length a.layers = Array.length b.layers
  && Array.for_all2
       (fun la lb ->
         Mat.rows la.weights = Mat.rows lb.weights
         && Mat.cols la.weights = Mat.cols lb.weights
         && la.activation = lb.activation)
       a.layers b.layers

let pp_summary fmt net =
  Format.fprintf fmt "@[<h>MLP %a (%d parameters)@]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "-")
       Format.pp_print_int)
    (layer_sizes net) (num_parameters net)

let block_product a b =
  if Array.length a.layers <> Array.length b.layers then
    invalid_arg "Network.block_product: depth mismatch";
  let layers =
    Array.map2
      (fun la lb ->
        if la.activation <> lb.activation then
          invalid_arg "Network.block_product: activation mismatch";
        let ra = Mat.rows la.weights and ca = Mat.cols la.weights in
        let rb = Mat.rows lb.weights and cb = Mat.cols lb.weights in
        {
          weights =
            Mat.init (ra + rb) (ca + cb) (fun i j ->
                if i < ra && j < ca then Mat.get la.weights i j
                else if i >= ra && j >= ca then Mat.get lb.weights (i - ra) (j - ca)
                else 0.0);
          biases = Array.append la.biases lb.biases;
          activation = la.activation;
        })
      a.layers b.layers
  in
  make ~input_dim:(a.input_dim + b.input_dim) layers
