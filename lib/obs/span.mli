(** Nestable timed regions.

    A span opened with {!enter} (or scoped with {!with_}) measures the
    wall time of a pipeline phase and emits one {!Trace.event} when it
    closes, carrying its phase label, key/value attributes, nesting
    depth, and both inclusive ([dur]) and exclusive ([self]) time — the
    per-domain span stack attributes each child's duration to its parent
    so that summing [self] over a trace never double-counts nested
    phases.

    When tracing is disabled (the default), {!enter} returns {!null}
    without reading the clock: instrumentation costs an atomic load and
    a branch. *)

type t

val null : t
(** The no-op span; {!exit} on it does nothing. *)

val enter : ?attrs:(string * Trace.attr) list -> string -> t
(** Open a span named after its pipeline phase ([reach.resize],
    [ode.simulate], ...); {!null} when tracing is disabled. *)

val exit : ?attrs:(string * Trace.attr) list -> t -> unit
(** Close the span and emit its event; extra [attrs] known only at close
    time (outcomes, result sizes) are appended to the ones given at
    {!enter}.  Closing out of order is tolerated (the frame is removed
    from wherever it sits in the stack). *)

val with_ : ?attrs:(string * Trace.attr) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span; the span is closed even when
    [f] raises. *)
