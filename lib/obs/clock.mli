(** The monotonic clock, for measuring elapsed intervals.

    {!Unix.gettimeofday} is wall-calendar time: NTP can step it
    backwards mid-measurement, producing negative [elapsed_s] in
    verdicts, bench artifacts, and deadline arithmetic.  [monotonic_s]
    reads [CLOCK_MONOTONIC] (via a local C stub — OCaml 5.1's unix
    library has no [clock_gettime] binding), which only ever advances.

    The absolute value is meaningless (seconds since an arbitrary epoch,
    typically boot); only differences between two reads carry
    information.  Never mix it with {!Unix.gettimeofday} stamps. *)

val monotonic_s : unit -> float
(** Seconds on the monotonic clock; on hosts without [CLOCK_MONOTONIC]
    this silently degrades to the wall clock. *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since] is [monotonic_s () -. since], clamped to [>= 0]
    so callers can rely on non-negative durations even through the
    wall-clock fallback. *)
