type counter = { c_name : string; cell : int Atomic.t }

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
}

(* The registry is mutated only on instrument creation (module init in
   practice); reads during [snapshot] take the same lock.  Updates to the
   instruments themselves never lock. *)
let registry_mutex = Mutex.create ()

let counters : counter list ref = ref []
[@@lint.guarded_by "registry_mutex"]

let histograms : histogram list ref = ref []
[@@lint.guarded_by "registry_mutex"]

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry (fun () ->
      match List.find_opt (fun c -> c.c_name = name) !counters with
      | Some c -> c
      | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          counters := c :: !counters;
          c)

let incr c = Atomic.incr c.cell

let add c n = ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

(* lock-free float update: retry the CAS with the physically-same boxed
   value we read, as usual for [float Atomic.t] *)
let rec update_float cell f =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (f cur)) then update_float cell f

let histogram name =
  with_registry (fun () ->
      match List.find_opt (fun h -> h.h_name = name) !histograms with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_count = Atomic.make 0;
              h_sum = Atomic.make 0.0;
              h_min = Atomic.make Float.infinity;
              h_max = Atomic.make Float.neg_infinity;
            }
          in
          histograms := h :: !histograms;
          h)

let observe h x =
  Atomic.incr h.h_count;
  update_float h.h_sum (fun s -> s +. x);
  update_float h.h_min (fun m -> Float.min m x);
  update_float h.h_max (fun m -> Float.max m x)

type hist_stats = { count : int; sum : float; min : float; max : float }

let hist_value h =
  {
    count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
    min = Atomic.get h.h_min;
    max = Atomic.get h.h_max;
  }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_stats) list;
}

let snapshot () =
  with_registry (fun () ->
      {
        counters =
          List.sort compare
            (List.map (fun c -> (c.c_name, value c)) !counters);
        histograms =
          List.sort
            (fun (a, _) (b, _) -> compare a b)
            (List.map (fun h -> (h.h_name, hist_value h)) !histograms);
      })

let reset () =
  with_registry (fun () ->
      List.iter (fun c -> Atomic.set c.cell 0) !counters;
      List.iter
        (fun h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0.0;
          Atomic.set h.h_min Float.infinity;
          Atomic.set h.h_max Float.neg_infinity)
        !histograms)

let hist_json (s : hist_stats) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.count));
      ("sum", Json.Num s.sum);
      ("min", Json.Num (if s.count = 0 then 0.0 else s.min));
      ("max", Json.Num (if s.count = 0 then 0.0 else s.max));
    ]

let snapshot_json () =
  let s = snapshot () in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) s.counters)
      );
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) s.histograms) );
    ]

let jsonl_lines () =
  let s = snapshot () in
  List.filter_map
    (fun (n, v) ->
      if v = 0 then None
      else
        Some
          (Json.Obj
             [
               ("t", Json.Str "counter");
               ("name", Json.Str n);
               ("value", Json.Num (float_of_int v));
             ]))
    s.counters
  @ List.filter_map
      (fun (n, (h : hist_stats)) ->
        if h.count = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("t", Json.Str "hist");
                 ("name", Json.Str n);
                 ("count", Json.Num (float_of_int h.count));
                 ("sum", Json.Num h.sum);
                 ("min", Json.Num h.min);
                 ("max", Json.Num h.max);
               ]))
      s.histograms
