external monotonic_s : unit -> float = "nncs_obs_monotonic_s"

let elapsed_s ~since =
  Float.max 0.0 (monotonic_s () -. since)
  [@lint.fp_exact "wall-clock telemetry"]
