(** Process-wide counters and histograms for the verification pipeline.

    All mutation goes through [Atomic] cells, so instruments are safe to
    hit concurrently from the [Domain.spawn] workers of
    [Verify.verify_partition] — increments from every domain land in the
    same process-wide registry and a snapshot after the join sees the
    merged totals.  Instruments are registered once by name (get-or-create)
    and are meant to be created at module initialisation, keeping the hot
    path down to one atomic read-modify-write per update. *)

type counter

val counter : string -> counter
(** Get or create the process-wide counter registered under this name. *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

type histogram

val histogram : string -> histogram
(** Get or create a histogram (count / sum / min / max of observations). *)

val observe : histogram -> float -> unit

type hist_stats = { count : int; sum : float; min : float; max : float }

val hist_value : histogram -> hist_stats

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** A consistent-enough view of every registered instrument (individual
    cells are read atomically; the set is not globally synchronized). *)

val reset : unit -> unit
(** Zero every instrument (registrations survive).  Call only when no
    worker domain is running. *)

val snapshot_json : unit -> Json.t
(** [{ "counters": {...}, "histograms": {name: {count,sum,min,max}} }] *)

val jsonl_lines : unit -> Json.t list
(** One object per instrument, in the trace JSONL schema:
    [{"t":"counter","name":n,"value":v}] and
    [{"t":"hist","name":n,"count":c,"sum":s,"min":m,"max":x}].
    Instruments with no recorded activity are omitted. *)
