(** Per-domain buffered event sink serializing to JSONL.

    Tracing is globally off by default: every instrumentation site
    checks {!enabled} first, so a disabled build path costs one atomic
    read and a branch (the "no-op sink").  When enabled, each domain
    appends completed spans to its own buffer (domain-local storage, no
    locking on the hot path); buffers register themselves in a global
    list on first use, and {!events} / {!write_jsonl} merge them — the
    merge is meant to run after worker domains have been joined.

    JSONL schema (one object per line):
    - [{"t":"meta","version":1,"wall_start":0,"wall_end":W}]
    - [{"t":"span","name":N,"dom":D,"ts":T,"dur":U,"self":S,"depth":K,
       "attrs":{...}}] — [ts] seconds since {!enable}, [dur] inclusive
      duration, [self] duration minus directly-nested child spans
    - [{"t":"counter",...}] / [{"t":"hist",...}] — appended from
      {!Metrics.jsonl_lines} by the caller of {!write_jsonl}. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;  (** phase label, dot-separated ([reach.resize], ...) *)
  dom : int;  (** id of the domain that ran the span *)
  ts : float;  (** start, seconds since {!enable} *)
  dur : float;  (** wall seconds, including children *)
  self : float;  (** [dur] minus time spent in direct child spans *)
  depth : int;  (** nesting depth within its domain at open time *)
  attrs : (string * attr) list;
}

val enabled : unit -> bool

val enable : unit -> unit
(** Switch collection on and (re)start the trace epoch; also clears
    previously collected events. *)

val disable : unit -> unit
(** Stop collecting; already-buffered events are kept for {!events}. *)

val now_rel : unit -> float
(** Seconds since {!enable} (0.0 if never enabled). *)

val domain_id : unit -> int

val emit : event -> unit
(** Append to the calling domain's buffer (unconditional — gating on
    {!enabled} is the instrumentation site's job, see {!Span}). *)

val clear : unit -> unit
(** Drop all buffered events.  Call only when no worker domain is
    running. *)

val events : unit -> event list
(** Merge of every domain's buffer, sorted by start time. *)

val event_to_json : event -> Json.t

val event_of_json : Json.t -> event
(** Inverse of {!event_to_json}; raises [Json.Parse_error] on objects
    that are not span events. *)

val write_jsonl : ?extra:Json.t list -> out_channel -> unit
(** Meta line, then every span event, then the [extra] lines (typically
    {!Metrics.jsonl_lines}). *)

val write_file : ?extra:Json.t list -> string -> unit
