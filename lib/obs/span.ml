type frame = {
  name : string;
  t0 : float;
  depth : int;
  attrs : (string * Trace.attr) list;
  mutable child : float;  (* wall time spent in direct child spans *)
}

type t = frame option

let null = None

(* per-domain span stack; pushed by [enter], popped by [exit] *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enter ?(attrs = []) name =
  if not (Trace.enabled ()) then None
  else begin
    let stack = Domain.DLS.get stack_key in
    let f =
      {
        name;
        t0 = Trace.now_rel ();
        depth = List.length !stack;
        attrs;
        child = 0.0;
      }
    in
    stack := f :: !stack;
    Some f
  end

let exit ?(attrs = []) t =
  match t with
  | None -> ()
  | Some f ->
      let stack = Domain.DLS.get stack_key in
      (match !stack with
      | g :: rest when g == f -> stack := rest
      | _ -> stack := List.filter (fun g -> not (g == f)) !stack);
      let dur = Trace.now_rel () -. f.t0 in
      (match !stack with
      | parent :: _ -> parent.child <- parent.child +. dur
      | [] -> ());
      Trace.emit
        {
          Trace.name = f.name;
          dom = Trace.domain_id ();
          ts = f.t0;
          dur;
          self = Float.max 0.0 (dur -. f.child);
          depth = f.depth;
          attrs = f.attrs @ attrs;
        }

let with_ ?attrs name fn =
  let s = enter ?attrs name in
  Fun.protect ~finally:(fun () -> exit s) fn
