type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  dom : int;
  ts : float;
  dur : float;
  self : float;
  depth : int;
  attrs : (string * attr) list;
}

let enabled_flag = Atomic.make false

let epoch = Atomic.make 0.0

let enabled () = Atomic.get enabled_flag

let now_rel () = Unix.gettimeofday () -. Atomic.get epoch

let domain_id () = (Domain.self () :> int)

(* Every domain buffers its own events; the buffer registers itself in
   [registry] on the domain's first emit.  Buffers of joined domains stay
   registered, which is exactly what the merge wants. *)
let registry : event list ref list ref = ref []
[@@lint.guarded_by "registry_mutex"]

let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let buffer_key : event list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let buf = ref [] in
      with_registry (fun () -> registry := buf :: !registry);
      buf)

let emit ev =
  let buf = Domain.DLS.get buffer_key in
  buf := ev :: !buf

let clear () = with_registry (fun () -> List.iter (fun buf -> buf := []) !registry)

let enable () =
  clear ();
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let events () =
  let all = with_registry (fun () -> List.concat_map (fun buf -> !buf) !registry) in
  List.sort
    (fun a b ->
      match Float.compare a.ts b.ts with
      | 0 -> Int.compare a.dom b.dom
      | c -> c)
    all

let attr_to_json = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let event_to_json ev =
  Json.Obj
    [
      ("t", Json.Str "span");
      ("name", Json.Str ev.name);
      ("dom", Json.Num (float_of_int ev.dom));
      ("ts", Json.Num ev.ts);
      ("dur", Json.Num ev.dur);
      ("self", Json.Num ev.self);
      ("depth", Json.Num (float_of_int ev.depth));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) ev.attrs));
    ]

let attr_of_json = function
  | Json.Num f when Float.is_integer f -> Int (int_of_float f)
  | Json.Num f -> Float f
  | Json.Str s -> Str s
  | Json.Bool b -> Bool b
  | _ -> raise (Json.Parse_error "unsupported attribute value")

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> raise (Json.Parse_error (Printf.sprintf "span event: missing %S" name))

let event_of_json j =
  (match Json.member "t" j with
  | Some (Json.Str "span") -> ()
  | _ -> raise (Json.Parse_error "not a span event"));
  {
    name = Json.to_str (field "name" j);
    dom = Json.to_int (field "dom" j);
    ts = Json.to_float (field "ts" j);
    dur = Json.to_float (field "dur" j);
    self = Json.to_float (field "self" j);
    depth = Json.to_int (field "depth" j);
    attrs =
      (match Json.member "attrs" j with
      | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, attr_of_json v)) kvs
      | _ -> []);
  }

let write_jsonl ?(extra = []) oc =
  let meta =
    Json.Obj
      [
        ("t", Json.Str "meta");
        ("version", Json.Num 1.0);
        ("wall_start", Json.Num 0.0);
        ("wall_end", Json.Num (now_rel ()));
      ]
  in
  output_string oc (Json.to_string meta);
  output_char oc '\n';
  List.iter
    (fun ev ->
      output_string oc (Json.to_string (event_to_json ev));
      output_char oc '\n')
    (events ());
  List.iter
    (fun line ->
      output_string oc (Json.to_string line);
      output_char oc '\n')
    extra

let write_file ?extra path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_jsonl ?extra oc)
