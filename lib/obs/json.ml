type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ----- printing ----- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null" (* JSON has no inf/nan; degrade rather than emit garbage *)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go x)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ----- parsing ----- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected '%c' at %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then (
    c.pos <- c.pos + n;
    value)
  else fail "invalid literal at %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string at %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then
              fail "truncated \\u escape at %d" c.pos;
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape at %d" c.pos
            in
            c.pos <- c.pos + 4;
            (* encode the code point as UTF-8 (surrogates left as-is) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail "bad escape at %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "invalid number %S at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input at %d" c.pos
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then (advance c; Obj [])
      else
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; members ((k, v) :: acc)
          | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' at %d" c.pos
        in
        members []
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then (advance c; List [])
      else
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; elements (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at %d" c.pos
        in
        elements []
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected character '%c' at %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing garbage at %d" c.pos;
  v

(* ----- accessors ----- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function Num f -> f | _ -> fail "expected a number"

let to_int v = int_of_float (to_float v)

let to_str = function Str s -> s | _ -> fail "expected a string"
