/* Monotonic wall time for elapsed-interval measurement.

   OCaml 5.1's unix library has no clock_gettime binding, and
   Unix.gettimeofday is steered by NTP: a backwards step mid-job makes
   elapsed_s in verdicts and bench artifacts negative.  CLOCK_MONOTONIC
   only ever advances; when it is unavailable (non-POSIX hosts) we fall
   back to the wall clock, which merely restores the old behaviour. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#if !defined(_WIN32)
#include <sys/time.h>
#endif

CAMLprim value nncs_obs_monotonic_s(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
#endif
#if !defined(_WIN32)
  {
    struct timeval tv;
    if (gettimeofday(&tv, NULL) == 0)
      return caml_copy_double((double)tv.tv_sec + 1e-6 * (double)tv.tv_usec);
  }
#endif
  return caml_copy_double(0.0);
}
