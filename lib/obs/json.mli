(** A minimal JSON value type with a printer and parser, enough to write
    and read back the observability artifacts (JSONL traces,
    [bench_summary.json]) without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering (integral floats print without a
    fractional part, so counters round-trip as integers). *)

val of_string : string -> t
(** Parse one JSON value; raises {!Parse_error} on malformed input or
    trailing garbage. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to the first occurrence of
    [k]; [None] on missing keys or non-objects. *)

val to_float : t -> float
(** Numeric payload of a [Num]; raises {!Parse_error} otherwise. *)

val to_int : t -> int

val to_str : t -> string
