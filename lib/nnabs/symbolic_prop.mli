(** Symbolic interval propagation through a ReLU network, in the style of
    ReluVal / Neurify (the tool the paper uses for F#).

    Every neuron carries a pair of affine functions of the *network
    inputs* that bound it from below and above over the given input box.
    Affine layers transform these bounds exactly (up to rounding, which
    is accounted for in a per-equation error term); unstable ReLU nodes
    are relaxed with the standard chord (upper) and scaled-identity
    (lower) linear relaxations.  The result is usually far tighter than
    plain interval propagation because input dependencies survive the
    affine layers. *)

val propagate : Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Sound enclosure of [{F(x) | x in box}]. *)

val propagate_batch :
  Nncs_nn.Network.t -> Nncs_interval.Box.t array -> Nncs_interval.Box.t array
(** [propagate_batch net boxes] pushes all [k] boxes through the network
    in one pass per layer: the scratch planes widen to
    [leaves x neurons x m] blocks with per-leaf constant/error lanes, so
    the affine transform becomes a blocked matrix–matrix kernel that
    streams each weight once per batch instead of once per leaf.  Each
    leaf's float-operation sequence is the scalar one, so the result is
    bit-for-bit [Array.map (propagate net) boxes] — batching amortizes
    weight streaming and loop overhead, never summation order.  Raises
    [Invalid_argument] if any box's dimension differs from the network's
    input dimension. *)

val inverted_hull : float -> float -> Nncs_interval.Interval.t
(** The sound enclosure returned when an evaluated lower bound [lo]
    exceeds the upper bound [hi]: the ordered hull [[hi, lo]] inflated on
    both sides by an {e upper} bound of the gap [lo - hi] (the slack that
    produced the inversion).  Exposed for the adversarial-magnitude
    regression test: the gap must be computed with [Rounding.sub_up] —
    round-to-nearest can undershoot it and leave the hull not covering
    both original bounds. *)

val output_bounds :
  Nncs_nn.Network.t ->
  Nncs_interval.Box.t ->
  (float array * float * float array * float) array
(** For each output neuron, the final symbolic bounds
    [(lo_coeffs, lo_const, up_coeffs, up_const)] — exposed for
    inspection and tests. *)

(** Narrow hooks for the soundness regression tests; not part of the
    propagation API. *)
module Internal : sig
  val row_bounds :
    Nncs_interval.Box.t ->
    c:float array ->
    k:float ->
    e:float ->
    float * float
  (** [(lower, upper)] concrete bounds of the single symbolic row with
      coefficients [c], constant [k] and error term [e], evaluated over
      the box with the kernel's own row evaluators — the only way to
      exercise a poisoned {e coefficient} plane whose constant/error
      lanes stay finite. *)
end
