(** Process-wide sharded memo table for controller-abstraction (F#)
    results.

    Across a partitioned verification run — and, in a resident
    multi-query server, across {e jobs} — the same (network, previous
    command, input box) queries recur constantly: every control step of
    every cell re-abstracts boxes that earlier steps, other worker
    domains, or earlier jobs already saw.  This cache memoizes the
    output box of an abstract transformer keyed by (network id, command,
    tag, outward-quantized input box).

    {b Concurrency.} The table is thread-safe: entries are distributed
    over [config.shards] independent LRU tables, each behind its own
    mutex, chosen by a hash of the key.  The locking discipline is: at
    most one shard lock is ever held, and never across the underlying
    abstraction computation — a miss releases the lock, runs [f], and
    re-locks to insert.  Two domains missing on the same key
    concurrently may therefore both compute it; both results enclose F#
    of the same quantized box, so either is sound, and the insert keeps
    the incumbent.  Per-shard LRU is exact; the process-wide eviction
    order is only approximately LRU (each shard evicts its own oldest).

    Soundness of quantized lookup: the input box is widened outward onto
    a grid of pitch [quantum] before both the lookup and the underlying
    computation, so the stored output encloses [{F(x) | x in qbox}] for
    the *quantized* box — a superset of the true output for every box
    that quantizes to the same key.  A hit therefore returns a sound
    (possibly wider) enclosure; [quantum = 0.0] disables widening and
    only ever reuses bitwise-identical queries.

    Hit/miss/eviction totals are additionally published process-wide
    through [Nncs_obs.Metrics] under [nnabs.cache_hits] /
    [nnabs.cache_misses] / [nnabs.cache_evictions].

    {b Soundness of the key.} The cache knows nothing about network
    weights: [net_id] is trusted to identify the function being
    abstracted.  Because {!shared} keeps one table alive for the whole
    process — across analyses, worker domains and server jobs, possibly
    of entirely different systems — [net_id] MUST be a process-unique
    identity of the network (use [Nncs_nn.Network.uid], as
    [Controller.abstract_scores] does), never an index that is only
    meaningful within one controller.  Keying on a local index silently
    serves one network's abstraction boxes for another's, an unsound
    result with no warning. *)

type config = {
  capacity : int;
      (** maximum number of entries over all shards; each shard evicts
          its own oldest-used entry at [capacity / shards] *)
  quantum : float;  (** quantization grid pitch; 0.0 = exact keys *)
  shards : int;
      (** number of independently locked LRU tables (>= 1); 1 restores
          a single exactly-LRU table *)
}

val default_config : config
(** [{ capacity = 4096; quantum = 0.005; shards = 8 }] — the quantum is
    expressed in the network's (normalised) input units. *)

type t

val create : config -> t
(** A fresh, empty cache.  Raises [Invalid_argument] on a non-positive
    capacity or shard count, or a negative / non-finite quantum. *)

val shared : config -> t
(** The process-wide cache, created on first use and shared by every
    domain (thread-safe).  A subsequent call with a different [config]
    replaces the shared cache with a fresh one; callers running
    concurrent analyses should agree on one config. *)

val find_or_compute :
  t ->
  net_id:int ->
  cmd:int ->
  ?tag:int ->
  Nncs_interval.Box.t ->
  (Nncs_interval.Box.t -> Nncs_interval.Box.t) ->
  Nncs_interval.Box.t
(** [find_or_compute t ~net_id ~cmd ~tag box f] returns the cached
    output for the quantized key if present, else runs [f qbox] on the
    outward-quantized box (outside the shard lock), stores and returns
    the result.  [net_id] must uniquely identify the network across the
    table's whole lifetime — pass [Nncs_nn.Network.uid], not an array
    index (see the soundness note above).  [tag] (default 0)
    distinguishes otherwise-identical queries that must not share
    entries — e.g. different abstract domains or split depths. *)

val find_or_compute_batch :
  t ->
  net_id:int ->
  cmd:int ->
  ?tag:int ->
  Nncs_interval.Box.t array ->
  (Nncs_interval.Box.t array -> Nncs_interval.Box.t array) ->
  Nncs_interval.Box.t array
(** Batched {!find_or_compute} for queries sharing one
    [(net_id, cmd, tag)]: probes every query, then computes {e all}
    misses with a single [f] call on their outward-quantized boxes
    (outside any shard lock) — the hook for the blocked multi-leaf F#
    kernel.  Identical quantized keys within one call are deduplicated
    (computed once); inserts keep the incumbent, and each query's answer
    is the value actually stored, so results are exactly what the scalar
    sequence of [find_or_compute] calls would return when [f] is the
    batched form of the scalar transformer.  Raises [Invalid_argument]
    if [f] returns an array of a different length than its argument. *)

val quantize : float -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** The outward-quantized box ([quantum <= 0.0] returns the input
    unchanged).  Exposed for the soundness tests: the result always
    contains the argument. *)

type stats = { hits : int; misses : int; evictions : int; size : int }

val stats : t -> stats
(** This instance's totals summed over its shards (the process-wide
    sums live in [Nncs_obs.Metrics]).  Taken shard by shard, so the
    numbers are a consistent snapshot per shard but not across shards
    under concurrent use. *)

val shard_sizes : t -> int array
(** Current entry count of each shard (diagnostics: key spread). *)

val hit_rate : t -> float
(** [hits / (hits + misses)], 0.0 when empty. *)

val clear : t -> unit
(** Drop every entry (statistics are kept). *)
