(** Memo table for controller-abstraction (F#) results.

    Across a partitioned verification run the same (network, previous
    command, input box) queries recur constantly — every control step of
    every cell re-abstracts boxes that earlier steps already saw.  This
    cache memoizes the output box of an abstract transformer keyed by
    (network id, command, tag, outward-quantized input box).

    Soundness of quantized lookup: the input box is widened outward onto
    a grid of pitch [quantum] before both the lookup and the underlying
    computation, so the stored output encloses [{F(x) | x in qbox}] for
    the *quantized* box — a superset of the true output for every box
    that quantizes to the same key.  A hit therefore returns a sound
    (possibly wider) enclosure; [quantum = 0.0] disables widening and
    only ever reuses bitwise-identical queries.

    The table is NOT thread-safe; use one instance per worker domain
    ({!for_domain}).  Hit/miss/eviction totals are additionally
    published process-wide through [Nncs_obs.Metrics] under
    [nnabs.cache_hits] / [nnabs.cache_misses] / [nnabs.cache_evictions].

    {b Soundness of the key.} The cache knows nothing about network
    weights: [net_id] is trusted to identify the function being
    abstracted.  Because {!for_domain} keeps one table alive across
    successive analyses — possibly of entirely different systems —
    [net_id] MUST be a process-unique identity of the network (use
    [Nncs_nn.Network.uid], as [Controller.abstract_scores] does), never
    an index that is only meaningful within one controller.  Keying on
    a local index silently serves one network's abstraction boxes for
    another's, an unsound result with no warning. *)

type config = {
  capacity : int;  (** maximum number of entries; oldest-used evicted *)
  quantum : float;  (** quantization grid pitch; 0.0 = exact keys *)
}

val default_config : config
(** [{ capacity = 4096; quantum = 0.005 }] — the quantum is expressed in
    the network's (normalised) input units. *)

type t

val create : config -> t
(** A fresh, empty cache.  Raises [Invalid_argument] on a non-positive
    capacity or a negative / non-finite quantum. *)

val for_domain : config -> t
(** The calling domain's cache, created on first use (domain-local
    storage).  A subsequent call with a different [config] replaces the
    domain's cache with a fresh one. *)

val find_or_compute :
  t ->
  net_id:int ->
  cmd:int ->
  ?tag:int ->
  Nncs_interval.Box.t ->
  (Nncs_interval.Box.t -> Nncs_interval.Box.t) ->
  Nncs_interval.Box.t
(** [find_or_compute t ~net_id ~cmd ~tag box f] returns the cached
    output for the quantized key if present, else runs [f qbox] on the
    outward-quantized box, stores and returns the result.  [net_id]
    must uniquely identify the network across the table's whole
    lifetime — pass [Nncs_nn.Network.uid], not an array index (see the
    soundness note above).  [tag] (default 0) distinguishes
    otherwise-identical queries that must not share entries — e.g.
    different abstract domains or split depths. *)

val quantize : float -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** The outward-quantized box ([quantum <= 0.0] returns the input
    unchanged).  Exposed for the soundness tests: the result always
    contains the argument. *)

type stats = { hits : int; misses : int; evictions : int; size : int }

val stats : t -> stats
(** This instance's totals (the process-wide sums live in
    [Nncs_obs.Metrics]). *)

val hit_rate : t -> float
(** [hits / (hits + misses)], 0.0 when empty. *)

val clear : t -> unit
(** Drop every entry (statistics are kept). *)
