module B = Nncs_interval.Box

type domain = Interval | Symbolic | Affine

let domain_of_string = function
  | "interval" -> Interval
  | "symbolic" -> Symbolic
  | "affine" -> Affine
  | s -> invalid_arg (Printf.sprintf "Transformer.domain_of_string: unknown %S" s)

let domain_to_string = function
  | Interval -> "interval"
  | Symbolic -> "symbolic"
  | Affine -> "affine"

let propagate = function
  | Interval -> Interval_prop.propagate
  | Symbolic -> Symbolic_prop.propagate
  | Affine -> Affine_prop.propagate

let propagate_split domain ~splits net box =
  if splits < 0 then invalid_arg "Transformer.propagate_split: negative splits";
  let rec go depth box =
    if depth = 0 then propagate domain net box
    else
      let l, r = B.bisect_widest box in
      B.hull (go (depth - 1) l) (go (depth - 1) r)
  in
  go splits box

(* ----- batched entry points -----

   Only the symbolic kernel has a genuinely blocked batch path; the
   other domains fall back to mapping the scalar transformer, so every
   domain satisfies the same contract: the result is bit-for-bit the
   scalar map. *)

let propagate_batch domain net boxes =
  match domain with
  | Symbolic -> Symbolic_prop.propagate_batch net boxes
  | Interval | Affine -> Array.map (propagate domain net) boxes

let propagate_split_batch domain ~splits net boxes =
  if splits < 0 then
    invalid_arg "Transformer.propagate_split_batch: negative splits";
  if splits = 0 then propagate_batch domain net boxes
  else
    match domain with
    | Interval | Affine -> Array.map (propagate_split domain ~splits net) boxes
    | Symbolic ->
        (* Expand every box into its 2^splits bisection leaves (the same
           widest-dimension recursion as [propagate_split], left leaves
           first), batch all lanes through one kernel call, then rebuild
           each box's hull tree in the scalar association order — hull is
           a pure function of the leaf values, so the result matches the
           scalar recursion bitwise. *)
        let leaves_per = 1 lsl splits in
        let k = Array.length boxes in
        let lanes =
          Array.concat
            (Array.to_list
               (Array.map
                  (fun box ->
                    let acc = ref [] in
                    let rec expand depth box =
                      if depth = 0 then acc := box :: !acc
                      else
                        let l, r = B.bisect_widest box in
                        expand (depth - 1) l;
                        expand (depth - 1) r
                    in
                    expand splits box;
                    Array.of_list (List.rev !acc))
                  boxes))
        in
        let outs = Symbolic_prop.propagate_batch net lanes in
        Array.init k (fun b ->
            let next = ref (b * leaves_per) in
            let rec rebuild depth =
              if depth = 0 then begin
                let v = outs.(!next) in
                incr next;
                v
              end
              else
                let l = rebuild (depth - 1) in
                let r = rebuild (depth - 1) in
                B.hull l r
            in
            rebuild splits)

let meet_all domains net box =
  match domains with
  | [] -> invalid_arg "Transformer.meet_all: no domains"
  | d :: rest ->
      List.fold_left
        (fun acc d ->
          match B.meet acc (propagate d net box) with
          | Some m -> m
          | None -> acc)
        (propagate d net box) rest
