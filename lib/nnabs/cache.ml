module B = Nncs_interval.Box
module I = Nncs_interval.Interval
module Metrics = Nncs_obs.Metrics

let m_hits = Metrics.counter "nnabs.cache_hits"
let m_misses = Metrics.counter "nnabs.cache_misses"
let m_evictions = Metrics.counter "nnabs.cache_evictions"

type config = { capacity : int; quantum : float; shards : int }

let default_config = { capacity = 4096; quantum = 0.005; shards = 8 }

type key = { net_id : int; cmd : int; tag : int; bounds : (float * float) array }

(* Intrusive doubly-linked LRU list threaded through the entries; the
   sentinel's [next] is the most recently used entry, its [prev] the
   next eviction victim. *)
type entry = {
  key : key;
  value : B.t;
  mutable prev : entry;
  mutable next : entry;
}

(* One shard: an independent LRU table behind its own mutex.  The shard
   of a key is a pure function of the key, so no operation ever needs
   two shard locks — the locking discipline is "at most one shard lock,
   never held across the abstraction computation". *)
type shard = {
  lock : Mutex.t;
  table : (key, entry) Hashtbl.t;
  sentinel : entry;
  capacity : int;  (* per-shard entry bound *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = { config : config; shards : shard array }

let make_sentinel () =
  let rec sentinel =
    {
      key = { net_id = -1; cmd = -1; tag = 0; bounds = [||] };
      value = B.of_intervals [| I.zero |];
      prev = sentinel;
      next = sentinel;
    }
  in
  sentinel

let create (config : config) =
  if config.capacity <= 0 then invalid_arg "Cache.create: non-positive capacity";
  if not (Float.is_finite config.quantum) || config.quantum < 0.0 then
    invalid_arg "Cache.create: quantum must be finite and >= 0";
  if config.shards <= 0 then invalid_arg "Cache.create: non-positive shards";
  let per_shard =
    max 1 ((config.capacity + config.shards - 1) / config.shards)
  in
  {
    config;
    shards =
      Array.init config.shards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create (min per_shard 1024);
            sentinel = make_sentinel ();
            capacity = per_shard;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
  }

let with_lock sh f =
  Mutex.lock sh.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front sh e =
  e.next <- sh.sentinel.next;
  e.prev <- sh.sentinel;
  sh.sentinel.next.prev <- e;
  sh.sentinel.next <- e

(* Outward snap of one bound to the grid.  [floor (lo / q) * q] is
   computed in round-to-nearest, so it can land on the wrong side of
   [lo] — and once |lo| / q approaches 2^52 (or the division overflows)
   the error can exceed [q], or [q] can fall below one ulp of [s] so a
   single subtraction no longer moves it.  The correction therefore
   loops (bounded, since each step either moves [s] or proves it
   stuck), and any failure to restore containment — non-finite [s],
   stuck subtraction — falls back to the raw bound, which trivially
   satisfies the invariant at the price of an unaligned (rarely shared)
   key.  [+. 0.0] normalises -0.0 so structurally equal keys hash
   equally. *)
let max_correction_steps = 4

let snap_down q lo =
  let s = ref (Float.floor (lo /. q) *. q) in
  let n = ref 0 in
  while Float.is_finite !s && !s > lo && !n < max_correction_steps do
    let s' = !s -. q in
    if s' < !s then s := s' else n := max_correction_steps;
    incr n
  done;
  (if Float.is_finite !s && !s <= lo then !s else lo) +. 0.0
[@@lint.fp_exact
  "quantization is containment-checked: the loop verifies s <= lo and \
   falls back to the raw bound otherwise (see comment above)"]

let snap_up q hi =
  let s = ref (Float.ceil (hi /. q) *. q) in
  let n = ref 0 in
  while Float.is_finite !s && !s < hi && !n < max_correction_steps do
    let s' = !s +. q in
    if s' > !s then s := s' else n := max_correction_steps;
    incr n
  done;
  (if Float.is_finite !s && !s >= hi then !s else hi) +. 0.0
[@@lint.fp_exact "containment-checked, mirror of snap_down"]

let quantize_bounds quantum box =
  Array.init (B.dim box) (fun k ->
      let iv = B.get box k in
      let lo = I.lo iv and hi = I.hi iv in
      if quantum <= 0.0 then
        (lo +. 0.0, hi +. 0.0)
        [@lint.fp_exact "+. 0.0 only normalises -0.0 for key hashing"]
      else (snap_down quantum lo, snap_up quantum hi))

let quantize quantum box =
  if quantum <= 0.0 then box else B.of_bounds (quantize_bounds quantum box)

let shard_for t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find_or_compute t ~net_id ~cmd ?(tag = 0) box f =
  let bounds = quantize_bounds t.config.quantum box in
  let key = { net_id; cmd; tag; bounds } in
  let sh = shard_for t key in
  let cached =
    with_lock sh (fun () ->
        match Hashtbl.find_opt sh.table key with
        | Some e ->
            sh.hits <- sh.hits + 1;
            unlink e;
            push_front sh e;
            Some e.value
        | None ->
            sh.misses <- sh.misses + 1;
            None)
  in
  match cached with
  | Some v ->
      Metrics.incr m_hits;
      v
  | None ->
      Metrics.incr m_misses;
      (* the abstraction runs OUTSIDE the shard lock: F# is the
         expensive part, and holding the lock here would serialize every
         domain whose keys land on this shard.  The price is that two
         domains missing on the same key concurrently both compute it —
         both results enclose F# of the same quantized box, so either is
         sound; the insert below keeps the incumbent to maximise
         sharing. *)
      let qbox = if t.config.quantum <= 0.0 then box else B.of_bounds bounds in
      let value = f qbox in
      with_lock sh (fun () ->
          match Hashtbl.find_opt sh.table key with
          | Some e ->
              unlink e;
              push_front sh e;
              e.value
          | None ->
              if Hashtbl.length sh.table >= sh.capacity then begin
                let victim = sh.sentinel.prev in
                unlink victim;
                Hashtbl.remove sh.table victim.key;
                sh.evictions <- sh.evictions + 1;
                Metrics.incr m_evictions
              end;
              let e = { key; value; prev = sh.sentinel; next = sh.sentinel } in
              Hashtbl.replace sh.table key e;
              push_front sh e;
              value)

(* Batched lookup: probe every query first, then compute all misses in
   one [f] call (the batched F# kernel), deduplicating identical
   quantized keys so a key is computed at most once per call — exactly
   what the scalar path would produce, since the second scalar miss
   would either hit the freshly inserted entry or recompute the same
   bitwise value.  Inserts keep the incumbent like [find_or_compute],
   and the answer for every query is the value actually stored. *)
let find_or_compute_batch t ~net_id ~cmd ?(tag = 0) boxes f =
  let n = Array.length boxes in
  if n = 0 then [||]
  else begin
    let keys =
      Array.map
        (fun box -> { net_id; cmd; tag; bounds = quantize_bounds t.config.quantum box })
        boxes
    in
    let out : B.t option array = Array.make n None in
    Array.iteri
      (fun i key ->
        let sh = shard_for t key in
        let cached =
          with_lock sh (fun () ->
              match Hashtbl.find_opt sh.table key with
              | Some e ->
                  sh.hits <- sh.hits + 1;
                  unlink e;
                  push_front sh e;
                  Some e.value
              | None ->
                  sh.misses <- sh.misses + 1;
                  None)
        in
        match cached with
        | Some v ->
            Metrics.incr m_hits;
            out.(i) <- Some v
        | None -> Metrics.incr m_misses)
      keys;
    (* unique miss keys, first-occurrence order *)
    let first_of : (key, int) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    Array.iteri
      (fun i key ->
        if Option.is_none out.(i) && not (Hashtbl.mem first_of key) then begin
          Hashtbl.add first_of key i;
          order := i :: !order
        end)
      keys;
    let miss_idx = Array.of_list (List.rev !order) in
    if Array.length miss_idx > 0 then begin
      let qboxes =
        Array.map
          (fun i ->
            if t.config.quantum <= 0.0 then boxes.(i)
            else B.of_bounds keys.(i).bounds)
          miss_idx
      in
      let values = f qboxes in
      if Array.length values <> Array.length miss_idx then
        invalid_arg "Cache.find_or_compute_batch: compute arity mismatch";
      let resolved : (key, B.t) Hashtbl.t =
        Hashtbl.create (Array.length miss_idx)
      in
      Array.iteri
        (fun j i ->
          let key = keys.(i) in
          let value = values.(j) in
          let sh = shard_for t key in
          let stored =
            with_lock sh (fun () ->
                match Hashtbl.find_opt sh.table key with
                | Some e ->
                    unlink e;
                    push_front sh e;
                    e.value
                | None ->
                    if Hashtbl.length sh.table >= sh.capacity then begin
                      let victim = sh.sentinel.prev in
                      unlink victim;
                      Hashtbl.remove sh.table victim.key;
                      sh.evictions <- sh.evictions + 1;
                      Metrics.incr m_evictions
                    end;
                    let e =
                      { key; value; prev = sh.sentinel; next = sh.sentinel }
                    in
                    Hashtbl.replace sh.table key e;
                    push_front sh e;
                    value)
          in
          Hashtbl.replace resolved key stored)
        miss_idx;
      Array.iteri
        (fun i key ->
          if Option.is_none out.(i) then
            out.(i) <- Some (Hashtbl.find resolved key))
        keys
    end;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every query is a hit or a resolved miss *))
      out
  end

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats (t : t) =
  Array.fold_left
    (fun acc sh ->
      with_lock sh (fun () ->
          {
            hits = acc.hits + sh.hits;
            misses = acc.misses + sh.misses;
            evictions = acc.evictions + sh.evictions;
            size = acc.size + Hashtbl.length sh.table;
          }))
    { hits = 0; misses = 0; evictions = 0; size = 0 }
    t.shards

let shard_sizes (t : t) =
  Array.map (fun sh -> with_lock sh (fun () -> Hashtbl.length sh.table)) t.shards

let hit_rate (t : t) =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0
  else
    (float_of_int s.hits /. float_of_int total)
    [@lint.fp_exact "telemetry ratio"]

let clear t =
  Array.iter
    (fun sh ->
      with_lock sh (fun () ->
          Hashtbl.reset sh.table;
          sh.sentinel.next <- sh.sentinel;
          sh.sentinel.prev <- sh.sentinel))
    t.shards

(* One cache per process: every worker domain — and, in a resident
   server, every job dispatched on any domain — shares the same sharded
   table, so an F# box computed once is reusable across the whole
   process lifetime.  The slot swap is mutex-protected; the table itself
   is safe to use concurrently (per-shard locks). *)
let shared_mutex = Mutex.create ()
let shared_slot : (config * t) option ref = ref None
[@@lint.guarded_by "shared_mutex"]

let shared config =
  Mutex.lock shared_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock shared_mutex)
    (fun () ->
      match !shared_slot with
      | Some (c, t) when c = config -> t
      | _ ->
          let t = create config in
          shared_slot := Some (config, t);
          t)
