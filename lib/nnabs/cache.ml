module B = Nncs_interval.Box
module I = Nncs_interval.Interval
module Metrics = Nncs_obs.Metrics

let m_hits = Metrics.counter "nnabs.cache_hits"
let m_misses = Metrics.counter "nnabs.cache_misses"
let m_evictions = Metrics.counter "nnabs.cache_evictions"

type config = { capacity : int; quantum : float }

let default_config = { capacity = 4096; quantum = 0.005 }

type key = { net_id : int; cmd : int; tag : int; bounds : (float * float) array }

(* Intrusive doubly-linked LRU list threaded through the entries; the
   sentinel's [next] is the most recently used entry, its [prev] the
   next eviction victim. *)
type entry = {
  key : key;
  value : B.t;
  mutable prev : entry;
  mutable next : entry;
}

type t = {
  config : config;
  table : (key, entry) Hashtbl.t;
  sentinel : entry;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create config =
  if config.capacity <= 0 then invalid_arg "Cache.create: non-positive capacity";
  if not (Float.is_finite config.quantum) || config.quantum < 0.0 then
    invalid_arg "Cache.create: quantum must be finite and >= 0";
  let rec sentinel =
    {
      key = { net_id = -1; cmd = -1; tag = 0; bounds = [||] };
      value = B.of_intervals [| I.zero |];
      prev = sentinel;
      next = sentinel;
    }
  in
  {
    config;
    table = Hashtbl.create (min config.capacity 1024);
    sentinel;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front t e =
  e.next <- t.sentinel.next;
  e.prev <- t.sentinel;
  t.sentinel.next.prev <- e;
  t.sentinel.next <- e

(* Outward snap of one bound to the grid.  [floor (lo / q) * q] is
   computed in round-to-nearest, so it can land on the wrong side of
   [lo] — and once |lo| / q approaches 2^52 (or the division overflows)
   the error can exceed [q], or [q] can fall below one ulp of [s] so a
   single subtraction no longer moves it.  The correction therefore
   loops (bounded, since each step either moves [s] or proves it
   stuck), and any failure to restore containment — non-finite [s],
   stuck subtraction — falls back to the raw bound, which trivially
   satisfies the invariant at the price of an unaligned (rarely shared)
   key.  [+. 0.0] normalises -0.0 so structurally equal keys hash
   equally. *)
let max_correction_steps = 4

let snap_down q lo =
  let s = ref (Float.floor (lo /. q) *. q) in
  let n = ref 0 in
  while Float.is_finite !s && !s > lo && !n < max_correction_steps do
    let s' = !s -. q in
    if s' < !s then s := s' else n := max_correction_steps;
    incr n
  done;
  (if Float.is_finite !s && !s <= lo then !s else lo) +. 0.0
[@@lint.fp_exact
  "quantization is containment-checked: the loop verifies s <= lo and \
   falls back to the raw bound otherwise (see comment above)"]

let snap_up q hi =
  let s = ref (Float.ceil (hi /. q) *. q) in
  let n = ref 0 in
  while Float.is_finite !s && !s < hi && !n < max_correction_steps do
    let s' = !s +. q in
    if s' > !s then s := s' else n := max_correction_steps;
    incr n
  done;
  (if Float.is_finite !s && !s >= hi then !s else hi) +. 0.0
[@@lint.fp_exact "containment-checked, mirror of snap_down"]

let quantize_bounds quantum box =
  Array.init (B.dim box) (fun k ->
      let iv = B.get box k in
      let lo = I.lo iv and hi = I.hi iv in
      if quantum <= 0.0 then
        (lo +. 0.0, hi +. 0.0)
        [@lint.fp_exact "+. 0.0 only normalises -0.0 for key hashing"]
      else (snap_down quantum lo, snap_up quantum hi))

let quantize quantum box =
  if quantum <= 0.0 then box else B.of_bounds (quantize_bounds quantum box)

let find_or_compute t ~net_id ~cmd ?(tag = 0) box f =
  let bounds = quantize_bounds t.config.quantum box in
  let key = { net_id; cmd; tag; bounds } in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      Metrics.incr m_hits;
      unlink e;
      push_front t e;
      e.value
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr m_misses;
      let qbox = if t.config.quantum <= 0.0 then box else B.of_bounds bounds in
      let value = f qbox in
      if Hashtbl.length t.table >= t.config.capacity then begin
        let victim = t.sentinel.prev in
        unlink victim;
        Hashtbl.remove t.table victim.key;
        t.evictions <- t.evictions + 1;
        Metrics.incr m_evictions
      end;
      let e = { key; value; prev = t.sentinel; next = t.sentinel } in
      Hashtbl.replace t.table key e;
      push_front t e;
      value

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    size = Hashtbl.length t.table;
  }

let hit_rate (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0
  else
    (float_of_int t.hits /. float_of_int total)
    [@lint.fp_exact "telemetry ratio"]

let clear t =
  Hashtbl.reset t.table;
  t.sentinel.next <- t.sentinel;
  t.sentinel.prev <- t.sentinel

(* One cache per domain: worker domains of [Verify.verify_partition]
   never share mutable state, and a single-domain driver keeps its cache
   warm across successive [Reach] calls. *)
let dls_key : (config * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let for_domain config =
  let slot = Domain.DLS.get dls_key in
  match !slot with
  | Some (c, t) when c = config -> t
  | _ ->
      let t = create config in
      slot := Some (config, t);
      t
