module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module R = Nncs_interval.Rounding
module A = Nncs_affine.Affine_form
module Mat = Nncs_linalg.Mat
module Net = Nncs_nn.Network

let relu_relax form =
  let iv = A.to_interval form in
  let l = I.lo iv and u = I.hi iv in
  if l >= 0.0 then form
  else if u <= 0.0 then A.of_float 0.0
  else begin
    (* Chebyshev-style relaxation: relu(v) in lam*v + mu +/- mu for
       v in [l, u], with lam = u/(u-l) and mu = -lam*l/2.  The chord
       lam*(v - l) dominates relu and the gap to relu is at most -lam*l,
       so centering halves the error term. *)
    let lam_iv = I.div (I.of_float u) (I.sub (I.of_float u) (I.of_float l)) in
    let lam = I.mid lam_iv in
    let mu_iv =
      I.mul_float 0.5 (I.neg (I.mul lam_iv (I.of_float l)))
    in
    let mu = I.mid mu_iv in
    let scaled = A.add_const (A.scale lam form) mu in
    (* error budget: the relaxation half-width, the slope rounding over
       the value range, and the centering rounding *)
    let base = Float.abs (I.hi mu_iv) in
    let slope_slack = R.mul_up (I.width lam_iv) (I.mag iv) in
    let mu_slack = I.width mu_iv in
    A.add_error scaled (R.add_up base (R.add_up slope_slack mu_slack))
  end

let layer_out l forms =
  let w = l.Net.weights and b = l.Net.biases in
  let out =
    Array.init (Mat.rows w) (fun i ->
        let terms = ref [] in
        for j = Mat.cols w - 1 downto 0 do
          let wij = Mat.get w i j in
          if (wij <> 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then terms := (wij, forms.(j)) :: !terms
        done;
        match !terms with
        | [] -> A.of_float b.(i)
        | terms -> A.linear_combination terms b.(i))
  in
  match l.Net.activation with
  | Nncs_nn.Activation.Linear -> out
  | Nncs_nn.Activation.Relu -> Array.map relu_relax out

let propagate net box =
  if B.dim box <> Net.input_dim net then
    invalid_arg "Affine_prop.propagate: input dimension mismatch";
  let inputs = Array.map A.of_interval (B.to_array box) in
  let out = Array.fold_left (fun v l -> layer_out l v) inputs net.Net.layers in
  B.of_intervals (Array.map A.to_interval out)
