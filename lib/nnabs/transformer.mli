(** Uniform interface over the network abstract transformers F#, plus an
    input-splitting refinement wrapper. *)

type domain = Interval | Symbolic | Affine

val domain_of_string : string -> domain
val domain_to_string : domain -> string

val propagate :
  domain -> Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Sound box enclosure of the network image of the input box. *)

val propagate_split :
  domain ->
  splits:int ->
  Nncs_nn.Network.t ->
  Nncs_interval.Box.t ->
  Nncs_interval.Box.t
(** Recursively bisect the input box along its widest dimension [splits]
    times (2^splits sub-boxes), propagate each, and hull the results —
    tighter, at exponential cost in [splits]. *)

val propagate_batch :
  domain ->
  Nncs_nn.Network.t ->
  Nncs_interval.Box.t array ->
  Nncs_interval.Box.t array
(** Batched [propagate]: bit-for-bit [Array.map (propagate domain net)].
    The [Symbolic] domain runs the blocked multi-leaf kernel
    ({!Symbolic_prop.propagate_batch}); the other domains map the scalar
    transformer. *)

val propagate_split_batch :
  domain ->
  splits:int ->
  Nncs_nn.Network.t ->
  Nncs_interval.Box.t array ->
  Nncs_interval.Box.t array
(** Batched [propagate_split]: bit-for-bit
    [Array.map (propagate_split domain ~splits net)].  For [Symbolic]
    all [k * 2^splits] bisection leaves go through one blocked kernel
    call and each box's hull tree is rebuilt in the scalar association
    order. *)

val meet_all : domain list -> Nncs_nn.Network.t -> Nncs_interval.Box.t -> Nncs_interval.Box.t
(** Intersection of the enclosures from several domains (all sound, so
    the meet is sound and at least as tight as each). *)
