module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module R = Nncs_interval.Rounding
module Mat = Nncs_linalg.Mat
module Net = Nncs_nn.Network
module Span = Nncs_obs.Span
module Metrics = Nncs_obs.Metrics

let m_neurons = Metrics.counter "nnabs.relu_neurons"

(* unstable = straddling 0, requiring the chord relaxation (the neuron a
   complete verifier would case-split on) *)
let m_unstable = Metrics.counter "nnabs.unstable_neurons"

let ulp_unit = 0x1.0p-53

(* Upper bound on the sum of rounding errors of an inner-product style
   accumulation: n operations whose partial results are bounded by
   [absacc] (the sum of absolute values of the terms). *)
let accumulation_error n absacc =
  2.0 *. float_of_int (n + 2) *. ulp_unit *. absacc

(* max |x_k| over the input box, floored at 1 so constant-term rounding
   is also covered when folded with the same factor *)
let input_magnitude box =
  let m = ref 1.0 in
  for k = 0 to B.dim box - 1 do
    m := Float.max !m (I.mag (B.get box k))
  done;
  !m

(* ----- dense kernel state -----

   A plane holds one side (lower or upper) of the symbolic bounds of a
   whole layer: for n neurons over m network inputs, the affine
   coefficients live in one flat row-major n*m array, with per-neuron
   constant and accumulated-error terms alongside.  Every neuron's value
   satisfies  lo(x) - lo_err <= value(x) <= up(x) + up_err  over the
   input box.  The four planes (lower/upper x current/next) are scratch
   buffers owned by the calling domain and reused across layers and
   calls, so the hot loop performs no per-neuron allocation. *)

type plane = {
  mutable c : float array;  (* row-major n*m coefficients *)
  mutable k : float array;  (* n constant terms *)
  mutable e : float array;  (* n error bounds, >= 0 *)
}

let make_plane () = { c = [||]; k = [||]; e = [||] }

let ensure p n m =
  if Array.length p.c < n * m then p.c <- Array.make (n * m) 0.0;
  if Array.length p.k < n then p.k <- Array.make n 0.0;
  if Array.length p.e < n then p.e <- Array.make n 0.0

type scratch = {
  mutable cur_lo : plane;
  mutable cur_up : plane;
  mutable nxt_lo : plane;
  mutable nxt_up : plane;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        cur_lo = make_plane ();
        cur_up = make_plane ();
        nxt_lo = make_plane ();
        nxt_up = make_plane ();
      })

let swap s =
  let l = s.cur_lo and u = s.cur_up in
  s.cur_lo <- s.nxt_lo;
  s.cur_up <- s.nxt_up;
  s.nxt_lo <- l;
  s.nxt_up <- u

(* Concrete bounds of row [i] of a plane over the input box, outward
   rounded.

   A non-finite plane coefficient poisons the whole row: the sign tests
   below are both false for NaN (silently dropping the term — an
   unsoundly *finite* bound), and an infinite coefficient of the wrong
   sign could even drive the accumulator to the unsound side.  Bail out
   to the conservative infinity instead; the same guard maps a NaN
   accumulator (e.g. a NaN constant or error term) to infinity. *)
let eval_upper_row box p i m =
  let off = i * m in
  let acc = ref (R.add_up p.k.(i) p.e.(i)) in
  (try
     for kk = 0 to m - 1 do
       let c = p.c.(off + kk) in
       if not (Float.is_finite c) then begin
         acc := Float.infinity;
         raise Exit
       end;
       if c > 0.0 then acc := R.add_up !acc (R.mul_up c (I.hi (B.get box kk)))
       else if c < 0.0 then
         acc := R.add_up !acc (R.mul_up c (I.lo (B.get box kk)))
     done
   with Exit -> ());
  if Float.is_nan !acc then Float.infinity else !acc

let eval_lower_row box p i m =
  let off = i * m in
  let acc = ref (R.sub_down p.k.(i) p.e.(i)) in
  (try
     for kk = 0 to m - 1 do
       let c = p.c.(off + kk) in
       if not (Float.is_finite c) then begin
         acc := Float.neg_infinity;
         raise Exit
       end;
       if c > 0.0 then acc := R.add_down !acc (R.mul_down c (I.lo (B.get box kk)))
       else if c < 0.0 then
         acc := R.add_down !acc (R.mul_down c (I.hi (B.get box kk)))
     done
   with Exit -> ());
  if Float.is_nan !acc then Float.neg_infinity else !acc

(* The output interval when the two evaluated bounds contradict each
   other ([lo > hi]): each bound is only sound up to the slack that
   produced the inversion, so widen the ordered hull by that amount on
   both sides instead of silently swapping the endpoints (which would
   claim a tighter interval than either bound supports).  The width
   [d = lo - hi] must itself be rounded *up*: computed round-to-nearest
   it can undershoot the true gap, leaving the inflated hull short of
   covering both original bounds (observable when [hi] is within an ulp
   of the gap — see the adversarial-magnitude regression test). *)
let inverted_hull lo hi =
  let d = R.sub_up lo hi in
  I.inflate (I.make hi lo) d

let zero_row p i m =
  Array.fill p.c (i * m) m 0.0;
  p.k.(i) <- 0.0;
  p.e.(i) <- 0.0

(* The affine layer: dst = W * src + b on both bound planes at once.
   Positive weights pull from the same-side plane, negative weights from
   the opposite side; per-row rounding is folded into the error term
   exactly as an inner-product accumulation of nterms*(m+1)+1 ops. *)
let affine_rows ~xmag w b m src_lo src_up dst_lo dst_up =
  let n = Mat.rows w and cols = Mat.cols w in
  ensure dst_lo n m;
  ensure dst_up n m;
  for i = 0 to n - 1 do
    let off = i * m in
    Array.fill dst_lo.c off m 0.0;
    Array.fill dst_up.c off m 0.0;
    let bi = b.(i) in
    let up_const = ref bi and lo_const = ref bi in
    let up_abs = ref (Float.abs bi) and lo_abs = ref (Float.abs bi) in
    let up_err = ref 0.0 and lo_err = ref 0.0 in
    let nterms = ref 0 in
    for j = 0 to cols - 1 do
      let wij = Mat.get w i j in
      if (wij <> 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then begin
        incr nterms;
        let su, sl = if wij > 0.0 then (src_up, src_lo) else (src_lo, src_up) in
        let joff = j * m in
        for kk = 0 to m - 1 do
          let p = wij *. su.c.(joff + kk) in
          dst_up.c.(off + kk) <- dst_up.c.(off + kk) +. p;
          up_abs := !up_abs +. Float.abs p
        done;
        let pc = wij *. su.k.(j) in
        up_const := !up_const +. pc;
        up_abs := !up_abs +. Float.abs pc;
        up_err := R.add_up !up_err (R.mul_up (Float.abs wij) su.e.(j));
        for kk = 0 to m - 1 do
          let p = wij *. sl.c.(joff + kk) in
          dst_lo.c.(off + kk) <- dst_lo.c.(off + kk) +. p;
          lo_abs := !lo_abs +. Float.abs p
        done;
        let pc = wij *. sl.k.(j) in
        lo_const := !lo_const +. pc;
        lo_abs := !lo_abs +. Float.abs pc;
        lo_err := R.add_up !lo_err (R.mul_up (Float.abs wij) sl.e.(j))
      end
    done;
    dst_up.k.(i) <- !up_const;
    dst_lo.k.(i) <- !lo_const;
    if !nterms = 0 then begin
      dst_up.e.(i) <- 0.0;
      dst_lo.e.(i) <- 0.0
    end
    else begin
      let nops = (!nterms * (m + 1)) + 1 in
      dst_up.e.(i) <- R.add_up !up_err (accumulation_error nops (!up_abs *. xmag));
      dst_lo.e.(i) <- R.add_up !lo_err (accumulation_error nops (!lo_abs *. xmag))
    end
  done

(* The chord slope u / (u - l) for an unstable node, as an interval to
   bound the float division error. *)
let chord_slope l u =
  I.div (I.of_float u) (I.sub (I.of_float u) (I.of_float l))

(* Row i scaled in place by [lam] with [bias] added: the single-term
   affine combination, with its rounding folded into the error term. *)
let scale_row ~xmag p i m lam bias =
  let off = i * m in
  let absacc = ref (Float.abs bias) in
  for kk = 0 to m - 1 do
    let pr = lam *. p.c.(off + kk) in
    p.c.(off + kk) <- pr;
    absacc := !absacc +. Float.abs pr
  done;
  let pc = lam *. p.k.(i) in
  p.k.(i) <- bias +. pc;
  absacc := !absacc +. Float.abs pc;
  let err = R.add_up 0.0 (R.mul_up (Float.abs lam) p.e.(i)) in
  p.e.(i) <- R.add_up err (accumulation_error (m + 2) (!absacc *. xmag))

(* ReLU relaxation of a whole layer in place (ReluVal/Neurify rules);
   counts straddling neurons into [unstable].  [row0] offsets the plane
   rows: the batched kernel stores leaf [l]'s layer as rows
   [l*n .. l*n+n-1] of one wide plane and relaxes each leaf block with
   this same code, so the per-leaf float-op sequence is identical to the
   scalar path's. *)
let relu_rows ~unstable ~xmag ?(row0 = 0) box p_lo p_up n m =
  for i0 = 0 to n - 1 do
    let i = row0 + i0 in
    let l_lo = eval_lower_row box p_lo i m
    and u_up = eval_upper_row box p_up i m in
    if l_lo >= 0.0 then () (* stable active *)
    else if u_up <= 0.0 then begin
      (* stable inactive *)
      zero_row p_lo i m;
      zero_row p_up i m
    end
    else begin
      Stdlib.incr unstable;
      (* upper: relu(v) <= lam * (v - l) for v in [l, u], lam = u/(u-l),
         applied to the upper equation with its own concrete lower bound *)
      let l_up = eval_lower_row box p_up i m in
      if l_up >= 0.0 then ()
      else begin
        let lam_iv = chord_slope l_up u_up in
        let lam = I.mid lam_iv in
        (* bias -lam*l_up, slope error |lam' - lam| * (u - l) folded in *)
        scale_row ~xmag p_up i m lam (-.lam *. l_up);
        let slope_slack = R.mul_up (I.width lam_iv) (R.sub_up u_up l_up) in
        let bias_slack =
          (* -lam*l_up computed in float: one mul rounding *)
          R.mul_up 4.0 (R.mul_up ulp_unit (Float.abs (lam *. l_up)))
        in
        p_up.e.(i) <- R.add_up p_up.e.(i) (R.add_up slope_slack bias_slack)
      end;
      (* lower: relu(v) >= lam * v for v in [l, u], lam = u/(u-l) in [0,1],
         applied to the lower equation with its own concrete bounds *)
      let u_lo = eval_upper_row box p_lo i m in
      if u_lo <= 0.0 then zero_row p_lo i m
      else begin
        let l = l_lo and u = u_lo in
        let lam_iv = chord_slope l u in
        let lam = I.mid lam_iv in
        scale_row ~xmag p_lo i m lam 0.0;
        let slope_slack =
          R.mul_up (I.width lam_iv) (Float.max (Float.abs l) (Float.abs u))
        in
        p_lo.e.(i) <- R.add_up p_lo.e.(i) slope_slack
      end
    end
  done

(* Run the whole network through the domain's scratch planes; afterwards
   [cur_lo]/[cur_up] hold the output layer's bounds.  Callers must
   materialise what they need before the next propagation reuses the
   buffers. *)
let propagate_planes net box =
  if B.dim box <> Net.input_dim net then
    invalid_arg "Symbolic_prop.propagate: input dimension mismatch";
  let xmag = input_magnitude box in
  let m = B.dim box in
  let s = Domain.DLS.get scratch_key in
  ensure s.cur_lo m m;
  ensure s.cur_up m m;
  for i = 0 to m - 1 do
    let off = i * m in
    Array.fill s.cur_lo.c off m 0.0;
    Array.fill s.cur_up.c off m 0.0;
    s.cur_lo.c.(off + i) <- 1.0;
    s.cur_up.c.(off + i) <- 1.0;
    s.cur_lo.k.(i) <- 0.0;
    s.cur_up.k.(i) <- 0.0;
    s.cur_lo.e.(i) <- 0.0;
    s.cur_up.e.(i) <- 0.0
  done;
  let n = ref m in
  Array.iteri
    (fun li l ->
      Span.with_ "nnabs.layer"
        ~attrs:
          [
            ("layer", Nncs_obs.Trace.Int li);
            ("neurons", Int (Mat.rows l.Net.weights));
          ]
        (fun () ->
          let rows = Mat.rows l.Net.weights in
          affine_rows ~xmag l.Net.weights l.Net.biases m s.cur_lo s.cur_up
            s.nxt_lo s.nxt_up;
          (match l.Net.activation with
          | Nncs_nn.Activation.Linear -> ()
          | Nncs_nn.Activation.Relu ->
              (* aggregate locally, publish once per layer: the per-neuron
                 hot loop never touches the shared atomics *)
              let unstable = ref 0 in
              relu_rows ~unstable ~xmag box s.nxt_lo s.nxt_up rows m;
              Metrics.add m_neurons rows;
              Metrics.add m_unstable !unstable);
          swap s;
          n := rows))
    net.Net.layers;
  (s, !n, m)

let propagate net box =
  let s, n, m = propagate_planes net box in
  B.of_intervals
    (Array.init n (fun i ->
         let lo = eval_lower_row box s.cur_lo i m
         and hi = eval_upper_row box s.cur_up i m in
         if lo <= hi then I.make lo hi else inverted_hull lo hi))

let output_bounds net box =
  let s, n, m = propagate_planes net box in
  Array.init n (fun i ->
      let off = i * m in
      ( Array.sub s.cur_lo.c off m,
        s.cur_lo.k.(i),
        Array.sub s.cur_up.c off m,
        s.cur_up.k.(i) ))

(* ----- batched kernel -----

   The batch path pushes [k] input boxes through the network in one pass
   per layer.  The scratch planes widen from [n x m] panels to k-leaf
   blocks: leaf [l]'s neuron [i] lives at plane row [l*n + i]
   (leaves x neurons x m row-major, with per-leaf constant/error lanes
   at the same row index), so the affine transform becomes a blocked
   matrix-matrix kernel that streams each weight [wij] once across the
   whole batch instead of once per leaf.

   Bitwise determinism: for a fixed leaf the float operations execute in
   exactly the scalar order — the leaf loop only sits *between* the
   weight loop and the inner accumulation, never inside a single leaf's
   dependency chain — and each leaf keeps its own accumulators, error
   lanes, and input magnitude.  [propagate_batch net boxes] is therefore
   bit-for-bit [Array.map (propagate net) boxes]; batching amortizes
   weight streaming and loop overhead, not summation order. *)

let batch_scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        cur_lo = make_plane ();
        cur_up = make_plane ();
        nxt_lo = make_plane ();
        nxt_up = make_plane ();
      })

(* dst = W * src + b for every leaf block at once.  [src] holds [k]
   blocks of [cols] rows, [dst] receives [k] blocks of [n] rows; the
   per-leaf accumulator arrays replay the scalar [affine_rows] reference
   sequence lane by lane.  [nterms] counts structurally nonzero weights
   of the row and is leaf-independent. *)
let affine_rows_batch ~k ~xmags w b m src_lo src_up dst_lo dst_up =
  let n = Mat.rows w and cols = Mat.cols w in
  ensure dst_lo (k * n) m;
  ensure dst_up (k * n) m;
  let up_const = Array.make k 0.0 and lo_const = Array.make k 0.0 in
  let up_abs = Array.make k 0.0 and lo_abs = Array.make k 0.0 in
  let up_err = Array.make k 0.0 and lo_err = Array.make k 0.0 in
  for i = 0 to n - 1 do
    let bi = b.(i) in
    for l = 0 to k - 1 do
      let off = ((l * n) + i) * m in
      Array.fill dst_lo.c off m 0.0;
      Array.fill dst_up.c off m 0.0;
      up_const.(l) <- bi;
      lo_const.(l) <- bi;
      up_abs.(l) <- Float.abs bi;
      lo_abs.(l) <- Float.abs bi;
      up_err.(l) <- 0.0;
      lo_err.(l) <- 0.0
    done;
    let nterms = ref 0 in
    for j = 0 to cols - 1 do
      let wij = Mat.get w i j in
      if (wij <> 0.0) [@lint.fp_exact "exact zero test: skips structurally-zero terms; NaN falls through conservatively"] then begin
        incr nterms;
        let su, sl = if wij > 0.0 then (src_up, src_lo) else (src_lo, src_up) in
        let awij = Float.abs wij in
        for l = 0 to k - 1 do
          let srow = (l * cols) + j in
          let joff = srow * m in
          let doff = ((l * n) + i) * m in
          for kk = 0 to m - 1 do
            let p = wij *. su.c.(joff + kk) in
            dst_up.c.(doff + kk) <- dst_up.c.(doff + kk) +. p;
            up_abs.(l) <- up_abs.(l) +. Float.abs p
          done;
          let pc = wij *. su.k.(srow) in
          up_const.(l) <- up_const.(l) +. pc;
          up_abs.(l) <- up_abs.(l) +. Float.abs pc;
          up_err.(l) <- R.add_up up_err.(l) (R.mul_up awij su.e.(srow));
          for kk = 0 to m - 1 do
            let p = wij *. sl.c.(joff + kk) in
            dst_lo.c.(doff + kk) <- dst_lo.c.(doff + kk) +. p;
            lo_abs.(l) <- lo_abs.(l) +. Float.abs p
          done;
          let pc = wij *. sl.k.(srow) in
          lo_const.(l) <- lo_const.(l) +. pc;
          lo_abs.(l) <- lo_abs.(l) +. Float.abs pc;
          lo_err.(l) <- R.add_up lo_err.(l) (R.mul_up awij sl.e.(srow))
        done
      end
    done;
    for l = 0 to k - 1 do
      let r = (l * n) + i in
      dst_up.k.(r) <- up_const.(l);
      dst_lo.k.(r) <- lo_const.(l);
      if !nterms = 0 then begin
        dst_up.e.(r) <- 0.0;
        dst_lo.e.(r) <- 0.0
      end
      else begin
        let nops = (!nterms * (m + 1)) + 1 in
        dst_up.e.(r) <-
          R.add_up up_err.(l) (accumulation_error nops (up_abs.(l) *. xmags.(l)));
        dst_lo.e.(r) <-
          R.add_up lo_err.(l) (accumulation_error nops (lo_abs.(l) *. xmags.(l)))
      end
    done
  done

let propagate_batch_planes net boxes =
  let k = Array.length boxes in
  let m = Net.input_dim net in
  Array.iter
    (fun box ->
      if B.dim box <> m then
        invalid_arg "Symbolic_prop.propagate_batch: input dimension mismatch")
    boxes;
  let xmags = Array.map input_magnitude boxes in
  let s = Domain.DLS.get batch_scratch_key in
  ensure s.cur_lo (k * m) m;
  ensure s.cur_up (k * m) m;
  for r = 0 to (k * m) - 1 do
    let off = r * m in
    Array.fill s.cur_lo.c off m 0.0;
    Array.fill s.cur_up.c off m 0.0;
    let i = r mod m in
    s.cur_lo.c.(off + i) <- 1.0;
    s.cur_up.c.(off + i) <- 1.0;
    s.cur_lo.k.(r) <- 0.0;
    s.cur_up.k.(r) <- 0.0;
    s.cur_lo.e.(r) <- 0.0;
    s.cur_up.e.(r) <- 0.0
  done;
  let n = ref m in
  Array.iteri
    (fun li l ->
      Span.with_ "nnabs.layer_batch"
        ~attrs:
          [
            ("layer", Nncs_obs.Trace.Int li);
            ("neurons", Int (Mat.rows l.Net.weights));
            ("leaves", Int k);
          ]
        (fun () ->
          let rows = Mat.rows l.Net.weights in
          affine_rows_batch ~k ~xmags l.Net.weights l.Net.biases m s.cur_lo
            s.cur_up s.nxt_lo s.nxt_up;
          (match l.Net.activation with
          | Nncs_nn.Activation.Linear -> ()
          | Nncs_nn.Activation.Relu ->
              let unstable = ref 0 in
              for lf = 0 to k - 1 do
                relu_rows ~unstable ~xmag:xmags.(lf) ~row0:(lf * rows)
                  boxes.(lf) s.nxt_lo s.nxt_up rows m
              done;
              Metrics.add m_neurons (rows * k);
              Metrics.add m_unstable !unstable);
          swap s;
          n := rows))
    net.Net.layers;
  (s, !n, m)

let propagate_batch net boxes =
  if Array.length boxes = 0 then [||]
  else
    let s, n, m = propagate_batch_planes net boxes in
    Array.mapi
      (fun l box ->
        B.of_intervals
          (Array.init n (fun i ->
               let r = (l * n) + i in
               let lo = eval_lower_row box s.cur_lo r m
               and hi = eval_upper_row box s.cur_up r m in
               if lo <= hi then I.make lo hi else inverted_hull lo hi)))
      boxes

(* Narrow test hooks: the NaN-poisoned-plane regression needs a plane
   whose *coefficients* are poisoned while the constant and error lanes
   stay finite — unreachable through [propagate] without contriving a
   whole network — and the inverted-hull regression needs the raw
   widening helper. *)
module Internal = struct
  let row_bounds box ~c ~k ~e =
    let m = Array.length c in
    if B.dim box <> m then
      invalid_arg "Symbolic_prop.Internal.row_bounds: dimension mismatch";
    let p = { c = Array.copy c; k = [| k |]; e = [| e |] } in
    (eval_lower_row box p 0 m, eval_upper_row box p 0 m)
end
