module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module R = Nncs_interval.Rounding
module Mat = Nncs_linalg.Mat
module Net = Nncs_nn.Network
module Span = Nncs_obs.Span
module Metrics = Nncs_obs.Metrics

let m_neurons = Metrics.counter "nnabs.relu_neurons"

(* unstable = straddling 0, requiring the chord relaxation (the neuron a
   complete verifier would case-split on) *)
let m_unstable = Metrics.counter "nnabs.unstable_neurons"

(* An affine function of the network inputs, [coeffs . x + const], valid
   over the current input box up to [err >= 0]: the neuron value it
   bounds may deviate from the float-coefficient function by at most
   [err] (accumulated rounding of coefficient arithmetic). *)
type eq = { coeffs : float array; const : float; err : float }

(* A neuron abstraction: value(x) in [lo(x) - lo.err, up(x) + up.err]
   for every x in the input box. *)
type bounds = { lo : eq; up : eq }

let ulp_unit = 0x1.0p-53

(* Upper bound on the sum of rounding errors of an inner-product style
   accumulation: n operations whose partial results are bounded by
   [absacc] (the sum of absolute values of the terms). *)
let accumulation_error n absacc =
  2.0 *. float_of_int (n + 2) *. ulp_unit *. absacc

(* max |x_k| over the input box, floored at 1 so constant-term rounding
   is also covered when folded with the same factor *)
let input_magnitude box =
  let m = ref 1.0 in
  for k = 0 to B.dim box - 1 do
    m := Float.max !m (I.mag (B.get box k))
  done;
  !m

(* [combine terms bias] = sum_i w_i * eq_i + bias, with rounding folded
   into the error term. *)
let combine ~xmag terms bias =
  match terms with
  | [] -> invalid_arg "Symbolic_prop.combine: no terms"
  | (_, eq0) :: _ ->
      let m = Array.length eq0.coeffs in
      let coeffs = Array.make m 0.0 in
      let const = ref bias in
      let absacc = ref (Float.abs bias) in
      let err = ref 0.0 in
      let nterms = List.length terms in
      List.iter
        (fun (w, eq) ->
          if w <> 0.0 then begin
            for k = 0 to m - 1 do
              let p = w *. eq.coeffs.(k) in
              coeffs.(k) <- coeffs.(k) +. p;
              absacc := !absacc +. Float.abs p
            done;
            let pc = w *. eq.const in
            const := !const +. pc;
            absacc := !absacc +. Float.abs pc;
            err := R.add_up !err (R.mul_up (Float.abs w) eq.err)
          end)
        terms;
      let nops = (nterms * (m + 1)) + 1 in
      let rounding = accumulation_error nops (!absacc *. xmag) in
      { coeffs; const = !const; err = R.add_up !err rounding }

(* Concrete bounds of an equation over the input box, outward rounded. *)
let eval_upper box eq =
  let acc = ref (R.add_up eq.const eq.err) in
  for k = 0 to Array.length eq.coeffs - 1 do
    let c = eq.coeffs.(k) in
    if c > 0.0 then acc := R.add_up !acc (R.mul_up c (I.hi (B.get box k)))
    else if c < 0.0 then acc := R.add_up !acc (R.mul_up c (I.lo (B.get box k)))
  done;
  !acc

let eval_lower box eq =
  let acc = ref (R.sub_down eq.const eq.err) in
  for k = 0 to Array.length eq.coeffs - 1 do
    let c = eq.coeffs.(k) in
    if c > 0.0 then acc := R.add_down !acc (R.mul_down c (I.lo (B.get box k)))
    else if c < 0.0 then acc := R.add_down !acc (R.mul_down c (I.hi (B.get box k)))
  done;
  !acc

let zero_eq m = { coeffs = Array.make m 0.0; const = 0.0; err = 0.0 }

let input_bounds box =
  let m = B.dim box in
  Array.init m (fun k ->
      let coeffs = Array.make m 0.0 in
      coeffs.(k) <- 1.0;
      let eq = { coeffs; const = 0.0; err = 0.0 } in
      { lo = eq; up = eq })

(* The chord slope u / (u - l) for an unstable node, as an interval to
   bound the float division error. *)
let chord_slope l u =
  I.div (I.of_float u) (I.sub (I.of_float u) (I.of_float l))

(* ReLU relaxation of one neuron (ReluVal/Neurify rules); bumps
   [unstable] when the neuron straddles 0. *)
let relu_relax ~unstable ~xmag box nb =
  let m = Array.length nb.lo.coeffs in
  let l_lo = eval_lower box nb.lo and u_up = eval_upper box nb.up in
  if l_lo >= 0.0 then nb (* stable active *)
  else if u_up <= 0.0 then
    let z = zero_eq m in
    { lo = z; up = z } (* stable inactive *)
  else begin
    Stdlib.incr unstable;
    (* upper: relu(v) <= lam * (v - l) for v in [l, u], lam = u/(u-l),
       applied to the upper equation with its own concrete lower bound *)
    let up' =
      let l_up = eval_lower box nb.up in
      if l_up >= 0.0 then nb.up
      else
        let lam_iv = chord_slope l_up u_up in
        let lam = I.mid lam_iv in
        (* bias -lam*l_up, slope error |lam' - lam| * (u - l) folded in *)
        let e = combine ~xmag [ (lam, nb.up) ] (-.lam *. l_up) in
        let slope_slack =
          R.mul_up (I.width lam_iv) (R.sub_up u_up l_up)
        in
        let bias_slack =
          (* -lam*l_up computed in float: one mul rounding *)
          R.mul_up 4.0 (R.mul_up ulp_unit (Float.abs (lam *. l_up)))
        in
        { e with err = R.add_up e.err (R.add_up slope_slack bias_slack) }
    in
    (* lower: relu(v) >= lam * v for v in [l, u], lam = u/(u-l) in [0,1],
       applied to the lower equation with its own concrete bounds *)
    let lo' =
      let u_lo = eval_upper box nb.lo in
      if u_lo <= 0.0 then zero_eq m
      else
        let l = l_lo and u = u_lo in
        let lam_iv = chord_slope l u in
        let lam = I.mid lam_iv in
        let e = combine ~xmag [ (lam, nb.lo) ] 0.0 in
        let slope_slack =
          R.mul_up (I.width lam_iv) (Float.max (Float.abs l) (Float.abs u))
        in
        { e with err = R.add_up e.err slope_slack }
    in
    { lo = lo'; up = up' }
  end

let layer_bounds ~xmag box l nbs =
  let w = l.Net.weights and b = l.Net.biases in
  let out =
    Array.init (Mat.rows w) (fun i ->
        let terms_up = ref [] and terms_lo = ref [] in
        for j = Mat.cols w - 1 downto 0 do
          let wij = Mat.get w i j in
          if wij > 0.0 then begin
            terms_up := (wij, nbs.(j).up) :: !terms_up;
            terms_lo := (wij, nbs.(j).lo) :: !terms_lo
          end
          else if wij < 0.0 then begin
            terms_up := (wij, nbs.(j).lo) :: !terms_up;
            terms_lo := (wij, nbs.(j).up) :: !terms_lo
          end
        done;
        let m = Array.length nbs.(0).lo.coeffs in
        let up =
          if !terms_up = [] then { (zero_eq m) with const = b.(i) }
          else combine ~xmag !terms_up b.(i)
        in
        let lo =
          if !terms_lo = [] then { (zero_eq m) with const = b.(i) }
          else combine ~xmag !terms_lo b.(i)
        in
        { lo; up })
  in
  match l.Net.activation with
  | Nncs_nn.Activation.Linear -> out
  | Nncs_nn.Activation.Relu ->
      (* aggregate locally, publish once per layer: the per-neuron hot
         loop never touches the shared atomics *)
      let unstable = ref 0 in
      let relaxed = Array.map (relu_relax ~unstable ~xmag box) out in
      Metrics.add m_neurons (Array.length out);
      Metrics.add m_unstable !unstable;
      relaxed

let final_bounds net box =
  if B.dim box <> Net.input_dim net then
    invalid_arg "Symbolic_prop.propagate: input dimension mismatch";
  let xmag = input_magnitude box in
  let nbs = ref (input_bounds box) in
  Array.iteri
    (fun i l ->
      nbs :=
        Span.with_ "nnabs.layer"
          ~attrs:
            [
              ("layer", Nncs_obs.Trace.Int i);
              ("neurons", Int (Mat.rows l.Net.weights));
            ]
          (fun () -> layer_bounds ~xmag box l !nbs))
    net.Net.layers;
  !nbs

let propagate net box =
  let nbs = final_bounds net box in
  B.of_intervals
    (Array.map
       (fun nb ->
         let lo = eval_lower box nb.lo and hi = eval_upper box nb.up in
         (* rounding slack can produce lo marginally above hi on
            degenerate boxes; restore order conservatively *)
         if lo <= hi then I.make lo hi else I.make hi lo)
       nbs)

let output_bounds net box =
  let nbs = final_bounds net box in
  Array.map
    (fun nb -> (Array.copy nb.lo.coeffs, nb.lo.const, Array.copy nb.up.coeffs, nb.up.const))
    nbs
