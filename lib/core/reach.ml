module B = Nncs_interval.Box
module Span = Nncs_obs.Span
module Metrics = Nncs_obs.Metrics
module Budget = Nncs_resilience.Budget
module Failure_ = Nncs_resilience.Failure

(* observability instruments (process-wide, see DESIGN.md "Observability") *)
let m_steps = Metrics.counter "reach.steps"
let m_joins = Metrics.counter "reach.joins"
let h_states_after_resize = Metrics.histogram "reach.states_after_resize"

type config = {
  integration_steps : int;
  taylor_order : int;
  scheme : Nncs_ode.Simulate.scheme;
  gamma : int;
  early_abort : bool;
  keep_sets : bool;
  abs_cache : Nncs_nnabs.Cache.config option;
}

let default_config =
  {
    integration_steps = 10;
    taylor_order = 6;
    scheme = Nncs_ode.Simulate.Direct;
    gamma = 5;
    early_abort = true;
    keep_sets = true;
    abs_cache = None;
  }

type step_record = {
  step : int;
  states_before_resize : int;
  states_after_resize : int;
  flow : Symset.t;
  next : Symset.t;
}

type outcome =
  | Proved_safe
  | Reached_error of { step : int }
  | Horizon_exhausted

type result = {
  outcome : outcome;
  terminated_at : int option;
  steps : step_record list;
  max_states : int;
  total_joins : int;
}

let is_proved_safe r = r.outcome = Proved_safe

exception Error_contact of int

let analyze ?(config = default_config) ?(budget = Budget.none) ?abstract sys r0
    =
  if config.integration_steps <= 0 then
    invalid_arg "Reach.analyze: non-positive integration_steps";
  let ctrl = sys.System.controller in
  let plant = sys.System.plant in
  (* the F# memo table is process-wide and sharded: worker domains of
     the parallel driver share it (per-shard locks), and a resident
     multi-query server keeps it warm across successive jobs *)
  let cache = Option.map Nncs_nnabs.Cache.shared config.abs_cache in
  (* the controller-abstraction hook: the leaf scheduler's lockstep
     driver overrides it to park the leaf at every F# query so queries
     from co-scheduled leaves batch into one blocked kernel call; it
     receives the *current* controller, so the degradation ladder's
     domain swap still reaches the override *)
  let abstract_step =
    match abstract with
    | Some f -> fun ~box ~prev_cmd -> f ctrl ~box ~prev_cmd
    | None -> fun ~box ~prev_cmd -> Controller.abstract_step ?cache ctrl ~box ~prev_cmd
  in
  let num_commands = Command.size ctrl.Controller.commands in
  let period = ctrl.Controller.period in
  let q = sys.System.horizon_steps in
  let steps = ref [] in
  let max_states = ref (Symset.length r0) in
  let total_joins = ref 0 in
  let error_step = ref None in
  let touch_error j st =
    if sys.System.erroneous.Spec.intersects_box st then begin
      if !error_step = None then error_step := Some j;
      if config.early_abort then raise (Error_contact j)
    end
  in
  (* one control step: from R_j build (R_[j[, R_(j+1)) *)
  let control_step j rj =
    Nncs_resilience.Fault.trigger "reach.step";
    (* budget gates: checked once per control step so an exhausted cell
       degrades within one step's work (Budget.Exhausted propagates to
       the caller's firewall, not to [finish]) *)
    Budget.check_deadline budget;
    Budget.check_symstates budget (Symset.length rj);
    let before = Symset.length rj in
    let rj =
      Span.with_ "reach.resize"
        ~attrs:[ ("step", Nncs_obs.Trace.Int j); ("states", Int before) ]
        (fun () -> Resize.resize ~num_commands ~gamma:config.gamma rj)
    in
    let after = Symset.length rj in
    total_joins := !total_joins + (before - after);
    Metrics.incr m_steps;
    Metrics.add m_joins (before - after);
    Metrics.observe h_states_after_resize (float_of_int after);
    let active =
      Symset.filter (fun st -> not (sys.System.target.Spec.contains_box st)) rj
    in
    Budget.add_ode_steps budget (config.integration_steps * Symset.length active);
    let flow = ref Symset.empty and next = ref Symset.empty in
    List.iter
      (fun st ->
        let u_box = Command.value_box ctrl.Controller.commands st.Symstate.cmd in
        let sim =
          Span.with_ "reach.simulate"
            ~attrs:[ ("step", Nncs_obs.Trace.Int j) ]
            (fun () ->
              Nncs_ode.Simulate.simulate ~scheme:config.scheme plant
                ~t0:((float_of_int j *. period)
                     [@lint.fp_exact
                       "step-time label: dynamics are enclosed per step \
                        from exact float endpoints"])
                ~period ~steps:config.integration_steps
                ~order:config.taylor_order ~state:st.Symstate.box
                ~inputs:u_box)
        in
        (* R_[j[ : every sub-step enclosure, carrying the current command *)
        Array.iter
          (fun piece ->
            let fst_ = Symstate.make piece st.Symstate.cmd in
            touch_error j fst_;
            flow := Symset.add fst_ !flow)
          sim.Nncs_ode.Simulate.pieces;
        (* R_(j+1) : endpoint box paired with each reachable command *)
        let cmds =
          Span.with_ "reach.abstract"
            ~attrs:[ ("step", Nncs_obs.Trace.Int j) ]
            (fun () ->
              abstract_step ~box:st.Symstate.box ~prev_cmd:st.Symstate.cmd)
        in
        List.iter
          (fun c ->
            let nst = Symstate.make sim.Nncs_ode.Simulate.endpoint c in
            touch_error j nst;
            next := Symset.add nst !next)
          cmds)
      active;
    (after, before, !flow, !next)
  in
  let record j before after flow next =
    max_states := max !max_states (max before (Symset.length next));
    steps :=
      {
        step = j;
        states_before_resize = before;
        states_after_resize = after;
        flow = (if config.keep_sets then flow else Symset.empty);
        next = (if config.keep_sets then next else Symset.empty);
      }
      :: !steps
  in
  let finish outcome terminated_at =
    let outcome =
      match (!error_step, outcome) with
      | Some j, _ -> Reached_error { step = j }
      | None, o -> o
    in
    {
      outcome;
      terminated_at;
      steps = List.rev !steps;
      max_states = !max_states;
      total_joins = !total_joins;
    }
  in
  let rec loop j rj =
    if
      Span.with_ "reach.check"
        ~attrs:[ ("step", Nncs_obs.Trace.Int j) ]
        (fun () ->
          Symset.for_all (fun st -> sys.System.target.Spec.contains_box st) rj)
    then
      (* no more symbolic states to propagate: C terminated *)
      finish Proved_safe (Some j)
    else if j >= q then finish Horizon_exhausted None
    else begin
      let after, before, flow, next =
        Span.with_ "reach.step"
          ~attrs:
            [ ("step", Nncs_obs.Trace.Int j); ("states", Int (Symset.length rj)) ]
          (fun () -> control_step j rj)
      in
      record j before after flow next;
      loop (j + 1) next
    end
  in
  try loop 0 r0 with Error_contact j -> finish (Reached_error { step = j }) None

let classify = function
  | Nncs_ode.Apriori.Enclosure_failure msg ->
      Some (Failure_.Enclosure_diverged msg)
  | Nncs_interval.Interval.Numeric_error msg -> Some (Failure_.Numeric msg)
  | Nncs_interval.Interval.Empty_meet ->
      Some (Failure_.Numeric "empty interval meet")
  | Nncs_interval.Interval.Division_by_zero_interval ->
      Some (Failure_.Numeric "interval division by zero")
  | _ -> None

type verdict = (result, Failure_.t) Stdlib.result

let run ?config ?budget ?abstract sys r0 =
  Nncs_resilience.Firewall.protect ~classify (fun () ->
      try analyze ?config ?budget ?abstract sys r0
      with Error_contact j ->
        (* boundary safety net: an early-abort contact that escaped the
           in-analysis handler is still a definite not-proved verdict,
           never a raw exception at this interface *)
        {
          outcome = Reached_error { step = j };
          terminated_at = None;
          steps = [];
          max_states = 0;
          total_joins = 0;
        })

let flow_union r =
  List.fold_left
    (fun acc sr -> Symset.union sr.flow (Symset.union sr.next acc))
    Symset.empty r.steps
