(** Partitioning of the initial set (Section 7.1): a collection of
    initial symbolic states, each an independent verification problem. *)

val grid : Nncs_interval.Box.t -> cells:int array -> Nncs_interval.Box.t list
(** Uniform grid subdivision, [cells.(i)] pieces along dimension i.
    The returned boxes cover the input exactly.  Raises
    [Invalid_argument] (naming the dimension) when a subdivided
    dimension's computed cell width is not finite — e.g. a whole-range
    box whose [hi - lo] overflows — instead of silently producing
    infinite or NaN cell bounds. *)

val with_command : int -> Nncs_interval.Box.t list -> Symstate.t list
(** Pair every box with the same initial command. *)

val ring :
  radius:float ->
  arcs:int ->
  arc_index:int ->
  (float * float) * (float * float)
(** Bounding intervals [(x_lo, x_hi), (y_lo, y_hi)] of the [arc_index]-th
    of [arcs] equal arcs of the circle of the given radius — the ribbon
    cells of Fig. 8.  [arc_index] in [0, arcs). *)
