module I = Nncs_interval.Interval
module B = Nncs_interval.Box

let grid box ~cells =
  if Array.length cells <> B.dim box then
    invalid_arg "Partition.grid: cells array does not match box dimension";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Partition.grid: non-positive cell count")
    cells;
  let subdivide dim boxes =
    let n = cells.(dim) in
    if n = 1 then boxes
    else
      List.concat_map
        (fun b ->
          let iv = B.get b dim in
          let lo = I.lo iv and hi = I.hi iv in
          let w = (hi -. lo) /. float_of_int n in
          (* [hi -. lo] overflows to infinity on whole-range boxes (and a
             degenerate bound at infinity yields NaN): every cell bound
             derived from such a width is garbage, so fail loudly instead
             of emitting infinite/NaN cells *)
          if not (Float.is_finite w) then
            invalid_arg
              (Printf.sprintf
                 "Partition.grid: non-finite cell width in dimension %d \
                  (bounds [%h, %h])"
                 dim lo hi);
          List.init n (fun k ->
              let a = if k = 0 then lo else lo +. (float_of_int k *. w) in
              let z = if k = n - 1 then hi else lo +. (float_of_int (k + 1) *. w) in
              B.replace b dim (I.make a z)))
        boxes
  in
  let rec go dim boxes =
    if dim >= B.dim box then boxes else go (dim + 1) (subdivide dim boxes)
  in
  go 0 [ box ]

let with_command cmd boxes = List.map (fun b -> Symstate.make b cmd) boxes

let ring ~radius ~arcs ~arc_index =
  if arcs <= 0 then invalid_arg "Partition.ring: non-positive arc count";
  if arc_index < 0 || arc_index >= arcs then
    invalid_arg "Partition.ring: arc index out of range";
  let a0 = 2.0 *. Float.pi *. float_of_int arc_index /. float_of_int arcs in
  let a1 = 2.0 *. Float.pi *. float_of_int (arc_index + 1) /. float_of_int arcs in
  (* bounding box of the arc: extrema at endpoints plus any axis crossing *)
  let samples = ref [ a0; a1 ] in
  let quarter = Float.pi /. 2.0 in
  let k0 = Float.to_int (Float.floor (a0 /. quarter)) in
  let k1 = Float.to_int (Float.ceil (a1 /. quarter)) in
  for k = k0 to k1 do
    let a = float_of_int k *. quarter in
    if a > a0 && a < a1 then samples := a :: !samples
  done;
  let xs = List.map (fun a -> radius *. Float.cos a) !samples in
  let ys = List.map (fun a -> radius *. Float.sin a) !samples in
  let min l = List.fold_left Float.min (List.hd l) l in
  let max l = List.fold_left Float.max (List.hd l) l in
  ((min xs, max xs), (min ys, max ys))
