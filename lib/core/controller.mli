(** The generic neural-network-based controller model of Section 4.3:
    a pre-processing, a collection of ReLU networks selected from the
    previous command by [select] (the paper's lambda), and a
    post-processing onto the finite command set.

    Both a concrete semantics (used by simulation and falsification) and
    an abstract semantics (Pre#, F#, Post# — used by reachability) are
    carried; the abstract functions must over-approximate the concrete
    ones, which is checked by the test suite on the shipped instances. *)

type t = {
  period : float;  (** T, seconds *)
  commands : Command.set;  (** U *)
  networks : Nncs_nn.Network.t array;  (** N(1) ... N(D) *)
  select : int -> int;  (** lambda: previous command index -> network index *)
  pre : float array -> float array;  (** Pre *)
  pre_abs : Nncs_interval.Box.t -> Nncs_interval.Box.t;  (** Pre# *)
  post : float array -> int;  (** Post: network output -> command index *)
  post_abs : Nncs_interval.Box.t -> int list;  (** Post# *)
  domain : Nncs_nnabs.Transformer.domain;  (** abstraction used for F# *)
  nn_splits : int;  (** input bisections inside F# (0 = none) *)
}

val make :
  period:float ->
  commands:Command.set ->
  networks:Nncs_nn.Network.t array ->
  select:(int -> int) ->
  pre:(float array -> float array) ->
  pre_abs:(Nncs_interval.Box.t -> Nncs_interval.Box.t) ->
  post:(float array -> int) ->
  post_abs:(Nncs_interval.Box.t -> int list) ->
  ?domain:Nncs_nnabs.Transformer.domain ->
  ?nn_splits:int ->
  unit ->
  t
(** Validates that [select] maps every command index to a valid network
    index and that the period is positive.  [domain] defaults to
    [Symbolic], [nn_splits] to 0. *)

val concrete_step : t -> state:float array -> prev_cmd:int -> int
(** One controller execution: the command index for the next period. *)

val abstract_step :
  ?cache:Nncs_nnabs.Cache.t ->
  t ->
  box:Nncs_interval.Box.t ->
  prev_cmd:int ->
  int list
(** Sound set of reachable next-command indices from any sampled state in
    [box] with the given previous command (stage 2 of the procedure).

    With [cache], the F# evaluation is memoized per (network, previous
    command, domain, quantized [Pre#] box); a hit may return a sound
    superset of the score box (see {!Nncs_nnabs.Cache}), so [post_abs]
    must be monotone — a wider score box yields a superset command list,
    as the shipped argmin/argmax abstractions do. *)

val abstract_scores :
  ?cache:Nncs_nnabs.Cache.t ->
  t ->
  box:Nncs_interval.Box.t ->
  prev_cmd:int ->
  Nncs_interval.Box.t
(** The intermediate p-box [y] = F#(Pre#(box)) before post-processing —
    used by the influence-guided splitting heuristic.  [cache] as in
    {!abstract_step}. *)

val abstract_scores_batch :
  ?cache:Nncs_nnabs.Cache.t ->
  t ->
  (Nncs_interval.Box.t * int) array ->
  Nncs_interval.Box.t array
(** Batched {!abstract_scores} over [(box, prev_cmd)] queries: queries
    are grouped by previous command (hence network and cache key family
    — groups are never co-batched), the cache is consulted per leaf, and
    only the misses of a group go through one blocked kernel call
    ({!Nncs_nnabs.Transformer.propagate_batch}).  Result [i] is
    bit-for-bit [abstract_scores ?cache ctrl ~box:(fst queries.(i))
    ~prev_cmd:(snd queries.(i))] evaluated in group order. *)

val commands_of_scores : t -> Nncs_interval.Box.t -> int list
(** The post-processing half of {!abstract_step}: [post_abs] on a score
    box with the same command validation (and the same error messages).
    [abstract_step] is [commands_of_scores] of {!abstract_scores};
    exposed so a batched scorer reuses the validation verbatim. *)

(** {1 Ready-made post-processings} *)

val argmin_post : float array -> int
(** The ACAS Xu style post-processing: pick the command whose score is
    minimal (ties to the smallest index).  Raises [Invalid_argument] on
    a non-finite score: a NaN would make every comparison false and
    silently select index 0, so poisoned network output surfaces as a
    failure instead of a confidently wrong command. *)

val argmin_post_abs : Nncs_interval.Box.t -> int list
(** Sound abstraction: command i is reachable iff its score can be
    lower than or equal to every other score. *)

val argmax_post : float array -> int
(** Like {!argmin_post} with maximal scores; raises [Invalid_argument]
    on a non-finite score. *)

val argmax_post_abs : Nncs_interval.Box.t -> int list

val identity_pre : float array -> float array
val identity_pre_abs : Nncs_interval.Box.t -> Nncs_interval.Box.t
