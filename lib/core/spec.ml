module I = Nncs_interval.Interval
module B = Nncs_interval.Box

type t = {
  name : string;
  contains_box : Symstate.t -> bool;
  intersects_box : Symstate.t -> bool;
  contains_point : float array -> int -> bool;
}

let make ~name ~contains_box ~intersects_box ~contains_point =
  { name; contains_box; intersects_box; contains_point }

let nothing =
  {
    name = "nothing";
    contains_box = (fun _ -> false);
    intersects_box = (fun _ -> false);
    contains_point = (fun _ _ -> false);
  }

(* Rigorous range of sqrt(s_i^2 + s_j^2) over a box, entirely in interval
   arithmetic: [abs] maps each coordinate to [mig; mag], so the result
   brackets the true radius range with outward rounding — the
   "certainly" tests below need no epsilon fudge. *)
let radius_range st (i, j) =
  let bi = B.get st.Symstate.box i and bj = B.get st.Symstate.box j in
  let r = I.sqrt (I.add (I.sqr (I.abs bi)) (I.sqr (I.abs bj))) in
  (I.lo r, I.hi r)

let norm2_lt ~name ~dims ~radius =
  {
    name;
    contains_box =
      (fun st ->
        let _, hi = radius_range st dims in
        hi < radius);
    intersects_box =
      (fun st ->
        let lo, _ = radius_range st dims in
        lo < radius);
    contains_point =
      (fun s _ ->
        let i, j = dims in
        (sqrt ((s.(i) *. s.(i)) +. (s.(j) *. s.(j))) < radius)
        [@lint.fp_exact "point-sample oracle for falsification, not a proof"]);
  }

let norm2_gt ~name ~dims ~radius =
  {
    name;
    contains_box =
      (fun st ->
        let lo, _ = radius_range st dims in
        lo > radius);
    intersects_box =
      (fun st ->
        let _, hi = radius_range st dims in
        hi > radius);
    contains_point =
      (fun s _ ->
        let i, j = dims in
        (sqrt ((s.(i) *. s.(i)) +. (s.(j) *. s.(j))) > radius)
        [@lint.fp_exact "point-sample oracle for falsification, not a proof"]);
  }

let coord_lt ~name ~dim ~bound =
  {
    name;
    contains_box = (fun st -> I.hi (B.get st.Symstate.box dim) < bound);
    intersects_box = (fun st -> I.lo (B.get st.Symstate.box dim) < bound);
    contains_point = (fun s _ -> s.(dim) < bound);
  }

let coord_gt ~name ~dim ~bound =
  {
    name;
    contains_box = (fun st -> I.lo (B.get st.Symstate.box dim) > bound);
    intersects_box = (fun st -> I.hi (B.get st.Symstate.box dim) > bound);
    contains_point = (fun s _ -> s.(dim) > bound);
  }

let union ~name a b =
  {
    name;
    (* certainly-contained in a union is under-approximated by being
       certainly contained in one of the members: sound for pruning *)
    contains_box = (fun st -> a.contains_box st || b.contains_box st);
    intersects_box = (fun st -> a.intersects_box st || b.intersects_box st);
    contains_point = (fun s u -> a.contains_point s u || b.contains_point s u);
  }

let outside_interval ~name ~dim ~lo ~hi =
  union ~name (coord_lt ~name:(name ^ "-lo") ~dim ~bound:lo)
    (coord_gt ~name:(name ^ "-hi") ~dim ~bound:hi)
