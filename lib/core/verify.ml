module Span = Nncs_obs.Span
module Metrics = Nncs_obs.Metrics
module Json = Nncs_obs.Json
module B = Nncs_interval.Box
module I = Nncs_interval.Interval
module Budget = Nncs_resilience.Budget
module Failure_ = Nncs_resilience.Failure
module Firewall = Nncs_resilience.Firewall
module Fault = Nncs_resilience.Fault

let m_cells = Metrics.counter "verify.cells"
let m_leaves = Metrics.counter "verify.leaves"
let m_proved_leaves = Metrics.counter "verify.proved_leaves"

(* resilience instruments: one counter per degradation-ladder rung plus
   the terminal outcomes (see DESIGN.md "Resilience") *)
let m_retry_halved = Metrics.counter "resilience.retry_halved_step"
let m_fallback_interval = Metrics.counter "resilience.fallback_interval"
let m_unknown_leaves = Metrics.counter "resilience.unknown_leaves"
let m_worker_crashes = Metrics.counter "resilience.worker_crashes"
let m_requeued_cells = Metrics.counter "resilience.requeued_cells"

(* leaf-scheduler instruments (see DESIGN.md "Leaf scheduler") *)
let m_steals = Metrics.counter "verify.steals"
let m_requeued_leaves = Metrics.counter "resilience.requeued_leaves"
let m_replayed_leaves = Metrics.counter "verify.replayed_leaves"
let h_frontier = Metrics.histogram "verify.frontier_size"

(* batched-F# instruments (see DESIGN.md "Batched F#"): one batch = one
   grouped kernel call answering the parked queries of co-scheduled
   leaves *)
let m_batches = Metrics.counter "verify.fsharp_batches"
let m_batched_queries = Metrics.counter "verify.fsharp_batched_queries"

type split_strategy =
  | All_dims of int list
  | Most_influential of { candidates : int list; take : int }

type scheduler = Cells | Leaves

type config = {
  reach : Reach.config;
  strategy : split_strategy;
  max_depth : int;
  workers : int;
  limits : Budget.limits;
  degrade : bool;
  scheduler : scheduler;
  batch_leaves : int;
}

let default_config =
  {
    reach = { Reach.default_config with keep_sets = false };
    strategy = All_dims [ 0; 1; 2 ];
    max_depth = 2;
    workers = 1;
    limits = Budget.unlimited;
    degrade = true;
    scheduler = Cells;
    batch_leaves = 1;
  }

(* Influence of a dimension on the controller decision: bisect the cell
   along it and measure how wide the abstract score box F#(Pre#(half))
   stays — the dimension whose bisection tightens the scores the most is
   the most influential (a one-step lookahead of the paper's suggested
   heuristic).

   The probes deliberately bypass the abstraction cache: with a
   quantization grid coarser than a half-box, both halves of a
   bisection (or a half and its parent) collapse onto the same widened
   key, every candidate scores identically and the ordering degenerates
   to an arbitrary one.  Exact uncached scores keep the heuristic
   discriminating; the probed boxes are transient half-cells that would
   rarely be re-queried anyway. *)
let influence_order sys (cell : Symstate.t) candidates =
  let ctrl = sys.System.controller in
  let score dim =
    let l, r = Nncs_interval.Box.bisect cell.Symstate.box dim in
    let width_of half =
      Nncs_interval.Box.max_width
        (Controller.abstract_scores ctrl ~box:half ~prev_cmd:cell.Symstate.cmd)
    in
    (0.5 *. (width_of l +. width_of r))
    [@lint.fp_exact "split-ordering heuristic: any dimension order is sound"]
  in
  let scored = List.map (fun d -> (d, score d)) candidates in
  (* [Float.compare] with NaN pushed to the back: polymorphic [compare]
     (and Float.compare alone) orders NaN *below* every number, so a
     NaN score — e.g. the width of a degenerate half-box at infinity —
     would silently win the "most influential" slot and waste the
     bisection on a useless dimension *)
  let cmp (_, a) (_, b) =
    match (Float.is_nan a, Float.is_nan b) with
    | true, true -> 0
    | true, false -> 1
    | false, true -> -1
    | false, false -> Float.compare a b
  in
  List.map fst (List.sort cmp scored)

let dims_to_split config sys cell =
  match config.strategy with
  | All_dims dims -> dims
  | Most_influential { candidates; take } ->
      let take = max 1 (min take (List.length candidates)) in
      List.filteri (fun i _ -> i < take) (influence_order sys cell candidates)

type leaf_result =
  | Completed of Reach.outcome
  | Failed of Failure_.t

type leaf = {
  state : Symstate.t;
  depth : int;
  proved : bool;
  result : leaf_result;
  rungs : string list;
  elapsed : float;
}

type cell_report = {
  index : int;
  leaves : leaf list;
  proved_fraction : float;
  elapsed : float;
}

type report = {
  cells : cell_report list;
  coverage : float;
  elapsed : float;
  proved_cells : int;
  unknown_cells : int;
  total_cells : int;
}

let now () = Unix.gettimeofday ()

let leaf_failure l = match l.result with Failed f -> Some f | Completed _ -> None

let cell_has_failure c = List.exists (fun l -> leaf_failure l <> None) c.leaves

(* ----- the graceful-degradation ladder -----

   One reach attempt per rung, all drawing on the same per-cell budget:
     1. "base"            — the configured reach
     2. "halved_step"     — double the integration sub-steps (halved
                            Lohner/Taylor step, smaller a-priori boxes)
     3. "interval_domain" — swap the controller abstraction down to the
                            cheap interval transformer
   Budget exhaustion and cancellation short-circuit: retrying with
   *more* work cannot help a cell that ran out of time or steps, and a
   cancelled cell must stop, not retry. *)

let rung_base = "base"
let rung_halved = "halved_step"
let rung_interval = "interval_domain"

(* [abstract] is the controller-abstraction override threaded down to
   {!Reach.analyze}; the batched leaf scheduler passes the
   query-parking hook, the scalar paths pass nothing.  It follows the
   ladder's domain swap because Reach hands it the current controller. *)
let attempt ?abstract reach_config budget sys st =
  Reach.run ~config:reach_config ~budget ?abstract sys (Symset.of_list [ st ])

let run_ladder ?abstract config budget sys st =
  let base = config.reach in
  match attempt ?abstract base budget sys st with
  | Ok r -> (Ok r, [ rung_base ])
  | Error ((Failure_.Budget_exceeded _ | Failure_.Cancelled _) as f) ->
      (Error f, [ rung_base ])
  | Error _ -> (
      Metrics.incr m_retry_halved;
      let halved =
        { base with Reach.integration_steps = 2 * base.Reach.integration_steps }
      in
      match attempt ?abstract halved budget sys st with
      | Ok r -> (Ok r, [ rung_base; rung_halved ])
      | Error ((Failure_.Budget_exceeded _ | Failure_.Cancelled _) as f) ->
          (Error f, [ rung_base; rung_halved ])
      | Error f2 ->
          let ctrl = sys.System.controller in
          if ctrl.Controller.domain = Nncs_nnabs.Transformer.Interval then
            (Error f2, [ rung_base; rung_halved ])
          else begin
            Metrics.incr m_fallback_interval;
            let sys' =
              {
                sys with
                System.controller =
                  { ctrl with Controller.domain = Nncs_nnabs.Transformer.Interval };
              }
            in
            match attempt ?abstract halved budget sys' st with
            | Ok r -> (Ok r, [ rung_base; rung_halved; rung_interval ])
            | Error f3 -> (Error f3, [ rung_base; rung_halved; rung_interval ])
          end)

let run_leaf ?abstract config budget sys st =
  let t0 = now () in
  let verdict, rungs =
    if config.degrade then run_ladder ?abstract config budget sys st
    else
      match attempt ?abstract config.reach budget sys st with
      | Ok r -> (Ok r, [ rung_base ])
      | Error f -> (Error f, [ rung_base ])
  in
  (verdict, rungs, (now () -. t0) [@lint.fp_exact "wall-clock telemetry"])

let strategy_arity = function
  | All_dims dims -> List.length dims
  | Most_influential { take; candidates } ->
      max 1 (min take (List.length candidates))

let unknown_leaf ?(rungs = []) ?(elapsed = 0.0) ~depth st f =
  Metrics.incr m_unknown_leaves;
  { state = st; depth; proved = false; result = Failed f; rungs; elapsed }

let verify_cell ?cancel ?(config = default_config) ?(index = 0) sys cell =
  if config.max_depth < 0 then invalid_arg "Verify.verify_cell: negative depth";
  (match config.strategy with
  | All_dims [] | Most_influential { candidates = []; _ }
    when config.max_depth > 0 ->
      invalid_arg "Verify.verify_cell: no split dimensions"
  | All_dims _ | Most_influential _ -> ());
  let factor = float_of_int (1 lsl strategy_arity config.strategy) in
  let budget = Budget.start ?cancel config.limits in
  let rec go depth st =
    let (verdict, rungs, dt) =
      Span.with_ "verify.leaf"
        ~attrs:[ ("depth", Nncs_obs.Trace.Int depth) ]
        (fun () -> run_leaf config budget sys st)
    in
    Metrics.incr m_leaves;
    let proved =
      match verdict with Ok r -> Reach.is_proved_safe r | Error _ -> false
    in
    if proved then Metrics.incr m_proved_leaves;
    let out_of_budget =
      match verdict with
      | Error (Failure_.Budget_exceeded _ | Failure_.Cancelled _) -> true
      | _ -> false
    in
    (* refinement also drives "could not conclude": a failed leaf is
       split like an unproved one (smaller boxes often restore the
       enclosure) — except when the budget is gone or the job was
       cancelled, where splitting would only multiply the failures *)
    if proved || depth >= config.max_depth || out_of_budget then begin
      (match verdict with
      | Ok r ->
          [
            {
              state = st;
              depth;
              proved;
              result = Completed r.Reach.outcome;
              rungs;
              elapsed = dt;
            };
          ]
      | Error f -> [ unknown_leaf ~rungs ~elapsed:dt ~depth st f ])
    end
    else
      List.concat_map (go (depth + 1))
        (Symstate.split st (dims_to_split config sys st))
  in
  let t0 = now () in
  let span =
    Span.enter ~attrs:[ ("index", Nncs_obs.Trace.Int index) ] "verify.cell"
  in
  let leaves =
    Fun.protect
      ~finally:(fun () -> Span.exit span)
      (fun () ->
        (* the per-cell firewall: any exception the per-leaf ladder did
           not absorb (strategy evaluation, splitting, injected faults,
           plain bugs) degrades this one cell to Unknown *)
        match
          Firewall.protect ~classify:Reach.classify (fun () ->
              Fault.trigger ~key:(string_of_int index) "verify.cell";
              go 0 cell)
        with
        | Ok leaves -> leaves
        | Error f -> [ unknown_leaf ~depth:0 cell f ])
  in
  Metrics.incr m_cells;
  let proved_fraction =
    (List.fold_left
       (fun acc leaf ->
         if leaf.proved then acc +. (1.0 /. (factor ** float_of_int leaf.depth))
         else acc)
       0.0 leaves)
    [@lint.fp_exact
      "progress accounting for reports: verdicts come from the leaf \
       proofs, not from this number"]
  in
  {
    index;
    leaves;
    proved_fraction;
    elapsed = (now () -. t0) [@lint.fp_exact "wall-clock telemetry"];
  }

let coverage_of_cells cells =
  match cells with
  | [] -> 100.0
  | _ ->
      (100.0
      *. List.fold_left (fun acc c -> acc +. c.proved_fraction) 0.0 cells
      /. float_of_int (List.length cells))
      [@lint.fp_exact "coverage percentage for reports only"]

let crashed_cell_report index st msg =
  {
    index;
    leaves = [ unknown_leaf ~depth:0 st (Failure_.Worker_crashed msg) ];
    proved_fraction = 0.0;
    elapsed = 0.0;
  }

(* ----- the per-cell scheduler (config.scheduler = Cells) -----

   The original flat work queue: each pending cell index is one task; a
   worker runs the cell's whole refinement tree to completion. *)

let run_cells ?cancel ~config ~count_once ~on_cell
    ~(results : cell_report option array) ~(cells_arr : Symstate.t array) sys
    pending =
  let run_one i =
    let r = verify_cell ?cancel ~config ~index:i sys cells_arr.(i) in
    (match on_cell with Some f -> f r | None -> ());
    count_once i;
    r
  in
  let n_pending = List.length pending in
  if config.workers <= 1 || n_pending <= 1 then
    List.iter (fun i -> results.(i) <- Some (run_one i)) pending
  else begin
    (* Fault-isolated parallel workers over a shared queue.  Each worker
       pulls the next pending index; a cell that raises through every
       firewall is recorded as crashed (first try/with); a worker domain
       that dies wholesale (fatal exception) forfeits its unrecorded
       cells, which the recovery sweep below re-runs in this domain. *)
    let queue = Array.of_list pending in
    let next = Atomic.make 0 in
    let nworkers = min config.workers n_pending in
    let worker w () =
      Span.with_ "verify.worker"
        ~attrs:[ ("worker", Nncs_obs.Trace.Int w) ]
        (fun () ->
          let out = ref [] in
          let rec pull () =
            let k = Atomic.fetch_and_add next 1 in
            if k < Array.length queue then begin
              let i = queue.(k) in
              (try out := (i, run_one i) :: !out
               with e when not (Firewall.fatal e) ->
                 Metrics.incr m_worker_crashes;
                 out :=
                   (i, crashed_cell_report i cells_arr.(i) (Printexc.to_string e))
                   :: !out;
                 count_once i);
              pull ()
            end
          in
          pull ();
          !out)
    in
    let domains = List.init nworkers (fun w -> Domain.spawn (worker w)) in
    List.iter
      (fun d ->
        match Domain.join d with
        | rs -> List.iter (fun (i, r) -> results.(i) <- Some r) rs
        | exception _ ->
            (* the domain died; its completed-but-unreported and
               in-flight cells are still None and will be re-queued *)
            Metrics.incr m_worker_crashes)
      domains;
    (* crash recovery: re-run every cell no surviving worker reported.
       [count_once] keeps [progress] honest here: a re-run of a cell the
       dead worker had already counted must not count again. *)
    Array.iteri
      (fun i r ->
        if r = None then begin
          Metrics.incr m_requeued_cells;
          results.(i) <- Some (run_one i)
        end)
      results
  end

(* ----- the leaf-frontier scheduler (config.scheduler = Leaves) -----

   One shared, depth- and width-prioritized deque of *leaves*: when a
   leaf fails to prove and is split, its children go back onto the
   global frontier that every worker domain pulls from, so the deep
   refinement of one hard cell fans out across all cores instead of
   serializing on the domain that happened to pick the cell up.

   Priority: deepest first (a hard cell's subtree completes, bounding
   both the frontier size and the time to its journal record), widest
   box first within a depth (the likely-slowest leaves start earliest —
   LPT-style makespan insurance), and any leaf whose per-cell budget
   deadline has already passed jumps the queue (it terminates in
   microseconds and clears its cell's bookkeeping).

   Determinism: a leaf is identified by its path (the child indices
   from the cell's root); splitting is a deterministic function of the
   leaf's state, so the set of terminal leaves is independent of the
   execution order, and sorting each cell's completed leaves by path
   reproduces exactly the depth-first leaf order of the sequential
   path.  See DESIGN.md "Leaf scheduler". *)

type task = {
  t_cell : int;
  t_path : int list;  (* child indices from the root; root = [] *)
  t_state : Symstate.t;
  t_depth : int;
  t_width : float;
  t_done : bool Atomic.t;  (* claim flag: completion is idempotent *)
}

let compare_paths = List.compare Int.compare

module Frontier = struct
  type t = {
    mutex : Mutex.t;
    buckets : task list array;  (* index = depth *)
    mutable size : int;
  }

  let create depths =
    { mutex = Mutex.create (); buckets = Array.make (max 1 depths) []; size = 0 }

  let with_lock f fn =
    Mutex.lock f.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock f.mutex) fn

  let push f task =
    with_lock f (fun () ->
        let d = min task.t_depth (Array.length f.buckets - 1) in
        f.buckets.(d) <- task :: f.buckets.(d);
        f.size <- f.size + 1)

  (* [pop_where] restricts the pick to tasks satisfying [pred] while
     keeping the exact priority policy (deepest bucket, expired-first,
     then widest) — the batched scheduler drains extra tasks that are
     compatible with the one just popped (same network). *)
  let pop_where ~expired ~pred f =
    with_lock f (fun () ->
        let rec deepest d =
          if d < 0 then None
          else
            match List.filter pred f.buckets.(d) with
            | [] -> deepest (d - 1)
            | ts -> Some (d, ts)
        in
        match deepest (Array.length f.buckets - 1) with
        | None -> None
        | Some (d, ts) ->
            let pick =
              match List.find_opt expired ts with
              | Some t -> t
              | None ->
                  List.fold_left
                    (fun best t ->
                      if Float.compare t.t_width best.t_width > 0 then t
                      else best)
                    (List.hd ts) ts
            in
            f.buckets.(d) <- List.filter (fun t -> t != pick) f.buckets.(d);
            f.size <- f.size - 1;
            Metrics.observe h_frontier (float_of_int f.size);
            Some pick)

  let pop ~expired f = pop_where ~expired ~pred:(fun _ -> true) f
end

(* ----- batched F# via lockstep fibers (config.batch_leaves > 1) -----

   With [--batch-leaves=K], a worker drains up to K compatible frontier
   tasks per pull and runs their reachability analyses as effect-based
   fibers in lockstep: each leaf parks at every controller-abstraction
   query ([Fsharp_scores]), the driver gathers the parked queries of all
   co-scheduled leaves, answers them with one blocked kernel call
   ({!Controller.abstract_scores_batch}), and resumes the fibers in
   index order.

   Verdict preservation: every query is answered with the bitwise value
   the scalar path would compute (the batched kernel keeps each lane's
   float-op order), each fiber's own sequence of queries and answers is
   therefore identical to its scalar execution, and reassembly is the
   unchanged path-sorted DFS — so verdicts, leaf sets and journal
   records are byte-identical to [batch_leaves = 1] at any worker
   count.  Per-leaf firewalls survive batching: a group call that fails
   is retried query by query on the scalar path, and only the culpable
   fiber is discontinued with its exception (caught by that leaf's
   ladder or firewall exactly as in the scalar path). *)

type fsharp_query = { q_ctrl : Controller.t; q_box : B.t; q_cmd : int }
type _ Effect.t += Fsharp_scores : fsharp_query -> B.t Effect.t

(* The Reach [?abstract] override run inside each fiber: park at the
   score query, then reuse the scalar post-processing and validation. *)
let batched_abstract ctrl ~box ~prev_cmd =
  let y =
    Effect.perform (Fsharp_scores { q_ctrl = ctrl; q_box = box; q_cmd = prev_cmd })
  in
  Controller.commands_of_scores ctrl y

let domain_ord = function
  | Nncs_nnabs.Transformer.Interval -> 0
  | Nncs_nnabs.Transformer.Symbolic -> 1
  | Nncs_nnabs.Transformer.Affine -> 2

(* Run [bodies] as lockstep fibers; returns each body's result.  A body
   must either return or park at [Fsharp_scores] — any exception it does
   not absorb propagates out of the driver (fatal worker-death
   semantics; the caller re-queues the whole group's unfinished tasks).
   Queries are grouped by abstraction semantics — the ladder's interval
   rung swaps the controller domain mid-leaf, so co-scheduled fibers on
   different rungs must not co-batch. *)
let run_lockstep ~cache (bodies : (unit -> 'a) array) : 'a option array =
  let n = Array.length bodies in
  let results : 'a option array = Array.make n None in
  let parked :
      (fsharp_query * (B.t, unit) Effect.Deep.continuation) option array =
    Array.make n None
  in
  let handler i =
    {
      Effect.Deep.retc = (fun v -> results.(i) <- Some v);
      exnc = (fun e -> raise e);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Fsharp_scores q ->
              Some
                (fun (k : (c, unit) Effect.Deep.continuation) ->
                  parked.(i) <- Some (q, k))
          | _ -> None);
    }
  in
  Array.iteri (fun i body -> Effect.Deep.match_with body () (handler i)) bodies;
  let rec drive () =
    let pending = ref [] in
    for i = n - 1 downto 0 do
      match parked.(i) with
      | Some (q, _) -> pending := (i, q) :: !pending
      | None -> ()
    done;
    match !pending with
    | [] -> ()
    | pending ->
        let answers : (B.t, exn) result option array = Array.make n None in
        let groups : (int * int, (int * fsharp_query) list) Hashtbl.t =
          Hashtbl.create 4
        in
        List.iter
          (fun ((_, q) as iq) ->
            let key = (domain_ord q.q_ctrl.Controller.domain, q.q_ctrl.Controller.nn_splits) in
            let tl = try Hashtbl.find groups key with Not_found -> [] in
            Hashtbl.replace groups key (iq :: tl))
          pending;
        let keys =
          List.sort
            (fun (a1, b1) (a2, b2) ->
              match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
            (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
        in
        List.iter
          (fun key ->
            let iqs = List.rev (Hashtbl.find groups key) in
            let ctrl = (snd (List.hd iqs)).q_ctrl in
            let queries =
              Array.of_list (List.map (fun (_, q) -> (q.q_box, q.q_cmd)) iqs)
            in
            Metrics.incr m_batches;
            Metrics.add m_batched_queries (Array.length queries);
            match Controller.abstract_scores_batch ?cache ctrl queries with
            | ys ->
                List.iteri (fun j (i, _) -> answers.(i) <- Some (Ok ys.(j))) iqs
            | exception e when not (Firewall.fatal e) ->
                (* the per-leaf firewall across a batch: retry each query
                   alone on the scalar path so only the culpable leaf
                   fails — its siblings get their scalar-identical
                   answers *)
                List.iter
                  (fun (i, q) ->
                    answers.(i) <-
                      Some
                        (match
                           Controller.abstract_scores ?cache q.q_ctrl
                             ~box:q.q_box ~prev_cmd:q.q_cmd
                         with
                        | y -> Ok y
                        | exception e when not (Firewall.fatal e) -> Error e))
                  iqs)
          keys;
        List.iter
          (fun (i, _) ->
            match (parked.(i), answers.(i)) with
            | Some (_, k), Some ans -> (
                parked.(i) <- None;
                match ans with
                | Ok y -> Effect.Deep.continue k y
                | Error e -> Effect.Deep.discontinue k e)
            | _ -> assert false)
          pending;
        drive ()
  in
  drive ();
  results

let run_leaves ?cancel ~config ~count_once ~on_cell ~on_leaf ~partial
    ~(results : cell_report option array) ~(cells_arr : Symstate.t array) sys
    pending =
  if config.max_depth < 0 then
    invalid_arg "Verify.verify_partition: negative depth";
  (match config.strategy with
  | (All_dims [] | Most_influential { candidates = []; _ })
    when config.max_depth > 0 ->
      invalid_arg "Verify.verify_partition: no split dimensions"
  | All_dims _ | Most_influential _ -> ());
  let total = Array.length cells_arr in
  let factor = float_of_int (1 lsl strategy_arity config.strategy) in
  let frontier = Frontier.create (config.max_depth + 1) in
  (* one budget per cell, shared by all of its leaves across domains
     (Budget counters are atomic; the deadline is an absolute stamp) —
     created lazily so the wall clock starts at the cell's first leaf *)
  let budgets = Array.init total (fun _ -> Atomic.make None) in
  let budget_for i =
    match Atomic.get budgets.(i) with
    | Some b -> b
    | None ->
        let b = Budget.start ?cancel config.limits in
        if Atomic.compare_and_set budgets.(i) None (Some b) then b
        else
          (match Atomic.get budgets.(i) with
          | Some b -> b
          | None -> assert false)
  in
  let expired task =
    match Atomic.get budgets.(task.t_cell) with
    | Some b -> Budget.expired b
    | None -> false
  in
  let cell_pending = Array.init total (fun _ -> Atomic.make 0) in
  let cell_owner = Array.init total (fun _ -> Atomic.make (-1)) in
  let live = Atomic.make 0 in
  let acc : (int list * leaf) list array = Array.make total [] in
  let acc_mutex = Mutex.create () in
  (* mid-cell resume: terminal leaves recorded by an interrupted run are
     replayed without recomputation; every proper prefix of a recorded
     path is a node the interrupted run decided to split, so it is
     re-split (deterministically) without re-running its reachability *)
  let recorded : (int * int list, leaf) Hashtbl.t = Hashtbl.create 64 in
  let known_split : (int * int list, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (i, leaves) ->
      if i >= 0 && i < total then
        List.iter
          (fun (path, leaf) ->
            Hashtbl.replace recorded (i, path) leaf;
            let rec prefixes pre = function
              | [] -> ()
              | k :: rest ->
                  Hashtbl.replace known_split (i, List.rev pre) ();
                  prefixes (k :: pre) rest
            in
            prefixes [] path)
          leaves)
    partial;
  let mk_task cell path depth st =
    {
      t_cell = cell;
      t_path = path;
      t_state = st;
      t_depth = depth;
      t_width = Nncs_interval.Box.max_width st.Symstate.box;
      t_done = Atomic.make false;
    }
  in
  (* callbacks run only after all counters are consistent, and behind a
     crash guard: a raising journal hook must degrade observability, not
     wedge the scheduler *)
  let safely fn =
    try fn () with e when not (Firewall.fatal e) -> Metrics.incr m_worker_crashes
  in
  let finish_cell c =
    let raw =
      Mutex.lock acc_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock acc_mutex)
        (fun () -> acc.(c))
    in
    let leaves =
      List.sort (fun (p, _) (q, _) -> compare_paths p q) raw |> List.map snd
    in
    let proved_fraction =
      (List.fold_left
         (fun a l ->
           if l.proved then a +. (1.0 /. (factor ** float_of_int l.depth))
           else a)
         0.0 leaves)
      [@lint.fp_exact
        "progress accounting for reports: verdicts come from the leaf \
         proofs, not from this number"]
    in
    let elapsed =
      (List.fold_left (fun a (l : leaf) -> a +. l.elapsed) 0.0 leaves)
      [@lint.fp_exact "wall-clock telemetry (sum of per-leaf compute time)"]
    in
    let report = { index = c; leaves; proved_fraction; elapsed } in
    results.(c) <- Some report;
    Metrics.incr m_cells;
    report
  in
  let complete_terminal ?(replay = false) task leaf =
    if not (Atomic.exchange task.t_done true) then begin
      Mutex.lock acc_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock acc_mutex)
        (fun () -> acc.(task.t_cell) <- (task.t_path, leaf) :: acc.(task.t_cell));
      let rem = Atomic.fetch_and_add cell_pending.(task.t_cell) (-1) - 1 in
      let report = if rem = 0 then Some (finish_cell task.t_cell) else None in
      Atomic.decr live;
      (if not replay then
         safely (fun () ->
             match on_leaf with
             | Some f -> f task.t_cell task.t_path leaf
             | None -> ()));
      match report with
      | Some r ->
          safely (fun () ->
              match on_cell with Some f -> f r | None -> ());
          safely (fun () -> count_once task.t_cell)
      | None -> ()
    end
  in
  let push_children task children =
    if not (Atomic.exchange task.t_done true) then begin
      let n = List.length children in
      ignore (Atomic.fetch_and_add cell_pending.(task.t_cell) (n - 1));
      ignore (Atomic.fetch_and_add live (n - 1));
      List.iteri
        (fun k st ->
          Frontier.push frontier
            (mk_task task.t_cell (task.t_path @ [ k ]) (task.t_depth + 1) st))
        children
    end
  in
  let task_key task =
    String.concat "." (List.map string_of_int (task.t_cell :: task.t_path))
  in
  (* replay / deterministic-resplit tasks complete without running any
     reachability; [`Run] tasks carry the real leaf work *)
  let pre_process task =
    match Hashtbl.find_opt recorded (task.t_cell, task.t_path) with
    | Some leaf ->
        Metrics.incr m_replayed_leaves;
        complete_terminal ~replay:true task leaf;
        `Done
    | None ->
        if
          task.t_depth < config.max_depth
          && Hashtbl.mem known_split (task.t_cell, task.t_path)
        then begin
          (match
             Firewall.protect ~classify:Reach.classify (fun () ->
                 Symstate.split task.t_state (dims_to_split config sys task.t_state))
           with
          | Ok children -> push_children task children
          | Error f ->
              complete_terminal task
                (unknown_leaf ~depth:task.t_depth task.t_state f));
          `Done
        end
        else `Run
  in
  (* the per-leaf firewall: anything the ladder did not absorb (strategy
     evaluation, splitting, injected faults, plain bugs) degrades this
     one leaf — its siblings, and the rest of its own cell, go on.
     [abstract] is the lockstep driver's query-parking hook; the scalar
     path passes nothing. *)
  let leaf_outcome ?abstract task =
    let budget = budget_for task.t_cell in
    Firewall.protect ~classify:Reach.classify (fun () ->
        Fault.trigger ~key:(task_key task) "verify.leaf";
        let verdict, rungs, dt =
          run_leaf ?abstract config budget sys task.t_state
        in
        Metrics.incr m_leaves;
        let proved =
          match verdict with
          | Ok r -> Reach.is_proved_safe r
          | Error _ -> false
        in
        if proved then Metrics.incr m_proved_leaves;
        let out_of_budget =
          match verdict with
          | Error (Failure_.Budget_exceeded _ | Failure_.Cancelled _) -> true
          | _ -> false
        in
        if proved || task.t_depth >= config.max_depth || out_of_budget then
          `Terminal
            (match verdict with
            | Ok r ->
                {
                  state = task.t_state;
                  depth = task.t_depth;
                  proved;
                  result = Completed r.Reach.outcome;
                  rungs;
                  elapsed = dt;
                }
            | Error f ->
                unknown_leaf ~rungs ~elapsed:dt ~depth:task.t_depth
                  task.t_state f)
        else
          `Split
            (Symstate.split task.t_state (dims_to_split config sys task.t_state)))
  in
  let apply_outcome task = function
    | Ok (`Terminal leaf) -> complete_terminal task leaf
    | Ok (`Split children) -> push_children task children
    | Error f ->
        complete_terminal task (unknown_leaf ~depth:task.t_depth task.t_state f)
  in
  let process task =
    match pre_process task with
    | `Done -> ()
    | `Run -> apply_outcome task (leaf_outcome task)
  in
  (* co-scheduled group: run the [`Run] tasks as lockstep fibers sharing
     batched F# calls; outcomes are applied in task order afterwards, so
     reassembly sees the same completions as the scalar path *)
  let cache = Option.map Nncs_nnabs.Cache.shared config.reach.Reach.abs_cache in
  let process_batch tasks =
    let run_tasks =
      List.filter
        (fun t -> match pre_process t with `Run -> true | `Done -> false)
        tasks
    in
    match run_tasks with
    | [] -> ()
    | [ task ] -> apply_outcome task (leaf_outcome task)
    | run_tasks ->
        let arr = Array.of_list run_tasks in
        let bodies =
          Array.map
            (fun task () -> leaf_outcome ~abstract:batched_abstract task)
            arr
        in
        let outcomes = run_lockstep ~cache bodies in
        Array.iteri
          (fun i task ->
            match outcomes.(i) with
            | Some outcome -> apply_outcome task outcome
            | None ->
                (* unreachable: a fiber either returns or parks, and the
                   driver drains every park before returning *)
                assert false)
          arr
  in
  let rec worker_loop ?(backoff = 2e-4) w =
    match Frontier.pop ~expired frontier with
    | None ->
        if Atomic.get live > 0 then begin
          (* leaves are ms-to-seconds of reachability: sleep-polling with
             exponential backoff (0.2 ms doubling to 20 ms) is cheaper
             and simpler than a condition variable, immune to lost
             wakeups from dying workers, and — critically on
             oversubscribed hosts — stops idle domains from stealing
             timeslices from the one computing a long leaf *)
          Unix.sleepf backoff;
          worker_loop
            ~backoff:
              ((Float.min 2e-2 (2.0 *. backoff))
              [@lint.fp_exact "idle-poll backoff: scheduling, not analysis"])
            w
        end
    | Some task ->
        (* batched mode: drain up to K-1 extra tasks whose leaves query
           the same network as the popped one — only same-network
           frontiers may share a kernel call (mixed-network co-batching
           would be unsound and is structurally impossible here) *)
        let group =
          if config.batch_leaves <= 1 then [ task ]
          else begin
            let uid t =
              let ctrl = sys.System.controller in
              Nncs_nn.Network.uid
                ctrl.Controller.networks.(ctrl.Controller.select
                                            t.t_state.Symstate.cmd)
            in
            let u0 = uid task in
            let rec drain acc r =
              if r <= 0 then List.rev acc
              else
                match
                  Frontier.pop_where ~expired
                    ~pred:(fun t -> uid t = u0)
                    frontier
                with
                | None -> List.rev acc
                | Some t -> drain (t :: acc) (r - 1)
            in
            task :: drain [] (config.batch_leaves - 1)
          end
        in
        let stolen_of task =
          let prev = Atomic.exchange cell_owner.(task.t_cell) w in
          let stolen = prev >= 0 && prev <> w in
          if stolen then Metrics.incr m_steals;
          stolen
        in
        let stolen_flags = List.map stolen_of group in
        (try
           match group with
           | [ task ] ->
               Span.with_ "verify.leaf"
                 ~attrs:
                   [
                     ("cell", Nncs_obs.Trace.Int task.t_cell);
                     ("depth", Nncs_obs.Trace.Int task.t_depth);
                     ("worker", Nncs_obs.Trace.Int w);
                     ("stolen", Nncs_obs.Trace.Bool (List.hd stolen_flags));
                   ]
                 (fun () -> process task)
           | group ->
               Span.with_ "verify.leaf_batch"
                 ~attrs:
                   [
                     ("leaves", Nncs_obs.Trace.Int (List.length group));
                     ("worker", Nncs_obs.Trace.Int w);
                   ]
                 (fun () -> process_batch group)
         with e ->
           if Firewall.fatal e then begin
             (* hand the orphans back before dying: every subtree of the
                group not yet completed is re-queued for the surviving
                workers (or for the main-domain recovery sweep) *)
             List.iter
               (fun task ->
                 if not (Atomic.get task.t_done) then begin
                   Metrics.incr m_requeued_leaves;
                   Frontier.push frontier task
                 end)
               group;
             raise e
           end
           else begin
             Metrics.incr m_worker_crashes;
             List.iter
               (fun task ->
                 complete_terminal task
                   (unknown_leaf ~depth:task.t_depth task.t_state
                      (Failure_.Worker_crashed (Printexc.to_string e))))
               group
           end);
        worker_loop w
  in
  List.iter
    (fun i ->
      Atomic.set cell_pending.(i) 1;
      Atomic.incr live;
      Frontier.push frontier (mk_task i [] 0 cells_arr.(i)))
    pending;
  if pending <> [] then
    if config.workers <= 1 then worker_loop 0
    else begin
      let domains =
        List.init config.workers (fun w ->
            Domain.spawn (fun () ->
                Span.with_ "verify.worker"
                  ~attrs:[ ("worker", Nncs_obs.Trace.Int w) ]
                  (fun () -> worker_loop w)))
      in
      List.iter
        (fun d ->
          match Domain.join d with
          | () -> ()
          | exception _ -> Metrics.incr m_worker_crashes)
        domains;
      (* recovery sweep: if every worker died, the re-queued orphans and
         their cells finish in this domain *)
      if Atomic.get live > 0 then worker_loop config.workers
    end

let verify_partition ?cancel ?(config = default_config) ?progress ?on_cell
    ?on_leaf ?(completed = []) ?(partial = []) sys cells =
  if config.batch_leaves < 1 then
    invalid_arg "Verify.verify_partition: batch_leaves must be >= 1";
  let t0 = now () in
  let cells_arr = Array.of_list cells in
  let total = Array.length cells_arr in
  let results = Array.make total None in
  List.iter
    (fun (c : cell_report) ->
      if c.index >= 0 && c.index < total then results.(c.index) <- Some c)
    completed;
  let initially_done =
    Array.fold_left (fun n r -> if r = None then n else n + 1) 0 results
  in
  (* a shared atomic counter so the parallel paths report each finished
     cell live (the callback then runs on the worker's domain); each
     index is counted at most once, so crash-recovery re-runs cannot
     push [progress] past [total] (they are surfaced through the
     [resilience.requeued_*] counters instead) *)
  let done_count = Atomic.make initially_done in
  let counted = Array.init total (fun i -> Atomic.make (results.(i) <> None)) in
  let count_once i =
    if not (Atomic.exchange counted.(i) true) then begin
      let d = Atomic.fetch_and_add done_count 1 + 1 in
      match progress with Some f -> f d total | None -> ()
    end
  in
  let pending =
    List.filter (fun i -> results.(i) = None) (List.init total Fun.id)
  in
  (match config.scheduler with
  | Cells ->
      run_cells ?cancel ~config ~count_once ~on_cell ~results ~cells_arr sys
        pending
  | Leaves ->
      run_leaves ?cancel ~config ~count_once ~on_cell ~on_leaf ~partial
        ~results ~cells_arr sys pending);
  let cell_reports =
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  in
  {
    cells = cell_reports;
    coverage = coverage_of_cells cell_reports;
    elapsed = (now () -. t0) [@lint.fp_exact "wall-clock telemetry"];
    proved_cells =
      List.length
        (List.filter
           (fun c ->
             (c.proved_fraction >= 1.0 -. 1e-12)
             [@lint.fp_exact "report bucketing threshold"])
           cell_reports);
    unknown_cells = List.length (List.filter cell_has_failure cell_reports);
    total_cells = total;
  }

(* ----- problem fingerprint -----

   A journal is only resumable against the exact partition and spec it
   was written for: the cell indices it stores are positions in the cell
   list, and the verdicts are relative to one erroneous set, horizon and
   analysis config.  The fingerprint hashes a canonical rendering of all
   of those; [Spec.t] is opaque (bare predicates), so the specs
   contribute their names plus their sampled answers on every cell —
   any spec change that could flip a stored verdict on some cell flips
   at least one probe bit with overwhelming probability. *)

let fnv1a64 (s : string) =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fingerprint ?(config = default_config) sys cells =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let addfl x = addf "%.17g;" x in
  let cmds = sys.System.controller.Controller.commands in
  addf "commands:%d:%d;" (Command.size cmds) (Command.dim cmds);
  for i = 0 to Command.size cmds - 1 do
    Array.iter addfl (Command.value cmds i)
  done;
  addf "horizon:%d;" sys.System.horizon_steps;
  addfl sys.System.controller.Controller.period;
  addf "erroneous:%s;target:%s;" sys.System.erroneous.Spec.name
    sys.System.target.Spec.name;
  let r = config.reach in
  addf "reach:%d:%d:%d:%s:%b;" r.Reach.integration_steps r.Reach.taylor_order
    r.Reach.gamma
    (match r.Reach.scheme with
    | Nncs_ode.Simulate.Direct -> "direct"
    | Nncs_ode.Simulate.Lohner -> "lohner")
    r.Reach.early_abort;
  addf "nn:%s:%d;"
    (match sys.System.controller.Controller.domain with
    | Nncs_nnabs.Transformer.Interval -> "interval"
    | Nncs_nnabs.Transformer.Symbolic -> "symbolic"
    | Nncs_nnabs.Transformer.Affine -> "affine")
    sys.System.controller.Controller.nn_splits;
  (match config.strategy with
  | All_dims dims ->
      addf "strategy:all";
      List.iter (addf ":%d") dims;
      addf ";"
  | Most_influential { candidates; take } ->
      addf "strategy:influence:%d" take;
      List.iter (addf ":%d") candidates;
      addf ";");
  addf "depth:%d;degrade:%b;" config.max_depth config.degrade;
  List.iteri
    (fun i (st : Symstate.t) ->
      addf "cell:%d:%d;" i st.Symstate.cmd;
      let b = st.Symstate.box in
      let n = B.dim b in
      let center = Array.make n 0.0 in
      for d = 0 to n - 1 do
        let iv = B.get b d in
        addfl (I.lo iv);
        addfl (I.hi iv);
        center.(d) <-
          (0.5 *. (I.lo iv +. I.hi iv))
          [@lint.fp_exact "fingerprint probe point: any in-cell point works"]
      done;
      addf "probe:%b:%b:%b:%b;"
        (sys.System.erroneous.Spec.intersects_box st)
        (sys.System.erroneous.Spec.contains_box st)
        (sys.System.target.Spec.contains_box st)
        (sys.System.erroneous.Spec.contains_point center st.Symstate.cmd))
    cells;
  Printf.sprintf "%016Lx" (fnv1a64 (Buffer.contents buf))

(* ----- journal serialization -----

   One JSON object per cell, self-contained enough to reconstruct the
   cell_report exactly: boxes round-trip through %.17g printing. *)

let box_to_json b =
  Json.List
    (Array.to_list
       (Array.map
          (fun iv -> Json.List [ Json.Num (I.lo iv); Json.Num (I.hi iv) ])
          (B.to_array b)))

let box_of_json = function
  | Json.List dims ->
      B.of_bounds
        (Array.of_list
           (List.map
              (function
                | Json.List [ lo; hi ] -> (Json.to_float lo, Json.to_float hi)
                | _ -> raise (Json.Parse_error "box: expected [lo,hi]"))
              dims))
  | _ -> raise (Json.Parse_error "box: expected a list")

let leaf_result_to_json = function
  | Completed Reach.Proved_safe -> Json.Obj [ ("verdict", Json.Str "safe") ]
  | Completed (Reach.Reached_error { step }) ->
      Json.Obj
        [ ("verdict", Json.Str "unsafe"); ("step", Json.Num (float_of_int step)) ]
  | Completed Reach.Horizon_exhausted ->
      Json.Obj [ ("verdict", Json.Str "horizon") ]
  | Failed f ->
      Json.Obj [ ("verdict", Json.Str "unknown"); ("failure", Failure_.to_json f) ]

let leaf_result_of_json j =
  match Json.member "verdict" j with
  | Some (Json.Str "safe") -> Completed Reach.Proved_safe
  | Some (Json.Str "unsafe") -> (
      match Json.member "step" j with
      | Some s -> Completed (Reach.Reached_error { step = Json.to_int s })
      | None -> raise (Json.Parse_error "leaf: unsafe without step"))
  | Some (Json.Str "horizon") -> Completed Reach.Horizon_exhausted
  | Some (Json.Str "unknown") -> (
      match Json.member "failure" j with
      | Some f -> Failed (Failure_.of_json f)
      | None -> raise (Json.Parse_error "leaf: unknown without failure"))
  | _ -> raise (Json.Parse_error "leaf: bad verdict")

let leaf_to_json l =
  Json.Obj
    [
      ("box", box_to_json l.state.Symstate.box);
      ("cmd", Json.Num (float_of_int l.state.Symstate.cmd));
      ("depth", Json.Num (float_of_int l.depth));
      ("proved", Json.Bool l.proved);
      ("result", leaf_result_to_json l.result);
      ("rungs", Json.List (List.map (fun r -> Json.Str r) l.rungs));
      ("elapsed", Json.Num l.elapsed);
    ]

let get ?(what = "field") j k =
  match Json.member k j with
  | Some v -> v
  | None -> raise (Json.Parse_error (Printf.sprintf "%s: missing %S" what k))

let leaf_of_json j =
  let state =
    Symstate.make (box_of_json (get ~what:"leaf" j "box"))
      (Json.to_int (get ~what:"leaf" j "cmd"))
  in
  {
    state;
    depth = Json.to_int (get ~what:"leaf" j "depth");
    proved = (match get ~what:"leaf" j "proved" with
             | Json.Bool b -> b
             | _ -> raise (Json.Parse_error "leaf: proved not a bool"));
    result = leaf_result_of_json (get ~what:"leaf" j "result");
    rungs =
      (match get ~what:"leaf" j "rungs" with
      | Json.List rs -> List.map Json.to_str rs
      | _ -> raise (Json.Parse_error "leaf: rungs not a list"));
    elapsed = Json.to_float (get ~what:"leaf" j "elapsed");
  }

let cell_report_to_json c =
  Json.Obj
    [
      ("t", Json.Str "cell");
      ("index", Json.Num (float_of_int c.index));
      ("proved_fraction", Json.Num c.proved_fraction);
      ("elapsed", Json.Num c.elapsed);
      ("leaves", Json.List (List.map leaf_to_json c.leaves));
    ]

let cell_report_of_json j =
  {
    index = Json.to_int (get ~what:"cell" j "index");
    proved_fraction = Json.to_float (get ~what:"cell" j "proved_fraction");
    elapsed = Json.to_float (get ~what:"cell" j "elapsed");
    leaves =
      (match get ~what:"cell" j "leaves" with
      | Json.List ls -> List.map leaf_of_json ls
      | _ -> raise (Json.Parse_error "cell: leaves not a list"));
  }

let journal_meta ~total ~fingerprint =
  Json.Obj
    [
      ("t", Json.Str "meta");
      ("kind", Json.Str "nncs-verify-journal");
      ("version", Json.Num 2.0);
      ("total", Json.Num (float_of_int total));
      ("fingerprint", Json.Str fingerprint);
    ]

(* a terminal leaf completed inside a still-unfinished cell — the
   leaf-scheduler journals these so [--resume] restarts mid-cell *)
let leaf_record_to_json ~cell ~path leaf =
  Json.Obj
    [
      ("t", Json.Str "leaf");
      ("cell", Json.Num (float_of_int cell));
      ("path", Json.List (List.map (fun k -> Json.Num (float_of_int k)) path));
      ("leaf", leaf_to_json leaf);
    ]

let leaf_record_of_json j =
  let cell = Json.to_int (get ~what:"leaf record" j "cell") in
  let path =
    match get ~what:"leaf record" j "path" with
    | Json.List ks -> List.map Json.to_int ks
    | _ -> raise (Json.Parse_error "leaf record: path not a list")
  in
  (cell, path, leaf_of_json (get ~what:"leaf record" j "leaf"))

type journal_contents = {
  meta_total : int option;
  meta_fingerprint : string option;
  completed_cells : cell_report list;
  partial_leaves : (int * (int list * leaf) list) list;
}

let load_journal path =
  let lines = Nncs_resilience.Journal.load path in
  let tag j = Json.member "t" j in
  let meta_total =
    List.find_map
      (fun j ->
        if tag j = Some (Json.Str "meta") then
          Option.map Json.to_int (Json.member "total" j)
        else None)
      lines
  in
  let meta_fingerprint =
    List.find_map
      (fun j ->
        if tag j = Some (Json.Str "meta") then
          Option.map Json.to_str (Json.member "fingerprint" j)
        else None)
      lines
  in
  let cells =
    List.filter_map
      (fun j ->
        if tag j = Some (Json.Str "cell") then Some (cell_report_of_json j)
        else None)
      lines
  in
  (* keep the last record per index: a resumed run may have re-journaled
     a cell that was in flight when its predecessor died *)
  let tbl = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace tbl c.index c) cells;
  let completed_cells =
    Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
    |> List.sort (fun a b -> Int.compare a.index b.index)
  in
  (* leaf records for cells without a full report: last record per
     (cell, path) wins, same reasoning as above *)
  let leaf_tbl : (int * int list, leaf) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun j ->
      if tag j = Some (Json.Str "leaf") then begin
        let cell, p, leaf = leaf_record_of_json j in
        if not (Hashtbl.mem tbl cell) then
          Hashtbl.replace leaf_tbl (cell, p) leaf
      end)
    lines;
  let by_cell : (int, (int list * leaf) list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (cell, p) leaf ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_cell cell) in
      Hashtbl.replace by_cell cell ((p, leaf) :: prev))
    leaf_tbl;
  let partial_leaves =
    Hashtbl.fold (fun cell ls acc -> (cell, ls) :: acc) by_cell []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { meta_total; meta_fingerprint; completed_cells; partial_leaves }

(* ----- whole-report serialization -----

   The verdict memo of a resident verification service (Nncs_serve)
   stores and journals entire reports keyed by problem fingerprint, so a
   repeated query replays the full per-cell answer without re-running
   any analysis.  Round-trips exactly, like the per-cell records. *)

let report_to_json r =
  Json.Obj
    [
      ("t", Json.Str "report");
      ("coverage", Json.Num r.coverage);
      ("elapsed", Json.Num r.elapsed);
      ("proved_cells", Json.Num (float_of_int r.proved_cells));
      ("unknown_cells", Json.Num (float_of_int r.unknown_cells));
      ("total_cells", Json.Num (float_of_int r.total_cells));
      ("cells", Json.List (List.map cell_report_to_json r.cells));
    ]

let report_of_json j =
  {
    cells =
      (match get ~what:"report" j "cells" with
      | Json.List cs -> List.map cell_report_of_json cs
      | _ -> raise (Json.Parse_error "report: cells not a list"));
    coverage = Json.to_float (get ~what:"report" j "coverage");
    elapsed = Json.to_float (get ~what:"report" j "elapsed");
    proved_cells = Json.to_int (get ~what:"report" j "proved_cells");
    unknown_cells = Json.to_int (get ~what:"report" j "unknown_cells");
    total_cells = Json.to_int (get ~what:"report" j "total_cells");
  }

(* ----- pre-parsed jobs -----

   The unit of work of a resident verification service: a fully
   resolved analysis configuration plus the initial cells.  The
   fingerprint identifies the problem for memoization, so it is computed
   here, once, next to the run it indexes. *)

type job = { job_config : config; job_cells : Symstate.t list }

let run_job ?cancel ?progress ?on_cell sys job =
  let fp = fingerprint ~config:job.job_config sys job.job_cells in
  let report =
    verify_partition ?cancel ~config:job.job_config ?progress ?on_cell sys
      job.job_cells
  in
  (fp, report)
