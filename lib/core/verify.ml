module Span = Nncs_obs.Span
module Metrics = Nncs_obs.Metrics

let m_cells = Metrics.counter "verify.cells"
let m_leaves = Metrics.counter "verify.leaves"
let m_proved_leaves = Metrics.counter "verify.proved_leaves"

type split_strategy =
  | All_dims of int list
  | Most_influential of { candidates : int list; take : int }

type config = {
  reach : Reach.config;
  strategy : split_strategy;
  max_depth : int;
  workers : int;
}

let default_config =
  {
    reach = { Reach.default_config with keep_sets = false };
    strategy = All_dims [ 0; 1; 2 ];
    max_depth = 2;
    workers = 1;
  }

(* Influence of a dimension on the controller decision: bisect the cell
   along it and measure how wide the abstract score box F#(Pre#(half))
   stays — the dimension whose bisection tightens the scores the most is
   the most influential (a one-step lookahead of the paper's suggested
   heuristic). *)
let influence_order sys (cell : Symstate.t) candidates =
  let ctrl = sys.System.controller in
  let score dim =
    let l, r = Nncs_interval.Box.bisect cell.Symstate.box dim in
    let width_of half =
      Nncs_interval.Box.max_width
        (Controller.abstract_scores ctrl ~box:half ~prev_cmd:cell.Symstate.cmd)
    in
    0.5 *. (width_of l +. width_of r)
  in
  let scored = List.map (fun d -> (d, score d)) candidates in
  List.map fst (List.sort (fun (_, a) (_, b) -> compare a b) scored)

let dims_to_split config sys cell =
  match config.strategy with
  | All_dims dims -> dims
  | Most_influential { candidates; take } ->
      let take = max 1 (min take (List.length candidates)) in
      List.filteri (fun i _ -> i < take) (influence_order sys cell candidates)

type leaf = {
  state : Symstate.t;
  depth : int;
  proved : bool;
  outcome : Reach.outcome;
  elapsed : float;
}

type cell_report = {
  index : int;
  leaves : leaf list;
  proved_fraction : float;
  elapsed : float;
}

type report = {
  cells : cell_report list;
  coverage : float;
  elapsed : float;
  proved_cells : int;
  total_cells : int;
}

let now () = Unix.gettimeofday ()

let run_reach config sys st =
  let t0 = now () in
  let r = Reach.analyze ~config:config.reach sys (Symset.of_list [ st ]) in
  (r, now () -. t0)

let strategy_arity = function
  | All_dims dims -> List.length dims
  | Most_influential { take; candidates } ->
      max 1 (min take (List.length candidates))

let verify_cell ?(config = default_config) ?(index = 0) sys cell =
  if config.max_depth < 0 then invalid_arg "Verify.verify_cell: negative depth";
  (match config.strategy with
  | All_dims [] | Most_influential { candidates = []; _ }
    when config.max_depth > 0 ->
      invalid_arg "Verify.verify_cell: no split dimensions"
  | All_dims _ | Most_influential _ -> ());
  let factor = float_of_int (1 lsl strategy_arity config.strategy) in
  let rec go depth st =
    let r, dt =
      Span.with_ "verify.leaf"
        ~attrs:[ ("depth", Nncs_obs.Trace.Int depth) ]
        (fun () -> run_reach config sys st)
    in
    Metrics.incr m_leaves;
    if Reach.is_proved_safe r then Metrics.incr m_proved_leaves;
    if Reach.is_proved_safe r || depth >= config.max_depth then
      [ { state = st; depth; proved = Reach.is_proved_safe r; outcome = r.Reach.outcome; elapsed = dt } ]
    else
      (* split refinement along the strategy's dimensions for this cell *)
      List.concat_map (go (depth + 1))
        (Symstate.split st (dims_to_split config sys st))
  in
  let t0 = now () in
  let span = Span.enter ~attrs:[ ("index", Nncs_obs.Trace.Int index) ] "verify.cell" in
  let leaves =
    Fun.protect ~finally:(fun () -> Span.exit span) (fun () -> go 0 cell)
  in
  Metrics.incr m_cells;
  let proved_fraction =
    List.fold_left
      (fun acc leaf ->
        if leaf.proved then acc +. (1.0 /. (factor ** float_of_int leaf.depth))
        else acc)
      0.0 leaves
  in
  { index; leaves; proved_fraction; elapsed = now () -. t0 }

let coverage_of_cells cells =
  match cells with
  | [] -> 100.0
  | _ ->
      100.0
      *. List.fold_left (fun acc c -> acc +. c.proved_fraction) 0.0 cells
      /. float_of_int (List.length cells)

let chunk_indices total workers =
  (* round-robin assignment keeps similar-cost neighbouring cells spread
     across workers *)
  List.init workers (fun w ->
      List.filter (fun i -> i mod workers = w) (List.init total Fun.id))

let verify_partition ?(config = default_config) ?progress sys cells =
  let t0 = now () in
  let cells_arr = Array.of_list cells in
  let total = Array.length cells_arr in
  let results = Array.make total None in
  (* a shared atomic counter so the parallel path reports each finished
     cell live (the callback then runs on the worker's domain) *)
  let done_count = Atomic.make 0 in
  let run_one i =
    let r = verify_cell ~config ~index:i sys cells_arr.(i) in
    let d = Atomic.fetch_and_add done_count 1 + 1 in
    (match progress with Some f -> f d total | None -> ());
    r
  in
  if config.workers <= 1 || total <= 1 then
    Array.iteri (fun i _ -> results.(i) <- Some (run_one i)) cells_arr
  else begin
    let chunks = chunk_indices total (min config.workers total) in
    let domains =
      List.mapi
        (fun w idxs ->
          Domain.spawn (fun () ->
              Span.with_ "verify.worker"
                ~attrs:
                  [
                    ("worker", Nncs_obs.Trace.Int w);
                    ("cells", Int (List.length idxs));
                  ]
                (fun () -> List.map (fun i -> (i, run_one i)) idxs)))
        chunks
    in
    List.iter
      (fun d ->
        List.iter (fun (i, r) -> results.(i) <- Some r) (Domain.join d))
      domains
  end;
  let cell_reports =
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  in
  {
    cells = cell_reports;
    coverage = coverage_of_cells cell_reports;
    elapsed = now () -. t0;
    proved_cells =
      List.length (List.filter (fun c -> c.proved_fraction >= 1.0 -. 1e-12) cell_reports);
    total_cells = total;
  }
