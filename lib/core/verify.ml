module Span = Nncs_obs.Span
module Metrics = Nncs_obs.Metrics
module Json = Nncs_obs.Json
module B = Nncs_interval.Box
module I = Nncs_interval.Interval
module Budget = Nncs_resilience.Budget
module Failure_ = Nncs_resilience.Failure
module Firewall = Nncs_resilience.Firewall
module Fault = Nncs_resilience.Fault

let m_cells = Metrics.counter "verify.cells"
let m_leaves = Metrics.counter "verify.leaves"
let m_proved_leaves = Metrics.counter "verify.proved_leaves"

(* resilience instruments: one counter per degradation-ladder rung plus
   the terminal outcomes (see DESIGN.md "Resilience") *)
let m_retry_halved = Metrics.counter "resilience.retry_halved_step"
let m_fallback_interval = Metrics.counter "resilience.fallback_interval"
let m_unknown_leaves = Metrics.counter "resilience.unknown_leaves"
let m_worker_crashes = Metrics.counter "resilience.worker_crashes"
let m_requeued_cells = Metrics.counter "resilience.requeued_cells"

type split_strategy =
  | All_dims of int list
  | Most_influential of { candidates : int list; take : int }

type config = {
  reach : Reach.config;
  strategy : split_strategy;
  max_depth : int;
  workers : int;
  limits : Budget.limits;
  degrade : bool;
}

let default_config =
  {
    reach = { Reach.default_config with keep_sets = false };
    strategy = All_dims [ 0; 1; 2 ];
    max_depth = 2;
    workers = 1;
    limits = Budget.unlimited;
    degrade = true;
  }

(* Influence of a dimension on the controller decision: bisect the cell
   along it and measure how wide the abstract score box F#(Pre#(half))
   stays — the dimension whose bisection tightens the scores the most is
   the most influential (a one-step lookahead of the paper's suggested
   heuristic).

   The probes deliberately bypass the abstraction cache: with a
   quantization grid coarser than a half-box, both halves of a
   bisection (or a half and its parent) collapse onto the same widened
   key, every candidate scores identically and the ordering degenerates
   to an arbitrary one.  Exact uncached scores keep the heuristic
   discriminating; the probed boxes are transient half-cells that would
   rarely be re-queried anyway. *)
let influence_order sys (cell : Symstate.t) candidates =
  let ctrl = sys.System.controller in
  let score dim =
    let l, r = Nncs_interval.Box.bisect cell.Symstate.box dim in
    let width_of half =
      Nncs_interval.Box.max_width
        (Controller.abstract_scores ctrl ~box:half ~prev_cmd:cell.Symstate.cmd)
    in
    (0.5 *. (width_of l +. width_of r))
    [@lint.fp_exact "split-ordering heuristic: any dimension order is sound"]
  in
  let scored = List.map (fun d -> (d, score d)) candidates in
  List.map fst (List.sort (fun (_, a) (_, b) -> compare a b) scored)

let dims_to_split config sys cell =
  match config.strategy with
  | All_dims dims -> dims
  | Most_influential { candidates; take } ->
      let take = max 1 (min take (List.length candidates)) in
      List.filteri (fun i _ -> i < take) (influence_order sys cell candidates)

type leaf_result =
  | Completed of Reach.outcome
  | Failed of Failure_.t

type leaf = {
  state : Symstate.t;
  depth : int;
  proved : bool;
  result : leaf_result;
  rungs : string list;
  elapsed : float;
}

type cell_report = {
  index : int;
  leaves : leaf list;
  proved_fraction : float;
  elapsed : float;
}

type report = {
  cells : cell_report list;
  coverage : float;
  elapsed : float;
  proved_cells : int;
  unknown_cells : int;
  total_cells : int;
}

let now () = Unix.gettimeofday ()

let leaf_failure l = match l.result with Failed f -> Some f | Completed _ -> None

let cell_has_failure c = List.exists (fun l -> leaf_failure l <> None) c.leaves

(* ----- the graceful-degradation ladder -----

   One reach attempt per rung, all drawing on the same per-cell budget:
     1. "base"            — the configured reach
     2. "halved_step"     — double the integration sub-steps (halved
                            Lohner/Taylor step, smaller a-priori boxes)
     3. "interval_domain" — swap the controller abstraction down to the
                            cheap interval transformer
   Budget exhaustion short-circuits: retrying with *more* work cannot
   help a cell that ran out of time or steps. *)

let rung_base = "base"
let rung_halved = "halved_step"
let rung_interval = "interval_domain"

let attempt reach_config budget sys st =
  Reach.run ~config:reach_config ~budget sys (Symset.of_list [ st ])

let run_ladder config budget sys st =
  let base = config.reach in
  match attempt base budget sys st with
  | Ok r -> (Ok r, [ rung_base ])
  | Error (Failure_.Budget_exceeded _ as f) -> (Error f, [ rung_base ])
  | Error _ -> (
      Metrics.incr m_retry_halved;
      let halved =
        { base with Reach.integration_steps = 2 * base.Reach.integration_steps }
      in
      match attempt halved budget sys st with
      | Ok r -> (Ok r, [ rung_base; rung_halved ])
      | Error (Failure_.Budget_exceeded _ as f) ->
          (Error f, [ rung_base; rung_halved ])
      | Error f2 ->
          let ctrl = sys.System.controller in
          if ctrl.Controller.domain = Nncs_nnabs.Transformer.Interval then
            (Error f2, [ rung_base; rung_halved ])
          else begin
            Metrics.incr m_fallback_interval;
            let sys' =
              {
                sys with
                System.controller =
                  { ctrl with Controller.domain = Nncs_nnabs.Transformer.Interval };
              }
            in
            match attempt halved budget sys' st with
            | Ok r -> (Ok r, [ rung_base; rung_halved; rung_interval ])
            | Error f3 -> (Error f3, [ rung_base; rung_halved; rung_interval ])
          end)

let run_leaf config budget sys st =
  let t0 = now () in
  let verdict, rungs =
    if config.degrade then run_ladder config budget sys st
    else
      match attempt config.reach budget sys st with
      | Ok r -> (Ok r, [ rung_base ])
      | Error f -> (Error f, [ rung_base ])
  in
  (verdict, rungs, (now () -. t0) [@lint.fp_exact "wall-clock telemetry"])

let strategy_arity = function
  | All_dims dims -> List.length dims
  | Most_influential { take; candidates } ->
      max 1 (min take (List.length candidates))

let unknown_leaf ?(rungs = []) ?(elapsed = 0.0) ~depth st f =
  Metrics.incr m_unknown_leaves;
  { state = st; depth; proved = false; result = Failed f; rungs; elapsed }

let verify_cell ?(config = default_config) ?(index = 0) sys cell =
  if config.max_depth < 0 then invalid_arg "Verify.verify_cell: negative depth";
  (match config.strategy with
  | All_dims [] | Most_influential { candidates = []; _ }
    when config.max_depth > 0 ->
      invalid_arg "Verify.verify_cell: no split dimensions"
  | All_dims _ | Most_influential _ -> ());
  let factor = float_of_int (1 lsl strategy_arity config.strategy) in
  let budget = Budget.start config.limits in
  let rec go depth st =
    let (verdict, rungs, dt) =
      Span.with_ "verify.leaf"
        ~attrs:[ ("depth", Nncs_obs.Trace.Int depth) ]
        (fun () -> run_leaf config budget sys st)
    in
    Metrics.incr m_leaves;
    let proved =
      match verdict with Ok r -> Reach.is_proved_safe r | Error _ -> false
    in
    if proved then Metrics.incr m_proved_leaves;
    let out_of_budget =
      match verdict with
      | Error (Failure_.Budget_exceeded _) -> true
      | _ -> false
    in
    (* refinement also drives "could not conclude": a failed leaf is
       split like an unproved one (smaller boxes often restore the
       enclosure) — except when the budget is gone, where splitting
       would only multiply the failures *)
    if proved || depth >= config.max_depth || out_of_budget then begin
      (match verdict with
      | Ok r ->
          [
            {
              state = st;
              depth;
              proved;
              result = Completed r.Reach.outcome;
              rungs;
              elapsed = dt;
            };
          ]
      | Error f -> [ unknown_leaf ~rungs ~elapsed:dt ~depth st f ])
    end
    else
      List.concat_map (go (depth + 1))
        (Symstate.split st (dims_to_split config sys st))
  in
  let t0 = now () in
  let span =
    Span.enter ~attrs:[ ("index", Nncs_obs.Trace.Int index) ] "verify.cell"
  in
  let leaves =
    Fun.protect
      ~finally:(fun () -> Span.exit span)
      (fun () ->
        (* the per-cell firewall: any exception the per-leaf ladder did
           not absorb (strategy evaluation, splitting, injected faults,
           plain bugs) degrades this one cell to Unknown *)
        match
          Firewall.protect ~classify:Reach.classify (fun () ->
              Fault.trigger ~key:(string_of_int index) "verify.cell";
              go 0 cell)
        with
        | Ok leaves -> leaves
        | Error f -> [ unknown_leaf ~depth:0 cell f ])
  in
  Metrics.incr m_cells;
  let proved_fraction =
    (List.fold_left
       (fun acc leaf ->
         if leaf.proved then acc +. (1.0 /. (factor ** float_of_int leaf.depth))
         else acc)
       0.0 leaves)
    [@lint.fp_exact
      "progress accounting for reports: verdicts come from the leaf \
       proofs, not from this number"]
  in
  {
    index;
    leaves;
    proved_fraction;
    elapsed = (now () -. t0) [@lint.fp_exact "wall-clock telemetry"];
  }

let coverage_of_cells cells =
  match cells with
  | [] -> 100.0
  | _ ->
      (100.0
      *. List.fold_left (fun acc c -> acc +. c.proved_fraction) 0.0 cells
      /. float_of_int (List.length cells))
      [@lint.fp_exact "coverage percentage for reports only"]

let crashed_cell_report index st msg =
  {
    index;
    leaves = [ unknown_leaf ~depth:0 st (Failure_.Worker_crashed msg) ];
    proved_fraction = 0.0;
    elapsed = 0.0;
  }

let verify_partition ?(config = default_config) ?progress ?on_cell
    ?(completed = []) sys cells =
  let t0 = now () in
  let cells_arr = Array.of_list cells in
  let total = Array.length cells_arr in
  let results = Array.make total None in
  List.iter
    (fun (c : cell_report) ->
      if c.index >= 0 && c.index < total then results.(c.index) <- Some c)
    completed;
  let initially_done =
    Array.fold_left (fun n r -> if r = None then n else n + 1) 0 results
  in
  (* a shared atomic counter so the parallel path reports each finished
     cell live (the callback then runs on the worker's domain) *)
  let done_count = Atomic.make initially_done in
  let run_one i =
    let r = verify_cell ~config ~index:i sys cells_arr.(i) in
    (match on_cell with Some f -> f r | None -> ());
    let d = Atomic.fetch_and_add done_count 1 + 1 in
    (match progress with Some f -> f (min d total) total | None -> ());
    r
  in
  let pending =
    List.filter (fun i -> results.(i) = None) (List.init total Fun.id)
  in
  let n_pending = List.length pending in
  if config.workers <= 1 || n_pending <= 1 then
    List.iter (fun i -> results.(i) <- Some (run_one i)) pending
  else begin
    (* Fault-isolated parallel workers over a shared queue.  Each worker
       pulls the next pending index; a cell that raises through every
       firewall is recorded as crashed (first try/with); a worker domain
       that dies wholesale (fatal exception) forfeits its unrecorded
       cells, which the recovery sweep below re-runs in this domain. *)
    let queue = Array.of_list pending in
    let next = Atomic.make 0 in
    let nworkers = min config.workers n_pending in
    let worker w () =
      Span.with_ "verify.worker"
        ~attrs:[ ("worker", Nncs_obs.Trace.Int w) ]
        (fun () ->
          let out = ref [] in
          let rec pull () =
            let k = Atomic.fetch_and_add next 1 in
            if k < Array.length queue then begin
              let i = queue.(k) in
              (try out := (i, run_one i) :: !out
               with e when not (Firewall.fatal e) ->
                 Metrics.incr m_worker_crashes;
                 out :=
                   (i, crashed_cell_report i cells_arr.(i) (Printexc.to_string e))
                   :: !out);
              pull ()
            end
          in
          pull ();
          !out)
    in
    let domains = List.init nworkers (fun w -> Domain.spawn (worker w)) in
    List.iter
      (fun d ->
        match Domain.join d with
        | rs -> List.iter (fun (i, r) -> results.(i) <- Some r) rs
        | exception _ ->
            (* the domain died; its completed-but-unreported and
               in-flight cells are still None and will be re-queued *)
            Metrics.incr m_worker_crashes)
      domains;
    (* crash recovery: re-run every cell no surviving worker reported *)
    Array.iteri
      (fun i r ->
        if r = None then begin
          Metrics.incr m_requeued_cells;
          results.(i) <- Some (run_one i)
        end)
      results
  end;
  let cell_reports =
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  in
  {
    cells = cell_reports;
    coverage = coverage_of_cells cell_reports;
    elapsed = (now () -. t0) [@lint.fp_exact "wall-clock telemetry"];
    proved_cells =
      List.length
        (List.filter
           (fun c ->
             (c.proved_fraction >= 1.0 -. 1e-12)
             [@lint.fp_exact "report bucketing threshold"])
           cell_reports);
    unknown_cells = List.length (List.filter cell_has_failure cell_reports);
    total_cells = total;
  }

(* ----- journal serialization -----

   One JSON object per cell, self-contained enough to reconstruct the
   cell_report exactly: boxes round-trip through %.17g printing. *)

let box_to_json b =
  Json.List
    (Array.to_list
       (Array.map
          (fun iv -> Json.List [ Json.Num (I.lo iv); Json.Num (I.hi iv) ])
          (B.to_array b)))

let box_of_json = function
  | Json.List dims ->
      B.of_bounds
        (Array.of_list
           (List.map
              (function
                | Json.List [ lo; hi ] -> (Json.to_float lo, Json.to_float hi)
                | _ -> raise (Json.Parse_error "box: expected [lo,hi]"))
              dims))
  | _ -> raise (Json.Parse_error "box: expected a list")

let leaf_result_to_json = function
  | Completed Reach.Proved_safe -> Json.Obj [ ("verdict", Json.Str "safe") ]
  | Completed (Reach.Reached_error { step }) ->
      Json.Obj
        [ ("verdict", Json.Str "unsafe"); ("step", Json.Num (float_of_int step)) ]
  | Completed Reach.Horizon_exhausted ->
      Json.Obj [ ("verdict", Json.Str "horizon") ]
  | Failed f ->
      Json.Obj [ ("verdict", Json.Str "unknown"); ("failure", Failure_.to_json f) ]

let leaf_result_of_json j =
  match Json.member "verdict" j with
  | Some (Json.Str "safe") -> Completed Reach.Proved_safe
  | Some (Json.Str "unsafe") -> (
      match Json.member "step" j with
      | Some s -> Completed (Reach.Reached_error { step = Json.to_int s })
      | None -> raise (Json.Parse_error "leaf: unsafe without step"))
  | Some (Json.Str "horizon") -> Completed Reach.Horizon_exhausted
  | Some (Json.Str "unknown") -> (
      match Json.member "failure" j with
      | Some f -> Failed (Failure_.of_json f)
      | None -> raise (Json.Parse_error "leaf: unknown without failure"))
  | _ -> raise (Json.Parse_error "leaf: bad verdict")

let leaf_to_json l =
  Json.Obj
    [
      ("box", box_to_json l.state.Symstate.box);
      ("cmd", Json.Num (float_of_int l.state.Symstate.cmd));
      ("depth", Json.Num (float_of_int l.depth));
      ("proved", Json.Bool l.proved);
      ("result", leaf_result_to_json l.result);
      ("rungs", Json.List (List.map (fun r -> Json.Str r) l.rungs));
      ("elapsed", Json.Num l.elapsed);
    ]

let get ?(what = "field") j k =
  match Json.member k j with
  | Some v -> v
  | None -> raise (Json.Parse_error (Printf.sprintf "%s: missing %S" what k))

let leaf_of_json j =
  let state =
    Symstate.make (box_of_json (get ~what:"leaf" j "box"))
      (Json.to_int (get ~what:"leaf" j "cmd"))
  in
  {
    state;
    depth = Json.to_int (get ~what:"leaf" j "depth");
    proved = (match get ~what:"leaf" j "proved" with
             | Json.Bool b -> b
             | _ -> raise (Json.Parse_error "leaf: proved not a bool"));
    result = leaf_result_of_json (get ~what:"leaf" j "result");
    rungs =
      (match get ~what:"leaf" j "rungs" with
      | Json.List rs -> List.map Json.to_str rs
      | _ -> raise (Json.Parse_error "leaf: rungs not a list"));
    elapsed = Json.to_float (get ~what:"leaf" j "elapsed");
  }

let cell_report_to_json c =
  Json.Obj
    [
      ("t", Json.Str "cell");
      ("index", Json.Num (float_of_int c.index));
      ("proved_fraction", Json.Num c.proved_fraction);
      ("elapsed", Json.Num c.elapsed);
      ("leaves", Json.List (List.map leaf_to_json c.leaves));
    ]

let cell_report_of_json j =
  {
    index = Json.to_int (get ~what:"cell" j "index");
    proved_fraction = Json.to_float (get ~what:"cell" j "proved_fraction");
    elapsed = Json.to_float (get ~what:"cell" j "elapsed");
    leaves =
      (match get ~what:"cell" j "leaves" with
      | Json.List ls -> List.map leaf_of_json ls
      | _ -> raise (Json.Parse_error "cell: leaves not a list"));
  }

let journal_meta ~total =
  Json.Obj
    [
      ("t", Json.Str "meta");
      ("kind", Json.Str "nncs-verify-journal");
      ("version", Json.Num 1.0);
      ("total", Json.Num (float_of_int total));
    ]

let load_journal path =
  let lines = Nncs_resilience.Journal.load path in
  let meta_total =
    List.find_map
      (fun j ->
        if Json.member "t" j = Some (Json.Str "meta") then
          Option.map Json.to_int (Json.member "total" j)
        else None)
      lines
  in
  let cells =
    List.filter_map
      (fun j ->
        if Json.member "t" j = Some (Json.Str "cell") then
          Some (cell_report_of_json j)
        else None)
      lines
  in
  (* keep the last record per index: a resumed run may have re-journaled
     a cell that was in flight when its predecessor died *)
  let tbl = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace tbl c.index c) cells;
  let dedup =
    Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
    |> List.sort (fun a b -> compare a.index b.index)
  in
  (meta_total, dedup)
