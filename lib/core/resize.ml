(* Joining the two globally closest same-command states, repeatedly.  The
   sets involved are small (Gamma is typically 5-50), so the quadratic
   re-scan per join is not worth optimising away. *)

let closest_pair group =
  (* smallest center distance among pairs of one command group *)
  let best = ref None in
  let arr = Array.of_list group in
  let n = Array.length arr in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let d = Symstate.distance arr.(i) arr.(j) in
      match !best with
      | Some (bd, _, _) when bd <= d -> ()
      | _ -> best := Some (d, arr.(i), arr.(j))
    done
  done;
  !best

let check_feasible ~num_commands ~gamma set =
  let distinct =
    Symset.group_by_command ~num_commands set
    |> Array.to_list
    |> List.filter (fun g -> g <> [])
    |> List.length
  in
  if gamma < distinct then
    invalid_arg
      (Printf.sprintf
         "Resize.resize: gamma (%d) below the number of distinct commands \
          (%d); joining cannot reach the threshold (Remark 3)"
         gamma distinct)

let resize_stats ~num_commands ~gamma set =
  if gamma <= 0 then invalid_arg "Resize.resize: non-positive gamma";
  (* feasibility is checked once up front: joins can only shrink the set
     of distinct commands, so a feasible input stays feasible through
     every iteration *)
  if Symset.length set > gamma then check_feasible ~num_commands ~gamma set;
  let rec go joins set =
    if Symset.length set <= gamma then (set, joins)
    else begin
      let groups = Symset.group_by_command ~num_commands set in
      (* the two closest states overall necessarily share a command *)
      let best = ref None in
      Array.iter
        (fun g ->
          match closest_pair g with
          | None -> ()
          | Some (d, a, b) -> (
              match !best with
              | Some (bd, _, _) when bd <= d -> ()
              | _ -> best := Some (d, a, b)))
        groups;
      match !best with
      | None ->
          (* no same-command pair exists: check_feasible guarantees this
             cannot happen when length > gamma >= distinct commands *)
          assert false
      | Some (_, a, b) ->
          let joined = Symstate.join a b in
          let rest = List.filter (fun st -> st != a && st != b) set in
          go (joins + 1) (joined :: rest)
    end
  in
  go 0 set

let resize ~num_commands ~gamma set =
  fst (resize_stats ~num_commands ~gamma set)

let joins_performed ~num_commands ~gamma set =
  snd (resize_stats ~num_commands ~gamma set)
