module B = Nncs_interval.Box
module Net = Nncs_nn.Network

let encode ~p2 i1 i2 = (i1 * p2) + i2
let decode ~p2 i = (i / p2, i mod p2)

let append_boxes a b =
  B.of_intervals (Array.append (B.to_array a) (B.to_array b))

let sub_box box start len =
  B.of_intervals (Array.sub (B.to_array box) start len)

let product (c1 : Controller.t) (c2 : Controller.t) =
  if not (Float.equal c1.Controller.period c2.Controller.period) then
    invalid_arg "Multi.product: periods differ";
  if c1.Controller.domain <> c2.Controller.domain then
    invalid_arg "Multi.product: abstract domains differ";
  let p1 = Command.size c1.Controller.commands in
  let p2 = Command.size c2.Controller.commands in
  let commands =
    Command.make
      ~names:
        (Array.init (p1 * p2) (fun i ->
             let i1, i2 = decode ~p2 i in
             Command.name c1.Controller.commands i1
             ^ "|"
             ^ Command.name c2.Controller.commands i2))
      (Array.init (p1 * p2) (fun i ->
           let i1, i2 = decode ~p2 i in
           Array.append
             (Command.value c1.Controller.commands i1)
             (Command.value c2.Controller.commands i2)))
  in
  let d1 = Array.length c1.Controller.networks in
  let d2 = Array.length c2.Controller.networks in
  let networks =
    Array.init (d1 * d2) (fun k ->
        Net.block_product
          c1.Controller.networks.(k / d2)
          c2.Controller.networks.(k mod d2))
  in
  let out1 = Net.output_dim c1.Controller.networks.(0) in
  let out2 = Net.output_dim c2.Controller.networks.(0) in
  Controller.make ~period:c1.Controller.period ~commands ~networks
    ~select:(fun prev ->
      let i1, i2 = decode ~p2 prev in
      (c1.Controller.select i1 * d2) + c2.Controller.select i2)
    ~pre:(fun s -> Array.append (c1.Controller.pre s) (c2.Controller.pre s))
    ~pre_abs:(fun box ->
      append_boxes (c1.Controller.pre_abs box) (c2.Controller.pre_abs box))
    ~post:(fun y ->
      let y1 = Array.sub y 0 out1 and y2 = Array.sub y out1 out2 in
      encode ~p2 (c1.Controller.post y1) (c2.Controller.post y2))
    ~post_abs:(fun y ->
      let y1 = sub_box y 0 out1 and y2 = sub_box y out1 out2 in
      let l1 = c1.Controller.post_abs y1 and l2 = c2.Controller.post_abs y2 in
      List.concat_map (fun i1 -> List.map (fun i2 -> encode ~p2 i1 i2) l2) l1)
    ~domain:c1.Controller.domain
    ~nn_splits:(max c1.Controller.nn_splits c2.Controller.nn_splits)
    ()
