(** Algorithm 2: keep the number of symbolic states in a symbolic set
    below the threshold Gamma by repeatedly joining the two closest
    states that share a command (Definitions 9 and 10).

    The result always represents a superset of the input (joins only
    enlarge), so using it inside the reachability loop preserves
    soundness. *)

val resize : num_commands:int -> gamma:int -> Symset.t -> Symset.t
(** Raises [Invalid_argument] when the set exceeds [gamma] and [gamma]
    is smaller than the number of distinct commands present (Remark 3:
    two states with different commands cannot be joined). *)

val resize_stats :
  num_commands:int -> gamma:int -> Symset.t -> Symset.t * int
(** The resized set together with the number of joins performed — one
    pass, where [resize] + [joins_performed] would run the quadratic
    algorithm twice. *)

val joins_performed : num_commands:int -> gamma:int -> Symset.t -> int
(** Number of join operations resize would perform (for reporting);
    [snd (resize_stats ...)]. *)
