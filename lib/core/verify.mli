(** The outer verification driver of Section 7.1: run the reachability
    analysis independently on every cell of the initial-state partition;
    when a cell cannot be proved safe, bisect it along the configured
    dimensions and retry, up to a maximum refinement depth; account
    coverage with the paper's formula
    [c = 100/K0 * sum_d n_d / f^d] where [f = 2^|split_dims|].

    The driver is resilient by construction (see DESIGN.md §8): every
    reach attempt runs behind {!Reach.run}'s firewall against a per-cell
    budget; a failing leaf walks a graceful-degradation ladder (halved
    integrator step, then the interval controller abstraction) before
    settling for an [Unknown] verdict with a structured
    [Nncs_resilience.Failure.t] reason — one pathological cell can no
    longer kill a partition run. *)

type split_strategy =
  | All_dims of int list
      (** bisect along every listed dimension (the paper's experiment:
          2^3 children per refinement) *)
  | Most_influential of { candidates : int list; take : int }
      (** the paper's future-work heuristic: rank the candidate
          dimensions by how much bisecting them tightens the abstract
          controller scores on the cell, and bisect only the [take] most
          influential ones (2^take children) *)

type config = {
  reach : Reach.config;
  strategy : split_strategy;
  max_depth : int;  (** maximum number of refinements (paper: 2) *)
  workers : int;  (** parallel domains for independent cells (>= 1) *)
  limits : Nncs_resilience.Budget.limits;
      (** per-cell budget, shared by all of the cell's leaves and
          degradation retries *)
  degrade : bool;
      (** walk the degradation ladder before returning Unknown (on by
          default; off = a single attempt per leaf) *)
}

val default_config : config
(** Paper setup: reach defaults, [All_dims [0;1;2]], depth 2, serial,
    unlimited budget, degradation on. *)

type leaf_result =
  | Completed of Reach.outcome  (** the reach analysis ran to a verdict *)
  | Failed of Nncs_resilience.Failure.t
      (** every ladder rung failed: the leaf is [Unknown] with a reason *)

type leaf = {
  state : Symstate.t;  (** the (possibly refined) initial cell *)
  depth : int;
  proved : bool;
  result : leaf_result;
  rungs : string list;
      (** degradation rungs attempted, in order (["base"],
          ["halved_step"], ["interval_domain"]); empty when the failure
          struck outside the ladder *)
  elapsed : float;  (** seconds spent on this leaf's reachability *)
}

type cell_report = {
  index : int;  (** position of the cell in the input partition *)
  leaves : leaf list;
  proved_fraction : float;  (** sum over proved leaves of f^-depth *)
  elapsed : float;
}

type report = {
  cells : cell_report list;
  coverage : float;  (** percent, the paper's c *)
  elapsed : float;
  proved_cells : int;  (** cells with proved_fraction = 1 *)
  unknown_cells : int;  (** cells with at least one [Failed] leaf *)
  total_cells : int;
}

val leaf_failure : leaf -> Nncs_resilience.Failure.t option
val cell_has_failure : cell_report -> bool

val verify_cell :
  ?config:config -> ?index:int -> System.t -> Symstate.t -> cell_report
(** Verify one initial cell with split refinement; the report's [index]
    field is [index] (default 0).  Never raises on analysis failures:
    the per-cell firewall turns them into [Failed] leaves.  A leaf that
    fails with budget left is split like an unproved one (refinement as
    failure recovery); once the budget is exhausted the cell stops
    refining. *)

val verify_partition :
  ?config:config ->
  ?progress:(int -> int -> unit) ->
  ?on_cell:(cell_report -> unit) ->
  ?completed:cell_report list ->
  System.t ->
  Symstate.t list ->
  report
(** Verify every cell of the partition ([progress done total] is called
    after each cell when provided).  Cells are independent; with
    [workers > 1] they are pulled from a shared queue by that many
    domains, so [progress] and [on_cell] fire live from the worker that
    finished the cell — both callbacks must tolerate concurrent
    invocation.  [on_cell] is the journaling hook: it receives each
    freshly computed report (but not the pre-[completed] ones).

    Fault isolation: a cell whose analysis escapes every firewall is
    recorded as [Unknown (Worker_crashed _)]; a worker domain that dies
    forfeits only its unreported cells, which are re-queued and run in
    the calling domain ([resilience.requeued_cells] counts them).

    [completed] (e.g. from {!load_journal}) pre-fills results by
    [index]; those cells are skipped, not recomputed. *)

val coverage_of_cells : cell_report list -> float

val influence_order : System.t -> Symstate.t -> int list -> int list
(** The candidate dimensions sorted from most to least influential (see
    {!Most_influential}); exposed for tests and diagnostics.  The F#
    probes always run uncached: quantized cache hits would widen both
    halves of a bisection onto the same score box and erase the very
    differences the ordering measures. *)

(** {1 Journal serialization}

    One self-contained JSON object per cell; boxes round-trip through
    17-digit printing, so a resumed run reproduces the interrupted one's
    reports exactly. *)

val cell_report_to_json : cell_report -> Nncs_obs.Json.t
val cell_report_of_json : Nncs_obs.Json.t -> cell_report
val leaf_to_json : leaf -> Nncs_obs.Json.t
val leaf_of_json : Nncs_obs.Json.t -> leaf

val journal_meta : total:int -> Nncs_obs.Json.t
(** The journal header line, recording the partition size so a resume
    against a different partition is detected. *)

val load_journal : string -> int option * cell_report list
(** Parse a journal file: the meta line's [total] (if present) and the
    completed cell reports, deduplicated by index (last record wins),
    sorted by index.  Tolerates a truncated final line. *)
