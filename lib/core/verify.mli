(** The outer verification driver of Section 7.1: run the reachability
    analysis independently on every cell of the initial-state partition;
    when a cell cannot be proved safe, bisect it along the configured
    dimensions and retry, up to a maximum refinement depth; account
    coverage with the paper's formula
    [c = 100/K0 * sum_d n_d / f^d] where [f = 2^|split_dims|].

    The driver is resilient by construction (see DESIGN.md §8): every
    reach attempt runs behind {!Reach.run}'s firewall against a per-cell
    budget; a failing leaf walks a graceful-degradation ladder (halved
    integrator step, then the interval controller abstraction) before
    settling for an [Unknown] verdict with a structured
    [Nncs_resilience.Failure.t] reason — one pathological cell can no
    longer kill a partition run. *)

type split_strategy =
  | All_dims of int list
      (** bisect along every listed dimension (the paper's experiment:
          2^3 children per refinement) *)
  | Most_influential of { candidates : int list; take : int }
      (** the paper's future-work heuristic: rank the candidate
          dimensions by how much bisecting them tightens the abstract
          controller scores on the cell, and bisect only the [take] most
          influential ones (2^take children) *)

type scheduler =
  | Cells
      (** the flat work queue: one task per partition cell, a worker runs
          the cell's whole refinement tree *)
  | Leaves
      (** the leaf-frontier work-stealing scheduler: split children go
          back onto a shared depth- and width-prioritized frontier that
          all workers pull from, so one hard cell's refinement fans out
          across every core (see DESIGN.md "Leaf scheduler") *)

type config = {
  reach : Reach.config;
  strategy : split_strategy;
  max_depth : int;  (** maximum number of refinements (paper: 2) *)
  workers : int;  (** parallel domains for independent cells (>= 1) *)
  limits : Nncs_resilience.Budget.limits;
      (** per-cell budget, shared by all of the cell's leaves and
          degradation retries (in [Leaves] mode the sharing spans
          domains: the step counter is atomic and the deadline is an
          absolute stamp) *)
  degrade : bool;
      (** walk the degradation ladder before returning Unknown (on by
          default; off = a single attempt per leaf) *)
  scheduler : scheduler;
  batch_leaves : int;
      (** under [Leaves], the number of compatible frontier tasks a
          worker drains per pull and runs as lockstep fibers sharing
          batched F# kernel calls (see DESIGN.md "Batched F#"); 1 (the
          default) is the scalar path.  Verdicts, leaf sets and journal
          records are byte-identical at every value; like [workers] and
          [scheduler] it does not enter the problem {!fingerprint}.
          Ignored by the [Cells] scheduler. *)
}

val default_config : config
(** Paper setup: reach defaults, [All_dims [0;1;2]], depth 2, serial,
    unlimited budget, degradation on, [Cells] scheduler, no leaf
    batching. *)

type leaf_result =
  | Completed of Reach.outcome  (** the reach analysis ran to a verdict *)
  | Failed of Nncs_resilience.Failure.t
      (** every ladder rung failed: the leaf is [Unknown] with a reason *)

type leaf = {
  state : Symstate.t;  (** the (possibly refined) initial cell *)
  depth : int;
  proved : bool;
  result : leaf_result;
  rungs : string list;
      (** degradation rungs attempted, in order (["base"],
          ["halved_step"], ["interval_domain"]); empty when the failure
          struck outside the ladder *)
  elapsed : float;  (** seconds spent on this leaf's reachability *)
}

type cell_report = {
  index : int;  (** position of the cell in the input partition *)
  leaves : leaf list;
  proved_fraction : float;  (** sum over proved leaves of f^-depth *)
  elapsed : float;
}

type report = {
  cells : cell_report list;
  coverage : float;  (** percent, the paper's c *)
  elapsed : float;
  proved_cells : int;  (** cells with proved_fraction = 1 *)
  unknown_cells : int;  (** cells with at least one [Failed] leaf *)
  total_cells : int;
}

val leaf_failure : leaf -> Nncs_resilience.Failure.t option
val cell_has_failure : cell_report -> bool

val verify_cell :
  ?cancel:Nncs_resilience.Cancel.t ->
  ?config:config ->
  ?index:int ->
  System.t ->
  Symstate.t ->
  cell_report
(** Verify one initial cell with split refinement; the report's [index]
    field is [index] (default 0).  Never raises on analysis failures:
    the per-cell firewall turns them into [Failed] leaves.  A leaf that
    fails with budget left is split like an unproved one (refinement as
    failure recovery); once the budget is exhausted — or [cancel] is
    tripped — the cell stops refining.  A cancelled cell's remaining
    leaves degrade to [Failed (Cancelled _)]. *)

val verify_partition :
  ?cancel:Nncs_resilience.Cancel.t ->
  ?config:config ->
  ?progress:(int -> int -> unit) ->
  ?on_cell:(cell_report -> unit) ->
  ?on_leaf:(int -> int list -> leaf -> unit) ->
  ?completed:cell_report list ->
  ?partial:(int * (int list * leaf) list) list ->
  System.t ->
  Symstate.t list ->
  report
(** Verify every cell of the partition ([progress done total] is called
    after each cell when provided).  Cells are independent; with
    [workers > 1] they are pulled from a shared queue by that many
    domains, so [progress] and [on_cell] fire live from the worker that
    finished the cell — all callbacks must tolerate concurrent
    invocation.  [on_cell] is the journaling hook: it receives each
    freshly computed report (but not the pre-[completed] ones).
    [progress] counts every cell index at most once, so crash-recovery
    re-runs never push it past [total] — re-execution is surfaced only
    through the [resilience.requeued_cells] / [resilience.requeued_leaves]
    metrics.

    With [config.scheduler = Leaves], refinement children are scheduled
    on a shared leaf frontier instead of staying with their cell's
    worker: deepest-first (completes subtrees, bounding the frontier),
    widest-first within a depth (LPT-style), and budget-expired leaves
    jump the queue.  [on_leaf cell path leaf] then fires for every
    freshly computed {e terminal} leaf ([path] is the child-index path
    from the cell's root, [[]] for an unsplit cell) — the mid-cell
    journaling hook.  Reports are reassembled deterministically: leaves
    are sorted by path, which equals the sequential depth-first order,
    so verdicts, leaves and coverage are identical to the [Cells]
    scheduler's (and the single-worker run's) whenever verdicts are
    budget-independent; per-leaf [elapsed] telemetry naturally varies
    between runs.

    Fault isolation: a cell (or, under [Leaves], a single leaf) whose
    analysis escapes every firewall is recorded as
    [Unknown (Worker_crashed _)]; a worker domain that dies forfeits
    only its unreported work, which is re-queued and run by the
    surviving workers or the calling domain
    ([resilience.requeued_cells] / [resilience.requeued_leaves]).

    [completed] (e.g. {!load_journal}[.completed_cells]) pre-fills
    results by [index]; those cells are skipped, not recomputed.
    [partial] ({!load_journal}[.partial_leaves]) replays terminal
    leaves of interrupted cells under the [Leaves] scheduler: recorded
    leaves are not recomputed (and not re-journaled through [on_leaf]),
    interior nodes on the way to them re-split deterministically
    without re-running reachability.  [partial] is ignored by the
    [Cells] scheduler.

    [cancel] threads a cooperative cancellation token into every cell
    budget: once tripped, in-flight leaves unwind at their next budget
    gate (one control step), pending work degrades to
    [Failed (Cancelled _)] without being analysed, and the call returns
    a complete (all-cells-accounted) report promptly instead of running
    the partition to the end. *)

val coverage_of_cells : cell_report list -> float

val influence_order : System.t -> Symstate.t -> int list -> int list
(** The candidate dimensions sorted from most to least influential (see
    {!Most_influential}); exposed for tests and diagnostics.  The F#
    probes always run uncached: quantized cache hits would widen both
    halves of a bisection onto the same score box and erase the very
    differences the ordering measures. *)

(** {1 Journal serialization}

    One self-contained JSON object per cell; boxes round-trip through
    17-digit printing, so a resumed run reproduces the interrupted one's
    reports exactly. *)

val cell_report_to_json : cell_report -> Nncs_obs.Json.t
val cell_report_of_json : Nncs_obs.Json.t -> cell_report
val leaf_to_json : leaf -> Nncs_obs.Json.t
val leaf_of_json : Nncs_obs.Json.t -> leaf

val fingerprint : ?config:config -> System.t -> Symstate.t list -> string
(** A 16-hex-digit digest of the verification problem: the partition
    (cell boxes and commands), the command set, horizon and period, the
    spec names plus their sampled answers on every cell, and the
    analysis config (reach parameters, abstraction domain, split
    strategy, depth, degradation).  Two runs with the same fingerprint
    store compatible journals; a resume against a differing fingerprint
    must be refused — the journal's cell indices and verdicts would be
    meaningless.  [Spec.t] holds opaque predicates, so spec changes are
    detected through the per-cell probe bits rather than the predicate
    text. *)

val journal_meta : total:int -> fingerprint:string -> Nncs_obs.Json.t
(** The journal header line, recording the partition size and the
    problem {!fingerprint} so a resume against a different partition or
    spec is detected. *)

val leaf_record_to_json : cell:int -> path:int list -> leaf -> Nncs_obs.Json.t
(** A terminal leaf completed inside a still-unfinished cell, journaled
    by the [Leaves] scheduler's [on_leaf] hook so [--resume] can restart
    mid-cell. *)

val leaf_record_of_json : Nncs_obs.Json.t -> int * int list * leaf

type journal_contents = {
  meta_total : int option;  (** the meta line's [total], if present *)
  meta_fingerprint : string option;
      (** the meta line's problem fingerprint (absent in v1 journals) *)
  completed_cells : cell_report list;
      (** full cell reports, deduplicated by index (last record wins),
          sorted by index *)
  partial_leaves : (int * (int list * leaf) list) list;
      (** per cell {e without} a full report: its journaled terminal
          leaves keyed by path (last record per path wins), sorted by
          cell — feed to [verify_partition ~partial] *)
}

val load_journal : string -> journal_contents
(** Parse a journal file.  Malformed lines (e.g. a crash-truncated
    partial record, possibly followed by later appends) are skipped with
    a warning on stderr — see {!Nncs_resilience.Journal.load}. *)

val report_to_json : report -> Nncs_obs.Json.t
(** The whole report as one JSON object ({!cell_report_to_json} per
    cell); round-trips exactly.  Used by the verification service's
    fingerprint-keyed verdict memo. *)

val report_of_json : Nncs_obs.Json.t -> report

(** {1 Pre-parsed jobs}

    The unit of work of a resident verification service
    ([Nncs_serve]): a fully resolved analysis configuration plus the
    initial cells. *)

type job = { job_config : config; job_cells : Symstate.t list }

val run_job :
  ?cancel:Nncs_resilience.Cancel.t ->
  ?progress:(int -> int -> unit) ->
  ?on_cell:(cell_report -> unit) ->
  System.t ->
  job ->
  string * report
(** [run_job sys job] is the problem {!fingerprint} of the job together
    with the {!verify_partition} report for it.  The fingerprint is
    computed before the run, so a caller that finds it in a memo can
    skip the run entirely; [progress] and [on_cell] are passed through
    to {!verify_partition}. *)
