(** The outer verification driver of Section 7.1: run the reachability
    analysis independently on every cell of the initial-state partition;
    when a cell cannot be proved safe, bisect it along the configured
    dimensions and retry, up to a maximum refinement depth; account
    coverage with the paper's formula
    [c = 100/K0 * sum_d n_d / f^d] where [f = 2^|split_dims|]. *)

type split_strategy =
  | All_dims of int list
      (** bisect along every listed dimension (the paper's experiment:
          2^3 children per refinement) *)
  | Most_influential of { candidates : int list; take : int }
      (** the paper's future-work heuristic: rank the candidate
          dimensions by how much bisecting them tightens the abstract
          controller scores on the cell, and bisect only the [take] most
          influential ones (2^take children) *)

type config = {
  reach : Reach.config;
  strategy : split_strategy;
  max_depth : int;  (** maximum number of refinements (paper: 2) *)
  workers : int;  (** parallel domains for independent cells (>= 1) *)
}

val default_config : config
(** Paper setup: reach defaults, [All_dims [0;1;2]], depth 2, serial. *)

type leaf = {
  state : Symstate.t;  (** the (possibly refined) initial cell *)
  depth : int;
  proved : bool;
  outcome : Reach.outcome;
  elapsed : float;  (** seconds spent on this leaf's reachability *)
}

type cell_report = {
  index : int;  (** position of the cell in the input partition *)
  leaves : leaf list;
  proved_fraction : float;  (** sum over proved leaves of f^-depth *)
  elapsed : float;
}

type report = {
  cells : cell_report list;
  coverage : float;  (** percent, the paper's c *)
  elapsed : float;
  proved_cells : int;  (** cells with proved_fraction = 1 *)
  total_cells : int;
}

val verify_cell :
  ?config:config -> ?index:int -> System.t -> Symstate.t -> cell_report
(** Verify one initial cell with split refinement; the report's [index]
    field is [index] (default 0). *)

val verify_partition :
  ?config:config -> ?progress:(int -> int -> unit) -> System.t ->
  Symstate.t list -> report
(** Verify every cell of the partition ([progress done total] is called
    after each cell when provided).  Cells are independent; with
    [workers > 1] they are processed by that many domains in parallel and
    [progress] fires live from the worker that finished the cell — the
    callback must therefore tolerate concurrent invocation. *)

val coverage_of_cells : cell_report list -> float

val influence_order : System.t -> Symstate.t -> int list -> int list
(** The candidate dimensions sorted from most to least influential (see
    {!Most_influential}); exposed for tests and diagnostics. *)
