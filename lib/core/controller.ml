module I = Nncs_interval.Interval
module B = Nncs_interval.Box
module Net = Nncs_nn.Network
module T = Nncs_nnabs.Transformer

type t = {
  period : float;
  commands : Command.set;
  networks : Net.t array;
  select : int -> int;
  pre : float array -> float array;
  pre_abs : B.t -> B.t;
  post : float array -> int;
  post_abs : B.t -> int list;
  domain : T.domain;
  nn_splits : int;
}

let make ~period ~commands ~networks ~select ~pre ~pre_abs ~post ~post_abs
    ?(domain = T.Symbolic) ?(nn_splits = 0) () =
  if period <= 0.0 then invalid_arg "Controller.make: non-positive period";
  if Array.length networks = 0 then invalid_arg "Controller.make: no networks";
  if nn_splits < 0 then invalid_arg "Controller.make: negative nn_splits";
  for c = 0 to Command.size commands - 1 do
    let n = select c in
    if n < 0 || n >= Array.length networks then
      invalid_arg
        (Printf.sprintf
           "Controller.make: select maps command %d to invalid network %d" c n)
  done;
  { period; commands; networks; select; pre; pre_abs; post; post_abs; domain; nn_splits }

let concrete_step ctrl ~state ~prev_cmd =
  let net = ctrl.networks.(ctrl.select prev_cmd) in
  let x = ctrl.pre state in
  let y = Net.eval net x in
  let cmd = ctrl.post y in
  if cmd < 0 || cmd >= Command.size ctrl.commands then
    invalid_arg "Controller.concrete_step: post returned an invalid command";
  cmd

let domain_tag = function T.Interval -> 0 | T.Symbolic -> 1 | T.Affine -> 2

let abstract_scores ?cache ctrl ~box ~prev_cmd =
  let net = ctrl.networks.(ctrl.select prev_cmd) in
  let x = ctrl.pre_abs box in
  let run b =
    if ctrl.nn_splits = 0 then T.propagate ctrl.domain net b
    else T.propagate_split ctrl.domain ~splits:ctrl.nn_splits net b
  in
  match cache with
  | None -> run x
  | Some c ->
      (* entries are only shareable between queries that would run the
         exact same abstraction: the key carries the network's
         process-unique uid (never a controller-local index — the
         domain cache outlives any one controller, and an index would
         conflate different systems' networks), plus domain and split
         depth in the tag *)
      let tag = (ctrl.nn_splits * 3) + domain_tag ctrl.domain in
      Nncs_nnabs.Cache.find_or_compute c ~net_id:(Net.uid net) ~cmd:prev_cmd ~tag
        x run

(* Queries sharing one previous command run the same abstraction on the
   same network, so they can share a batched kernel call; distinct
   previous commands are answered group by group (they may select
   different networks and key the cache differently — co-batching them
   would be unsound).  Each group consults the cache per leaf and
   batches only the misses. *)
let abstract_scores_batch ?cache ctrl queries =
  let n = Array.length queries in
  if n = 0 then [||]
  else begin
    let out : B.t option array = Array.make n None in
    let groups : (int, int list) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun i (_, prev_cmd) ->
        let tl = try Hashtbl.find groups prev_cmd with Not_found -> [] in
        Hashtbl.replace groups prev_cmd (i :: tl))
      queries;
    let cmds =
      List.sort Int.compare
        (Hashtbl.fold (fun c _ acc -> c :: acc) groups [])
    in
    List.iter
      (fun prev_cmd ->
        let idxs = List.rev (Hashtbl.find groups prev_cmd) in
        let net = ctrl.networks.(ctrl.select prev_cmd) in
        let xs =
          Array.of_list
            (List.map (fun i -> ctrl.pre_abs (fst queries.(i))) idxs)
        in
        let run bs =
          if ctrl.nn_splits = 0 then T.propagate_batch ctrl.domain net bs
          else T.propagate_split_batch ctrl.domain ~splits:ctrl.nn_splits net bs
        in
        let ys =
          match cache with
          | None -> run xs
          | Some c ->
              let tag = (ctrl.nn_splits * 3) + domain_tag ctrl.domain in
              Nncs_nnabs.Cache.find_or_compute_batch c ~net_id:(Net.uid net)
                ~cmd:prev_cmd ~tag xs run
        in
        List.iteri (fun j i -> out.(i) <- Some ys.(j)) idxs)
      cmds;
    Array.map
      (function Some y -> y | None -> assert false (* every index grouped *))
      out
  end

(* [post_abs] plus command validation — the half of [abstract_step]
   after the scores; split out so a batched scorer (the leaf scheduler's
   lockstep driver) reuses the exact validation, error messages
   included. *)
let commands_of_scores ctrl y =
  let cmds = ctrl.post_abs y in
  if cmds = [] then
    invalid_arg "Controller.abstract_step: post_abs returned no command";
  List.iter
    (fun c ->
      if c < 0 || c >= Command.size ctrl.commands then
        invalid_arg "Controller.abstract_step: invalid command index")
    cmds;
  cmds

let abstract_step ?cache ctrl ~box ~prev_cmd =
  commands_of_scores ctrl (abstract_scores ?cache ctrl ~box ~prev_cmd)

(* A NaN score makes every [<]/[>] comparison below false, so the scan
   would silently fall through to index 0 — poisoned network output
   becoming a confidently wrong command.  Non-finite scores (NaN or an
   overflowed evaluation) are a failure to surface, not a choice to
   make. *)
let check_finite_scores name scores =
  Array.iteri
    (fun i s ->
      if not (Float.is_finite s) then
        invalid_arg
          (Printf.sprintf "Controller.%s: non-finite score %h at index %d" name
             s i))
    scores

let argmin_post scores =
  if Array.length scores = 0 then invalid_arg "Controller.argmin_post: empty";
  check_finite_scores "argmin_post" scores;
  let best = ref 0 in
  for i = 1 to Array.length scores - 1 do
    if scores.(i) < scores.(!best) then best := i
  done;
  !best

(* Command i is possibly the argmin iff there is a point of the box where
   score i is <= every other score; over-approximated by comparing i's
   lower bound against the others' upper bounds. *)
let argmin_post_abs box =
  let p = B.dim box in
  let reachable = ref [] in
  for i = p - 1 downto 0 do
    let lo_i = I.lo (B.get box i) in
    let dominated = ref false in
    for j = 0 to p - 1 do
      if j <> i && I.hi (B.get box j) < lo_i then dominated := true
    done;
    if not !dominated then reachable := i :: !reachable
  done;
  !reachable

let argmax_post scores =
  if Array.length scores = 0 then invalid_arg "Controller.argmax_post: empty";
  check_finite_scores "argmax_post" scores;
  let best = ref 0 in
  for i = 1 to Array.length scores - 1 do
    if scores.(i) > scores.(!best) then best := i
  done;
  !best

let argmax_post_abs box =
  let p = B.dim box in
  let reachable = ref [] in
  for i = p - 1 downto 0 do
    let hi_i = I.hi (B.get box i) in
    let dominated = ref false in
    for j = 0 to p - 1 do
      if j <> i && I.lo (B.get box j) > hi_i then dominated := true
    done;
    if not !dominated then reachable := i :: !reachable
  done;
  !reachable

let identity_pre s = s
let identity_pre_abs b = b
