(** Algorithm 3: reachability analysis of the closed-loop system.

    Iterates the controller steps; for each symbolic state the plant flow
    is over-approximated by validated simulation (Algorithm 1) and the
    controller by abstract interpretation; the set of symbolic states is
    kept below Gamma by Algorithm 2.  The verdict is [Proved_safe] only
    when the reachable over-approximation avoids E {e and} the system
    provably terminates in T within the horizon (the conjunction returned
    by Algorithm 3). *)

type config = {
  integration_steps : int;  (** M of Algorithm 1 *)
  taylor_order : int;  (** order of the validated integrator *)
  scheme : Nncs_ode.Simulate.scheme;
      (** validated-integration scheme (direct Taylor or Loehner) *)
  gamma : int;  (** Gamma of Algorithm 2 *)
  early_abort : bool;  (** stop at the first contact with E *)
  keep_sets : bool;  (** retain per-step symbolic sets in the result *)
  abs_cache : Nncs_nnabs.Cache.config option;
      (** memoize F# per worker domain (see {!Nncs_nnabs.Cache}); [None]
          leaves the controller abstraction bitwise-unchanged *)
}

val default_config : config
(** M = 10 and Gamma = P = 5 (the paper's experimental setup), Taylor
    order 6, direct scheme, early abort, sets kept, no F# cache. *)

type step_record = {
  step : int;  (** j *)
  states_before_resize : int;
  states_after_resize : int;
  flow : Symset.t;  (** R_[j[ (empty when [keep_sets] is false) *)
  next : Symset.t;  (** R_(j+1) (empty when [keep_sets] is false) *)
}

type outcome =
  | Proved_safe  (** no contact with E and termination proved *)
  | Reached_error of { step : int }
      (** the over-approximation touches E during control step [step] —
          the system is {e not proved} safe (it may still be safe) *)
  | Horizon_exhausted
      (** no contact with E but termination within tau not established *)

type result = {
  outcome : outcome;
  terminated_at : int option;  (** j_end when termination was detected *)
  steps : step_record list;  (** chronological *)
  max_states : int;  (** peak size of R_j *)
  total_joins : int;  (** joins performed by Algorithm 2 overall *)
}

val is_proved_safe : result -> bool

exception Error_contact of int
(** Internal early-abort signal of the [early_abort] path.  It is
    handled inside {!analyze} (and, as a safety net, mapped to a
    [Reached_error] result by {!run}); it must never escape this
    module's API. *)

val analyze :
  ?config:config ->
  ?budget:Nncs_resilience.Budget.t ->
  ?abstract:
    (Controller.t -> box:Nncs_interval.Box.t -> prev_cmd:int -> int list) ->
  System.t ->
  Symset.t ->
  result
(** [analyze system r0] with [r0] the symbolic set enclosing the initial
    states.  May raise {!Nncs_ode.Apriori.Enclosure_failure} if the
    validated integrator cannot enclose the flow (step too large),
    [Nncs_resilience.Budget.Exhausted] when the [budget] runs out
    (checked once per control step), or
    [Nncs_interval.Interval.Numeric_error] on numeric garbage.  Callers
    that must not die use {!run}.

    [abstract] overrides the controller-abstraction call of every
    control step (default
    [Controller.abstract_step ?cache sys.controller]): the leaf
    scheduler's batched mode passes a hook that parks the analysis at
    each F# query so co-scheduled leaves share one blocked kernel call.
    The override receives the system's {e current} controller — under
    the degradation ladder's interval rung, the domain-swapped one — and
    must be semantically identical to the default for verdicts to be
    preserved.  When [abstract] is given, [config.abs_cache] is the
    override's responsibility. *)

type verdict = (result, Nncs_resilience.Failure.t) Stdlib.result

val classify : exn -> Nncs_resilience.Failure.t option
(** Map the analysis-domain exceptions (enclosure failure, numeric
    errors) to their failure reasons; [None] for anything unrecognised
    (the firewall then reports [Worker_crashed]). *)

val run :
  ?config:config ->
  ?budget:Nncs_resilience.Budget.t ->
  ?abstract:
    (Controller.t -> box:Nncs_interval.Box.t -> prev_cmd:int -> int list) ->
  System.t ->
  Symset.t ->
  verdict
(** The non-raising boundary: {!analyze} behind a
    [Nncs_resilience.Firewall] with {!classify}.  Every analysis-domain
    exception — including a leaked {!Error_contact}, which becomes a
    [Reached_error] result — returns as data. *)

val flow_union : result -> Symset.t
(** The over-approximation R_[0,tau] (requires [keep_sets]). *)
