type t = {
  plant : Nncs_ode.Ode.system;
  controller : Controller.t;
  erroneous : Spec.t;
  target : Spec.t;
  horizon_steps : int;
}

let make ~plant ~controller ~erroneous ~target ~horizon_steps =
  if horizon_steps <= 0 then invalid_arg "System.make: non-positive horizon";
  if plant.Nncs_ode.Ode.input_dim <> Command.dim controller.Controller.commands
  then
    invalid_arg
      "System.make: plant input dimension does not match command dimension";
  { plant; controller; erroneous; target; horizon_steps }

let period sys = sys.controller.Controller.period
let horizon sys = float_of_int sys.horizon_steps *. period sys
[@@lint.fp_exact "reporting convenience; the verifier iterates horizon_steps"]
