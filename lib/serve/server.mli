(** The resident multi-domain verification server.

    Answers {!Protocol.job}s from four tiers (see DESIGN.md §12–13):

    + the fingerprint-keyed verdict {!Memo} — an identical query returns
      its stored report without touching the reachability pipeline;
    + single-flight coalescing — a job identical to one {e currently
      running} joins it as a follower and receives the shared run's
      verdict ([source = coalesced]) instead of racing a duplicate run;
    + the process-wide sharded abstraction cache
      ({!Nncs_nnabs.Cache.shared}), injected into every job's reach
      config, so F# boxes computed for one job warm the next;
    + a full run on {!Nncs.Verify.verify_partition} (which itself fans
      out on the leaf scheduler when the job asks for it).

    The server is scenario-agnostic: the closed-loop system and the
    partition factory are supplied as callbacks at {!create} time, and
    every job selects its abstraction domain and input-split count
    through them.  A memo (and its journal) is only meaningful for one
    [make_system] — the fingerprint does not hash network weights.

    Each job runs behind the {!Nncs_resilience.Firewall}: a poisoned job
    yields an [error] event for its id, never a dead dispatcher.

    Jobs are cancellable: a {!Protocol.request.Cancel} request (or the
    server-side [job_deadline_s] watchdog) trips the run's cooperative
    {!Nncs_resilience.Cancel} token, which the reach loop polls at its
    existing budget gates — the run unwinds within one control step of
    one leaf and the job ends with a terminal [cancelled] event.
    Cancelling one follower of a coalesced flight never kills the
    shared run: the token trips only once every party has cancelled. *)

type config = {
  dispatchers : int;  (** concurrent jobs (>= 1); each job may additionally
                          spawn its own [config.workers] domains *)
  cache : Nncs_nnabs.Cache.config option;
      (** the process-wide abstraction cache injected into every job
          ([None]: jobs run uncached) *)
  memo_path : string option;  (** verdict-memo journal backing *)
  memo_capacity : int option;
      (** LRU bound on live memo entries ([None]: unbounded); evictions
          leave journal lines behind, which {!Memo} compacts away *)
  max_queue : int option;
      (** admission control: a session sheds job [k+1] with an
          [overloaded] error once [k] jobs are queued ([None]:
          unbounded) *)
  max_line_bytes : int;
      (** cap on one request line; longer lines are discarded with an
          [error] event instead of buffering without bound *)
  job_deadline_s : float option;
      (** server-side straggler watchdog: any job running longer than
          this is cancelled ([None]: no watchdog) *)
  backreach : Nncs_backreach.Backreach.t option;
      (** quantized backreachability table answering [lookup] requests
          ([None]: lookups answer [unavailable]).  Like the memo, a
          table is only meaningful for the network set the server
          actually runs — its fingerprint does not hash weights. *)
}

val default_config : config
(** One dispatcher; a large exact-key cache ([capacity 65536, quantum 0,
    8 shards] — quantum 0 keeps served verdicts bitwise-identical to
    uncached runs); no memo journal, unbounded memo and queue, 1 MiB
    line cap, no job deadline, no backreach table. *)

type t

type ticket
(** A handle to one submitted job's in-flight run, delivered through
    [submit ~on_start]; feed it to {!cancel_ticket}. *)

val create :
  config ->
  make_system:
    (domain:Nncs_nnabs.Transformer.domain -> nn_splits:int -> Nncs.System.t) ->
  make_cells:
    (arcs:int -> headings:int -> arc_indices:int list -> Nncs.Symstate.t list) ->
  t
(** [make_cells] receives [arc_indices = []] when the job asked for
    every arc.  With [job_deadline_s] set, spawns the watchdog domain —
    {!close} joins it. *)

val submit :
  t ->
  emit:(Protocol.event -> unit) ->
  ?on_start:(ticket -> unit) ->
  Protocol.job ->
  unit
(** Handle one job on the calling domain: emit [accepted] (with the job
    fingerprint: {!Nncs.Verify.fingerprint}, extended with the budget
    limits when any are set — a budget-truncated report must not be
    served for a differently-budgeted job), then either the memoized
    verdict or [progress] events followed by the computed verdict; a
    failure emits [error].  [emit] must tolerate concurrent invocation
    when the job runs with [workers > 1] (progress fires from worker
    domains).

    On a memo miss the job becomes a flight party and [on_start] fires
    with its cancellation {!ticket} before any reachability runs.  If
    an identical job (same fingerprint, memo reads enabled) is already
    in flight, [submit] registers the new job as a follower and
    {e returns immediately}: the shared run's completion later invokes
    this job's [emit] with a [source = coalesced] verdict (or its
    terminal [cancelled]/[error]) from the leader's domain.  Jobs with
    [memo = false] neither join nor found coalescable flights: they
    always run privately (but still feed the memo).

    A run whose cancel token tripped emits [cancelled] to every party
    that has not already acknowledged its own cancellation, and its
    truncated report is {e not} memoized. *)

val cancel_ticket : t -> ticket -> reason:string -> bool
(** Mark the ticket's party cancelled; trips the underlying run's token
    once every party of its flight is cancelled.  Returns [false] if
    the party was already cancelled or its flight already finished —
    the caller owes the job no [cancelled] event in that case.  The
    caller that receives [true] owes the job its terminal [cancelled]
    event: the run itself stays silent for parties that were
    individually cancelled. *)

val lookup : t -> string -> Nncs.Verify.report option
(** The memoized report for a job fingerprint (as emitted in [accepted]
    and [verdict] events), if any; does not count as a memo hit — lets
    benches compare served verdicts against direct runs. *)

val stats_json : t -> Nncs_obs.Json.t
(** Jobs handled, coalesced/cancelled/shed counts, live flights, memo
    size/hits/evictions, abstraction-cache hit rate and shard sizes. *)

val run : t -> in_channel -> out_channel -> [ `Shutdown | `Eof ]
(** The JSONL session loop: read one request per line from [ic], stream
    events to [oc].  Jobs are queued and executed by
    [config.dispatchers] domains while the calling domain keeps
    reading, so independent jobs overlap; [lookup], [cancel], [stats]
    and [shutdown] are answered inline — a [lookup] in particular is
    served from the in-memory backreach table ahead of the job queue
    and the verdict memo, so repeated probes never enter the run path
    (a [stats] or [lookup_result] reply can therefore overtake verdicts
    of still-running jobs).  On [shutdown] or end of
    input the queue is drained, dispatchers joined, coalesced followers
    of foreign flights awaited, and a final [bye] emitted; the return
    value says which of the two ended the session (a socket server
    keeps accepting after [`Eof], stops after [`Shutdown]).

    Robustness properties:
    - {b Bounded requests}: a line over [max_line_bytes] is discarded
      with an [error] event; unparseable lines produce [error] events
      with an empty id.  Neither kills the session.
    - {b Admission control}: with [max_queue = Some k], a job arriving
      on a full queue is shed with an [overloaded] error before any
      work happens.  Jobs with an empty id, or an id still in flight in
      this session, are rejected with an [error] carrying an empty id
      (naming the offender in the reason): a terminal error under the
      original id would displace the first job's verdict.
    - {b Cancellation}: [cancel] of a queued job drops it before
      dispatch; of a running job, trips its token.  Either way the
      job's terminal event is [cancelled], emitted immediately as the
      ack.  Cancelling a finished or unknown id yields an [error] with
      an empty id (the job's own single terminal event is never
      duplicated — per id, exactly one of [verdict] / [cancelled] /
      [error] is emitted, later arrivals being suppressed).
    - {b Broken clients}: a failed write to [oc] (e.g. [EPIPE] with
      SIGPIPE ignored) silently drops that session's remaining events —
      running jobs complete and still feed the memo — and a read error
      on [ic] ends the session exactly like end-of-input, draining the
      queue and joining the dispatchers.
    - {b Dispatcher crashes}: a fatal exception killing a dispatcher
      domain is absorbed at join; items it left behind are drained on
      the session domain, so every accepted job still reaches a
      terminal event and the session still ends with [bye]. *)

val close : t -> unit
(** Stop the watchdog (if any), compact and close the memo journal. *)
