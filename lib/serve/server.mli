(** The resident multi-domain verification server.

    Answers {!Protocol.job}s from three tiers (see DESIGN.md §12):

    + the fingerprint-keyed verdict {!Memo} — an identical query returns
      its stored report without touching the reachability pipeline;
    + the process-wide sharded abstraction cache
      ({!Nncs_nnabs.Cache.shared}), injected into every job's reach
      config, so F# boxes computed for one job warm the next;
    + a full run on {!Nncs.Verify.verify_partition} (which itself fans
      out on the leaf scheduler when the job asks for it).

    The server is scenario-agnostic: the closed-loop system and the
    partition factory are supplied as callbacks at {!create} time, and
    every job selects its abstraction domain and input-split count
    through them.  A memo (and its journal) is only meaningful for one
    [make_system] — the fingerprint does not hash network weights.

    Each job runs behind the {!Nncs_resilience.Firewall}: a poisoned job
    yields an [error] event for its id, never a dead dispatcher. *)

type config = {
  dispatchers : int;  (** concurrent jobs (>= 1); each job may additionally
                          spawn its own [config.workers] domains *)
  cache : Nncs_nnabs.Cache.config option;
      (** the process-wide abstraction cache injected into every job
          ([None]: jobs run uncached) *)
  memo_path : string option;  (** verdict-memo journal backing *)
}

val default_config : config
(** One dispatcher; a large exact-key cache ([capacity 65536, quantum 0,
    8 shards] — quantum 0 keeps served verdicts bitwise-identical to
    uncached runs); no memo journal. *)

type t

val create :
  config ->
  make_system:
    (domain:Nncs_nnabs.Transformer.domain -> nn_splits:int -> Nncs.System.t) ->
  make_cells:
    (arcs:int -> headings:int -> arc_indices:int list -> Nncs.Symstate.t list) ->
  t
(** [make_cells] receives [arc_indices = []] when the job asked for
    every arc. *)

val submit : t -> emit:(Protocol.event -> unit) -> Protocol.job -> unit
(** Handle one job synchronously on the calling domain: emit [accepted]
    (with the job fingerprint: {!Nncs.Verify.fingerprint}, extended
    with the budget limits when any are set — a budget-truncated report
    must not be served for a differently-budgeted job), then either the
    memoized verdict or [progress] events followed by the computed
    verdict; a failure emits [error].  [emit] must tolerate concurrent
    invocation when the job runs with [workers > 1] (progress fires
    from worker domains). *)

val lookup : t -> string -> Nncs.Verify.report option
(** The memoized report for a job fingerprint (as emitted in [accepted]
    and [verdict] events), if any; does not count as a memo hit — lets
    benches compare served verdicts against direct runs. *)

val stats_json : t -> Nncs_obs.Json.t
(** Jobs handled, memo size/hits, abstraction-cache hit rate and shard
    sizes. *)

val run : t -> in_channel -> out_channel -> [ `Shutdown | `Eof ]
(** The JSONL session loop: read one request per line from [ic], stream
    events to [oc].  Jobs are queued and executed by
    [config.dispatchers] domains while the calling domain keeps
    reading, so independent jobs overlap; [stats] and [shutdown] are
    answered inline (a [stats] reply can therefore overtake verdicts of
    still-running jobs).  On [shutdown] or end of input the queue is
    drained, dispatchers joined, and a final [bye] emitted; the return
    value says which of the two ended the session (a socket server
    keeps accepting after [`Eof], stops after [`Shutdown]).  Unparseable
    lines produce [error] events with an empty id and do not kill the
    session.  A broken client cannot kill the server either: a failed
    write to [oc] (e.g. [EPIPE] with SIGPIPE ignored) silently drops
    that session's remaining events — running jobs complete and still
    feed the memo — and a read error on [ic] ends the session exactly
    like end-of-input, draining the queue and joining the
    dispatchers. *)

val close : t -> unit
(** Close the memo journal (flushing pending appends). *)
