(** Wire protocol of the resident verification service.

    One JSON object per line in both directions.  Requests are jobs
    (spec + initial set + analysis configuration), cancellations of
    earlier jobs, stats probes, or a shutdown; the server answers with
    a stream of events tagged by the job's client-chosen [id].

    {b Request grammar} (defaults in brackets; see DESIGN.md §12):

    {v
    request  := job | cancel | stats | shutdown
    job      := { "t":"job", "id":STR,
                  "cells":[cell...] | "partition":{"arcs":N,"headings":N,
                                                   "arc_indices":[N...]},
                  "domain":"interval"|"symbolic"|"affine",   [symbolic]
                  "nn_splits":N,                             [0]
                  "max_depth":N,                             [0]
                  "split_dims":[N...],    [paper dims via default config]
                  "split_take":N,         [absent: bisect all split_dims]
                  "m":N, "order":N, "gamma":N,               [10, 6, 5]
                  "scheme":"direct"|"lohner",                [direct]
                  "early_abort":BOOL,                        [true]
                  "workers":N,                               [1]
                  "scheduler":"cells"|"leaves",              [cells]
                  "degrade":BOOL,                            [true]
                  "deadline_s":F, "max_ode_steps":N,
                  "max_symstates":N,                         [unlimited]
                  "memo":BOOL }                              [true]
    cell     := { "box":[[lo,hi]...], "cmd":N }
    cancel   := { "t":"cancel", "id":STR }
    stats    := { "t":"stats" }
    shutdown := { "t":"shutdown" }
    v}

    {b Events}: [accepted] (echoes the problem fingerprint), [progress]
    (cells done / total, only for jobs that actually run), [verdict]
    (with ["source":"memo"|"run"|"coalesced"]), [cancelled] (the
    terminal event of a cancelled job; also the ack of a [cancel]
    request), [error], [stats], [bye]. *)

type cells_spec =
  | Explicit of Nncs.Symstate.t list  (** the job carries its own cells *)
  | Partition of { arcs : int; headings : int; arc_indices : int list }
      (** scenario partition built server-side ([arc_indices = []] means
          every arc) *)

type job = {
  id : string;  (** client-chosen correlation id, echoed on every event *)
  cells : cells_spec;
  domain : Nncs_nnabs.Transformer.domain;
  nn_splits : int;
  config : Nncs.Verify.config;
      (** [reach.abs_cache] is ignored: the server injects its own
          process-wide cache *)
  use_memo : bool;
      (** answer from the fingerprint-keyed verdict memo when possible
          (the run's report is stored either way) *)
}

type request =
  | Job of job
  | Cancel of string
      (** cancel the job with this id — queued jobs are dropped before
          dispatch, a running job's cancel token is tripped; the ack is
          the job's terminal [Cancelled] event *)
  | Stats
  | Shutdown

type source =
  | Memo  (** answered from the verdict memo, no analysis ran *)
  | Run  (** this job's own analysis run *)
  | Coalesced
      (** single-flight: an identical job was already in flight, and
          this one received the shared run's verdict *)

type event =
  | Accepted of { id : string; fingerprint : string }
  | Progress of { id : string; cells_done : int; total : int }
  | Verdict of {
      id : string;
      fingerprint : string;
      source : source;
      coverage : float;
      proved_cells : int;
      unknown_cells : int;
      total_cells : int;
      elapsed_s : float;
    }
  | Cancelled of { id : string; reason : string }
      (** terminal event of a cancelled job; emitted as the immediate
          ack of an effective [Cancel] request *)
  | Job_error of { id : string; reason : string }
      (** [id] is [""] when the offending line could not be parsed far
          enough to recover one *)
  | Stats_report of Nncs_obs.Json.t
  | Bye

val default_config : Nncs.Verify.config
(** The base every job's config starts from: {!Nncs.Verify.default_config}
    with [keep_sets = false] (a server must not retain per-step flow
    pipes) and [max_depth = 0] (refinement is opt-in per job). *)

val source_to_string : source -> string

val request_of_json : Nncs_obs.Json.t -> (request, string) result
(** Total: malformed requests come back as [Error reason], never an
    exception. *)

val request_to_json : request -> Nncs_obs.Json.t
(** Inverse of {!request_of_json} on the fields the grammar exposes
    (clients and benches build jobs through this to exercise the same
    codec the server parses with). *)

val event_to_json : event -> Nncs_obs.Json.t
val event_of_json : Nncs_obs.Json.t -> (event, string) result
