(** Wire protocol of the resident verification service.

    One JSON object per line in both directions.  Requests are jobs
    (spec + initial set + analysis configuration), cancellations of
    earlier jobs, stats probes, or a shutdown; the server answers with
    a stream of events tagged by the job's client-chosen [id].

    {b Request grammar} (defaults in brackets; see DESIGN.md §12):

    {v
    request  := job | lookup | cancel | stats | shutdown
    job      := { "t":"job", "id":STR,
                  "cells":[cell...] | "partition":{"arcs":N,"headings":N,
                                                   "arc_indices":[N...]},
                  "domain":"interval"|"symbolic"|"affine",   [symbolic]
                  "nn_splits":N,                             [0]
                  "max_depth":N,                             [0]
                  "split_dims":[N...],    [paper dims via default config]
                  "split_take":N,         [absent: bisect all split_dims]
                  "m":N, "order":N, "gamma":N,               [10, 6, 5]
                  "scheme":"direct"|"lohner",                [direct]
                  "early_abort":BOOL,                        [true]
                  "workers":N,                               [1]
                  "scheduler":"cells"|"leaves",              [cells]
                  "degrade":BOOL,                            [true]
                  "deadline_s":F, "max_ode_steps":N,
                  "max_symstates":N,                         [unlimited]
                  "memo":BOOL }                              [true]
    cell     := { "box":[[lo,hi]...], "cmd":N }
    lookup   := { "t":"lookup", "id":STR, "box":[[lo,hi]...], "cmd":N }
    cancel   := { "t":"cancel", "id":STR }
    stats    := { "t":"stats" }
    shutdown := { "t":"shutdown" }
    v}

    {b Events}: [accepted] (echoes the problem fingerprint), [progress]
    (cells done / total, only for jobs that actually run), [verdict]
    (with ["source":"memo"|"run"|"coalesced"]), [lookup_result] (the
    answer to a [lookup]: ["status":"unsafe"|"safe"|"out_of_domain"|
    "unavailable"], with ["k"] — sweeps to contact — when unsafe),
    [cancelled] (the terminal event of a cancelled job; also the ack of
    a [cancel] request), [error], [stats], [bye].

    A [lookup] probes the server's quantized backreachability table
    (DESIGN.md §16): it is answered inline by the session loop, before
    the job queue, the verdict memo and every other tier — no
    reachability analysis can run on its behalf.  [status = safe] means
    no covering quantized state of the box can ever reach the erroneous
    set; [unavailable] means the server holds no table. *)

type cells_spec =
  | Explicit of Nncs.Symstate.t list  (** the job carries its own cells *)
  | Partition of { arcs : int; headings : int; arc_indices : int list }
      (** scenario partition built server-side ([arc_indices = []] means
          every arc) *)

type job = {
  id : string;  (** client-chosen correlation id, echoed on every event *)
  cells : cells_spec;
  domain : Nncs_nnabs.Transformer.domain;
  nn_splits : int;
  config : Nncs.Verify.config;
      (** [reach.abs_cache] is ignored: the server injects its own
          process-wide cache *)
  use_memo : bool;
      (** answer from the fingerprint-keyed verdict memo when possible
          (the run's report is stored either way) *)
}

type request =
  | Job of job
  | Lookup of { id : string; box : Nncs_interval.Box.t; cmd : int }
      (** probe the backreach table for this (box, command) — answered
          inline with a [Lookup_result], never queued *)
  | Cancel of string
      (** cancel the job with this id — queued jobs are dropped before
          dispatch, a running job's cancel token is tripped; the ack is
          the job's terminal [Cancelled] event *)
  | Stats
  | Shutdown

type source =
  | Memo  (** answered from the verdict memo, no analysis ran *)
  | Run  (** this job's own analysis run *)
  | Coalesced
      (** single-flight: an identical job was already in flight, and
          this one received the shared run's verdict *)

type lookup_status =
  | Lookup_unsafe of { k : int }
      (** some covering quantized state can reach E in [k] sweeps *)
  | Lookup_safe  (** no covering quantized state is in the table *)
  | Lookup_out_of_domain
  | Lookup_unavailable  (** the server holds no backreach table *)

type event =
  | Accepted of { id : string; fingerprint : string }
  | Progress of { id : string; cells_done : int; total : int }
  | Verdict of {
      id : string;
      fingerprint : string;
      source : source;
      coverage : float;
      proved_cells : int;
      unknown_cells : int;
      total_cells : int;
      elapsed_s : float;
    }
  | Lookup_result of { id : string; status : lookup_status }
      (** answer to a [Lookup]; not a job event — it never enters the
          per-id terminal-event accounting *)
  | Cancelled of { id : string; reason : string }
      (** terminal event of a cancelled job; emitted as the immediate
          ack of an effective [Cancel] request *)
  | Job_error of { id : string; reason : string }
      (** [id] is [""] when the offending line could not be parsed far
          enough to recover one *)
  | Stats_report of Nncs_obs.Json.t
  | Bye

val default_config : Nncs.Verify.config
(** The base every job's config starts from: {!Nncs.Verify.default_config}
    with [keep_sets = false] (a server must not retain per-step flow
    pipes) and [max_depth = 0] (refinement is opt-in per job). *)

val source_to_string : source -> string
val lookup_status_to_string : lookup_status -> string
(** ["unsafe"], ["safe"], ["out_of_domain"] or ["unavailable"] — the
    wire encoding of the status (the [k] of an unsafe verdict travels
    in its own field). *)

val request_of_json : Nncs_obs.Json.t -> (request, string) result
(** Total: malformed requests come back as [Error reason], never an
    exception. *)

val request_to_json : request -> Nncs_obs.Json.t
(** Inverse of {!request_of_json} on the fields the grammar exposes
    (clients and benches build jobs through this to exercise the same
    codec the server parses with). *)

val event_to_json : event -> Nncs_obs.Json.t
val event_of_json : Nncs_obs.Json.t -> (event, string) result
